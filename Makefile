# Development and CI entry points. `make check` is what every PR must
# pass: vet, the ANC invariant linter, build, the full test suite, the
# race detector, and a short fuzz smoke over the corruption-facing
# decoders.

GO ?= go
FUZZTIME ?= 10s
ANCLINT := bin/anclint

.PHONY: check vet lint tools build test race fuzz-smoke bench-smoke bench clean

check: vet lint build test race fuzz-smoke bench-smoke

vet:
	$(GO) vet ./...

# lint builds and runs the ANC invariant analyzer suite (internal/lint,
# DESIGN.md §9) over the whole module. Suppress an intentional finding
# with `//anclint:ignore <analyzer> <reason>` on or above the line.
lint: $(ANCLINT)
	$(ANCLINT) ./...

$(ANCLINT): $(shell find internal/lint cmd/anclint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(ANCLINT) ./cmd/anclint

# tools verifies the toolchain the checks depend on. The analyzer suite
# is implemented in-tree over the standard library's go/* packages
# (no golang.org/x/tools dependency — see DESIGN.md §9), so this only
# pins the module graph.
tools:
	$(GO) mod verify
	$(GO) version

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each -fuzz run accepts a single target, so the smoke lists them
# explicitly: snapshot loading and WAL replay are the two paths fed by
# potentially corrupt bytes.
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME)

# bench-smoke runs the batch-ingest throughput benchmark once (a single
# iteration, not a measurement) so the batch pipeline compiles and runs —
# pool, coalescing, index validation — on every PR.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkIngest$$' -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

clean:
	rm -rf bin
	$(GO) clean ./...
