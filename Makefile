# Development and CI entry points. `make check` is what every PR must
# pass: vet, build, the full test suite, the race detector, and a short
# fuzz smoke over the corruption-facing decoders.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz-smoke bench clean

check: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each -fuzz run accepts a single target, so the smoke lists them
# explicitly: snapshot loading and WAL replay are the two paths fed by
# potentially corrupt bytes.
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

clean:
	$(GO) clean ./...
