# Development and CI entry points. `make check` is what every PR must
# pass: vet, the ANC invariant linter, build, the full test suite, the
# race detector, a short fuzz smoke over the corruption-facing decoders,
# the bench and serving-layer smokes, the replication failover smoke,
# the observability smoke, the cache and analytics smokes, and the
# end-to-end trace smoke.

GO ?= go
FUZZTIME ?= 10s
ANCLINT := bin/anclint

# VERSION stamps the binaries (ancserve logs it at startup and /healthz
# reports it): the nearest git describe, "dev" outside a git checkout.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X anc/internal/obs.BuildVersion=$(VERSION)

.PHONY: check vet lint lint-force lint-json tools build test race fuzz-smoke bench-smoke serve-smoke repl-smoke obs-smoke cache-smoke analytics-smoke trace-smoke bench clean

check: vet lint build test race fuzz-smoke bench-smoke serve-smoke repl-smoke obs-smoke cache-smoke analytics-smoke trace-smoke

vet:
	$(GO) vet ./...

# lint builds and runs the ANC invariant analyzer suite (internal/lint,
# DESIGN.md §9 and §14) over the whole module, including the audit that
# flags //anclint:ignore directives which no longer suppress anything.
# Suppress an intentional finding with
# `//anclint:ignore <analyzer> <reason>` on or above the line.
#
# A clean run is stamp-cached against every non-testdata .go file, so
# the `make check` fast path skips the ~2s module re-analysis when no
# source changed; `make lint-force` always re-runs.
LINT_STAMP := bin/.lint.ok
GO_SRCS := $(shell find . -name '*.go' -not -path '*/testdata/*' -not -path './bin/*' -not -path './.git/*')

lint: $(LINT_STAMP)

$(LINT_STAMP): $(ANCLINT) $(GO_SRCS)
	$(ANCLINT) -unused-ignores ./...
	@touch $@

lint-force: $(ANCLINT)
	$(ANCLINT) -unused-ignores ./...

# lint-json prints the findings as JSON on stdout — the shape CI's
# annotation step feeds through jq into per-line file annotations.
lint-json: $(ANCLINT)
	@$(ANCLINT) -unused-ignores -json ./...

$(ANCLINT): $(shell find internal/lint cmd/anclint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(ANCLINT) ./cmd/anclint

# tools verifies the toolchain the checks depend on. The analyzer suite
# is implemented in-tree over the standard library's go/* packages
# (no golang.org/x/tools dependency — see DESIGN.md §9), so this only
# pins the module graph.
tools:
	$(GO) mod verify
	$(GO) version

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each -fuzz run accepts a single target, so the smoke lists them
# explicitly: snapshot loading, WAL replay, and the two sides of the wire
# protocol are the paths fed by potentially corrupt bytes.
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzReplay$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzReplFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzReplStatus$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzTieRank$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzEvolution$$' -fuzztime $(FUZZTIME)

# bench-smoke runs the batch-ingest throughput benchmark once (a single
# iteration, not a measurement) so the batch pipeline compiles and runs —
# pool, coalescing, index validation — on every PR. It is also the
# dynamic half of the //anclint:hotpath contract (DESIGN.md §14): the
# AllocsPerRun gates assert every annotated kernel runs at 0 allocs/op,
# and the hot-path benchmarks run under -benchmem so a regression is
# visible in the output.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkIngest$$' -benchtime 1x .
	$(GO) test -run '^TestHotPathAllocs$$' -count=1 ./internal/serve ./internal/obs ./internal/obs/trace ./internal/decay ./internal/cluster/cache ./internal/analytics
	$(GO) test -run '^$$' -bench '^BenchmarkHotPath' -benchtime 100x -benchmem ./internal/serve ./internal/obs ./internal/obs/trace ./internal/decay ./internal/cluster/cache ./internal/analytics

# serve-smoke drives the serving layer once end to end on an ephemeral
# port: concurrent TCP ingest + queries into a WAL-backed network, graceful
# drain, and a non-empty BENCH_serve.json — the acceptance loop of the
# serving subsystem on every PR.
serve-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkServe$$' -benchtime 1x .
	test -s BENCH_serve.json

# repl-smoke is the failover acceptance loop: a primary replicating to
# two followers over TCP is killed mid-stream, one follower is promoted,
# the other retargets to it, and both ends must converge to byte-identical
# checkpoints — under the race detector, on every PR.
repl-smoke:
	$(GO) test -race ./internal/serve/repl -run '^TestReplFailover$$' -count=1

# obs-smoke scrapes the fully instrumented stack like a Prometheus would:
# WAL-backed server with the metrics listener on, real ingest and queries,
# then /metrics must surface series from every layer (serve, wal, pyramid,
# core) — see DESIGN.md §12.
obs-smoke:
	$(GO) test -run '^TestObsSmoke$$' -count=1 .

# cache-smoke is the materialized clustering cache's acceptance loop
# (DESIGN.md §15): every level's cached Clusters/EvenClusters must be
# byte-identical to a forced recompute, repeat queries must hit, and the
# hit/miss counters must account for exactly the queries made.
cache-smoke:
	$(GO) test -run '^TestCacheSmoke$$' -count=1 .

# analytics-smoke is the analytics subsystem's acceptance loop
# (DESIGN.md §16): TieRank must match the closed-form eigenvector on a
# star graph (and serve the repeat query from the rank snapshot cache),
# and the evolution diff must reproduce a golden
# split/merge/birth/death/grow event sequence field for field.
analytics-smoke:
	$(GO) test -run '^TestAnalyticsSmoke$$' -count=1 .

# trace-smoke is the tracing subsystem's acceptance loop (DESIGN.md
# §17): a traced client over TCP must yield one server-side trace under
# the client's ID stitching queue-wait, WAL append + fsync, core apply,
# pyramid repair and the reply — and the trace must round-trip over the
# wire through the traces op, while untraced connections stay untouched.
trace-smoke:
	$(GO) test -run '^TestTraceSmoke$$' -count=1 .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

clean:
	rm -rf bin
	$(GO) clean ./...
