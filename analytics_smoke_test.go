package anc

import (
	"math"
	"testing"

	"anc/internal/analytics"
	"anc/internal/cluster"
	"anc/internal/graph"
)

// mkSmokeClustering builds a Clustering over n nodes from explicit
// member lists; remaining nodes become trailing singletons.
func mkSmokeClustering(n int, clusters [][]graph.NodeID) *cluster.Clustering {
	cl := &cluster.Clustering{Labels: make([]int32, n)}
	for i := range cl.Labels {
		cl.Labels[i] = -1
	}
	for i, m := range clusters {
		for _, v := range m {
			cl.Labels[v] = int32(i)
		}
		cl.Clusters = append(cl.Clusters, m)
	}
	for v := 0; v < n; v++ {
		if cl.Labels[v] == -1 {
			cl.Labels[v] = int32(len(cl.Clusters))
			cl.Clusters = append(cl.Clusters, []graph.NodeID{graph.NodeID(v)})
		}
	}
	return cl
}

// TestAnalyticsSmoke is the analytics subsystem's acceptance loop
// (DESIGN.md §16), in two halves.
//
// TieRank oracle: on a 3-leaf star whose edges all carry equal decayed
// weight, the dominant eigenvector is known in closed form — the center
// scores 1/√2 and each leaf 1/√6 (for a k-leaf star: center 1/√2,
// leaves 1/√(2k); eigenvector centrality is invariant to the uniform
// weight scale, so the decay parameters drop out). The facade's answer
// must match to near machine precision, and a repeat query must be
// served from the rank snapshot cache with an identical result.
//
// Evolution golden sequence: a hand-built series of clusterings walks
// the tracker through every event type — split, merge, birth, death,
// grow — and the emitted sequence must match the expected events
// exactly, field for field, in order.
func TestAnalyticsSmoke(t *testing.T) {
	// --- TieRank vs the closed-form star eigenvector ---
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}}
	net, err := NewNetwork(4, edges, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.EnableAnalytics()
	for _, e := range edges {
		if err := net.Activate(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	r := net.TieRank(-1, 4)
	if !r.Converged {
		t.Fatalf("star did not converge in %d iters", r.Iters)
	}
	if len(r.Global) != 4 || r.Global[0].Node != 0 {
		t.Fatalf("top of a star is its center: %+v", r.Global)
	}
	const tol = 1e-9
	if got, want := r.Global[0].Score, 1/math.Sqrt2; math.Abs(got-want) > tol {
		t.Errorf("center score %.12f, want %.12f", got, want)
	}
	for _, e := range r.Global[1:] {
		if want := 1 / math.Sqrt(6); math.Abs(e.Score-want) > tol {
			t.Errorf("leaf %d score %.12f, want %.12f", e.Node, e.Score, want)
		}
	}
	h0, m0, _ := net.RankStats()
	again := net.TieRank(-1, 4)
	h1, m1, _ := net.RankStats()
	if h1 != h0+1 || m1 != m0 {
		t.Errorf("repeat TieRank hits/misses %d/%d → %d/%d, want a cache hit", h0, m0, h1, m1)
	}
	for i := range r.Global {
		if again.Global[i] != r.Global[i] {
			t.Errorf("cached TieRank diverged at %d: %+v vs %+v", i, again.Global[i], r.Global[i])
		}
	}

	// --- Evolution diff golden sequence ---
	tr := analytics.NewTracker(1, analytics.DefaultTrackerConfig())
	const n = 12
	tr.Seed(mkSmokeClustering(n, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}, {6, 7, 8}}))
	// t=1: {0..5} splits into {0,1,2} and {3,4,5}.
	tr.Observe(mkSmokeClustering(n, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}), 1)
	// t=2: the halves merge back, and {9,10,11} is born.
	tr.Observe(mkSmokeClustering(n, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}, {6, 7, 8}, {9, 10, 11}}), 2)
	// t=3: {6,7,8} dissolves into singletons and {9,10,11} absorbs 8.
	tr.Observe(mkSmokeClustering(n, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}, {8, 9, 10, 11}}), 3)

	golden := []analytics.Event{
		{Seq: 1, Type: analytics.EventSplit, Level: 1, Node: 0, Size: 2, PrevSize: 6, Time: 1},
		{Seq: 2, Type: analytics.EventMerge, Level: 1, Node: 0, Size: 6, PrevSize: 2, Time: 2},
		{Seq: 3, Type: analytics.EventBirth, Level: 1, Node: 9, Size: 3, PrevSize: 0, Time: 2},
		{Seq: 4, Type: analytics.EventDeath, Level: 1, Node: 6, Size: 0, PrevSize: 3, Time: 3},
		{Seq: 5, Type: analytics.EventGrow, Level: 1, Node: 8, Size: 4, PrevSize: 3, Time: 3},
	}
	evs, seq, dropped := tr.Events(0)
	if seq != uint64(len(golden)) || dropped != 0 {
		t.Fatalf("seq %d, dropped %d, want %d and 0", seq, dropped, len(golden))
	}
	if len(evs) != len(golden) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(golden), evs)
	}
	for i, want := range golden {
		if evs[i] != want {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, evs[i], want)
		}
	}
}
