// Package anc is the public API of the Activation Network Clustering
// library — a from-scratch implementation of "Clustering Activation
// Networks" (ICDE 2022).
//
// An activation network is a relatively stable relation graph plus a stream
// of timestamped interactions ("activations") along existing edges. Under
// the time-decay scheme, an edge's activeness is the sum of exponentially
// decayed activation impacts. The library maintains, incrementally and at a
// cost bounded by the affected nodes only:
//
//   - the decaying activeness of every edge, via a single global decay
//     factor (so nothing is touched as time passes, only on activations);
//   - a similarity function combining structural cohesiveness (triangle
//     structure, active neighbor sets, local reinforcement) and activeness;
//   - a hierarchy of randomized Voronoi partitions ("pyramids") over the
//     shortest-distance metric induced by the reciprocal similarity, which
//     answers clustering queries — global, local, zoom-in and zoom-out —
//     in time proportional to the result, not the graph.
//
// # Quick start
//
//	net, err := anc.NewNetwork(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}, anc.DefaultConfig())
//	...
//	net.Activate(0, 1, 1.0)                // interaction on edge (0,1) at t=1
//	clusters := net.Clusters(net.SqrtLevel()) // ≈ √n clusters
//	mine := net.ClusterOf(0, net.SqrtLevel())
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of every table and
// figure in the paper.
package anc

import (
	"fmt"
	"io"
	"math"

	"anc/internal/analytics"
	"anc/internal/cluster"
	clustercache "anc/internal/cluster/cache"
	"anc/internal/core"
	"anc/internal/graph"
	"anc/internal/obs"
	"anc/internal/obs/trace"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

// Method selects the maintenance policy of a Network.
type Method = core.Method

// Maintenance policies (Section VI of the paper).
const (
	// ANCO is fully online: every activation triggers a bounded index
	// update; no local reinforcement after initialization. Fastest.
	ANCO = core.ANCO
	// ANCOR is online with a local-reinforcement pass at fixed time
	// intervals: slightly slower, better cluster quality over time.
	ANCOR = core.ANCOR
	// ANCF is offline: activations are buffered and Snapshot() recomputes
	// reinforcement and rebuilds the index. Best quality, slowest.
	ANCF = core.ANCF
)

// Config bundles every tunable of the system with the paper's defaults.
type Config struct {
	// Method is the maintenance policy: ANCO (default), ANCOR or ANCF.
	Method Method
	// Lambda is the exponential decay factor λ of edge activeness.
	// Default 0.1.
	Lambda float64
	// Rep is the number of local-reinforcement initialization rounds.
	// Default 7; 0 disables structural bootstrapping.
	Rep int
	// ReinforceInterval is the ANCOR reinforcement period (time units).
	// Default 5.
	ReinforceInterval float64
	// Epsilon is the active-similarity threshold ε for active neighbor
	// sets. Default 0.4.
	Epsilon float64
	// Mu is the core-node threshold μ. Default 4.
	Mu int
	// K is the number of pyramids in the index. Default 4.
	K int
	// Theta is the voting support threshold θ. Default 0.7.
	Theta float64
	// Seed makes pyramid seed selection reproducible. Default 1.
	Seed int64
	// Parallel updates the K·⌈log₂ n⌉ partitions concurrently.
	Parallel bool
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Method:            ANCO,
		Lambda:            0.1,
		Rep:               7,
		ReinforceInterval: 5,
		Epsilon:           0.4,
		Mu:                4,
		K:                 4,
		Theta:             0.7,
		Seed:              1,
	}
}

func (c Config) toOptions() core.Options {
	sim := similarity.DefaultConfig()
	sim.Epsilon = c.Epsilon
	sim.Mu = c.Mu
	return core.Options{
		Method:            c.Method,
		Lambda:            c.Lambda,
		Rep:               c.Rep,
		ReinforceInterval: c.ReinforceInterval,
		Similarity:        sim,
		Pyramid:           pyramid.Config{K: c.K, Theta: c.Theta, Parallel: c.Parallel},
		Seed:              c.Seed,
	}
}

// Network is an indexed activation network ready for activations and
// clustering queries. It is not safe for concurrent use; wrap with a mutex
// if queried from multiple goroutines.
type Network struct {
	inner *core.Network
}

// NewNetwork builds a network over n nodes (IDs 0..n-1) and the given
// undirected edges. Self-loops and out-of-range endpoints are rejected;
// duplicate edges are merged.
func NewNetwork(n int, edges [][2]int, cfg Config) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return FromGraph(b.Build(), cfg)
}

// LoadEdgeList builds a network from a whitespace-separated edge list
// ("u v" per line, # comments). Arbitrary node IDs in the input are
// remapped to dense IDs; the returned map translates original to dense.
func LoadEdgeList(r io.Reader, cfg Config) (*Network, map[int64]int32, error) {
	g, ids, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	net, err := FromGraph(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	return net, ids, nil
}

// FromGraph builds a network over an already-constructed relation graph.
// Most callers use NewNetwork or LoadEdgeList; FromGraph serves code that
// works with the internal graph package directly (benchmarks, generators).
func FromGraph(g *graph.Graph, cfg Config) (*Network, error) {
	inner, err := core.New(g, cfg.toOptions())
	if err != nil {
		return nil, err
	}
	return &Network{inner: inner}, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.inner.Graph().N() }

// M returns the number of relation-graph edges.
func (nw *Network) M() int { return nw.inner.Graph().M() }

// Levels returns the number of granularity levels, ⌈log₂ n⌉.
func (nw *Network) Levels() int { return nw.inner.Index().Levels() }

// SqrtLevel returns the granularity level with Θ(√n) clusters — the
// default reporting granularity of Problem 1.
func (nw *Network) SqrtLevel() int { return pyramid.SqrtLevel(nw.N()) }

// Now returns the network's current time (the largest activation timestamp
// seen).
func (nw *Network) Now() float64 { return nw.inner.Clock().Now() }

// Activate records an interaction along the existing edge (u, v) at time
// t.
//
// Ingest contract (the authoritative statement, relied on by every layer
// below): timestamps are finite — NaN and ±Inf are rejected — and
// non-decreasing across the lifetime of the network; t may equal Now() but
// never precede it. Violations, like activations on edges absent from the
// relation graph, return an error before any state is modified, so a bad
// record can never corrupt the anchored activeness or the index.
func (nw *Network) Activate(u, v int, t float64) error {
	return nw.inner.ActivatePair(graph.NodeID(u), graph.NodeID(v), t)
}

// Activation is one timestamped interaction along the existing edge (U, V),
// the unit of batched ingest.
type Activation struct {
	U, V int
	T    float64
}

// ActivateBatch records a batch of activations in one pass — the high-
// throughput ingest path. The whole batch is validated up front against
// the Activate contract (existing edges, finite non-decreasing timestamps
// starting no earlier than Now()); an invalid batch is rejected as a unit
// with no state modified. The batch path advances the decay clock once per
// distinct timestamp, coalesces repeated activations of the same edge into
// one index update, and defers the rescale check to batch end; results are
// identical to the equivalent sequence of Activate calls.
func (nw *Network) ActivateBatch(batch []Activation) error {
	return nw.ActivateBatchTraced(batch, trace.SpanHandle{})
}

// ActivateBatchTraced is ActivateBatch under an in-flight request span:
// the core pipeline records its pyramid repair and invalidation stages as
// children of sp. A zero handle degrades to plain ActivateBatch.
func (nw *Network) ActivateBatchTraced(batch []Activation, sp trace.SpanHandle) error {
	acts := make([]core.Activation, len(batch))
	for i, a := range batch {
		e := nw.inner.Graph().FindEdge(graph.NodeID(a.U), graph.NodeID(a.V))
		if e == graph.None {
			return fmt.Errorf("anc: batch[%d]: no edge (%d, %d)", i, a.U, a.V)
		}
		acts[i] = core.Activation{Edge: e, T: a.T}
	}
	return nw.inner.ActivateBatchTraced(acts, sp)
}

// Close releases the index worker-pool goroutines when the network was
// built with Config.Parallel. The network stays queryable and ingestable
// afterwards (updates fall back to the serial path); Close exists so a
// retired parallel network leaks nothing.
func (nw *Network) Close() { nw.inner.Close() }

// Snapshot finalizes buffered work: under ANCF it applies the reinforcement
// rounds and rebuilds the index; under ANCOR it flushes the pending
// reinforcement pass; under ANCO it is a no-op. Call it before querying if
// exact method semantics at the current instant matter. A non-nil error
// means the reinforced weights left the finite range and the index was not
// rebuilt; the buffered activations stay pending.
func (nw *Network) Snapshot() error { return nw.inner.Snapshot() }

// Clusters reports all clusters at the given granularity level using power
// clustering (the paper's DirectedCluster). Level 1 is coarsest;
// Levels() is finest.
func (nw *Network) Clusters(level int) [][]int {
	return toInts(nw.inner.Clusters(clampLevel(level, nw.Levels())).Clusters)
}

// EvenClusters reports all clusters using even clustering (connected
// components of vote-surviving edges).
func (nw *Network) EvenClusters(level int) [][]int {
	return toInts(nw.inner.EvenClusters(clampLevel(level, nw.Levels())).Clusters)
}

// EnableClusterCache turns on the materialized clustering cache: Clusters
// and EvenClusters memoize their per-level results and serve repeats from
// an atomically swapped snapshot, invalidated only for levels whose edge
// set actually changed (a net vote-threshold crossing; see DESIGN.md §15).
// The first call pays the vote tracker's one-time O(K·L·m) initialization
// if Watch has not already. Cached answers are byte-identical to a
// recompute. NewConcurrent, NewDurable and Recover enable it
// automatically.
func (nw *Network) EnableClusterCache() { nw.inner.EnableClusterCache() }

// clusterCache enables and returns the materialized clustering cache —
// the probe handle the concurrent facades keep so cache hits bypass their
// locks entirely.
func (nw *Network) clusterCache() *clustercache.Cache { return nw.inner.EnableClusterCache() }

// CacheStats returns the clustering cache's cumulative hit, miss and
// invalidation totals; zeros when the cache was never enabled.
func (nw *Network) CacheStats() (hits, misses, invalidations uint64) {
	return nw.inner.ClusterCache().Stats()
}

// ClustersUncached is Clusters with a forced recompute, bypassing the
// materialized cache — the equivalence baseline for tests and the cache
// A/B benchmark. With the cache disabled it is identical to Clusters.
func (nw *Network) ClustersUncached(level int) [][]int {
	return toInts(nw.inner.ClustersUncached(clampLevel(level, nw.Levels())).Clusters)
}

// EvenClustersUncached is EvenClusters with a forced recompute, bypassing
// the cache.
func (nw *Network) EvenClustersUncached(level int) [][]int {
	return toInts(nw.inner.EvenClustersUncached(clampLevel(level, nw.Levels())).Clusters)
}

// validNode reports whether v names a node of the relation graph. Every
// query method validates IDs through it and degrades gracefully (empty
// cluster, +Inf distance, no-op watch) instead of panicking on
// out-of-range input — the same contract FindEdge gives the edge queries.
func (nw *Network) validNode(v int) bool { return v >= 0 && v < nw.N() }

// ClusterOf reports the cluster containing v at the given level, in time
// proportional to the result (Lemma 9 of the paper). An out-of-range v
// belongs to no cluster: the result is empty.
func (nw *Network) ClusterOf(v int, level int) []int {
	if !nw.validNode(v) {
		return []int{}
	}
	members := nw.inner.LocalCluster(graph.NodeID(v), clampLevel(level, nw.Levels()))
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = int(m)
	}
	return out
}

// SmallestClusterOf reports the smallest cluster containing v (the finest
// granularity), per Problem 1(2). Use View for subsequent zoom-outs.
func (nw *Network) SmallestClusterOf(v int) []int {
	return nw.ClusterOf(v, nw.Levels())
}

// Similarity returns the current (true, decayed) similarity of edge
// (u, v), or an error if no such edge exists.
func (nw *Network) Similarity(u, v int) (float64, error) {
	e := nw.inner.Graph().FindEdge(graph.NodeID(u), graph.NodeID(v))
	if e == graph.None {
		return 0, fmt.Errorf("anc: no edge (%d, %d)", u, v)
	}
	return nw.inner.Similarity().At(e), nil
}

// Activeness returns the current time-decayed activeness of edge (u, v).
func (nw *Network) Activeness(u, v int) (float64, error) {
	e := nw.inner.Graph().FindEdge(graph.NodeID(u), graph.NodeID(v))
	if e == graph.None {
		return 0, fmt.Errorf("anc: no edge (%d, %d)", u, v)
	}
	return nw.inner.Similarity().Activeness().At(e), nil
}

// EstimateDistance returns an upper-bound estimate of the current distance
// between u and v under the metric M_t (reciprocal-similarity shortest
// distance), answered from the index in O(K·log n) — the Das Sarma sketch
// query of the underlying oracle. +Inf means the index never co-locates
// the nodes (different connected components); out-of-range IDs are
// infinitely far from everything.
func (nw *Network) EstimateDistance(u, v int) float64 {
	if !nw.validNode(u) || !nw.validNode(v) {
		return math.Inf(1)
	}
	d := nw.inner.Index().EstimateDistance(graph.NodeID(u), graph.NodeID(v))
	// Stored distances are anchored; true distance = anchored / g.
	return d / nw.inner.Clock().G()
}

// EstimateAttraction returns a lower-bound estimate of the attraction
// strength 1/dist(u, v) of Section IV-C of the paper.
func (nw *Network) EstimateAttraction(u, v int) float64 {
	d := nw.EstimateDistance(u, v)
	if d == 0 {
		return math.Inf(1)
	}
	if math.IsInf(d, 1) {
		return 0
	}
	return 1 / d
}

// ClusterEvent reports a real-time change in a watched node's direct
// cluster connectivity: the edge to Other started (Joined) or stopped
// passing the voting threshold at Level.
type ClusterEvent struct {
	Node, Other int
	Level       int
	Joined      bool
	Time        float64
}

// Watch enables real-time change reporting for node v (the paper's
// Remarks feature): subsequent Activate calls record a ClusterEvent
// whenever v's connectivity at any level flips. Drain retrieves them.
// The first Watch call pays a one-time O(K·log n·m) vote-index build.
// Watching an out-of-range node is a no-op (and does not build the vote
// index).
func (nw *Network) Watch(v int) {
	if !nw.validNode(v) {
		return
	}
	nw.inner.Watch().Add(graph.NodeID(v))
}

// Unwatch stops watching v. A no-op for out-of-range or never-watched
// nodes; it never builds the vote index.
func (nw *Network) Unwatch(v int) {
	if w := nw.inner.Watcher(); w != nil && nw.validNode(v) {
		w.Remove(graph.NodeID(v))
	}
}

// Drain returns and clears the accumulated cluster events for all watched
// nodes, in occurrence order. Events beyond the watcher's buffer cap
// (see core.DefaultEventCap) are dropped; use DrainEvents to observe the
// drop count.
func (nw *Network) Drain() []ClusterEvent {
	evs, _ := nw.drain()
	return evs
}

// DrainEvents is Drain plus the number of events dropped on buffer
// overflow since the previous drain.
func (nw *Network) DrainEvents() ([]ClusterEvent, uint64) { return nw.drain() }

func (nw *Network) drain() ([]ClusterEvent, uint64) {
	w := nw.inner.Watcher()
	if w == nil {
		return nil, 0
	}
	evs, dropped := w.Drain()
	out := make([]ClusterEvent, len(evs))
	for i, e := range evs {
		out[i] = ClusterEvent{
			Node: int(e.Node), Other: int(e.Other),
			Level: e.Level, Joined: e.Joined, Time: e.Time,
		}
	}
	return out, dropped
}

// Instrument attaches the network's observability counters and timing
// histograms to reg under the anc_core_* and anc_pyramid_* families (see
// DESIGN.md §12). A nil registry is a no-op and the default: an
// uninstrumented network pays one predictable nil-check branch per
// observation site and never reads the wall clock. Call Instrument before
// the network sees concurrent traffic — attachment itself is not
// synchronized, only the attached handles are. Instrument is idempotent:
// re-instrumenting against the same registry reuses the registered
// families.
func (nw *Network) Instrument(reg *obs.Registry) { nw.inner.Instrument(reg) }

// WatcherDrops returns the cumulative number of cluster events dropped on
// watcher buffer overflow over the network's lifetime. Unlike the per-Drain
// count of DrainEvents it is never reset, so operators can observe loss
// without consuming events. Zero when Watch was never called.
func (nw *Network) WatcherDrops() uint64 { return nw.inner.WatcherDrops() }

// RankEntry is one node of a TieRank top-k listing.
type RankEntry struct {
	Node  int
	Score float64
}

// TieRankResult is one TieRank query answer: the top-k nodes globally
// and, when a granularity level was requested, the top-k nodes of every
// cluster at that level.
type TieRankResult struct {
	// Global is the network-wide top-k: score descending, node ID
	// ascending on ties.
	Global []RankEntry
	// Level is the clamped granularity level the per-cluster listing was
	// computed at, or -1 when only the global ranking was requested.
	Level int
	// Clusters holds each cluster's top-k in cluster-ID order; nil when
	// Level is -1.
	Clusters [][]RankEntry
	// Iters and Converged describe the power iteration that produced the
	// scores (see internal/analytics).
	Iters     int
	Converged bool
	// Now is the network time the scores were computed at. They stay
	// exact until the next ingest — uniform decay cancels under
	// normalization — so Now identifies the state, not an expiry.
	Now float64
}

// EvolutionEventType classifies a cluster-evolution event.
type EvolutionEventType uint8

// Evolution event kinds, in the order the diff emits them for one
// transition (see DESIGN.md §16).
const (
	EvolutionBirth  = EvolutionEventType(analytics.EventBirth)
	EvolutionDeath  = EvolutionEventType(analytics.EventDeath)
	EvolutionSplit  = EvolutionEventType(analytics.EventSplit)
	EvolutionMerge  = EvolutionEventType(analytics.EventMerge)
	EvolutionGrow   = EvolutionEventType(analytics.EventGrow)
	EvolutionShrink = EvolutionEventType(analytics.EventShrink)
)

// String names the event type: "birth", "death", "split", "merge",
// "grow" or "shrink".
func (t EvolutionEventType) String() string { return analytics.EventType(t).String() }

// EvolutionEvent is one typed change in the tracked clustering between
// successive pyramid repairs.
type EvolutionEvent struct {
	// Seq is the event's 1-based position in the tracker's lifetime
	// stream — the cursor for Evolution(since).
	Seq  uint64
	Type EvolutionEventType
	// Level is the tracked granularity level (the Θ(√n) level).
	Level int
	// Node identifies the cluster by its smallest member ID — stable
	// across repairs for surviving clusters.
	Node int
	// Size and PrevSize are the event's cardinalities; their meaning is
	// per-type (fragment count for a split, source count for a merge,
	// member counts for grow/shrink — see internal/analytics).
	Size, PrevSize int
	// Time is the network time of the transition.
	Time float64
}

// EnableAnalytics turns on the live analytics layer: the TieRank
// snapshot cache (probed lock-free by the concurrent facades) and the
// cluster-evolution tracker diffing the Θ(√n)-level clustering between
// pyramid repairs. Idempotent; the first call pays the vote tracker's
// one-time initialization if Watch or EnableClusterCache has not
// already. NewConcurrent, NewDurable and Recover enable it
// automatically.
func (nw *Network) EnableAnalytics() { nw.inner.EnableAnalytics() }

// rankCache enables analytics and returns the TieRank snapshot cache —
// the probe handle the concurrent facades keep so cached ranks bypass
// their locks entirely.
func (nw *Network) rankCache() *analytics.RankCache { return nw.inner.EnableAnalytics() }

// RankStats returns the TieRank snapshot cache's cumulative hit, miss
// and invalidation totals — the analytics twin of CacheStats. Lock-free;
// all zero until EnableAnalytics.
func (nw *Network) RankStats() (hits, misses, invalidations uint64) {
	return nw.inner.RankCache().Stats()
}

// TieRank computes eigenvector centrality over the current decayed
// weights (see DESIGN.md §16) and returns the top-k nodes globally and,
// for level >= 0, per cluster at that (clamped) level; level -1 skips
// the per-cluster listing. k is clamped to the node count. Served from
// the analytics snapshot cache when one is valid; works without
// EnableAnalytics, just recomputing every call.
func (nw *Network) TieRank(level, k int) TieRankResult {
	r := nw.inner.TieRank()
	var cl *cluster.Clustering
	if level >= 0 {
		level = clampLevel(level, nw.Levels())
		cl = nw.inner.Clusters(level)
	} else {
		level = -1
	}
	return tieRankResult(r, cl, level, k)
}

func tieRankResult(r *analytics.Rank, cl *cluster.Clustering, level, k int) TieRankResult {
	res := TieRankResult{
		Global:    toRankEntries(analytics.TopK(r.Scores, k)),
		Level:     level,
		Iters:     r.Iters,
		Converged: r.Converged,
		Now:       r.Now,
	}
	if cl != nil {
		groups := analytics.TopKGroups(r.Scores, cl, k)
		res.Clusters = make([][]RankEntry, len(groups))
		for i, g := range groups {
			res.Clusters[i] = toRankEntries(g)
		}
	}
	return res
}

func toRankEntries(s []analytics.NodeScore) []RankEntry {
	out := make([]RankEntry, len(s))
	for i, e := range s {
		out[i] = RankEntry{Node: int(e.Node), Score: e.Score}
	}
	return out
}

// Evolution returns the buffered cluster-evolution events with sequence
// numbers after since (pass 0 for everything buffered), plus the newest
// sequence number — the cursor for the next call — and the cumulative
// count of events overwritten before being read. Non-draining and
// idempotent: re-reading the same cursor returns the same events. Empty
// until EnableAnalytics.
func (nw *Network) Evolution(since uint64) ([]EvolutionEvent, uint64, uint64) {
	evs, seq, dropped := nw.inner.EvolutionEvents(since)
	out := make([]EvolutionEvent, len(evs))
	for i, e := range evs {
		out[i] = EvolutionEvent{
			Seq: e.Seq, Type: EvolutionEventType(e.Type), Level: int(e.Level),
			Node: int(e.Node), Size: int(e.Size), PrevSize: int(e.PrevSize), Time: e.Time,
		}
	}
	return out, seq, dropped
}

// EvolutionDrops returns the cumulative number of evolution events
// overwritten in the tracker's ring before being read — the analytics
// twin of WatcherDrops, never reset by reads. Zero until
// EnableAnalytics.
func (nw *Network) EvolutionDrops() uint64 { return nw.inner.EvolutionDrops() }

// Save serializes the network to w: the relation graph, configuration,
// decayed similarity/activeness state and index seeds, followed by a
// version+CRC32C trailer so Load detects corruption instead of decoding
// it. Buffered work is flushed first. Load reconstructs an equivalent
// network (identical clusterings; the shortest-path forests are rebuilt
// deterministically).
func (nw *Network) Save(w io.Writer) error { return nw.inner.Save(w) }

// Load restores a network saved with Save. Torn, truncated or bit-flipped
// snapshots are rejected with an error (CRC and bounds checks), never
// decoded into a silently wrong network.
func Load(r io.Reader) (*Network, error) {
	inner, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Network{inner: inner}, nil
}

// View opens a zoomable navigator positioned at the Θ(√n) granularity.
type View struct {
	inner *cluster.View
	n     int
}

// View opens a navigator for repeated zoom-in/zoom-out queries.
func (nw *Network) View() *View { return &View{inner: nw.inner.View(), n: nw.N()} }

// Level reports the navigator's current granularity level.
func (v *View) Level() int { return v.inner.Level() }

// ZoomIn moves one level finer; false at the finest level.
func (v *View) ZoomIn() bool { return v.inner.ZoomIn() }

// ZoomOut moves one level coarser; false at the coarsest level.
func (v *View) ZoomOut() bool { return v.inner.ZoomOut() }

// Clusters reports all clusters at the current level.
func (v *View) Clusters() [][]int { return toInts(v.inner.Clusters().Clusters) }

// ClusterOf reports the cluster containing x at the current level; empty
// for out-of-range x.
func (v *View) ClusterOf(x int) []int {
	if x < 0 || x >= v.n {
		return []int{}
	}
	members := v.inner.ClusterOf(graph.NodeID(x))
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = int(m)
	}
	return out
}

func clampLevel(l, max int) int {
	if l < 1 {
		return 1
	}
	if l > max {
		return max
	}
	return l
}

func toInts(cs [][]graph.NodeID) [][]int {
	out := make([][]int, len(cs))
	for i, c := range cs {
		out[i] = make([]int, len(c))
		for j, v := range c {
			out[i][j] = int(v)
		}
	}
	return out
}
