package anc

import (
	"math"
	"testing"
)

// TestQueriesSafeOnBadNodeIDs is the regression test for the facade
// panics on out-of-range node IDs: every public query method must degrade
// gracefully (empty cluster, +Inf distance, zero attraction, no-op watch)
// for negative and ≥n IDs, exactly as FindEdge-backed methods already do.
func TestQueriesSafeOnBadNodeIDs(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []int{-1, -100, n, n + 1, 1 << 30}
	for _, v := range bad {
		if got := net.ClusterOf(v, net.SqrtLevel()); len(got) != 0 {
			t.Errorf("ClusterOf(%d) = %v, want empty", v, got)
		}
		if got := net.SmallestClusterOf(v); len(got) != 0 {
			t.Errorf("SmallestClusterOf(%d) = %v, want empty", v, got)
		}
		if d := net.EstimateDistance(v, 0); !math.IsInf(d, 1) {
			t.Errorf("EstimateDistance(%d, 0) = %v, want +Inf", v, d)
		}
		if d := net.EstimateDistance(0, v); !math.IsInf(d, 1) {
			t.Errorf("EstimateDistance(0, %d) = %v, want +Inf", v, d)
		}
		if a := net.EstimateAttraction(v, 0); a != 0 {
			t.Errorf("EstimateAttraction(%d, 0) = %v, want 0", v, a)
		}
		if _, err := net.Similarity(v, 0); err == nil {
			t.Errorf("Similarity(%d, 0) accepted", v)
		}
		if _, err := net.Activeness(v, 0); err == nil {
			t.Errorf("Activeness(%d, 0) accepted", v)
		}
		net.Watch(v)   // must not panic or build the vote index
		net.Unwatch(v) // must not panic
		view := net.View()
		if got := view.ClusterOf(v); len(got) != 0 {
			t.Errorf("View.ClusterOf(%d) = %v, want empty", v, got)
		}
	}
	// Watch on a bad ID must not have built the vote index: watching a
	// real node afterwards still works and drains cleanly.
	if evs := net.Drain(); len(evs) != 0 {
		t.Fatalf("events without any valid watch: %v", evs)
	}
	net.Watch(0)
	if err := net.Activate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Valid IDs are unaffected by the guards.
	if got := net.ClusterOf(0, net.SqrtLevel()); len(got) == 0 {
		t.Fatal("ClusterOf(0) empty for a valid node")
	}
	if d := net.EstimateDistance(0, 0); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

// FuzzFacadeQueries: no combination of node IDs and level may panic any
// read-only facade query.
func FuzzFacadeQueries(f *testing.F) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		f.Fatal(err)
	}
	if err := net.Activate(4, 5, 1); err != nil {
		f.Fatal(err)
	}
	f.Add(0, 1, 2)
	f.Add(-1, 10, -5)
	f.Add(1<<30, -(1 << 30), 0)
	f.Fuzz(func(t *testing.T, u, v, level int) {
		net.ClusterOf(u, level)
		net.SmallestClusterOf(u)
		net.EstimateDistance(u, v)
		net.EstimateAttraction(u, v)
		net.Clusters(level)
		net.EvenClusters(level)
		net.View().ClusterOf(u)
		if _, err := net.Similarity(u, v); err != nil && u >= 0 && u < net.N() && v >= 0 && v < net.N() && u != v {
			_ = err // missing edge between valid nodes is a legal error
		}
		net.Watch(u)
		net.Unwatch(u)
	})
}
