package anc

import (
	"math"
	"testing"
)

// TestSingleNodeNetwork: the degenerate n=1, m=0 network must build and
// answer every query sensibly.
func TestSingleNodeNetwork(t *testing.T) {
	net, err := NewNetwork(1, nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 1 || net.M() != 0 || net.Levels() != 1 {
		t.Fatalf("n=%d m=%d levels=%d", net.N(), net.M(), net.Levels())
	}
	cs := net.Clusters(1)
	if len(cs) != 1 || len(cs[0]) != 1 || cs[0][0] != 0 {
		t.Fatalf("clusters = %v", cs)
	}
	if got := net.ClusterOf(0, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ClusterOf = %v", got)
	}
	if d := net.EstimateDistance(0, 0); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

// TestEdgelessNetwork: several nodes, no edges — all singletons at every
// level, activations impossible.
func TestEdgelessNetwork(t *testing.T) {
	net, err := NewNetwork(5, nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= net.Levels(); l++ {
		if got := len(net.Clusters(l)); got != 5 {
			t.Fatalf("level %d: %d clusters, want 5 singletons", l, got)
		}
	}
	if err := net.Activate(0, 1, 1); err == nil {
		t.Fatal("activation accepted on missing edge")
	}
	if d := net.EstimateDistance(0, 4); !math.IsInf(d, 1) {
		t.Fatalf("distance across isolated nodes = %v", d)
	}
	if a := net.EstimateAttraction(0, 4); a != 0 {
		t.Fatalf("attraction across isolated nodes = %v", a)
	}
}

// TestConfigValidationThroughFacade: invalid parameters surface as errors,
// not panics.
func TestConfigValidationThroughFacade(t *testing.T) {
	n, edges := barbell()
	cases := []func(*Config){
		func(c *Config) { c.Lambda = -0.5 },
		func(c *Config) { c.Epsilon = 2 },
		func(c *Config) { c.Mu = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.Theta = 1.5 },
		func(c *Config) { c.Rep = -1 },
		func(c *Config) { c.Method = ANCOR; c.ReinforceInterval = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewNetwork(n, edges, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestMonotoneTimestampsEnforced: backwards, NaN and infinite timestamps
// are rejected with an error before any state changes — the ingest
// contract documented on Network.Activate.
func TestMonotoneTimestampsEnforced(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Activate(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	before, err := net.Similarity(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := net.Activate(0, 1, bad); err == nil {
			t.Errorf("timestamp %v accepted", bad)
		}
	}
	// Rejection happens before any mutation: state and time are untouched.
	if after, _ := net.Similarity(0, 1); after != before {
		t.Fatalf("similarity changed by rejected activations: %v -> %v", before, after)
	}
	if net.Now() != 10 {
		t.Fatalf("time moved by rejected activations: %v", net.Now())
	}
	// Equal timestamps remain legal (non-decreasing, not increasing).
	if err := net.Activate(0, 1, 10); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
}
