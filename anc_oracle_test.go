package anc

import (
	"math"
	"testing"
)

func TestFacadeEstimateDistance(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := net.EstimateDistance(3, 3); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	intra := net.EstimateDistance(0, 1)
	if math.IsInf(intra, 1) {
		t.Fatal("intra-clique pair estimated unreachable")
	}
	// The sketch may fail to co-locate nodes across the (very heavy)
	// bridge on such a tiny graph; when it does co-locate them, the
	// estimate must exceed the intra-clique one.
	if cross := net.EstimateDistance(0, 9); !math.IsInf(cross, 1) && intra >= cross {
		t.Fatalf("intra-clique distance %v not below cross-clique %v", intra, cross)
	}
	a := net.EstimateAttraction(0, 1)
	if math.Abs(a*intra-1) > 1e-12 {
		t.Fatalf("attraction %v != 1/dist", a)
	}
	// Activations shrink distances along the activated edge's direction.
	before := net.EstimateDistance(4, 5)
	for i := 1; i <= 40; i++ {
		if err := net.Activate(4, 5, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if after := net.EstimateDistance(4, 5); after >= before {
		t.Fatalf("bridge distance did not shrink: %v -> %v", before, after)
	}
}

func TestFacadeWatch(t *testing.T) {
	// Two triangles joined by a bridge — the topology where driving the
	// bridge weight down reliably flips votes at some level.
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	cfg := testConfig()
	cfg.Mu = 2
	net, err := NewNetwork(6, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Watch(2)
	net.Watch(3)
	for i := 1; i <= 400; i++ {
		if err := net.Activate(2, 3, float64(i)*0.02); err != nil {
			t.Fatal(err)
		}
	}
	evs := net.Drain()
	if len(evs) == 0 {
		t.Fatal("no events after heavy bridge activity")
	}
	for _, e := range evs {
		if e.Node != 2 && e.Node != 3 {
			t.Fatalf("event for unwatched node: %+v", e)
		}
	}
	net.Unwatch(2)
	net.Unwatch(3)
	for i := 0; i < 100; i++ {
		net.Activate(0, 1, 8+float64(i)*0.01)
	}
	if evs := net.Drain(); len(evs) != 0 {
		t.Fatalf("events after Unwatch: %v", evs)
	}
}
