package anc

import (
	"bytes"
	"testing"
)

func TestFacadeSaveLoad(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if err := net.Activate(4, 5, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != net.N() || got.M() != net.M() || got.Now() != net.Now() {
		t.Fatalf("restored shape mismatch: %d/%d t=%v", got.N(), got.M(), got.Now())
	}
	s1, _ := net.Similarity(4, 5)
	s2, _ := got.Similarity(4, 5)
	if s1 != s2 && (s1-s2)/s1 > 1e-9 {
		t.Fatalf("similarity drifted: %v vs %v", s1, s2)
	}
	// Continue streaming on the restored network.
	if err := got.Activate(0, 1, 26); err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters(2)) == 0 {
		t.Fatal("no clusters after restore")
	}
}

func TestFacadeLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
