package anc

import (
	"strings"
	"testing"
)

// barbell builds two K5s joined by a bridge as [][2]int edges.
func barbell() (int, [][2]int) {
	var edges [][2]int
	for base := 0; base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	edges = append(edges, [2]int{4, 5})
	return 10, edges
}

func testConfig() Config {
	c := DefaultConfig()
	c.Epsilon = 0.2
	c.Mu = 3
	return c
}

func TestNewNetworkAndQueries(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 10 || net.M() != 21 {
		t.Fatalf("n=%d m=%d", net.N(), net.M())
	}
	if net.Levels() != 4 {
		t.Fatalf("levels = %d, want ⌈log₂ 10⌉ = 4", net.Levels())
	}
	cs := net.Clusters(net.SqrtLevel())
	total := 0
	for _, c := range cs {
		total += len(c)
	}
	if total != 10 {
		t.Fatalf("clusters cover %d nodes", total)
	}
	mine := net.ClusterOf(0, net.SqrtLevel())
	found := false
	for _, v := range mine {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("ClusterOf(0) does not contain 0")
	}
}

func TestNewNetworkRejectsBadEdges(t *testing.T) {
	if _, err := NewNetwork(3, [][2]int{{0, 0}}, testConfig()); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewNetwork(3, [][2]int{{0, 5}}, testConfig()); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestActivateAndSimilarity(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := net.Similarity(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := net.Activate(4, 5, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := net.Similarity(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s0 {
		t.Fatalf("similarity did not grow under activations: %v -> %v", s0, s1)
	}
	a, err := net.Activeness(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 1 {
		t.Fatalf("activeness = %v after 20 activations", a)
	}
	if err := net.Activate(0, 7, 21); err == nil {
		t.Fatal("activation on non-edge accepted")
	}
	if _, err := net.Similarity(0, 7); err == nil {
		t.Fatal("similarity on non-edge accepted")
	}
	if _, err := net.Activeness(0, 7); err == nil {
		t.Fatal("activeness on non-edge accepted")
	}
	if net.Now() != 20 {
		t.Fatalf("Now = %v, want 20", net.Now())
	}
}

func TestLoadEdgeList(t *testing.T) {
	in := "100 200\n200 300\n100 300\n"
	net, ids, err := LoadEdgeList(strings.NewReader(in), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 3 || net.M() != 3 {
		t.Fatalf("n=%d m=%d", net.N(), net.M())
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if _, _, err := LoadEdgeList(strings.NewReader("oops\n"), testConfig()); err == nil {
		t.Fatal("malformed list accepted")
	}
}

func TestViewNavigation(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := net.View()
	if v.Level() != net.SqrtLevel() {
		t.Fatalf("view starts at %d, want %d", v.Level(), net.SqrtLevel())
	}
	for v.ZoomOut() {
	}
	if v.Level() != 1 {
		t.Fatal("zoom-out floor wrong")
	}
	for v.ZoomIn() {
	}
	if v.Level() != net.Levels() {
		t.Fatal("zoom-in ceiling wrong")
	}
	if len(v.Clusters()) == 0 {
		t.Fatal("no clusters at finest level")
	}
	if len(v.ClusterOf(3)) == 0 {
		t.Fatal("empty cluster of node 3")
	}
}

func TestSmallestClusterOf(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := net.SmallestClusterOf(2)
	def := net.ClusterOf(2, net.SqrtLevel())
	if len(small) > len(def) {
		t.Fatalf("smallest cluster (%d) larger than default granularity (%d)", len(small), len(def))
	}
}

func TestMethodsSnapshot(t *testing.T) {
	n, edges := barbell()
	for _, m := range []Method{ANCO, ANCOR, ANCF} {
		cfg := testConfig()
		cfg.Method = m
		net, err := NewNetwork(n, edges, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := 1; i <= 10; i++ {
			if err := net.Activate(4, 5, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		net.Snapshot()
		if cs := net.Clusters(2); len(cs) == 0 {
			t.Fatalf("%v: no clusters", m)
		}
	}
}

func TestLevelClamping(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Clusters(-3)) == 0 || len(net.Clusters(99)) == 0 {
		t.Fatal("clamped levels should still answer")
	}
	if len(net.EvenClusters(99)) == 0 {
		t.Fatal("even clusters at clamped level")
	}
}
