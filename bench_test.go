// Benchmarks regenerating the paper's evaluation. Each table/figure has a
// Benchmark* entry driving internal/bench at a laptop scale; run
//
//	go test -bench=. -benchmem
//
// for the whole suite, or e.g. -bench=BenchmarkExp6UpdateVsReconstruct for
// a single figure. cmd/ancbench runs the same experiments with
// configurable scale and prints the full tables (see EXPERIMENTS.md).
package anc_test

import (
	"io"
	"math/rand"
	"testing"

	"anc/internal/bench"
	"anc/internal/cluster"
	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.TargetN = 300
	cfg.EffTargetN = 2048
	cfg.Steps = 30
	cfg.SampleEvery = 10
	cfg.Quiet = true
	return cfg
}

// BenchmarkTable1Datasets regenerates the Table I dataset inventory.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1Datasets(benchConfig(), io.Discard)
	}
}

// BenchmarkExp1StaticQuality regenerates Table III (static quality).
func BenchmarkExp1StaticQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp1StaticQuality(benchConfig(), io.Discard)
	}
}

// BenchmarkExp2ActivationTime regenerates Table IV (per-activation cost).
func BenchmarkExp2ActivationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp2ActivationTime(benchConfig(), io.Discard)
	}
}

// BenchmarkExp2QualitySeries regenerates Figure 4 (quality over time) on
// the CO counterpart.
func BenchmarkExp2QualitySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp2QualitySeries(benchConfig(), io.Discard, []string{"CO"})
	}
}

// BenchmarkExp3IndexTime regenerates Figure 5 (index construction time).
func BenchmarkExp3IndexTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp3IndexTime(benchConfig(), io.Discard)
	}
}

// BenchmarkExp4IndexMemory regenerates Figure 6 (index memory).
func BenchmarkExp4IndexMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp4IndexMemory(benchConfig(), io.Discard)
	}
}

// BenchmarkExp5QueryTime regenerates Figure 7 (extraction time per level).
func BenchmarkExp5QueryTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp5QueryTime(benchConfig(), io.Discard)
	}
}

// BenchmarkExp6UpdateVsReconstruct regenerates Figure 8.
func BenchmarkExp6UpdateVsReconstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp6UpdateVsReconstruct(benchConfig(), io.Discard, 10)
	}
}

// BenchmarkExp6DiurnalUpdates regenerates Figure 9 (bursty day, 360 of the
// 1440 minutes at bench scale; cmd/ancbench runs the full day).
func BenchmarkExp6DiurnalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp6DiurnalUpdates(benchConfig(), io.Discard, 360)
	}
}

// BenchmarkExp6MixedWorkload regenerates Figure 10.
func BenchmarkExp6MixedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Exp6MixedWorkload(benchConfig(), io.Discard, 2000)
	}
}

// BenchmarkIngest compares per-op, batched and batched+parallel ingest on
// the bursty diurnal workload (the batch-pipeline acceptance benchmark)
// and emits BENCH_ingest.json with the measured rates.
func BenchmarkIngest(b *testing.B) {
	var r bench.IngestResult
	for i := 0; i < b.N; i++ {
		r = bench.IngestThroughput(benchConfig(), io.Discard, 60)
	}
	b.ReportMetric(r.BatchedSpeedup, "batched-x")
	b.ReportMetric(r.ParallelSpeedup, "parallel-x")
	b.ReportMetric(r.PerOpRate, "perop-acts/s")
	b.ReportMetric(r.ParallelRate, "parallel-acts/s")
	if err := bench.WriteIngestJSON("BENCH_ingest.json", r); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServe drives the serving layer end to end: a bursty ingest
// stream over TCP through concurrent client connections into a durable
// network, with query clients measuring latency under write load and a
// replication follower tailing the WAL and serving replica reads. Emits
// BENCH_serve.json with the observed throughput and percentiles.
func BenchmarkServe(b *testing.B) {
	var r bench.ServeResult
	for i := 0; i < b.N; i++ {
		r = bench.ServeLoad(benchConfig(), io.Discard, 8, 4)
	}
	b.ReportMetric(r.IngestRate, "acts/s")
	b.ReportMetric(r.BatchP99ms, "batch-p99-ms")
	b.ReportMetric(r.QueryP50ms, "query-p50-ms")
	b.ReportMetric(r.QueryP99ms, "query-p99-ms")
	b.ReportMetric(r.FollowerQueryP99ms, "follower-query-p99-ms")
	b.ReportMetric(r.FollowerCatchUpSec*1000, "follower-catchup-ms")
	b.ReportMetric(r.CacheHitP50ms, "cache-hit-p50-ms")
	b.ReportMetric(r.CacheRecomputeP50ms, "cache-recompute-p50-ms")
	b.ReportMetric(r.CacheHitSpeedup, "cache-hit-x")
	if err := bench.WriteServeJSON("BENCH_serve.json", r); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAnalytics drives the analytics read path under write load:
// TieRank and cluster-evolution queries over TCP against a durable
// network during concurrent batch ingest, with a replication follower
// serving (and cross-checked against) the same queries. Emits
// BENCH_analytics.json with the observed latency percentiles.
func BenchmarkAnalytics(b *testing.B) {
	var r bench.AnalyticsResult
	for i := 0; i < b.N; i++ {
		r = bench.AnalyticsLoad(benchConfig(), io.Discard, 8, 4)
	}
	b.ReportMetric(r.IngestRate, "acts/s")
	b.ReportMetric(r.GlobalP99ms, "tierank-global-p99-ms")
	b.ReportMetric(r.ClusterP99ms, "tierank-cluster-p99-ms")
	b.ReportMetric(r.EvolutionP99ms, "evolution-p99-ms")
	b.ReportMetric(r.FollowerP99ms, "follower-p99-ms")
	b.ReportMetric(r.RankHitP50ms, "rank-hit-p50-ms")
	b.ReportMetric(r.RankComputeP50ms, "rank-compute-p50-ms")
	b.ReportMetric(r.RankHitSpeedup, "rank-hit-x")
	if err := bench.WriteAnalyticsJSON("BENCH_analytics.json", r); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCaseStudy regenerates the Figure 11 case study.
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.CaseStudy(benchConfig(), io.Discard)
	}
}

// BenchmarkParamSensitivity regenerates the Table II parameter sweeps.
func BenchmarkParamSensitivity(b *testing.B) {
	cfg := benchConfig()
	cfg.TargetN = 200
	for i := 0; i < b.N; i++ {
		bench.ParamSensitivity(cfg, io.Discard)
	}
}

// BenchmarkAblations runs the design-choice ablations of DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablations(benchConfig(), io.Discard)
	}
}

// --- Micro-benchmarks of the core primitives -----------------------------

func benchNetwork(b *testing.B, method core.Method, n int) (*core.Network, *gen.Planted) {
	b.Helper()
	spec, err := dataset.ByName("FB")
	if err != nil {
		b.Fatal(err)
	}
	pl := spec.Generate(float64(n)/float64(spec.N), rand.New(rand.NewSource(7)))
	opts := core.DefaultOptions()
	opts.Method = method
	opts.Similarity = similarity.Config{Epsilon: 0.3, Mu: 3, SMin: 1e-9, SMax: 1e12}
	opts.Seed = 7
	nw, err := core.New(pl.Graph, opts)
	if err != nil {
		b.Fatal(err)
	}
	return nw, pl
}

// BenchmarkActivateANCO measures the per-activation cost of the fully
// online method (the Table IV primitive).
func BenchmarkActivateANCO(b *testing.B) {
	nw, pl := benchNetwork(b, core.ANCO, 2000)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Activate(graph.EdgeID(rng.Intn(pl.Graph.M())), float64(i)*1e-3)
	}
}

// BenchmarkIndexBuild measures pyramids construction (the Figure 5
// primitive).
func BenchmarkIndexBuild(b *testing.B) {
	spec, _ := dataset.ByName("FB")
	pl := spec.Generate(0.5, rand.New(rand.NewSource(3)))
	w := make([]float64, pl.Graph.M())
	for i := range w {
		w[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := pyramid.Build(pl.Graph, func(e graph.EdgeID) float64 { return w[e] },
			pyramid.DefaultConfig(), rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalQuery measures the output-proportional local cluster query
// (the Lemma 9 primitive).
func BenchmarkLocalQuery(b *testing.B) {
	nw, pl := benchNetwork(b, core.ANCO, 2000)
	level := pyramid.SqrtLevel(pl.Graph.N())
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Local(nw.Index(), level, graph.NodeID(rng.Intn(pl.Graph.N())))
	}
}

// BenchmarkPowerClustering measures full cluster extraction (the Figure 7
// primitive).
func BenchmarkPowerClustering(b *testing.B) {
	nw, pl := benchNetwork(b, core.ANCO, 2000)
	level := pyramid.SqrtLevel(pl.Graph.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Power(nw.Index(), level)
	}
}

// BenchmarkUpdateEdge measures one incremental index update over all
// partitions (the Figure 8 UPDATE primitive), isolated from the
// similarity maintenance.
func BenchmarkUpdateEdge(b *testing.B) {
	spec, _ := dataset.ByName("FB")
	pl := spec.Generate(0.5, rand.New(rand.NewSource(3)))
	w := make([]float64, pl.Graph.M())
	for i := range w {
		w[i] = 1
	}
	ix, err := pyramid.Build(pl.Graph, func(e graph.EdgeID) float64 { return w[e] },
		pyramid.DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := graph.EdgeID(rng.Intn(pl.Graph.M()))
		w[e] *= 0.5 + rng.Float64()
		ix.UpdateEdge(e, w[e])
	}
}

// BenchmarkReconstruct measures the RECONSTRUCT baseline for contrast with
// BenchmarkUpdateEdge.
func BenchmarkReconstruct(b *testing.B) {
	spec, _ := dataset.ByName("FB")
	pl := spec.Generate(0.5, rand.New(rand.NewSource(3)))
	w := make([]float64, pl.Graph.M())
	for i := range w {
		w[i] = 1
	}
	ix, err := pyramid.Build(pl.Graph, func(e graph.EdgeID) float64 { return w[e] },
		pyramid.DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Reconstruct()
	}
}
