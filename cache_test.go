package anc

import (
	"math/rand"
	"sync"
	"testing"
)

// seededCacheNetwork builds a deterministic random-graph network (ring
// plus chords, like determinism_test.go) big enough that clusterings are
// non-trivial at several levels.
func seededCacheNetwork(t testing.TB, seed int64, n int) (*Network, [][2]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	seen := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		e := [2]int{i, (i + 1) % n}
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		edges = append(edges, e)
		seen[e] = true
	}
	for len(edges) < 3*n {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	net, err := NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, edges
}

// TestCacheSmoke is the make cache-smoke gate: with the cache on, every
// level's Clusters/EvenClusters must equal the forced recompute, repeat
// queries must be served from the cache, and the counters must account
// for exactly the queries made.
func TestCacheSmoke(t *testing.T) {
	net, edges := seededCacheNetwork(t, 11, 48)
	defer net.Close()
	net.EnableClusterCache()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		e := edges[rng.Intn(len(edges))]
		if err := net.Activate(e[0], e[1], float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	for level := 1; level <= net.Levels(); level++ {
		want := canonClusters(net.ClustersUncached(level))
		if got := canonClusters(net.Clusters(level)); got != want { // miss + store
			t.Fatalf("Clusters(%d) diverges from recompute:\n got %s\nwant %s", level, got, want)
		}
		if got := canonClusters(net.Clusters(level)); got != want { // cache hit
			t.Fatalf("cached Clusters(%d) diverges from recompute", level)
		}
		wantEven := canonClusters(net.EvenClustersUncached(level))
		if got := canonClusters(net.EvenClusters(level)); got != wantEven {
			t.Fatalf("EvenClusters(%d) diverges from recompute:\n got %s\nwant %s", level, got, wantEven)
		}
		if got := canonClusters(net.EvenClusters(level)); got != wantEven {
			t.Fatalf("cached EvenClusters(%d) diverges from recompute", level)
		}
	}

	hits, misses, _ := net.CacheStats()
	wantEach := 2 * uint64(net.Levels()) // power + even, one miss then one hit per level
	if hits != wantEach || misses != wantEach {
		t.Fatalf("CacheStats = (%d hits, %d misses), want (%d, %d): hit rate must be 50%% for a miss-then-hit sweep",
			hits, misses, wantEach, wantEach)
	}
}

// TestCachedClusteringDeterminism interleaves ingest and queries at
// random points and asserts three-way agreement at every query: the
// cached network's Clusters, its forced recompute, and an
// identically-seeded twin with vote tracking off (whose cache was never
// enabled). Any stale cache entry — a missed invalidation — shows up as
// a divergence.
func TestCachedClusteringDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cached, edges := seededCacheNetwork(t, 40+seed, 48)
		plain, _ := seededCacheNetwork(t, 40+seed, 48)
		cached.EnableClusterCache()

		rng := rand.New(rand.NewSource(seed))
		now := 0.0
		queries := 0
		for step := 0; step < 150; step++ {
			for j := 1 + rng.Intn(5); j > 0; j-- {
				e := edges[rng.Intn(len(edges))]
				now += 0.25
				if err := cached.Activate(e[0], e[1], now); err != nil {
					t.Fatal(err)
				}
				if err := plain.Activate(e[0], e[1], now); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(3) != 0 {
				continue
			}
			queries++
			level := 1 + rng.Intn(cached.Levels())
			a, b := canonClusters(cached.Clusters(level)), canonClusters(cached.ClustersUncached(level))
			c := canonClusters(plain.Clusters(level))
			if a != b || a != c {
				t.Fatalf("seed %d step %d: Clusters(%d) diverged\ncached    %s\nrecompute %s\nuntracked %s",
					seed, step, level, a, b, c)
			}
			ea, eb := canonClusters(cached.EvenClusters(level)), canonClusters(cached.EvenClustersUncached(level))
			ec := canonClusters(plain.EvenClusters(level))
			if ea != eb || ea != ec {
				t.Fatalf("seed %d step %d: EvenClusters(%d) diverged\ncached    %s\nrecompute %s\nuntracked %s",
					seed, step, level, ea, eb, ec)
			}
		}
		if queries == 0 {
			t.Fatalf("seed %d: interleaving made no queries", seed)
		}
		hits, misses, inv := cached.CacheStats()
		t.Logf("seed %d: %d query points, cache %d hits / %d misses / %d invalidations",
			seed, queries, hits, misses, inv)
		cached.Close()
		plain.Close()
	}
}

// TestCacheConcurrentSwapStress hammers the lock-free probe path from
// reader goroutines while a writer ingests batches that invalidate and
// repopulate the snapshot — the race -race must prove clean: atomic
// snapshot swaps against concurrent lock-free loads. A final sweep
// asserts the cache settled on the recompute answer.
func TestCacheConcurrentSwapStress(t *testing.T) {
	net, edges := seededCacheNetwork(t, 7, 48)
	c := NewConcurrent(net)
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			levels := c.Levels()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				level := 1 + rng.Intn(levels)
				switch i % 4 {
				case 0:
					c.Clusters(level)
				case 1:
					c.EvenClusters(level)
				case 2:
					c.ClustersUncached(level)
				case 3:
					c.CacheStats()
					c.Stats()
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(7))
	now := 0.0
	for i := 0; i < 60; i++ {
		batch := make([]Activation, 0, 16)
		for j := 0; j < 16; j++ {
			e := edges[rng.Intn(len(edges))]
			now++
			batch = append(batch, Activation{U: e[0], V: e[1], T: now})
		}
		if err := c.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for level := 1; level <= c.Levels(); level++ {
		if got, want := canonClusters(c.Clusters(level)), canonClusters(c.ClustersUncached(level)); got != want {
			t.Fatalf("after stress, Clusters(%d) diverges from recompute:\n got %s\nwant %s", level, got, want)
		}
		if got, want := canonClusters(c.EvenClusters(level)), canonClusters(c.EvenClustersUncached(level)); got != want {
			t.Fatalf("after stress, EvenClusters(%d) diverges from recompute", level)
		}
	}
}
