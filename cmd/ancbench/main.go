// Command ancbench regenerates the paper's tables and figures on the
// synthetic dataset counterparts.
//
// Usage:
//
//	ancbench -exp all                    # everything, default scale
//	ancbench -exp exp1                   # Table III only
//	ancbench -exp exp6batch -effn 16384  # Figure 8 at a larger scale
//
// Experiments: table1, exp1, exp2time, exp2quality, exp3, exp4, exp5,
// exp6batch, exp6day, exp6workload, ingest, serve, analytics,
// casestudy, params, ablation, all.
// See EXPERIMENTS.md for the mapping to the paper's artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"anc/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (comma separated); see doc")
		targetN = flag.Int("n", 400, "target node count for quality experiments")
		effN    = flag.Int("effn", 4096, "largest node count for efficiency experiments")
		steps   = flag.Int("steps", 60, "activation timestamps in exp2")
		sample  = flag.Int("sample", 10, "score every k-th timestamp in exp2quality")
		minutes = flag.Int("minutes", 1440, "minutes in exp6day")
		ops     = flag.Int("ops", 5000, "operations in exp6workload")
		conns   = flag.Int("conns", 4, "ingest connections in the serve experiment")
		seed    = flag.Int64("seed", 1, "random seed")
		quiet   = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	// An interrupted run still closes the serve experiment's WAL cleanly:
	// checkpoint, fsync, then exit with the conventional signal status.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := bench.CloseActive(); err != nil {
			fmt.Fprintf(os.Stderr, "ancbench: interrupted, wal close: %v\n", err)
			os.Exit(1)
		}
		os.Exit(130)
	}()
	cfg := bench.Config{
		TargetN: *targetN, EffTargetN: *effN, Steps: *steps,
		SampleEvery: *sample, Seed: *seed, Quiet: *quiet,
	}
	out := os.Stdout
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false
	run := func(name, title string, f func()) {
		if !all && !want[name] {
			return
		}
		ran = true
		fmt.Fprintf(out, "\n=== %s — %s ===\n", name, title)
		f()
	}

	run("table1", "Table I: dataset counterparts", func() {
		bench.PrintTable1(out, bench.Table1Datasets(cfg, out))
	})
	run("exp1", "Table III: static-network quality", func() {
		bench.PrintExp1(out, bench.Exp1StaticQuality(cfg, out))
	})
	run("exp2time", "Table IV: time per activation / snapshot", func() {
		bench.PrintExp2Time(out, bench.Exp2ActivationTime(cfg, out))
	})
	run("exp2quality", "Figure 4: quality over the activation stream", func() {
		pts := bench.Exp2QualitySeries(cfg, out, nil)
		bench.PrintExp2Quality(out, pts)
		seen := map[string]bool{}
		for _, p := range pts {
			if !seen[p.Dataset] {
				seen[p.Dataset] = true
				bench.ChartExp2Quality(out, pts, p.Dataset)
			}
		}
	})
	run("exp3", "Figure 5: index time vs k", func() {
		rows := bench.Exp3IndexTime(cfg, out)
		bench.PrintExp3(out, rows)
		bench.ChartExp3(out, rows)
	})
	run("exp4", "Figure 6: index memory vs k", func() {
		rows := bench.Exp4IndexMemory(cfg, out)
		bench.PrintExp4(out, rows)
		bench.ChartExp4(out, rows)
	})
	run("exp5", "Figure 7: cluster extraction time per level", func() {
		bench.PrintExp5(out, bench.Exp5QueryTime(cfg, out))
	})
	run("exp6batch", "Figure 8: UPDATE vs RECONSTRUCT", func() {
		rows := bench.Exp6UpdateVsReconstruct(cfg, out, 10)
		bench.PrintExp6Batch(out, rows)
		bench.ChartExp6Batch(out, rows)
	})
	run("exp6day", "Figure 9: bursty day of per-minute batches", func() {
		stats := bench.Exp6DiurnalUpdates(cfg, out, *minutes)
		bench.PrintExp6Day(out, stats)
		bench.ChartExp6Day(out, stats)
	})
	run("exp6workload", "Figure 10: mixed update/query workload", func() {
		rows := bench.Exp6MixedWorkload(cfg, out, *ops)
		bench.PrintExp6Workload(out, rows)
		bench.ChartExp6Workload(out, rows)
	})
	run("ingest", "batch-pipeline throughput: per-op vs batched vs parallel", func() {
		bench.PrintIngest(out, bench.IngestThroughput(cfg, out, *minutes/24))
	})
	run("serve", "serving layer: concurrent TCP ingest + queries over a durable network", func() {
		bench.PrintServe(out, bench.ServeLoad(cfg, out, *minutes/24, *conns))
	})
	run("analytics", "analytics layer: TieRank + evolution queries under concurrent ingest", func() {
		bench.PrintAnalytics(out, bench.AnalyticsLoad(cfg, out, *minutes/24, *conns))
	})
	run("casestudy", "Figure 11: 30-year collaboration case study", func() {
		bench.PrintCaseStudy(out, bench.CaseStudy(cfg, out))
	})
	run("params", "Table II: parameter sensitivity", func() {
		bench.PrintParams(out, bench.ParamSensitivity(cfg, out))
	})
	run("ablation", "Design ablations (DESIGN.md)", func() {
		bench.PrintAblations(out, bench.Ablations(cfg, out))
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "ancbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
