// Command anccli builds an activation-network index over an edge-list file
// and answers clustering queries, optionally after replaying an activation
// stream.
//
// The graph file is a whitespace-separated edge list ("u v" per line, #
// comments). The stream file has one "u v t" triple per line, timestamps
// non-decreasing.
//
// Usage:
//
//	anccli -graph g.txt -cmd stats
//	anccli -graph g.txt -cmd clusters -level 3
//	anccli -graph g.txt -stream s.txt -cmd local -node 42
//	anccli -graph g.txt -cmd zoom -node 42
//
// With -wal-dir the replayed stream is made durable: activations are
// write-ahead logged and checkpointed in the directory, and a later run
// with the same -wal-dir recovers the network (checkpoint + WAL tail)
// instead of rebuilding it, so a crash between runs loses nothing:
//
//	anccli -graph g.txt -stream s1.txt -wal-dir state/ -checkpoint-every 10000 -cmd clusters
//	anccli -graph g.txt -stream s2.txt -wal-dir state/ -cmd clusters   # resumes from state/
//
// With -server the command runs against a live ancserve instead of
// building locally; stats then includes replication health (role, applied
// frames, lag, last reconnect cause), and -cmd promote turns a follower
// into a primary during failover:
//
//	anccli -server 127.0.0.1:7465 -cmd stats
//	anccli -server follower:7466 -cmd promote
//
// The analytics commands work both locally and against a server (followers
// serve them too): tierank prints eigenvector-centrality top-k listings,
// evolution the typed cluster-evolution event stream:
//
//	anccli -graph g.txt -stream s.txt -cmd tierank -topk 10
//	anccli -server 127.0.0.1:7465 -cmd tierank -topk 10 -level -1
//	anccli -server 127.0.0.1:7465 -cmd evolution -since 0
//
// The trace command reads the server's flight recorder over the wire:
// without -trace-id it lists the retained traces (slow, errored, and
// sampled requests), with one it prints that trace's span tree:
//
//	anccli -server 127.0.0.1:7465 -cmd trace
//	anccli -server 127.0.0.1:7465 -cmd trace -trace-id 4ccca047d4b92e5b -json
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"anc"
	"anc/internal/graph"
	"anc/internal/obs"
	"anc/internal/serve"
	"anc/internal/serve/client"
)

func main() {
	var (
		server     = flag.String("server", "", "query a running ancserve at this address instead of building locally")
		graphPath  = flag.String("graph", "", "edge-list file (required unless -server is set)")
		streamPath = flag.String("stream", "", "activation stream file (u v t per line)")
		cmd        = flag.String("cmd", "stats", "stats | clusters | local | zoom | distance | tierank | evolution | trace")
		level      = flag.Int("level", 0, "granularity level (0 = Θ(√n) default; -1 for tierank = global only)")
		node       = flag.Int("node", 0, "query node (original ID) for local/zoom/distance")
		node2      = flag.Int("node2", 0, "second node for distance")
		topk       = flag.Int("topk", 10, "listing size for tierank")
		since      = flag.Uint64("since", 0, "evolution cursor: report events with sequence numbers after this")
		traceID    = flag.String("trace-id", "", "trace: 16-hex-digit trace ID to fetch (empty = flight-recorder index)")
		jsonOut    = flag.Bool("json", false, "trace: emit JSON instead of the text rendering")
		method     = flag.String("method", "anco", "anco | ancor | ancf")
		lambda     = flag.Float64("lambda", 0.1, "decay factor λ")
		rep        = flag.Int("rep", 7, "initialization reinforcement rounds")
		epsilon    = flag.Float64("epsilon", 0.4, "active-similarity threshold ε")
		mu         = flag.Int("mu", 4, "core threshold μ")
		k          = flag.Int("k", 4, "number of pyramids")

		walDir          = flag.String("wal-dir", "", "durability directory (WAL + checkpoints); recovered if it already holds state")
		checkpointEvery = flag.Int("checkpoint-every", 0, "activations between automatic checkpoints (0 = checkpoint only on exit)")
	)
	flag.Parse()
	if *server != "" {
		remote(*server, *cmd, *level, *node, *node2, *topk, *since, *traceID, *jsonOut)
		return
	}
	if *cmd == "trace" {
		fatalf("trace is a remote command: point it at a running ancserve with -server")
	}
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "anccli: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := anc.DefaultConfig()
	cfg.Lambda = *lambda
	cfg.Rep = *rep
	cfg.Epsilon = *epsilon
	cfg.Mu = *mu
	cfg.K = *k
	switch strings.ToLower(*method) {
	case "anco":
		cfg.Method = anc.ANCO
	case "ancor":
		cfg.Method = anc.ANCOR
	case "ancf":
		cfg.Method = anc.ANCF
	default:
		fatalf("unknown method %q", *method)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatalf("%v", err)
	}
	net, ids, err := anc.LoadEdgeList(f, cfg)
	f.Close() //anclint:ignore droppederr read-only graph file; a close error cannot lose data
	if err != nil {
		fatalf("%v", err)
	}
	rev := make(map[int32]int64, len(ids))
	for orig, dense := range ids {
		rev[dense] = orig
	}

	if *cmd == "tierank" || *cmd == "evolution" {
		// Enable before any replay so evolution events accumulate from the
		// start of the stream (the durable paths enable it themselves).
		net.EnableAnalytics()
	}

	// A one-shot process can afford always-on instrumentation: the stats
	// command prints the full snapshot, so a replay's cost profile (WAL
	// fsyncs, pyramid repairs, rescales) is visible without a server.
	reg := obs.NewRegistry()

	activate := net.Activate
	if *walDir != "" {
		dcfg := anc.DurableConfig{CheckpointEvery: *checkpointEvery, Obs: reg}
		d, err := anc.Recover(*walDir, dcfg)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "anccli: recovered from %s: t=%v, %d log frames, %d activations replayed past the checkpoint\n",
				*walDir, d.Now(), d.LoggedActivations(), d.Stats().Activations)
			net = d.Unwrap() // single-threaded queries below
		case errors.Is(err, anc.ErrNoDurableState):
			if d, err = anc.NewDurable(net, *walDir, dcfg); err != nil {
				fatalf("wal-dir: %v", err)
			}
		default:
			fatalf("wal-dir: %v", err)
		}
		activate = d.Activate
		// One shutdown path shared by the normal exit and the signal
		// handler: checkpoint, then close (idempotent, so whichever runs
		// second is a no-op).
		var once sync.Once
		shutdown := func() {
			once.Do(func() {
				if err := d.Checkpoint(); err != nil {
					fatalf("checkpoint: %v", err)
				}
				if err := d.Close(); err != nil {
					fatalf("wal close: %v", err)
				}
			})
		}
		defer shutdown()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			shutdown()
			os.Exit(130)
		}()
	} else {
		// The durable paths instrument inside NewDurable/Recover; the plain
		// path attaches here.
		net.Instrument(reg)
	}

	if *streamPath != "" {
		if err := replay(activate, ids, *streamPath); err != nil {
			fatalf("stream: %v", err)
		}
		if err := net.Snapshot(); err != nil {
			fatalf("snapshot: %v", err)
		}
	}

	lvl := *level
	if lvl == 0 {
		lvl = net.SqrtLevel()
	}
	switch *cmd {
	case "stats":
		fmt.Printf("nodes: %d\nedges: %d\nlevels: %d\nsqrt-level: %d\ntime: %v\n",
			net.N(), net.M(), net.Levels(), net.SqrtLevel(), net.Now())
		f2, err := os.Open(*graphPath)
		if err == nil {
			if g, _, err := graph.ReadEdgeList(f2); err == nil {
				s := graph.Summarize(g)
				fmt.Printf("components: %d (largest %d)\ndegree: min %d / median %d / avg %.2f / max %d\n"+
					"triangles: %d\nclustering coefficient: %.4f\n",
					s.Components, s.LargestComp, s.MinDeg, s.MedianDeg, s.AvgDeg, s.MaxDeg,
					s.Triangles, s.GlobalClustCoef)
			}
			f2.Close() //anclint:ignore droppederr read-only graph file; a close error cannot lose data
		}
		snap := reg.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("metrics:")
		for _, k := range keys {
			fmt.Printf("  %s %g\n", k, snap[k])
		}
	case "clusters":
		cs := net.Clusters(lvl)
		fmt.Printf("level %d: %d clusters\n", lvl, len(cs))
		for i, c := range cs {
			if len(c) < 3 {
				continue // noise per the paper's convention
			}
			fmt.Printf("cluster %d (%d nodes):", i, len(c))
			printMembers(c, rev, 20)
		}
	case "local":
		dense, ok := ids[int64(*node)]
		if !ok {
			fatalf("node %d not in graph", *node)
		}
		members := net.ClusterOf(int(dense), lvl)
		fmt.Printf("cluster of %d at level %d (%d nodes):", *node, lvl, len(members))
		printMembers(members, rev, 50)
	case "zoom":
		dense, ok := ids[int64(*node)]
		if !ok {
			fatalf("node %d not in graph", *node)
		}
		v := net.View()
		for {
			members := v.ClusterOf(int(dense))
			fmt.Printf("level %d: cluster size %d\n", v.Level(), len(members))
			if !v.ZoomIn() {
				break
			}
		}
	case "distance":
		du, ok := ids[int64(*node)]
		if !ok {
			fatalf("node %d not in graph", *node)
		}
		dv, ok := ids[int64(*node2)]
		if !ok {
			fatalf("node %d not in graph", *node2)
		}
		d := net.EstimateDistance(int(du), int(dv))
		fmt.Printf("estimated distance(%d, %d) = %g\n", *node, *node2, d)
		fmt.Printf("estimated attraction = %g\n", net.EstimateAttraction(int(du), int(dv)))
	case "tierank":
		tl := lvl
		if *level < 0 {
			tl = -1
		}
		r := net.TieRank(tl, *topk)
		printTieRank(r, func(v int) int64 { return rev[int32(v)] })
	case "evolution":
		evs, seq, dropped := net.Evolution(*since)
		printEvolution(evs, seq, dropped, func(v int) int64 { return rev[int32(v)] })
	default:
		fatalf("unknown command %q", *cmd)
	}
}

// printTieRank renders a TieRank answer; orig maps dense node IDs back to
// the graph file's original IDs (identity for remote results — the server
// translates at its boundary).
func printTieRank(r anc.TieRankResult, orig func(int) int64) {
	fmt.Printf("tierank: %d iters, converged %v, t=%v\n", r.Iters, r.Converged, r.Now)
	fmt.Printf("top %d global:\n", len(r.Global))
	for i, e := range r.Global {
		fmt.Printf("  %2d. node %d  %.6g\n", i+1, orig(e.Node), e.Score)
	}
	if r.Level < 0 {
		return
	}
	fmt.Printf("per-cluster top at level %d (%d clusters):\n", r.Level, len(r.Clusters))
	for ci, g := range r.Clusters {
		if len(g) < 3 {
			continue // noise per the paper's convention
		}
		fmt.Printf("  cluster %d:", ci)
		for _, e := range g {
			fmt.Printf(" %d(%.4g)", orig(e.Node), e.Score)
		}
		fmt.Println()
	}
}

// printEvolution renders an evolution event listing.
func printEvolution(evs []anc.EvolutionEvent, seq, dropped uint64, orig func(int) int64) {
	fmt.Printf("evolution: %d events, newest seq %d, dropped %d\n", len(evs), seq, dropped)
	for _, e := range evs {
		fmt.Printf("  #%d t=%v level %d %s cluster@%d size %d prev %d\n",
			e.Seq, e.Time, e.Level, e.Type, orig(e.Node), e.Size, e.PrevSize)
	}
}

// remote serves the -server mode: the command runs against a live
// ancserve over the wire protocol instead of a locally built index.
// Queries use retries (idempotent); promote does not.
func remote(addr, cmd string, level, node, node2, topk int, since uint64, traceID string, jsonOut bool) {
	c, err := client.Dial(addr, client.WithRetry(4, 50*time.Millisecond, time.Second))
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close() //anclint:ignore droppederr read-only CLI connection; every command already checked its reply
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch cmd {
	case "stats":
		stats, err := c.Stats(ctx)
		if err != nil {
			fatalf("stats: %v", err)
		}
		fmt.Printf("nodes: %d\nedges: %d\nlevels: %d\nsqrt-level: %d\n"+
			"activations: %d\ntime: %v\ninflight: %d\nqueued: %d\ndraining: %v\n",
			stats.Nodes, stats.Edges, stats.Levels, stats.SqrtLevel,
			stats.Activations, stats.Now, stats.Inflight, stats.Queued, stats.Draining)
		if stats.Role == serve.RoleNone {
			fmt.Println("replication: off")
			return
		}
		rs, err := c.ReplStatus(ctx)
		if err != nil {
			fatalf("repl status: %v", err)
		}
		fmt.Printf("replication:\n  role: %s\n  applied frames: %d\n  lag: %d frames, %.3fs since last message\n",
			serve.RoleName(rs.Role), rs.Next, rs.LagFrames(), rs.LagSeconds)
		fmt.Printf("  reconnects: %d", rs.Reconnects)
		if rs.LastReconnect != "" {
			fmt.Printf(" (last cause: %s)", rs.LastReconnect)
		}
		fmt.Println()
	case "promote":
		if err := c.Promote(ctx); err != nil {
			fatalf("promote: %v", err)
		}
		rs, err := c.ReplStatus(ctx)
		if err != nil {
			fatalf("repl status after promote: %v", err)
		}
		fmt.Printf("promoted: role now %s at frame %d\n", serve.RoleName(rs.Role), rs.Next)
	case "clusters":
		if level == 0 {
			stats, err := c.Stats(ctx)
			if err != nil {
				fatalf("stats: %v", err)
			}
			level = int(stats.SqrtLevel)
		}
		cs, err := c.Clusters(ctx, level)
		if err != nil {
			fatalf("clusters: %v", err)
		}
		fmt.Printf("level %d: %d clusters\n", level, len(cs))
		for i, members := range cs {
			if len(members) < 3 {
				continue // noise per the paper's convention
			}
			fmt.Printf("cluster %d (%d nodes): %v\n", i, len(members), members)
		}
	case "local":
		if level == 0 {
			stats, err := c.Stats(ctx)
			if err != nil {
				fatalf("stats: %v", err)
			}
			level = int(stats.SqrtLevel)
		}
		members, err := c.ClusterOf(ctx, node, level)
		if err != nil {
			fatalf("local: %v", err)
		}
		fmt.Printf("cluster of %d at level %d (%d nodes): %v\n", node, level, len(members), members)
	case "distance":
		d, err := c.EstimateDistance(ctx, node, node2)
		if err != nil {
			fatalf("distance: %v", err)
		}
		a, err := c.EstimateAttraction(ctx, node, node2)
		if err != nil {
			fatalf("attraction: %v", err)
		}
		fmt.Printf("estimated distance(%d, %d) = %g\nestimated attraction = %g\n", node, node2, d, a)
	case "tierank":
		if level == 0 {
			stats, err := c.Stats(ctx)
			if err != nil {
				fatalf("stats: %v", err)
			}
			level = int(stats.SqrtLevel)
		}
		if level < 0 {
			level = -1
		}
		r, err := c.TieRank(ctx, level, topk)
		if err != nil {
			fatalf("tierank: %v", err)
		}
		printTieRank(r, func(v int) int64 { return int64(v) })
	case "evolution":
		evs, seq, dropped, err := c.Evolution(ctx, since)
		if err != nil {
			fatalf("evolution: %v", err)
		}
		printEvolution(evs, seq, dropped, func(v int) int64 { return int64(v) })
	case "trace":
		// -trace-id "" lists the flight recorder's index; a 16-hex-digit ID
		// (as printed in the index, the slow-query log, or a client span)
		// fetches that one trace.
		var id uint64
		if traceID != "" {
			var err error
			if id, err = strconv.ParseUint(traceID, 16, 64); err != nil {
				fatalf("trace: -trace-id %q is not a hex trace ID: %v", traceID, err)
			}
		}
		out, err := c.Traces(ctx, id, jsonOut)
		if err != nil {
			fatalf("trace: %v", err)
		}
		os.Stdout.Write(out) //anclint:ignore droppederr CLI stdout; nothing to recover if the pipe broke
		if len(out) > 0 && out[len(out)-1] != '\n' {
			fmt.Println()
		}
	default:
		fatalf("unknown or unsupported remote command %q (stats | clusters | local | distance | tierank | evolution | trace | promote)", cmd)
	}
}

func printMembers(members []int, rev map[int32]int64, max int) {
	for i, m := range members {
		if i == max {
			fmt.Printf(" …(%d more)", len(members)-max)
			break
		}
		fmt.Printf(" %d", rev[int32(m)])
	}
	fmt.Println()
}

// replay feeds "u v t" lines into the network through activate (the plain
// or the durable, logging ingest path).
func replay(activate func(u, v int, t float64) error, ids map[int64]int32, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 3 {
			return fmt.Errorf("line %d: need 'u v t'", line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 64)
		v, err2 := strconv.ParseInt(fields[1], 10, 64)
		t, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("line %d: parse error", line)
		}
		du, ok1 := ids[u]
		dv, ok2 := ids[v]
		if !ok1 || !ok2 {
			return fmt.Errorf("line %d: unknown node", line)
		}
		if err := activate(int(du), int(dv), t); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
	}
	return sc.Err()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "anccli: "+format+"\n", args...)
	os.Exit(1)
}
