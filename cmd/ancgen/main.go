// Command ancgen emits synthetic datasets and activation streams: either a
// named Table I counterpart (-dataset) or a generic community graph
// (-n/-m/-k). The graph goes to <out>.graph as an edge list, the planted
// ground truth to <out>.truth ("node community" per line), and, when
// -steps > 0, a uniform activation stream to <out>.stream ("u v t").
//
// Usage:
//
//	ancgen -dataset LA -scale 0.1 -out la
//	ancgen -n 5000 -m 40000 -k 100 -steps 50 -out synth
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/graph"
)

func main() {
	var (
		ds    = flag.String("dataset", "", "Table I dataset code (CO, FB, …)")
		scale = flag.Float64("scale", 0.1, "downscale factor for -dataset")
		n     = flag.Int("n", 1000, "nodes for the generic generator")
		m     = flag.Int("m", 8000, "edges for the generic generator")
		k     = flag.Int("k", 0, "communities (0 = 2√n)")
		mix   = flag.Float64("mix", 0.2, "inter-community mixing fraction")
		steps = flag.Int("steps", 0, "activation timestamps (0 = no stream)")
		frac  = flag.Float64("frac", 0.05, "fraction of edges activated per timestamp")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "anc-data", "output file prefix")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var pl *gen.Planted
	if *ds != "" {
		spec, err := dataset.ByName(*ds)
		if err != nil {
			fatalf("%v", err)
		}
		pl = spec.Generate(*scale, rng)
	} else {
		kk := *k
		if kk == 0 {
			kk = int(2 * math.Sqrt(float64(*n)))
		}
		pl = gen.Community(*n, *m, kk, *mix, rng)
	}
	fmt.Printf("generated graph: n=%d m=%d\n", pl.Graph.N(), pl.Graph.M())

	if err := writeFile(*out+".graph", func(w *bufio.Writer) error {
		return graph.WriteEdgeList(w, pl.Graph)
	}); err != nil {
		fatalf("%v", err)
	}
	if err := writeFile(*out+".truth", func(w *bufio.Writer) error {
		for v, c := range pl.Truth {
			if _, err := fmt.Fprintf(w, "%d %d\n", v, c); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fatalf("%v", err)
	}
	if *steps > 0 {
		stream := gen.UniformStream(pl.Graph, *steps, *frac, rng)
		if err := writeFile(*out+".stream", func(w *bufio.Writer) error {
			for _, a := range stream {
				u, v := pl.Graph.Endpoints(a.Edge)
				if _, err := fmt.Fprintf(w, "%d %d %g\n", u, v, a.T); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("stream: %d activations over %d timestamps\n", len(stream), *steps)
	}
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ancgen: "+format+"\n", args...)
	os.Exit(1)
}
