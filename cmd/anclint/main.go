// Command anclint runs the ANC invariant analyzer suite (see
// internal/lint and DESIGN.md §9, §14) over the given package patterns,
// defaulting to ./... from the module root. It prints one finding per
// line in file:line:col format and exits 1 when any finding survives
// the //anclint:ignore filters, so `make lint` can gate CI on it.
//
// Usage:
//
//	anclint [-json] [-unused-ignores] [packages]
//
// Package patterns accept module-relative directories ("./internal/wal"),
// import paths ("anc/internal/core"), and "..." subtrees ("./...").
//
// -unused-ignores additionally fails on //anclint:ignore directives that
// suppressed nothing (dead suppressions lie to the reader); `make lint`
// passes it. -json switches stdout to one machine-readable object —
// {"findings": [...], "packages": [...]} with module-relative paths —
// for the CI annotation step; the exit status is unchanged.
package main

import (
	"flag"
	"fmt"
	"os"

	"anc/internal/lint"
	"anc/internal/lint/runner"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and analyzed packages as JSON on stdout")
	unusedIgnores := flag.Bool("unused-ignores", false, "also fail on //anclint:ignore directives that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anclint [-json] [-unused-ignores] [packages]\n\nRuns the ANC analyzer suite; see DESIGN.md §9 and §14.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anclint:", err)
		os.Exit(2)
	}
	res, err := runner.RunWithOptions(dir, patterns, lint.Suite(),
		runner.Options{UnusedIgnores: *unusedIgnores})
	if err != nil {
		fmt.Fprintln(os.Stderr, "anclint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := runner.PrintJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "anclint:", err)
			os.Exit(2)
		}
	} else if len(res.Findings) > 0 {
		runner.Print(os.Stdout, res.Findings)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "anclint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}
