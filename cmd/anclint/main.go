// Command anclint runs the ANC invariant analyzer suite (see
// internal/lint and DESIGN.md §9) over the given package patterns,
// defaulting to ./... from the module root. It prints one finding per
// line in file:line:col format and exits 1 when any finding survives
// the //anclint:ignore filters, so `make lint` can gate CI on it.
//
// Usage:
//
//	anclint [packages]
//
// Package patterns accept module-relative directories ("./internal/wal"),
// import paths ("anc/internal/core"), and "..." subtrees ("./...").
package main

import (
	"flag"
	"fmt"
	"os"

	"anc/internal/lint"
	"anc/internal/lint/runner"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: anclint [packages]\n\nRuns the ANC analyzer suite; see DESIGN.md §9.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anclint:", err)
		os.Exit(2)
	}
	findings, err := runner.Run(dir, patterns, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "anclint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		runner.Print(os.Stdout, findings)
		fmt.Fprintf(os.Stderr, "anclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
