// Wire-ID translation. LoadEdgeList densifies the graph file's node IDs
// to 0..n-1 in order of first appearance, but a TCP client only knows the
// file's original IDs — it has no way to learn the dense mapping. The
// served backend therefore translates at the boundary: requests map
// original → dense, results (cluster members, change events) map back.
// When the file's IDs are already exactly 0..n-1 the wrapper is skipped.
package main

import (
	"fmt"
	"math"

	"anc"
	"anc/internal/obs/trace"
	"anc/internal/serve"
)

// translated wraps backend so the wire speaks the graph file's original
// node IDs. ids is LoadEdgeList's original → dense mapping. Original IDs
// must fit in uint32 (the wire's node width).
func translated(backend serve.Backend, ids map[int64]int32) (serve.Backend, error) {
	identity := true
	rev := make([]int64, len(ids))
	for orig, dense := range ids {
		if orig < 0 || orig > math.MaxUint32 {
			return nil, fmt.Errorf("node ID %d does not fit the wire protocol's uint32 node width", orig)
		}
		rev[dense] = orig
		if int64(dense) != orig {
			identity = false
		}
	}
	if identity {
		return backend, nil
	}
	tb := &translatingBackend{inner: backend, ids: ids, rev: rev}
	if d, ok := backend.(interface {
		Checkpoint() error
		Close() error
	}); ok {
		// Keep the durability surface visible to serve.Shutdown/Kill.
		return &durableTranslatingBackend{translatingBackend: tb, d: d}, nil
	}
	return tb, nil
}

type translatingBackend struct {
	inner serve.Backend
	ids   map[int64]int32 // original → dense
	rev   []int64         // dense → original
}

// toDense maps an original wire ID to the dense one, or -1 when unknown
// (the facade's bounds checks turn -1 into the usual empty/⊥ answers).
func (b *translatingBackend) toDense(v int) int {
	if dense, ok := b.ids[int64(v)]; ok {
		return int(dense)
	}
	return -1
}

func (b *translatingBackend) toOrig(members []int) []int {
	for i, m := range members {
		if m >= 0 && m < len(b.rev) {
			members[i] = int(b.rev[m])
		}
	}
	return members
}

func (b *translatingBackend) ActivateBatch(batch []anc.Activation) error {
	return b.ActivateBatchTraced(batch, trace.SpanHandle{})
}

// ActivateBatchTraced keeps the translation boundary transparent to
// tracing: the span rides through to the wrapped backend's traced path
// when it has one, so the WAL/repair children still attach.
func (b *translatingBackend) ActivateBatchTraced(batch []anc.Activation, sp trace.SpanHandle) error {
	dense := make([]anc.Activation, len(batch))
	for i, a := range batch {
		du, ok1 := b.ids[int64(a.U)]
		dv, ok2 := b.ids[int64(a.V)]
		if !ok1 || !ok2 {
			return fmt.Errorf("batch[%d]: no node (%d, %d) in graph", i, a.U, a.V)
		}
		dense[i] = anc.Activation{U: int(du), V: int(dv), T: a.T}
	}
	if tb, ok := b.inner.(serve.TracedBackend); ok && sp.Active() {
		return tb.ActivateBatchTraced(dense, sp)
	}
	return b.inner.ActivateBatch(dense)
}

func (b *translatingBackend) Clusters(level int) [][]int {
	cs := b.inner.Clusters(level)
	for _, c := range cs {
		b.toOrig(c)
	}
	return cs
}

func (b *translatingBackend) EvenClusters(level int) [][]int {
	cs := b.inner.EvenClusters(level)
	for _, c := range cs {
		b.toOrig(c)
	}
	return cs
}

func (b *translatingBackend) ClusterOf(v, level int) []int {
	return b.toOrig(b.inner.ClusterOf(b.toDense(v), level))
}

func (b *translatingBackend) SmallestClusterOf(v int) []int {
	return b.toOrig(b.inner.SmallestClusterOf(b.toDense(v)))
}

func (b *translatingBackend) EstimateDistance(u, v int) float64 {
	return b.inner.EstimateDistance(b.toDense(u), b.toDense(v))
}

func (b *translatingBackend) EstimateAttraction(u, v int) float64 {
	return b.inner.EstimateAttraction(b.toDense(u), b.toDense(v))
}

func (b *translatingBackend) Watch(v int)   { b.inner.Watch(b.toDense(v)) }
func (b *translatingBackend) Unwatch(v int) { b.inner.Unwatch(b.toDense(v)) }

func (b *translatingBackend) DrainEvents() ([]anc.ClusterEvent, uint64) {
	events, dropped := b.inner.DrainEvents()
	for i := range events {
		if n := events[i].Node; n >= 0 && n < len(b.rev) {
			events[i].Node = int(b.rev[n])
		}
		if o := events[i].Other; o >= 0 && o < len(b.rev) {
			events[i].Other = int(b.rev[o])
		}
	}
	return events, dropped
}

func (b *translatingBackend) TieRank(level, k int) anc.TieRankResult {
	r := b.inner.TieRank(level, k)
	translate := func(entries []anc.RankEntry) {
		for i := range entries {
			if n := entries[i].Node; n >= 0 && n < len(b.rev) {
				entries[i].Node = int(b.rev[n])
			}
		}
	}
	translate(r.Global)
	for _, g := range r.Clusters {
		translate(g)
	}
	return r
}

func (b *translatingBackend) Evolution(since uint64) ([]anc.EvolutionEvent, uint64, uint64) {
	events, seq, dropped := b.inner.Evolution(since)
	for i := range events {
		if n := events[i].Node; n >= 0 && n < len(b.rev) {
			events[i].Node = int(b.rev[n])
		}
	}
	return events, seq, dropped
}

func (b *translatingBackend) Stats() anc.Stats { return b.inner.Stats() }

// durableTranslatingBackend forwards the durability surface so the
// server's graceful Shutdown still checkpoints and closes the WAL.
type durableTranslatingBackend struct {
	*translatingBackend
	d interface {
		Checkpoint() error
		Close() error
	}
}

func (b *durableTranslatingBackend) Checkpoint() error { return b.d.Checkpoint() }
func (b *durableTranslatingBackend) Close() error      { return b.d.Close() }
