// Command ancserve serves an activation-network index over TCP: clients
// stream activations in and ask clustering queries through the versioned
// binary protocol of internal/serve (see internal/serve/client for the Go
// client).
//
// The graph file is a whitespace-separated edge list ("u v" per line, #
// comments); an optional -stream file ("u v t" per line) is replayed into
// the index before serving starts. Node IDs on the wire are the graph
// file's original IDs (translated at the server boundary to the dense
// internal ones); they must fit in uint32.
//
// Usage:
//
//	ancserve -graph g.txt -addr :7465
//	ancserve -graph g.txt -wal-dir state/ -checkpoint-every 100000
//	ancserve -graph g.txt -metrics-addr 127.0.0.1:9100 -slow-query 100ms
//	ancserve -graph g.txt -wal-dir f1/ -follow primary:7465 -promote-on-loss 10s
//
// A durable server (-wal-dir) is automatically a replication primary:
// followers subscribe over the same port and tail its WAL. With -follow
// the server runs as a read-only follower instead — it replicates the
// named primary's frames into its own WAL, serves queries locally, and
// refuses ingest until promoted (via the promote op in anccli, or
// automatically after -promote-on-loss without an upstream).
//
// With -metrics-addr an HTTP listener exposes Prometheus metrics on
// /metrics, a JSON health summary on /healthz and net/http/pprof under
// /debug/pprof/ (see the README's Monitoring section and DESIGN.md §12).
//
// With -wal-dir every served batch is write-ahead logged before it is
// applied and acknowledged; a restart with the same -wal-dir recovers the
// network (checkpoint + WAL tail) instead of rebuilding it. SIGINT or
// SIGTERM triggers a graceful drain: the listener closes, queued batches
// are committed, the network is checkpointed, and only then does the
// process exit.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anc"
	"anc/internal/obs"
	"anc/internal/obs/trace"
	"anc/internal/serve"
	"anc/internal/serve/repl"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7465", "listen address")
		graphPath  = flag.String("graph", "", "edge-list file (required)")
		streamPath = flag.String("stream", "", "activation stream to replay before serving (u v t per line)")
		method     = flag.String("method", "anco", "anco | ancor | ancf")
		lambda     = flag.Float64("lambda", 0.1, "decay factor λ")
		rep        = flag.Int("rep", 7, "initialization reinforcement rounds")
		epsilon    = flag.Float64("epsilon", 0.4, "active-similarity threshold ε")
		mu         = flag.Int("mu", 4, "core threshold μ")
		k          = flag.Int("k", 4, "number of pyramids")
		parallel   = flag.Bool("parallel", false, "update index partitions concurrently")

		walDir          = flag.String("wal-dir", "", "durability directory (WAL + checkpoints); recovered if it already holds state")
		checkpointEvery = flag.Int("checkpoint-every", 0, "activations between automatic checkpoints (0 = checkpoint only on shutdown)")

		follow        = flag.String("follow", "", "run as a read-only follower replicating from this primary address (requires -wal-dir)")
		promoteOnLoss = flag.Duration("promote-on-loss", 0, "self-promote a follower whose upstream stays unreachable this long (0 = never)")

		maxInflight    = flag.Int("max-inflight", 64, "admission gate: concurrent requests across all connections")
		ingestQueue    = flag.Int("ingest-queue", 64, "bounded ingest queue feeding the single writer (batches)")
		requestTimeout = flag.Duration("request-timeout", 5*time.Second, "per-request deadline")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		metricsAddr = flag.String("metrics-addr", "", "HTTP listener serving /metrics, /healthz, /debug/traces and /debug/pprof/ (empty = observability off)")
		slowQuery   = flag.Duration("slow-query", 0, "count and log requests slower than this (0 = disabled)")

		traceSample   = flag.Int("trace-sample", 16, "record every Nth request as a trace; 0 disables tracing (client-propagated traces are always honored while enabled)")
		traceCapacity = flag.Int("trace-capacity", 256, "completed traces retained in the flight recorder ring")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "ancserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "ancserve: ", log.LstdFlags)

	cfg := anc.DefaultConfig()
	cfg.Lambda = *lambda
	cfg.Rep = *rep
	cfg.Epsilon = *epsilon
	cfg.Mu = *mu
	cfg.K = *k
	cfg.Parallel = *parallel
	switch strings.ToLower(*method) {
	case "anco":
		cfg.Method = anc.ANCO
	case "ancor":
		cfg.Method = anc.ANCOR
	case "ancf":
		cfg.Method = anc.ANCF
	default:
		logger.Fatalf("unknown method %q", *method)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		logger.Fatal(err)
	}
	net, ids, err := anc.LoadEdgeList(f, cfg)
	f.Close()
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("loaded %s: %d nodes, %d edges, %d levels", *graphPath, net.N(), net.M(), net.Levels())

	// One registry spans every layer — WAL, core, pyramid and the server
	// itself — so a single /metrics scrape tells the whole story. Nil when
	// -metrics-addr is unset: every instrumented path then no-ops.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeGauges(reg)
	}

	// The flight recorder: head-sampled spans plus every slow or errored
	// trace, served on /debug/traces and over the wire (anccli trace). Nil
	// when -trace-sample is 0 — every span call then degrades to a no-op.
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			Capacity:    *traceCapacity,
			SampleEvery: *traceSample,
			Slow:        *slowQuery,
		})
	}

	if *follow != "" && *walDir == "" {
		logger.Fatal("-follow requires -wal-dir: replicated frames live in the WAL")
	}

	// Build the served backend: durable when -wal-dir is set, otherwise
	// the in-memory concurrency facade.
	var backend serve.Backend
	var replNode *repl.Node
	if *walDir != "" {
		dcfg := anc.DurableConfig{CheckpointEvery: *checkpointEvery, Obs: reg}
		d, err := anc.Recover(*walDir, dcfg)
		switch {
		case err == nil:
			logger.Printf("recovered from %s: t=%v, %d log frames, %d activations replayed past the checkpoint",
				*walDir, d.Now(), d.LoggedActivations(), d.Stats().Activations)
		case errors.Is(err, anc.ErrNoDurableState):
			if d, err = anc.NewDurable(net, *walDir, dcfg); err != nil {
				logger.Fatalf("wal-dir: %v", err)
			}
		default:
			logger.Fatalf("wal-dir: %v", err)
		}
		if *streamPath != "" {
			if *follow != "" {
				logger.Fatal("-stream on a follower: followers are read-only; replay the stream at the primary")
			}
			if err := replayStream(d.ActivateBatch, ids, *streamPath); err != nil {
				logger.Fatalf("stream: %v", err)
			}
		}
		// Every durable backend is a replication node: a primary serves
		// frame subscriptions off its WAL; with -follow it instead tails the
		// named upstream and refuses local ingest until promoted.
		replNode = repl.New(d, repl.Config{
			Upstream:     *follow,
			Durable:      dcfg,
			PromoteAfter: *promoteOnLoss,
			Logf:         logger.Printf,
			Obs:          reg,
			Tracer:       tracer,
		})
		replNode.Start()
		if *follow != "" {
			logger.Printf("following %s (promote-on-loss %v)", *follow, *promoteOnLoss)
		}
		backend = replNode
	}
	var cnet *anc.ConcurrentNetwork
	if backend == nil {
		cnet = anc.NewConcurrent(net)
		cnet.Instrument(reg)
		if *streamPath != "" {
			if err := replayStream(cnet.ActivateBatch, ids, *streamPath); err != nil {
				logger.Fatalf("stream: %v", err)
			}
		}
		backend = cnet
	}

	backend, err = translated(backend, ids)
	if err != nil {
		logger.Fatal(err)
	}

	scfg := serve.Config{
		MaxInflight:    *maxInflight,
		IngestQueue:    *ingestQueue,
		RequestTimeout: *requestTimeout,
		Logf:           logger.Printf,
		Obs:            reg,
		MetricsAddr:    *metricsAddr,
		SlowQuery:      *slowQuery,
		Tracer:         tracer,
	}
	if replNode != nil {
		scfg.Repl = replNode
	}
	srv := serve.New(backend, scfg)
	if err := srv.Start(*addr); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving on %s (protocol v%d, build %s)", srv.Addr(), serve.Version, obs.BuildVersion)
	if ma := srv.MetricsAddr(); ma != "" {
		logger.Printf("metrics on http://%s/metrics (healthz, pprof alongside)", ma)
	}

	// Graceful drain on SIGINT/SIGTERM: Shutdown stops accepting, flushes
	// the ingest queue through the writer, and checkpoints+closes a
	// durable backend before the process exits.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	logger.Printf("%v: draining (budget %v)", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Fatalf("drain: %v", err)
	}
	if cnet != nil {
		cnet.Close() // the durable case is closed by Shutdown itself
	}
	logger.Printf("drained cleanly")
}

// replayStream feeds "u v t" lines through the batched ingest path in
// chunks, preserving stream order.
func replayStream(activate func([]anc.Activation) error, ids map[int64]int32, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const chunk = 4096
	batch := make([]anc.Activation, 0, chunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := activate(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	line := 0
	var u, v int64
	var t float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' {
			continue
		}
		if _, err := fmt.Sscan(s, &u, &v, &t); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		du, ok1 := ids[u]
		dv, ok2 := ids[v]
		if !ok1 || !ok2 {
			return fmt.Errorf("line %d: unknown node", line)
		}
		batch = append(batch, anc.Activation{U: int(du), V: int(dv), T: t})
		if len(batch) == chunk {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
