package anc

import (
	"io"
	"sync"
)

// ConcurrentNetwork wraps a Network with a readers–writer lock so that
// clustering queries can run concurrently with each other while
// activations serialize — the deployment shape of the paper's online
// scenario (one ingest stream, many query clients). All methods mirror
// Network.
type ConcurrentNetwork struct {
	mu  sync.RWMutex
	net *Network
}

// NewConcurrent wraps an existing network. The caller must not keep using
// the wrapped network directly.
func NewConcurrent(net *Network) *ConcurrentNetwork {
	return &ConcurrentNetwork{net: net}
}

// Activate records an interaction (exclusive lock).
func (c *ConcurrentNetwork) Activate(u, v int, t float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Activate(u, v, t)
}

// Snapshot finalizes buffered work (exclusive lock).
func (c *ConcurrentNetwork) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Snapshot()
}

// Clusters reports all clusters at a level (shared lock).
func (c *ConcurrentNetwork) Clusters(level int) [][]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Clusters(level)
}

// EvenClusters reports all even-clustering clusters at a level (shared
// lock).
func (c *ConcurrentNetwork) EvenClusters(level int) [][]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EvenClusters(level)
}

// SmallestClusterOf reports the finest-granularity cluster containing v
// (shared lock).
func (c *ConcurrentNetwork) SmallestClusterOf(v int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.SmallestClusterOf(v)
}

// ClusterOf reports the local cluster of v (shared lock).
func (c *ConcurrentNetwork) ClusterOf(v, level int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.ClusterOf(v, level)
}

// EstimateDistance answers a sketch distance query (shared lock).
func (c *ConcurrentNetwork) EstimateDistance(u, v int) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EstimateDistance(u, v)
}

// Similarity reads the current similarity of an edge (shared lock).
func (c *ConcurrentNetwork) Similarity(u, v int) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Similarity(u, v)
}

// N returns the node count.
func (c *ConcurrentNetwork) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.N()
}

// M returns the relation-graph edge count.
func (c *ConcurrentNetwork) M() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.M()
}

// Now returns the current network time — the largest activation timestamp
// seen (shared lock).
func (c *ConcurrentNetwork) Now() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Now()
}

// SqrtLevel returns the Θ(√n) granularity level.
func (c *ConcurrentNetwork) SqrtLevel() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.SqrtLevel()
}

// Levels returns the number of granularity levels.
func (c *ConcurrentNetwork) Levels() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Levels()
}

// Save snapshots the network (exclusive lock: Save flushes buffers).
func (c *ConcurrentNetwork) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Save(w)
}
