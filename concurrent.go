package anc

import (
	"io"
	"sync"
	"sync/atomic"

	"anc/internal/analytics"
	clustercache "anc/internal/cluster/cache"
	"anc/internal/obs"
	"anc/internal/obs/trace"
)

// ConcurrentNetwork wraps a Network with a readers–writer lock so that
// clustering queries can run concurrently with each other while
// activations serialize — the deployment shape of the paper's online
// scenario (one ingest stream, many query clients). All methods mirror
// Network.
type ConcurrentNetwork struct {
	mu  sync.RWMutex
	net *Network
	// acts is atomic, not mu-guarded: writers already hold the exclusive
	// lock when bumping it, but Activations() reads it lock-free so metric
	// scrapes never queue behind a long batch ingest.
	acts atomic.Uint64
	// cache is the materialized clustering cache, probed before the lock:
	// hits are served from an atomically swapped immutable snapshot, so
	// repeat queries never queue behind ingest. Invalidations fire inside
	// UpdateEdges — always under the exclusive lock — so a hit can never
	// observe state newer than the last write that completed before the
	// probe (see DESIGN.md §15).
	cache *clustercache.Cache
	// rank is the TieRank snapshot cache, probed before the lock like
	// cache: a valid snapshot serves the whole query lock-free, and it is
	// invalidated on every ingest — always under the exclusive lock — so
	// a hit can never observe stale relative weights (DESIGN.md §16).
	rank *analytics.RankCache
}

// NewConcurrent wraps an existing network and enables its materialized
// clustering cache and analytics layer. The caller must not keep using
// the wrapped network directly.
func NewConcurrent(net *Network) *ConcurrentNetwork {
	return &ConcurrentNetwork{net: net, cache: net.clusterCache(), rank: net.rankCache()}
}

// Activate records an interaction (exclusive lock).
func (c *ConcurrentNetwork) Activate(u, v int, t float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.net.Activate(u, v, t)
	if err == nil {
		c.acts.Add(1)
	}
	return err
}

// ActivateBatch records a batch of activations under a single lock
// acquisition — the high-throughput ingest path. Readers observe either
// none or all of the batch.
//
//anclint:ignore lockdiscipline pure delegation with a zero span; ActivateBatchTraced takes the lock itself
func (c *ConcurrentNetwork) ActivateBatch(batch []Activation) error {
	return c.ActivateBatchTraced(batch, trace.SpanHandle{}) //anclint:ignore lockdiscipline no lock is held here; the traced variant acquires it
}

// ActivateBatchTraced is ActivateBatch under an in-flight request span:
// the core pipeline's pyramid repair and invalidation stages become
// children of sp. A zero handle degrades to plain ActivateBatch.
func (c *ConcurrentNetwork) ActivateBatchTraced(batch []Activation, sp trace.SpanHandle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.net.ActivateBatchTraced(batch, sp)
	if err == nil {
		c.acts.Add(uint64(len(batch)))
	}
	return err
}

// Activations returns how many activations have been applied through this
// wrapper. It is a lock-free atomic read, so health endpoints and metric
// scrapes can poll it without queueing behind ingest.
func (c *ConcurrentNetwork) Activations() uint64 { return c.acts.Load() }

// Instrument attaches the wrapped network's observability handles to reg
// (see Network.Instrument). It takes the exclusive lock: attachment
// mutates state read by the ingest path.
func (c *ConcurrentNetwork) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.Instrument(reg)
}

// Snapshot finalizes buffered work (exclusive lock).
func (c *ConcurrentNetwork) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Snapshot()
}

// Clusters reports all clusters at a level. A cache hit is served
// lock-free from the materialized snapshot; only a miss takes the shared
// lock to recompute (and store for the next caller).
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshot is internally synchronized and the miss path locks
func (c *ConcurrentNetwork) Clusters(level int) [][]int {
	if cl, ok := c.cache.Power(level); ok {
		return toInts(cl.Clusters)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Clusters(level)
}

// EvenClusters reports all even-clustering clusters at a level. Like
// Clusters, a cache hit bypasses the lock entirely.
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshot is internally synchronized and the miss path locks
func (c *ConcurrentNetwork) EvenClusters(level int) [][]int {
	if cl, ok := c.cache.Even(level); ok {
		return toInts(cl.Clusters)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EvenClusters(level)
}

// ClustersUncached is Clusters with a forced recompute under the shared
// lock, bypassing the materialized cache — the equivalence baseline for
// tests and the cache A/B benchmark.
func (c *ConcurrentNetwork) ClustersUncached(level int) [][]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.ClustersUncached(level)
}

// EvenClustersUncached is EvenClusters with a forced recompute under the
// shared lock, bypassing the cache.
func (c *ConcurrentNetwork) EvenClustersUncached(level int) [][]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EvenClustersUncached(level)
}

// CacheStats returns the clustering cache's cumulative hit, miss and
// invalidation totals. Lock-free: the counters are atomics, so metric
// scrapes never queue behind ingest.
func (c *ConcurrentNetwork) CacheStats() (hits, misses, invalidations uint64) {
	return c.cache.Stats()
}

// RankStats returns the TieRank snapshot cache's cumulative hit, miss
// and invalidation totals — the analytics twin of CacheStats. Lock-free.
func (c *ConcurrentNetwork) RankStats() (hits, misses, invalidations uint64) {
	return c.rank.Stats()
}

// TieRank answers a centrality query (see Network.TieRank). When a
// cached rank snapshot is valid the query is served without the lock: a
// global-only query (level -1) needs nothing else, and a per-cluster
// query additionally probes the materialized clustering snapshot. Only
// a miss on either takes the shared lock to compute (and store for the
// next caller).
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshots are internally synchronized and the miss path locks
func (c *ConcurrentNetwork) TieRank(level, k int) TieRankResult {
	if r, ok := c.rank.Get(); ok {
		if level < 0 {
			return tieRankResult(r, nil, -1, k)
		}
		if cl, ok := c.cache.Power(level); ok {
			return tieRankResult(r, cl, level, k)
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.TieRank(level, k)
}

// Evolution reads the buffered cluster-evolution events after the given
// cursor (shared lock: the read is non-draining, so concurrent readers
// are safe; only ingest appends to the ring).
func (c *ConcurrentNetwork) Evolution(since uint64) ([]EvolutionEvent, uint64, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Evolution(since)
}

// SmallestClusterOf reports the finest-granularity cluster containing v
// (shared lock).
func (c *ConcurrentNetwork) SmallestClusterOf(v int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.SmallestClusterOf(v)
}

// ClusterOf reports the local cluster of v (shared lock).
func (c *ConcurrentNetwork) ClusterOf(v, level int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.ClusterOf(v, level)
}

// EstimateDistance answers a sketch distance query (shared lock).
func (c *ConcurrentNetwork) EstimateDistance(u, v int) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EstimateDistance(u, v)
}

// Similarity reads the current similarity of an edge (shared lock).
func (c *ConcurrentNetwork) Similarity(u, v int) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Similarity(u, v)
}

// Activeness reads the current time-decayed activeness of an edge (shared
// lock).
func (c *ConcurrentNetwork) Activeness(u, v int) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Activeness(u, v)
}

// EstimateAttraction answers an attraction-strength query (shared lock).
func (c *ConcurrentNetwork) EstimateAttraction(u, v int) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.EstimateAttraction(u, v)
}

// ConcurrentView is a zoomable navigator over a ConcurrentNetwork. Zoom
// state is per-view (not shared), and every query takes the network's
// shared lock, so any number of views may be used from any goroutines as
// long as each individual view stays on one goroutine at a time.
type ConcurrentView struct {
	c    *ConcurrentNetwork
	view *View
}

// View opens a navigator positioned at the Θ(√n) granularity (shared
// lock).
func (c *ConcurrentNetwork) View() *ConcurrentView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &ConcurrentView{c: c, view: c.net.View()}
}

// Level reports the navigator's current granularity level.
func (v *ConcurrentView) Level() int { return v.view.Level() }

// ZoomIn moves one level finer; false at the finest level.
func (v *ConcurrentView) ZoomIn() bool { return v.view.ZoomIn() }

// ZoomOut moves one level coarser; false at the coarsest level.
func (v *ConcurrentView) ZoomOut() bool { return v.view.ZoomOut() }

// Clusters reports all clusters at the current level (shared lock).
func (v *ConcurrentView) Clusters() [][]int {
	v.c.mu.RLock()
	defer v.c.mu.RUnlock()
	return v.view.Clusters()
}

// ClusterOf reports the cluster containing x at the current level (shared
// lock).
func (v *ConcurrentView) ClusterOf(x int) []int {
	v.c.mu.RLock()
	defer v.c.mu.RUnlock()
	return v.view.ClusterOf(x)
}

// Watch enables real-time change reporting for node v. It takes the
// EXCLUSIVE lock, not the shared one: the first Watch call mutates the
// index (it builds the vote-tracking structures via EnableVoteTracking),
// so it cannot run concurrently with readers.
func (c *ConcurrentNetwork) Watch(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.Watch(v)
}

// Unwatch stops watching v (exclusive lock: it mutates the watch set read
// by the ingest path).
func (c *ConcurrentNetwork) Unwatch(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.Unwatch(v)
}

// Drain returns and clears the accumulated cluster events. It takes the
// EXCLUSIVE lock because draining mutates the watcher's event buffer.
func (c *ConcurrentNetwork) Drain() []ClusterEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Drain()
}

// DrainEvents is Drain plus the overflow-drop count (exclusive lock).
func (c *ConcurrentNetwork) DrainEvents() ([]ClusterEvent, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.DrainEvents()
}

// Close releases the index worker pool (exclusive lock).
func (c *ConcurrentNetwork) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net.Close()
}

// N returns the node count.
func (c *ConcurrentNetwork) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.N()
}

// M returns the relation-graph edge count.
func (c *ConcurrentNetwork) M() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.M()
}

// Now returns the current network time — the largest activation timestamp
// seen (shared lock).
func (c *ConcurrentNetwork) Now() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Now()
}

// SqrtLevel returns the Θ(√n) granularity level.
func (c *ConcurrentNetwork) SqrtLevel() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.SqrtLevel()
}

// Levels returns the number of granularity levels.
func (c *ConcurrentNetwork) Levels() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.Levels()
}

// Stats returns an aggregate snapshot of the network's shape and ingest
// progress in one shared-lock acquisition — the health-endpoint read.
func (c *ConcurrentNetwork) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hits, misses, inv := c.cache.Stats()
	return Stats{
		Nodes:              c.net.N(),
		Edges:              c.net.M(),
		Levels:             c.net.Levels(),
		SqrtLevel:          c.net.SqrtLevel(),
		Activations:        c.acts.Load(),
		Now:                c.net.Now(),
		WatcherDrops:       c.net.WatcherDrops(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheInvalidations: inv,
		EvolutionDrops:     c.net.EvolutionDrops(),
	}
}

// Save snapshots the network (exclusive lock: Save flushes buffers).
func (c *ConcurrentNetwork) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net.Save(w)
}
