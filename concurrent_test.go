package anc

import (
	"sync"
	"testing"
)

// TestConcurrentNetworkRace exercises mixed readers and a writer; run with
// -race (the suite's default CI invocation) to verify the locking.
func TestConcurrentNetworkRace(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(net)
	var wg sync.WaitGroup
	// One ingest goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 300; i++ {
			if err := c.Activate(4, 5, float64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Several query goroutines, covering every read-side wrapper.
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Clusters(c.SqrtLevel())
				c.EvenClusters(c.SqrtLevel())
				c.ClusterOf(q, 2)
				if len(c.SmallestClusterOf(q)) == 0 {
					t.Errorf("empty smallest cluster of %d", q)
					return
				}
				c.EstimateDistance(0, 9)
				if _, err := c.Similarity(4, 5); err != nil {
					t.Error(err)
					return
				}
				if c.M() != 21 {
					t.Error("edge count changed under concurrency")
					return
				}
				if now := c.Now(); now < 0 || now > 300 {
					t.Errorf("implausible time %v", now)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	c.Snapshot()
	if c.N() != 10 || c.M() != 21 || c.Levels() != 4 {
		t.Fatalf("shape wrong after concurrent use")
	}
	if c.Now() != 300 {
		t.Fatalf("Now = %v after 300 activations", c.Now())
	}
	if got := canonClusters(c.EvenClusters(2)); got == "" {
		t.Fatal("EvenClusters empty")
	}
	if got := c.SmallestClusterOf(7); len(got) == 0 {
		t.Fatal("SmallestClusterOf empty")
	}
}

// TestConcurrentBatchIngestRace drives ActivateBatch against concurrent
// readers of Clusters/ClusterOf/EstimateDistance and the parity wrappers
// (Activeness, EstimateAttraction, View); run with -race to verify every
// batch happens under one exclusive lock acquisition.
func TestConcurrentBatchIngestRace(t *testing.T) {
	n, edges := barbell()
	cfg := testConfig()
	cfg.Parallel = true
	net, err := NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(net)
	defer c.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			t0 := float64(i * 3)
			batch := []Activation{
				{U: 4, V: 5, T: t0}, {U: 0, V: 1, T: t0 + 1},
				{U: 4, V: 5, T: t0 + 1}, {U: 7, V: 8, T: t0 + 2},
			}
			if err := c.ActivateBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			view := c.View()
			for i := 0; i < 80; i++ {
				c.Clusters(c.SqrtLevel())
				if len(c.ClusterOf(q, 2)) == 0 {
					t.Errorf("empty cluster of %d", q)
					return
				}
				c.EstimateDistance(0, 9)
				c.EstimateAttraction(0, 9)
				if _, err := c.Activeness(4, 5); err != nil {
					t.Error(err)
					return
				}
				view.Clusters()
				view.ClusterOf(q)
				view.ZoomIn()
				view.ZoomOut()
			}
		}(q)
	}
	wg.Wait()
	if c.Now() != 179 {
		t.Fatalf("Now = %v after batched ingest", c.Now())
	}
}

// TestConcurrentServeShapeRace is the serving-layer stress shape under
// -race: one goroutine ingesting via ActivateBatch while several others
// issue exactly the reads the server dispatches concurrently —
// EvenClusters, SmallestClusterOf, Stats, and the exclusive-locking
// DrainEvents event stream.
func TestConcurrentServeShapeRace(t *testing.T) {
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(net)
	defer c.Close()
	c.Watch(4) // events accumulate so DrainEvents has real work
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			t0 := float64(i * 2)
			batch := []Activation{
				{U: 4, V: 5, T: t0}, {U: 3, V: 4, T: t0}, {U: 5, V: 6, T: t0 + 1},
			}
			if err := c.ActivateBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			var drained uint64
			for i := 0; i < 100; i++ {
				if got := c.EvenClusters(c.SqrtLevel()); len(got) == 0 {
					t.Error("EvenClusters empty under ingest")
					return
				}
				if got := c.SmallestClusterOf(q); len(got) == 0 {
					t.Errorf("empty smallest cluster of %d", q)
					return
				}
				events, dropped := c.DrainEvents()
				drained += uint64(len(events)) + dropped
				st := c.Stats()
				if st.Nodes != 10 || st.Edges != 21 {
					t.Errorf("stats shape %d/%d under ingest", st.Nodes, st.Edges)
					return
				}
				if st.Activations > 240 {
					t.Errorf("activation counter overran: %d", st.Activations)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	if st := c.Stats(); st.Activations != 240 || st.Now != 159 {
		t.Fatalf("final stats %+v", st)
	}
}
