package anc_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"anc"
)

// buildSeededNetwork constructs a network on a deterministic random graph
// and feeds it a deterministic activation stream. Every run with the same
// seed must produce the same network — the property the determinism
// analyzer (internal/lint/determinism) guards statically and this test
// guards end to end: replay determinism is what makes WAL recovery land
// on an equivalent network.
func buildSeededNetwork(t *testing.T, method anc.Method, seed int64) *anc.Network {
	t.Helper()
	n, edges, rng := seededRingChords(seed)
	cfg := anc.DefaultConfig()
	cfg.Method = method
	cfg.Seed = seed
	net, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		e := edges[rng.Intn(len(edges))]
		if err := net.Activate(e[0], e[1], float64(i)/10); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return net
}

// seededRingChords builds the suite's deterministic random graph — a
// ring for connectivity plus random chords — and returns the rng so the
// caller's activation sampling continues the same deterministic stream.
func seededRingChords(seed int64) (int, [][2]int, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	const n = 60
	var edges [][2]int
	seen := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		e := [2]int{i, (i + 1) % n}
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		edges = append(edges, e)
		seen[e] = true
	}
	for len(edges) < 3*n {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return n, edges, rng
}

// TestDeterministicReplay builds two identically-seeded networks and
// asserts every query result and the snapshot encoding are identical.
func TestDeterministicReplay(t *testing.T) {
	for _, method := range []anc.Method{anc.ANCO, anc.ANCOR, anc.ANCF} {
		a := buildSeededNetwork(t, method, 42)
		b := buildSeededNetwork(t, method, 42)

		for level := 1; level <= a.Levels(); level++ {
			if ca, cb := a.Clusters(level), b.Clusters(level); !reflect.DeepEqual(ca, cb) {
				t.Errorf("method %v: Clusters(%d) differ between identical runs", method, level)
			}
			if ea, eb := a.EvenClusters(level), b.EvenClusters(level); !reflect.DeepEqual(ea, eb) {
				t.Errorf("method %v: EvenClusters(%d) differ between identical runs", method, level)
			}
		}
		for v := 0; v < a.N(); v++ {
			if sa, sb := a.SmallestClusterOf(v), b.SmallestClusterOf(v); !reflect.DeepEqual(sa, sb) {
				t.Errorf("method %v: SmallestClusterOf(%d) differs between identical runs", method, v)
			}
		}

		var bufA, bufB bytes.Buffer
		if err := a.Save(&bufA); err != nil {
			t.Fatalf("method %v: save a: %v", method, err)
		}
		if err := b.Save(&bufB); err != nil {
			t.Fatalf("method %v: save b: %v", method, err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Errorf("method %v: snapshot encodings differ between identical runs (%d vs %d bytes)",
				method, bufA.Len(), bufB.Len())
		}
	}
}

// TestBatchedIngestDeterminism feeds the same activation stream to two
// identically-seeded ANCO networks — one per-op via Activate, one in
// batches via ActivateBatch (with repeated edges and repeated timestamps
// inside batches to exercise coalescing) — and asserts the results are
// indistinguishable: identical Clusters/EvenClusters at every level and
// byte-identical Save output.
func TestBatchedIngestDeterminism(t *testing.T) {
	const seed = 42
	n, edges, rng := seededRingChords(seed)
	// A bursty stream: hot edges repeat within a batch, and several
	// activations share one timestamp — both paths the batch ingest
	// coalesces. Kept well under the rescale interval so no mid-stream
	// rescale can mask a divergence.
	var stream []anc.Activation
	for i := 0; i < 600; i++ {
		e := edges[rng.Intn(len(edges))]
		stream = append(stream, anc.Activation{U: e[0], V: e[1], T: float64(i / 3)})
		if rng.Intn(4) == 0 { // immediate repeat of a hot edge
			stream = append(stream, anc.Activation{U: e[0], V: e[1], T: float64(i / 3)})
		}
	}

	cfg := anc.DefaultConfig()
	cfg.Method = anc.ANCO
	cfg.Seed = seed
	perOp, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer perOp.Close()
	defer batched.Close()

	for _, a := range stream {
		if err := perOp.Activate(a.U, a.V, a.T); err != nil {
			t.Fatal(err)
		}
	}
	for off := 0; off < len(stream); off += 37 { // uneven batch size on purpose
		end := off + 37
		if end > len(stream) {
			end = len(stream)
		}
		if err := batched.ActivateBatch(stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}

	for level := 1; level <= perOp.Levels(); level++ {
		if ca, cb := perOp.Clusters(level), batched.Clusters(level); !reflect.DeepEqual(ca, cb) {
			t.Errorf("Clusters(%d) differ between per-op and batched ingest", level)
		}
		if ea, eb := perOp.EvenClusters(level), batched.EvenClusters(level); !reflect.DeepEqual(ea, eb) {
			t.Errorf("EvenClusters(%d) differ between per-op and batched ingest", level)
		}
	}
	var bufA, bufB bytes.Buffer
	if err := perOp.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := batched.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("snapshot encodings differ between per-op and batched ingest (%d vs %d bytes)",
			bufA.Len(), bufB.Len())
	}
}

// TestAnalyticsDeterminism builds two identically-seeded networks with
// analytics enabled from the start and asserts the analytics outputs
// are bit-identical: TieRank score vectors (float-for-float, via the
// DeepEqual on the result structs) globally and per cluster, and the
// complete cluster-evolution event sequence. This is the analytics leg
// of the replay-determinism guarantee: a recovered or replicated
// network must answer analytics queries exactly like the original.
func TestAnalyticsDeterminism(t *testing.T) {
	build := func() *anc.Network {
		n, edges, rng := seededRingChords(11)
		cfg := anc.DefaultConfig()
		cfg.Seed = 11
		net, err := anc.NewNetwork(n, edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Before the stream, so both runs diff every repair.
		net.EnableAnalytics()
		for i := 0; i < 500; i++ {
			e := edges[rng.Intn(len(edges))]
			if err := net.Activate(e[0], e[1], float64(i)/10); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	a, b := build(), build()

	for _, level := range []int{-1, a.SqrtLevel()} {
		ra, rb := a.TieRank(level, a.N()), b.TieRank(level, b.N())
		if !ra.Converged {
			t.Errorf("TieRank(level=%d) did not converge in %d iterations", level, ra.Iters)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Errorf("TieRank(level=%d) differs between identical runs", level)
		}
	}

	evA, seqA, dropA := a.Evolution(0)
	evB, seqB, dropB := b.Evolution(0)
	if seqA != seqB || dropA != dropB || !reflect.DeepEqual(evA, evB) {
		t.Errorf("evolution sequences differ between identical runs: %d events (seq %d) vs %d events (seq %d)",
			len(evA), seqA, len(evB), seqB)
	}
	if seqA == 0 {
		t.Error("stream produced no evolution events; determinism check is vacuous")
	}
}

// TestDeterministicAcrossQueries re-queries the same network twice:
// clustering reads must not mutate state or depend on iteration order.
func TestDeterministicAcrossQueries(t *testing.T) {
	net := buildSeededNetwork(t, anc.ANCO, 7)
	level := net.SqrtLevel()
	first := net.Clusters(level)
	second := net.Clusters(level)
	if !reflect.DeepEqual(first, second) {
		t.Error("Clusters is not stable across repeated queries on the same network")
	}
	firstEven := net.EvenClusters(level)
	secondEven := net.EvenClusters(level)
	if !reflect.DeepEqual(firstEven, secondEven) {
		t.Error("EvenClusters is not stable across repeated queries on the same network")
	}
}
