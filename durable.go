package anc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"anc/internal/analytics"
	clustercache "anc/internal/cluster/cache"
	"anc/internal/graph"
	"anc/internal/obs"
	"anc/internal/obs/trace"
	"anc/internal/wal"
)

// SyncPolicy selects when the write-ahead log fsyncs; see the wal package
// for the exact guarantees of each policy.
type SyncPolicy = wal.SyncPolicy

// Fsync policies for DurableConfig.Sync.
const (
	// SyncAlways fsyncs after every activation: an acknowledged Activate
	// survives any crash. The default.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs every SyncEvery activations: bounded loss window,
	// much higher throughput.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS: survives process crashes, not
	// power loss.
	SyncNever = wal.SyncNever
)

// ErrNoDurableState is wrapped by Recover when dir holds no usable
// checkpoint — distinguish "nothing there yet" (start with NewDurable)
// from "something there, but corrupt".
var ErrNoDurableState = errors.New("anc: no durable state")

// ErrClosed is returned by mutating DurableNetwork methods after Close:
// a closed log must reject ingest loudly instead of tearing its tail.
var ErrClosed = errors.New("anc: durable network is closed")

// DurableConfig tunes the durability subsystem. The zero value is usable:
// 4 MiB WAL segments, fsync on every activation, checkpoints only when
// Checkpoint is called.
type DurableConfig struct {
	// SegmentSize is the WAL segment rotation threshold in bytes
	// (default 4 MiB).
	SegmentSize int64
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the record period of SyncInterval (default 64).
	SyncEvery int
	// CheckpointEvery, when positive, writes a checkpoint automatically
	// every that many logged activations. 0 checkpoints only on demand.
	CheckpointEvery int

	// Obs, when non-nil, attaches the durability subsystem's metrics
	// (anc_wal_* families: frames, fsyncs, fsync/checkpoint latency, batch
	// sizes, recovery stats) and the wrapped network's core/pyramid metrics
	// to the registry. Nil — the default — keeps observability off at near
	// zero cost.
	Obs *obs.Registry

	// openFile lets tests interpose the fault-injection harness between
	// the WAL and the disk.
	openFile func(path string) (wal.File, error)
}

func (c DurableConfig) walOptions() wal.Options {
	return wal.Options{
		SegmentSize: c.SegmentSize,
		Sync:        c.Sync,
		SyncEvery:   c.SyncEvery,
		OpenFile:    c.openFile,
		Metrics:     wal.NewMetrics(c.Obs),
	}
}

// DurableNetwork wraps a Network with a write-ahead log and checkpointing
// so the activation stream survives a crash: Activate logs the record
// first (fsynced per the configured policy) and only then applies it to
// the in-memory network — log-then-apply — so the durable history is
// always a superset of the applied one. Queries take a shared lock and run
// concurrently, activations serialize, mirroring ConcurrentNetwork.
//
// The directory holds numbered WAL segments plus checkpoint-<index>.snap
// files, where <index> is the count of logged WAL frames the checkpoint
// state includes (one frame per Activate; one frame per group-committed
// ActivateBatch chunk). Recover loads the newest checkpoint that passes
// its CRC and replays the WAL tail from exactly that index.
type DurableNetwork struct {
	mu              sync.RWMutex
	net             *Network
	w               *wal.Writer
	dir             string
	cfg             DurableConfig
	met             *durableMetrics // nil unless cfg.Obs was set; all methods nil-safe
	sinceCheckpoint int
	acts            uint64
	closed          bool
	// cache is the materialized clustering cache, probed before the lock
	// by Clusters/EvenClusters — see ConcurrentNetwork.cache and
	// DESIGN.md §15 for the synchronization argument.
	cache *clustercache.Cache
	// rank is the TieRank snapshot cache, probed before the lock by
	// TieRank — see ConcurrentNetwork.rank and DESIGN.md §16.
	rank *analytics.RankCache
	// fsyncAccum collects, under mu, the wall-clock seconds the WAL spent
	// in fsync while the current batch was being appended (the writer is
	// only driven with mu held). A traced batch reads it to attribute its
	// fsync share as a wal.fsync leaf span.
	fsyncAccum float64
	// traces remembers which trace ID each recently appended WAL frame was
	// logged under, so the replication sender can ship the context with the
	// frame and followers can stitch their apply spans to the primary's
	// trace. Internally synchronized — the sender reads it off-lock.
	traces traceRing
}

// traceRingSize bounds how many appended frames keep their trace ID for
// replication shipping; older entries are overwritten. Subscribers tail
// the WAL within a frame or two of the append under normal operation, so
// a small window loses trace IDs only for followers that are already far
// behind (they still get the frames — just untraced).
const traceRingSize = 1024

// traceRing is a fixed-size map from WAL frame index to the trace ID the
// frame was appended under. It has its own lock so the replication
// sender's lookups never contend with ingest for the network's mutex.
type traceRing struct {
	mu  sync.Mutex
	idx [traceRingSize]uint64 // frame index + 1; 0 = empty slot
	ids [traceRingSize]uint64
	pos int
}

func (r *traceRing) record(first, next, id uint64) {
	r.mu.Lock()
	for i := first; i < next; i++ {
		r.idx[r.pos] = i + 1
		r.ids[r.pos] = id
		r.pos = (r.pos + 1) % traceRingSize
	}
	r.mu.Unlock()
}

func (r *traceRing) lookup(index uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.idx {
		if r.idx[i] == index+1 {
			return r.ids[i]
		}
	}
	return 0
}

const activationRecordSize = 16 // u uint32, v uint32, t float64 bits

func encodeActivation(u, v int, t float64) []byte {
	var b [activationRecordSize]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(u))
	binary.LittleEndian.PutUint32(b[4:8], uint32(v))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(t))
	return b[:]
}

func decodeActivation(b []byte) (u, v int, t float64, err error) {
	if len(b) != activationRecordSize {
		return 0, 0, 0, fmt.Errorf("anc: activation record of %d bytes", len(b))
	}
	u = int(binary.LittleEndian.Uint32(b[0:4]))
	v = int(binary.LittleEndian.Uint32(b[4:8]))
	t = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	return u, v, t, nil
}

func checkpointName(index uint64) string {
	return fmt.Sprintf("checkpoint-%016x.snap", index)
}

type checkpointInfo struct {
	index uint64
	path  string
}

func listCheckpoints(dir string) ([]checkpointInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cps []checkpointInfo
	for _, e := range entries {
		var index uint64
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%016x.snap", &index); err == nil &&
			e.Name() == checkpointName(index) {
			cps = append(cps, checkpointInfo{index: index, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].index < cps[j].index })
	return cps, nil
}

// NewDurable makes net durable in dir: it writes an initial checkpoint of
// the network as handed in and opens a fresh WAL. The directory is created
// if needed; if it already holds durable state the call fails — use
// Recover for that. The caller must stop using net directly.
func NewDurable(net *Network, dir string, cfg DurableConfig) (*DurableNetwork, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	if len(cps) > 0 {
		return nil, fmt.Errorf("anc: %s already holds durable state; use Recover", dir)
	}
	net.Instrument(cfg.Obs)
	d := &DurableNetwork{net: net, dir: dir, cfg: cfg, met: newDurableMetrics(cfg.Obs),
		cache: net.clusterCache(), rank: net.rankCache()}
	// Checkpoint first, then open the log: recovery requires a checkpoint
	// to replay onto, so an empty WAL without one is never observable.
	if err := d.writeCheckpoint(0); err != nil {
		return nil, err
	}
	opts := cfg.walOptions()
	opts.OnFsync = d.noteFsync
	w, err := wal.OpenWriter(dir, 0, opts)
	if err != nil {
		return nil, err
	}
	d.w = w
	return d, nil
}

// noteFsync is the WAL's fsync-duration hook. It runs on the appending
// goroutine, which holds d.mu, so the plain field add is safe.
func (d *DurableNetwork) noteFsync(seconds float64) { d.fsyncAccum += seconds }

// Recover rebuilds the durable network persisted in dir: it loads the
// newest checkpoint whose CRC verifies (falling back to the previous one
// if the newest is corrupt; corrupt checkpoint files are renamed aside
// with a .corrupt suffix), replays the WAL tail from the checkpoint's
// index — stopping cleanly at the first torn or corrupt frame — and
// reopens the log for appending, truncating that tail. The recovered
// in-memory state is exactly the reference state of the durably persisted
// activation prefix.
func Recover(dir string, cfg DurableConfig) (*DurableNetwork, error) {
	cps, err := listCheckpoints(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w in %s", ErrNoDurableState, dir)
		}
		return nil, err
	}
	if len(cps) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoDurableState, dir)
	}
	os.Remove(filepath.Join(dir, "checkpoint.tmp")) // a crashed half-written checkpoint
	var lastErr error
	for i := len(cps) - 1; i >= 0; i-- {
		cp := cps[i]
		net, err := loadCheckpoint(cp.path)
		if err != nil {
			// Quarantine the corrupt file so checkpoint retention never
			// counts it among the healthy ones (pruning by index alone
			// could otherwise discard the last valid fallback), then try
			// the previous checkpoint.
			os.Rename(cp.path, cp.path+".corrupt")
			lastErr = err
			continue
		}
		var replayed uint64
		next, err := wal.Replay(dir, cp.index, func(_ uint64, rec []byte) error {
			acts, err := decodeFrameActs(rec)
			if err != nil {
				return err
			}
			if len(acts) == 1 {
				// A per-op frame replays through Activate, a group-committed
				// batch frame through the same batched pipeline that produced
				// it — replay mirrors ingest exactly.
				if err := net.Activate(acts[0].U, acts[0].V, acts[0].T); err != nil {
					return err
				}
			} else if err := net.ActivateBatch(acts); err != nil {
				return err
			}
			replayed += uint64(len(acts))
			return nil
		})
		if err != nil {
			lastErr = err
			continue
		}
		// Open at the checkpoint's index, not at next: the WAL tail
		// [cp.index, next) was replayed into memory but is not covered by
		// any checkpoint yet, so it must survive on disk until the next
		// checkpoint — passing next would let OpenWriter discard it as
		// stale, losing acknowledged records on the next crash.
		var d *DurableNetwork // the fsync hook captures it; nil until this attempt succeeds
		opts := cfg.walOptions()
		opts.OnFsync = func(seconds float64) {
			if d != nil {
				d.noteFsync(seconds)
			}
		}
		w, err := wal.OpenWriter(dir, cp.index, opts)
		if err != nil {
			return nil, err
		}
		if w.NextIndex() != next {
			// The writer's scan and the replay disagree on where the log
			// ends — the directory changed underneath us. Fall back rather
			// than append at an inconsistent position.
			w.Close()
			lastErr = fmt.Errorf("anc: wal end moved during recovery: replayed to %d, writer at %d", next, w.NextIndex())
			continue
		}
		// Instrument only after the replay so recovered history does not
		// inflate the live ingest counters; the replayed volume is reported
		// through the dedicated recovery metrics instead.
		net.Instrument(cfg.Obs)
		met := newDurableMetrics(cfg.Obs)
		met.recovered(replayed)
		d = &DurableNetwork{net: net, w: w, dir: dir, cfg: cfg, met: met, acts: replayed,
			cache: net.clusterCache(), rank: net.rankCache()}
		return d, nil
	}
	return nil, fmt.Errorf("anc: no usable checkpoint in %s: %w", dir, lastErr)
}

func loadCheckpoint(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //anclint:ignore droppederr read-only load; a close error cannot lose data
	return Load(f)
}

// Activate validates the record, appends it to the WAL and then applies it
// to the in-memory network (log-then-apply). A nil return means the
// activation is applied and — under SyncAlways — durable; under
// SyncInterval/SyncNever it is durable after the next fsync. WAL errors
// leave the in-memory network unchanged.
func (d *DurableNetwork) Activate(u, v int, t float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	// Validate before logging, so replay never sees a record the network
	// would reject (the ingest contract of Network.Activate).
	g := d.net.inner.Graph()
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || g.FindEdge(graph.NodeID(u), graph.NodeID(v)) == graph.None {
		return fmt.Errorf("anc: no edge (%d, %d)", u, v)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || t < d.net.Now() {
		return fmt.Errorf("anc: invalid activation timestamp %v (now %v)", t, d.net.Now())
	}
	if _, err := d.w.Append(encodeActivation(u, v, t)); err != nil {
		return fmt.Errorf("anc: wal: %w", err)
	}
	if err := d.net.Activate(u, v, t); err != nil {
		return err
	}
	d.acts++
	d.sinceCheckpoint++
	if d.cfg.CheckpointEvery > 0 && d.sinceCheckpoint >= d.cfg.CheckpointEvery {
		return d.checkpointLocked()
	}
	return nil
}

// maxBatchFrame bounds how many activations go into one WAL frame: 1<<16
// records × 16 bytes = 1 MiB per frame, well under the WAL's 16 MiB record
// ceiling. Larger batches are split into several frames.
const maxBatchFrame = 1 << 16

// ActivateBatch is the group-commit ingest path: the whole batch is
// validated, encoded into a single WAL frame (one Append — under
// SyncAlways one fsync instead of one per activation), and then applied to
// the in-memory network through the batched pipeline. A nil return means
// every activation in the batch is applied and, under SyncAlways, durable
// as a unit; validation failures reject the batch before anything is
// logged, and WAL errors leave the in-memory network unchanged.
//anclint:ignore lockdiscipline pure delegation with a zero span; ActivateBatchTraced takes the lock itself
func (d *DurableNetwork) ActivateBatch(batch []Activation) error {
	return d.ActivateBatchTraced(batch, trace.SpanHandle{}) //anclint:ignore lockdiscipline no lock is held here; the traced variant acquires it
}

// ActivateBatchTraced is ActivateBatch under an in-flight request span: the
// WAL stage is recorded as a "wal.append" child with a "wal.fsync" leaf for
// the batch's fsync share, the in-memory apply as "core.apply" (under which
// the core pipeline records pyramid.repair and core.invalidate), and the
// frames' trace ID is remembered so the replication sender can ship it. A
// zero handle degrades to plain ActivateBatch.
func (d *DurableNetwork) ActivateBatchTraced(batch []Activation, sp trace.SpanHandle) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(batch) == 0 {
		return nil
	}
	// Validate everything before logging, so replay never sees a record
	// the network would reject.
	g := d.net.inner.Graph()
	prev := d.net.Now()
	for i, a := range batch {
		if g.FindEdge(graph.NodeID(a.U), graph.NodeID(a.V)) == graph.None {
			return fmt.Errorf("anc: batch[%d]: no edge (%d, %d)", i, a.U, a.V)
		}
		if math.IsNaN(a.T) || math.IsInf(a.T, 0) || a.T < prev {
			return fmt.Errorf("anc: batch[%d]: invalid activation timestamp %v (previous %v)", i, a.T, prev)
		}
		prev = a.T
	}
	timed := d.met != nil || sp.Active()
	var walStart time.Time
	if timed {
		walStart = time.Now()
	}
	wsp := sp.StartChild("wal.append")
	d.fsyncAccum = 0
	first := d.w.NextIndex()
	for off := 0; off < len(batch); off += maxBatchFrame {
		end := off + maxBatchFrame
		if end > len(batch) {
			end = len(batch)
		}
		frame := make([]byte, (end-off)*activationRecordSize)
		for i, a := range batch[off:end] {
			rec := frame[i*activationRecordSize:]
			binary.LittleEndian.PutUint32(rec[0:4], uint32(a.U))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(a.V))
			binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(a.T))
		}
		if _, err := d.w.Append(frame); err != nil {
			wsp.Fail()
			wsp.End()
			return fmt.Errorf("anc: wal: %w", err)
		}
	}
	if wsp.Active() {
		wsp.AnnotateInt("frames", int64(d.w.NextIndex()-first))
		if d.fsyncAccum > 0 {
			wsp.Leaf("wal.fsync", time.Duration(d.fsyncAccum*float64(time.Second)))
		}
	}
	wsp.End()
	if timed {
		d.met.walAppend(time.Since(walStart).Seconds())
	}
	if tid := sp.TraceID(); tid != 0 {
		d.traces.record(first, d.w.NextIndex(), tid)
	}
	csp := sp.StartChild("core.apply")
	if err := d.net.ActivateBatchTraced(batch, csp); err != nil {
		csp.Fail()
		csp.End()
		return err
	}
	csp.End()
	d.met.batchLogged(len(batch))
	d.acts += uint64(len(batch))
	d.sinceCheckpoint += len(batch)
	if d.cfg.CheckpointEvery > 0 && d.sinceCheckpoint >= d.cfg.CheckpointEvery {
		return d.checkpointLocked()
	}
	return nil
}

// Sync fsyncs the WAL, making every acknowledged activation durable — the
// explicit barrier for SyncInterval/SyncNever configurations.
func (d *DurableNetwork) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.w.Sync()
}

// Checkpoint atomically persists the current network state and truncates
// the WAL prefix it makes redundant: the snapshot is written to a temp
// file, fsynced, then renamed into place, so a crash mid-checkpoint leaves
// the previous checkpoint intact. The two newest checkpoints are retained
// (the older as a fallback should the newer be corrupted at rest); WAL
// segments wholly below the older one are deleted.
func (d *DurableNetwork) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.checkpointLocked()
}

func (d *DurableNetwork) checkpointLocked() error {
	t := d.met.checkpointStart()
	if err := d.writeCheckpoint(d.w.NextIndex()); err != nil {
		return err
	}
	d.sinceCheckpoint = 0
	cps, err := listCheckpoints(d.dir)
	if err != nil {
		return err
	}
	for len(cps) > 2 {
		if err := os.Remove(cps[0].path); err != nil {
			return err
		}
		cps = cps[1:]
	}
	if err := d.w.TruncateBefore(cps[0].index); err != nil {
		return err
	}
	t.Stop() // successful checkpoints only; failures abort mid-operation
	return nil
}

// writeCheckpoint persists the network state as checkpoint-<index>.snap
// via the write-temp / fsync / rename dance. Note Save flushes buffered
// reinforcement (Snapshot semantics) before serializing.
func (d *DurableNetwork) writeCheckpoint(index uint64) error {
	tmp := filepath.Join(d.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.net.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, checkpointName(index))); err != nil {
		return err
	}
	syncDir(d.dir)
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable;
// best-effort (some platforms refuse to fsync directories).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync() //anclint:ignore droppederr best-effort by contract: some platforms refuse to fsync directories
		f.Close()
	}
}

// Close checkpoints nothing: it fsyncs and closes the WAL and releases the
// index worker pool (when the network was built with Config.Parallel).
// Call Checkpoint first for a fast next recovery.
//
// Close is idempotent: a signal handler and the normal exit path may both
// call it, and every call after the first returns nil without touching the
// already-closed log. Later mutating calls (Activate, ActivateBatch, Sync,
// Checkpoint) return ErrClosed; queries keep working against the in-memory
// state.
func (d *DurableNetwork) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.net.Close()
	return d.w.Close()
}

// LoggedActivations returns how many log frames have ever been accepted
// into the WAL (the next WAL index). A per-op Activate is one frame; a
// group-committed ActivateBatch is one frame regardless of batch size —
// for the count of individual activations applied, see Stats.
func (d *DurableNetwork) LoggedActivations() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w.NextIndex()
}

// TraceOf reports the trace ID under which WAL frame index was appended —
// 0 when the frame was untraced or has aged out of the bounded recording
// window. The replication sender uses it to ship trace context alongside
// frames so follower applies stitch into the primary's trace. Lock-free
// with respect to the network's mutex (the ring is internally
// synchronized), so a slow sender never stalls ingest.
//
//anclint:ignore lockdiscipline the trace ring carries its own mutex; reading it off d.mu is the point
func (d *DurableNetwork) TraceOf(index uint64) uint64 { return d.traces.lookup(index) }

// DurableActivations returns how many logged frames are known to have
// been fsynced.
func (d *DurableNetwork) DurableActivations() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w.DurableIndex()
}

// Unwrap returns the wrapped network for single-threaded, read-only use —
// e.g. feeding query helpers that take a *Network. Mutating it directly
// bypasses the log and forfeits the durability guarantee.
//
//anclint:ignore lockdiscipline deliberately unsynchronized escape hatch; the doc comment transfers the locking obligation to the caller
func (d *DurableNetwork) Unwrap() *Network { return d.net }

// Snapshot finalizes buffered work on the wrapped network (exclusive
// lock). Note that under ANCF this mutates state outside the log; only the
// activation history itself is replayed on recovery.
func (d *DurableNetwork) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.net.Snapshot()
}

// N returns the node count.
func (d *DurableNetwork) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.N()
}

// M returns the relation-graph edge count.
func (d *DurableNetwork) M() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.M()
}

// Levels returns the number of granularity levels.
func (d *DurableNetwork) Levels() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Levels()
}

// SqrtLevel returns the Θ(√n) granularity level.
func (d *DurableNetwork) SqrtLevel() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.SqrtLevel()
}

// Now returns the current network time.
func (d *DurableNetwork) Now() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Now()
}

// Clusters reports all clusters at a level. A cache hit is served
// lock-free from the materialized snapshot; only a miss takes the shared
// lock to recompute (and store for the next caller).
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshot is internally synchronized and the miss path locks
func (d *DurableNetwork) Clusters(level int) [][]int {
	if cl, ok := d.cache.Power(level); ok {
		return toInts(cl.Clusters)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Clusters(level)
}

// EvenClusters reports all even-clustering clusters at a level. Like
// Clusters, a cache hit bypasses the lock entirely.
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshot is internally synchronized and the miss path locks
func (d *DurableNetwork) EvenClusters(level int) [][]int {
	if cl, ok := d.cache.Even(level); ok {
		return toInts(cl.Clusters)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.EvenClusters(level)
}

// ClustersUncached is Clusters with a forced recompute under the shared
// lock, bypassing the materialized cache — the equivalence baseline for
// tests and the cache A/B benchmark.
func (d *DurableNetwork) ClustersUncached(level int) [][]int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.ClustersUncached(level)
}

// EvenClustersUncached is EvenClusters with a forced recompute under the
// shared lock, bypassing the cache.
func (d *DurableNetwork) EvenClustersUncached(level int) [][]int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.EvenClustersUncached(level)
}

// CacheStats returns the clustering cache's cumulative hit, miss and
// invalidation totals. Lock-free: the counters are atomics, so metric
// scrapes never queue behind ingest.
func (d *DurableNetwork) CacheStats() (hits, misses, invalidations uint64) {
	return d.cache.Stats()
}

// RankStats returns the TieRank snapshot cache's cumulative hit, miss
// and invalidation totals — the analytics twin of CacheStats. Lock-free.
func (d *DurableNetwork) RankStats() (hits, misses, invalidations uint64) {
	return d.rank.Stats()
}

// TieRank answers a centrality query (see Network.TieRank and
// ConcurrentNetwork.TieRank). A valid rank snapshot — plus, for a
// per-cluster query, a valid clustering snapshot — serves the query
// lock-free; only a miss takes the shared lock.
//
//anclint:ignore lockdiscipline cache probe is lock-free by design; the snapshots are internally synchronized and the miss path locks
func (d *DurableNetwork) TieRank(level, k int) TieRankResult {
	if r, ok := d.rank.Get(); ok {
		if level < 0 {
			return tieRankResult(r, nil, -1, k)
		}
		if cl, ok := d.cache.Power(level); ok {
			return tieRankResult(r, cl, level, k)
		}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.TieRank(level, k)
}

// Evolution reads the buffered cluster-evolution events after the given
// cursor (shared lock; the read is non-draining).
func (d *DurableNetwork) Evolution(since uint64) ([]EvolutionEvent, uint64, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Evolution(since)
}

// ClusterOf reports the local cluster of v (shared lock).
func (d *DurableNetwork) ClusterOf(v, level int) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.ClusterOf(v, level)
}

// SmallestClusterOf reports the finest-granularity cluster containing v
// (shared lock).
func (d *DurableNetwork) SmallestClusterOf(v int) []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.SmallestClusterOf(v)
}

// Similarity reads the current similarity of an edge (shared lock).
func (d *DurableNetwork) Similarity(u, v int) (float64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Similarity(u, v)
}

// EstimateDistance answers a sketch distance query (shared lock).
func (d *DurableNetwork) EstimateDistance(u, v int) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.EstimateDistance(u, v)
}

// EstimateAttraction answers an attraction-strength query (shared lock).
func (d *DurableNetwork) EstimateAttraction(u, v int) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.EstimateAttraction(u, v)
}

// Activeness reads the current time-decayed activeness of an edge (shared
// lock).
func (d *DurableNetwork) Activeness(u, v int) (float64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.net.Activeness(u, v)
}

// Watch enables real-time change reporting for node v (exclusive lock:
// the first Watch builds the vote-tracking structures). Watch state is in
// memory only — it is not replayed by Recover.
func (d *DurableNetwork) Watch(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.net.Watch(v)
}

// Unwatch stops watching v (exclusive lock: it mutates the watch set read
// by the ingest path).
func (d *DurableNetwork) Unwatch(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.net.Unwatch(v)
}

// Drain returns and clears the accumulated cluster events (exclusive
// lock: draining mutates the watcher's event buffer).
func (d *DurableNetwork) Drain() []ClusterEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.net.Drain()
}

// DrainEvents is Drain plus the overflow-drop count (exclusive lock).
func (d *DurableNetwork) DrainEvents() ([]ClusterEvent, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.net.DrainEvents()
}

// Stats returns an aggregate snapshot of the network's shape and ingest
// progress in one shared-lock acquisition — the health-endpoint read.
func (d *DurableNetwork) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	hits, misses, inv := d.cache.Stats()
	return Stats{
		Nodes:              d.net.N(),
		Edges:              d.net.M(),
		Levels:             d.net.Levels(),
		SqrtLevel:          d.net.SqrtLevel(),
		Activations:        d.acts,
		Now:                d.net.Now(),
		WatcherDrops:       d.net.WatcherDrops(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheInvalidations: inv,
		EvolutionDrops:     d.net.EvolutionDrops(),
	}
}
