package anc

import (
	"testing"
)

// batchStream groups a testStream into batches of the given size.
func batchStream(stream [][3]float64, size int) [][]Activation {
	var out [][]Activation
	for off := 0; off < len(stream); off += size {
		end := off + size
		if end > len(stream) {
			end = len(stream)
		}
		b := make([]Activation, 0, end-off)
		for _, a := range stream[off:end] {
			b = append(b, Activation{U: int(a[0]), V: int(a[1]), T: a[2]})
		}
		out = append(out, b)
	}
	return out
}

// TestDurableBatchGroupCommit: a batch is one WAL frame (one fsync under
// SyncAlways), and recovery from the batch-framed log reproduces the
// per-op reference exactly.
func TestDurableBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d := newDurableBarbell(t, dir, DurableConfig{})
	_, edges := barbell()
	stream := testStream(edges, 120)
	batches := batchStream(stream, 30)
	for _, b := range batches {
		if err := d.ActivateBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Group commit: one frame per batch, not one per activation.
	if got, want := d.LoggedActivations(), uint64(len(batches)); got != want {
		t.Fatalf("logged %d WAL frames, want %d (one per batch)", got, want)
	}
	if d.DurableActivations() != uint64(len(batches)) {
		t.Fatalf("SyncAlways left %d of %d frames unsynced",
			uint64(len(batches))-d.DurableActivations(), len(batches))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// Batched ingest is bit-identical to per-op under ANCO, so recovery of
	// the batch-framed log must match the per-op reference exactly.
	assertEquivalent(t, rec, referenceNetwork(t, stream, len(stream)), true)
}

// TestDurableBatchRejectedAtomically: an invalid batch leaves both the WAL
// and the in-memory network untouched.
func TestDurableBatchRejectedAtomically(t *testing.T) {
	d := newDurableBarbell(t, t.TempDir(), DurableConfig{})
	if err := d.Activate(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	framesBefore := d.LoggedActivations()
	bad := [][]Activation{
		{{U: 0, V: 1, T: 6}, {U: 3, V: 9, T: 6}},  // no such edge
		{{U: 0, V: 1, T: 4}},                      // before current time
		{{U: 0, V: 1, T: 8}, {U: 0, V: 1, T: 7}},  // decreasing inside batch
		{{U: -1, V: 1, T: 9}},                     // negative node
		{{U: 0, V: 1 << 20, T: 9}},                // out-of-range node
	}
	for i, b := range bad {
		if err := d.ActivateBatch(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if d.LoggedActivations() != framesBefore {
		t.Fatal("rejected batch reached the WAL")
	}
	if d.Now() != 5 {
		t.Fatalf("rejected batch moved time to %v", d.Now())
	}
	if err := d.ActivateBatch([]Activation{{U: 0, V: 1, T: 6}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableBatchCheckpointing: CheckpointEvery counts activations, not
// frames, so batched ingest still checkpoints on schedule.
func TestDurableBatchCheckpointing(t *testing.T) {
	dir := t.TempDir()
	d := newDurableBarbell(t, dir, DurableConfig{CheckpointEvery: 50})
	_, edges := barbell()
	stream := testStream(edges, 200)
	for _, b := range batchStream(stream, 40) {
		if err := d.ActivateBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("expected retained checkpoints from batched ingest, got %d", len(cps))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// Checkpointing rescales mid-stream, so equality is to 1e-9 here.
	assertEquivalent(t, rec, referenceNetwork(t, stream, len(stream)), false)
}
