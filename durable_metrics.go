package anc

import "anc/internal/obs"

// durableMetrics are the durability-layer observability handles, registered
// under the anc_wal_* family alongside the WAL's own frame/fsync metrics
// (see internal/wal). A nil *durableMetrics (the default — no registry in
// DurableConfig.Obs) disables them; every method is nil-safe.
type durableMetrics struct {
	// checkpointSeconds observes the full checkpoint operation: snapshot
	// write + fsync + rename + retention pruning + WAL truncation.
	checkpointSeconds *obs.Histogram
	// batchRecords observes the size of each group-committed ActivateBatch
	// in activation records — the distribution that explains fsync
	// amortization.
	batchRecords *obs.Histogram
	// walAppendSeconds observes the WAL stage of each group-committed
	// batch — framing plus Append plus any policy fsyncs — one stage of the
	// per-request ingest breakdown (queue-wait / wal / fsync / repair /
	// reply; see DESIGN.md §17).
	walAppendSeconds *obs.Histogram
	// recoveries counts successful Recover calls; recoveredRecords counts
	// the WAL-tail activations they replayed.
	recoveries       *obs.Counter
	recoveredRecords *obs.Counter
}

func newDurableMetrics(reg *obs.Registry) *durableMetrics {
	if reg == nil {
		return nil
	}
	return &durableMetrics{
		checkpointSeconds: reg.Histogram("anc_wal_checkpoint_seconds",
			"checkpoint duration in seconds (snapshot write, fsync, rename, WAL truncation)", nil),
		batchRecords: reg.Histogram("anc_wal_batch_records",
			"activation records per group-committed batch",
			obs.ExponentialBuckets(1, 2, 17)),
		walAppendSeconds: reg.Histogram("anc_durable_wal_append_seconds",
			"WAL stage of a group-committed batch: framing, appends and policy fsyncs", nil),
		recoveries: reg.Counter("anc_wal_recoveries_total",
			"successful crash recoveries"),
		recoveredRecords: reg.Counter("anc_wal_recovered_records_total",
			"WAL-tail activation records replayed by recovery"),
	}
}

func (m *durableMetrics) checkpointStart() obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.checkpointSeconds.Start()
}

func (m *durableMetrics) walAppend(seconds float64) {
	if m == nil {
		return
	}
	m.walAppendSeconds.Observe(seconds)
}

func (m *durableMetrics) batchLogged(n int) {
	if m == nil {
		return
	}
	m.batchRecords.Observe(float64(n))
}

func (m *durableMetrics) recovered(records uint64) {
	if m == nil {
		return
	}
	m.recoveries.Inc()
	m.recoveredRecords.Add(records)
}
