package anc

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"anc/internal/wal"
)

// durableFrameSize is the on-disk WAL cost of one activation: 8 bytes of
// frame header plus the 16-byte record.
const durableFrameSize = 8 + activationRecordSize

// testStream returns a deterministic activation stream over the barbell's
// edges with strictly increasing timestamps.
func testStream(edges [][2]int, n int) [][3]float64 {
	rng := rand.New(rand.NewSource(42))
	out := make([][3]float64, n)
	for i := range out {
		e := edges[rng.Intn(len(edges))]
		out[i] = [3]float64{float64(e[0]), float64(e[1]), float64(i + 1)}
	}
	return out
}

// referenceNetwork feeds the first k stream records into a fresh network.
func referenceNetwork(t *testing.T, stream [][3]float64, k int) *Network {
	t.Helper()
	n, edges := barbell()
	ref, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range stream[:k] {
		if err := ref.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

func canonClusters(cs [][]int) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		sort.Ints(c)
		parts[i] = fmt.Sprint(c)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// assertEquivalent asserts the recovered network reproduces the reference
// exactly: identical clusterings at the √n level and identical per-edge
// similarity. exact toggles bitwise float comparison (true for recovery
// paths that replay the same float trajectory) versus 1e-9 relative.
func assertEquivalent(t *testing.T, got *DurableNetwork, ref *Network, exact bool) {
	t.Helper()
	if got.N() != ref.N() || got.M() != ref.M() {
		t.Fatalf("shape: got %d/%d, ref %d/%d", got.N(), got.M(), ref.N(), ref.M())
	}
	if got.Now() != ref.Now() {
		t.Fatalf("time: got %v, ref %v", got.Now(), ref.Now())
	}
	if g, r := canonClusters(got.Clusters(got.SqrtLevel())), canonClusters(ref.Clusters(ref.SqrtLevel())); g != r {
		t.Fatalf("clusters differ:\n got %s\n ref %s", g, r)
	}
	n, edges := barbell()
	_ = n
	for _, e := range edges {
		sg, err1 := got.Similarity(e[0], e[1])
		sr, err2 := ref.Similarity(e[0], e[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("similarity(%v): %v %v", e, err1, err2)
		}
		if exact {
			if sg != sr {
				t.Fatalf("similarity(%v): got %v, ref %v (exact)", e, sg, sr)
			}
		} else {
			diff := sg - sr
			if diff < 0 {
				diff = -diff
			}
			if sr != 0 && diff/sr > 1e-9 {
				t.Fatalf("similarity(%v): got %v, ref %v", e, sg, sr)
			}
		}
	}
}

func newDurableBarbell(t *testing.T, dir string, cfg DurableConfig) *DurableNetwork {
	t.Helper()
	n, edges := barbell()
	net, err := NewNetwork(n, edges, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurable(net, dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	_, edges := barbell()
	stream := testStream(edges, 30)
	d := newDurableBarbell(t, dir, DurableConfig{})
	for _, a := range stream {
		if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if d.LoggedActivations() != 30 || d.DurableActivations() != 30 {
		t.Fatalf("logged=%d durable=%d", d.LoggedActivations(), d.DurableActivations())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	assertEquivalent(t, rec, referenceNetwork(t, stream, 30), true)
	// The recovered network keeps ingesting and logging.
	if err := rec.Activate(4, 5, 100); err != nil {
		t.Fatal(err)
	}
	if rec.LoggedActivations() != 31 {
		t.Fatalf("logged=%d after post-recovery activate", rec.LoggedActivations())
	}
}

func TestDurableRejectsBadRecordsBeforeLogging(t *testing.T) {
	dir := t.TempDir()
	d := newDurableBarbell(t, dir, DurableConfig{})
	defer d.Close()
	if err := d.Activate(0, 7, 1); err == nil {
		t.Fatal("missing edge accepted")
	}
	if err := d.Activate(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(0, 1, 4); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
	if got := d.LoggedActivations(); got != 1 {
		t.Fatalf("rejected records reached the log: %d", got)
	}
}

func TestNewDurableRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	d := newDurableBarbell(t, dir, DurableConfig{})
	d.Close()
	n, edges := barbell()
	net, _ := NewNetwork(n, edges, testConfig())
	if _, err := NewDurable(net, dir, DurableConfig{}); err == nil {
		t.Fatal("NewDurable overwrote existing durable state")
	}
}

func TestRecoverNoState(t *testing.T) {
	if _, err := Recover(t.TempDir(), DurableConfig{}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("err = %v, want ErrNoDurableState", err)
	}
	if _, err := Recover(filepath.Join(t.TempDir(), "missing"), DurableConfig{}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("err = %v, want ErrNoDurableState", err)
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoveryEquivalenceAtEveryBoundary crashes — by truncating the log —
// at every record boundary and at bytes inside every frame, and asserts
// the recovered network is exactly the reference fed the surviving record
// prefix (satellite: table-driven recovery equivalence).
func TestRecoveryEquivalenceAtEveryBoundary(t *testing.T) {
	const records = 25
	dir := t.TempDir()
	_, edges := barbell()
	stream := testStream(edges, records)
	d := newDurableBarbell(t, dir, DurableConfig{})
	for _, a := range stream {
		if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, wal.SegmentName(0))
	type cut struct {
		bytes int64
		want  int // surviving record prefix
	}
	var cuts []cut
	for k := 0; k <= records; k++ {
		cuts = append(cuts, cut{int64(k) * durableFrameSize, k})
		if k < records {
			// Torn frames: cut inside the header and inside the payload.
			cuts = append(cuts, cut{int64(k)*durableFrameSize + 3, k})
			cuts = append(cuts, cut{int64(k)*durableFrameSize + 8 + 5, k})
		}
	}
	for _, c := range cuts {
		work := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(work, filepath.Base(seg)), c.bytes); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(work, DurableConfig{})
		if err != nil {
			t.Fatalf("cut@%d: %v", c.bytes, err)
		}
		if got := rec.LoggedActivations(); got != uint64(c.want) {
			t.Fatalf("cut@%d: recovered %d records, want %d", c.bytes, got, c.want)
		}
		assertEquivalent(t, rec, referenceNetwork(t, stream, c.want), true)
		rec.Close()
	}
}

// TestFaultInjectionRandomCrashPoints is the acceptance harness: a
// fault-injecting writer kills the WAL at ≥50 random byte offsets (most of
// them mid-frame, leaving a torn tail); recovery must reproduce a network
// identical — clusters and per-edge similarity — to a reference replayed
// over the durably persisted activation prefix, which must cover every
// acknowledged record.
func TestFaultInjectionRandomCrashPoints(t *testing.T) {
	const records = 60
	_, edges := barbell()
	stream := testStream(edges, records)
	total := int64(records) * durableFrameSize
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 55; trial++ {
		crash := rng.Int63n(total + 1)
		dir := t.TempDir()
		fault := wal.NewFault()
		fault.CrashAt(crash)
		// Small segments so crashes also land across rotation boundaries.
		cfg := DurableConfig{SegmentSize: 10 * durableFrameSize, openFile: fault.Open}
		d := newDurableBarbell(t, dir, cfg)
		acked := 0
		for _, a := range stream {
			if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
				break // the process "died" here
			}
			acked++
		}
		d.Close()
		rec, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatalf("crash@%d: %v", crash, err)
		}
		got := int(rec.LoggedActivations())
		if got < acked {
			t.Fatalf("crash@%d: %d acknowledged but only %d recovered", crash, acked, got)
		}
		if got > records {
			t.Fatalf("crash@%d: recovered %d > %d fed", crash, got, records)
		}
		assertEquivalent(t, rec, referenceNetwork(t, stream, got), true)
		rec.Close()
	}
}

// TestCheckpointTruncatesAndRecovers exercises automatic checkpointing:
// old WAL segments are truncated, at most two checkpoints are retained,
// and recovery (checkpoint + tail replay) matches the reference.
func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	const records = 43
	dir := t.TempDir()
	_, edges := barbell()
	stream := testStream(edges, records)
	cfg := DurableConfig{SegmentSize: 5 * durableFrameSize, CheckpointEvery: 10}
	d := newDurableBarbell(t, dir, cfg)
	for _, a := range stream {
		if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 {
		t.Fatalf("%d checkpoints retained, want 2", len(cps))
	}
	if cps[1].index != 40 {
		t.Fatalf("newest checkpoint at %d, want 40", cps[1].index)
	}
	// Segments wholly below the older retained checkpoint are gone.
	if _, err := os.Stat(filepath.Join(dir, wal.SegmentName(0))); !os.IsNotExist(err) {
		t.Fatal("stale WAL segment survived checkpoint truncation")
	}
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.LoggedActivations(); got != records {
		t.Fatalf("recovered %d records, want %d", got, records)
	}
	// Checkpointing rescales mid-stream, so equality is to 1e-9 here.
	assertEquivalent(t, rec, referenceNetwork(t, stream, records), false)
}

// TestCorruptCheckpointFallsBack flips a byte in the newest checkpoint:
// its CRC must reject it and recovery must fall back to the previous
// checkpoint plus a longer WAL replay. With every checkpoint corrupted,
// recovery must fail rather than decode garbage.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	const records = 20
	dir := t.TempDir()
	_, edges := barbell()
	stream := testStream(edges, records)
	d := newDurableBarbell(t, dir, DurableConfig{})
	for i, a := range stream {
		if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
		if i == 11 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cps, err := listCheckpoints(dir)
	if err != nil || len(cps) != 2 {
		t.Fatalf("checkpoints: %v %v", cps, err)
	}
	flip := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip(cps[1].path) // corrupt the newest
	rec, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if got := rec.LoggedActivations(); got != records {
		t.Fatalf("recovered %d records via fallback, want %d", got, records)
	}
	assertEquivalent(t, rec, referenceNetwork(t, stream, records), true)
	rec.Close()
	flip(cps[0].path) // now both are corrupt
	if _, err := Recover(dir, DurableConfig{}); err == nil {
		t.Fatal("recovery decoded a corrupt checkpoint")
	}
}

// TestDurableConcurrentUse drives concurrent activators and queriers
// through the durable wrapper under -race.
func TestDurableConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	d := newDurableBarbell(t, dir, DurableConfig{Sync: SyncInterval, SyncEvery: 16})
	defer d.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 200; i++ {
			if err := d.Activate(4, 5, float64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		d.Clusters(d.SqrtLevel())
		d.SmallestClusterOf(3)
		d.EvenClusters(2)
		_, _ = d.Similarity(4, 5)
		_ = d.Now()
		_ = d.M()
	}
	<-done
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.DurableActivations() != 200 {
		t.Fatalf("durable=%d", d.DurableActivations())
	}
}

// TestRecoverRepeatedlyWithoutCheckpoint: recovery must not consume the
// WAL tail it replays. A process that recovers, does a little work (or
// none) and dies before its next checkpoint leaves the directory exactly
// as recoverable as before — this guards against the writer discarding
// the not-yet-checkpointed tail as stale on reopen.
func TestRecoverRepeatedlyWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, edges := barbell()
	stream := testStream(edges, 20)
	d := newDurableBarbell(t, dir, DurableConfig{})
	for _, a := range stream {
		if err := d.Activate(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil { // no checkpoint: only the index-0 one exists
		t.Fatal(err)
	}
	// Recover several times in a row; every round must see all 20 records.
	for round := 0; round < 3; round++ {
		r, err := Recover(dir, DurableConfig{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := r.LoggedActivations(); got != 20 {
			t.Fatalf("round %d: %d of 20 activations survive recovery", round, got)
		}
		assertEquivalent(t, r, referenceNetwork(t, stream, 20), true)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A post-recovery append lands at the contiguous index and survives
	// the next (again checkpoint-free) recovery.
	r, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(4, 5, 21); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.LoggedActivations(); got != 21 {
		t.Fatalf("%d of 21 activations survive recovery", got)
	}
	if r2.Now() != 21 {
		t.Fatalf("Now = %v after replaying 21 records", r2.Now())
	}
}
