package anc_test

import (
	"fmt"
	"sort"

	"anc"
)

// ExampleNewNetwork builds a tiny activation network and reports the
// coarsest clustering.
func ExampleNewNetwork() {
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 2
	net, err := anc.NewNetwork(6, edges, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(net.N(), "nodes,", net.M(), "edges,", net.Levels(), "levels")
	// Output: 6 nodes, 7 edges, 3 levels
}

// ExampleNetwork_Activate shows activeness accumulating and decaying under
// the time-decay scheme (λ = 0.1, as in the paper's Example 1).
func ExampleNetwork_Activate() {
	cfg := anc.DefaultConfig()
	cfg.Rep = 0
	net, err := anc.NewNetwork(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, cfg)
	if err != nil {
		panic(err)
	}
	net.Activate(0, 1, 0) // initial activeness 1 + this activation
	net.Activate(0, 1, 2)
	a, _ := net.Activeness(0, 1)
	fmt.Printf("a_2(e) = %.3f\n", a)
	// Output: a_2(e) = 2.637
}

// ExampleNetwork_ClusterOf answers a local cluster query.
func ExampleNetwork_ClusterOf() {
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 2
	net, err := anc.NewNetwork(6, edges, cfg)
	if err != nil {
		panic(err)
	}
	members := net.ClusterOf(0, 2)
	sort.Ints(members)
	fmt.Println(len(members) >= 1 && members[0] == 0 || contains(members, 0))
	// Output: true
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
