// Collab: the paper's Section VI-C case study as a runnable program — a
// 29-node collaboration network followed over 30 years. Researcher v8
// moves between collaborations; the index tracks whose active community
// v8 belongs to, at two zoom levels, without ever recomputing clusters
// from scratch.
//
//	go run ./examples/collab
package main

import (
	"fmt"
	"log"

	"anc"
)

// group edges: five research groups plus background collaborators.
func buildEdges() (int, [][2]int, [][2]int) {
	groups := [][]int{
		{0, 1, 2, 3},         // v0's group
		{5, 4, 6, 9},         // v5's group
		{7, 13, 14, 15, 16},  // v7's group
		{11, 17, 18, 19, 20}, // v11's group
		{26, 23, 24, 25, 27}, // v26's group
		{10, 12, 21, 22, 28}, // background
	}
	var intra [][2]int
	for _, g := range groups {
		for i := range g {
			for j := i + 1; j < len(g); j++ {
				intra = append(intra, [2]int{g[i], g[j]})
			}
		}
	}
	edges := append([][2]int{}, intra...)
	for _, f := range []int{0, 5, 7, 11, 26} {
		edges = append(edges, [2]int{8, f})
	}
	edges = append(edges, [2]int{3, 4}, [2]int{9, 13}, [2]int{16, 17},
		[2]int{20, 23}, [2]int{10, 0}, [2]int{12, 26}, [2]int{21, 7},
		[2]int{22, 11}, [2]int{28, 5})
	return 29, edges, intra
}

func main() {
	n, edges, intra := buildEdges()
	cfg := anc.DefaultConfig()
	cfg.Method = anc.ANCOR
	cfg.Lambda = 0.35 // yearly decay: collaborations fade within a few years
	cfg.Rep = 3
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	cfg.ReinforceInterval = 1
	net, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// v8's collaboration spans (paper, Section VI-C).
	spans := map[int][2]int{
		7:  {5, 11},
		11: {11, 22},
		0:  {11, 30},
		5:  {17, 26},
		26: {23, 30},
	}

	for year := 1; year <= 30; year++ {
		t := float64(year)
		for _, e := range intra { // groups collaborate every year
			if err := net.Activate(e[0], e[1], t); err != nil {
				log.Fatal(err)
			}
		}
		for nb, span := range spans {
			if year >= span[0] && year <= span[1] {
				if err := net.Activate(8, nb, t); err != nil {
					log.Fatal(err)
				}
			}
		}
		if year%10 != 0 {
			continue
		}
		if err := net.Snapshot(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("— year %d —\n", year)
		for _, level := range []int{2, 3} {
			members := net.ClusterOf(8, level)
			in := map[int]bool{}
			for _, m := range members {
				in[m] = true
			}
			fmt.Printf("  level %d: v8's cluster has %2d members; ", level, len(members))
			for _, f := range []int{0, 5, 7, 11, 26} {
				mark := " "
				if in[f] {
					mark = "*"
				}
				s, _ := net.Similarity(8, f)
				fmt.Printf("v%d%s(1/S=%.2g) ", f, mark, 1/s)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(* = shares v8's cluster; 1/S = dis-similarity, small = close)")
}
