// Follower: WAL-shipping replication end to end in one process — a
// durable primary serving over TCP, a read-only follower tailing its
// WAL and serving the same queries, then a failover: the primary dies
// mid-stream, the follower is promoted and starts accepting writes
// (DESIGN.md §13).
//
// In production the two halves are two ancserve processes:
//
//	ancserve -graph g.txt -wal-dir p/  -addr :7465
//	ancserve -graph g.txt -wal-dir f1/ -addr :7466 -follow host:7465
//
//	go run ./examples/follower
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"anc"
	"anc/internal/gen"
	"anc/internal/serve"
	"anc/internal/serve/client"
	"anc/internal/serve/repl"
)

func main() {
	// A community-structured network; both ends start from the same
	// graph, the same way both ancserve processes load the same file.
	rng := rand.New(rand.NewSource(7))
	pl := gen.Community(300, 2100, 15, 0.12, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3

	// Primary: a durable network fronted by a server. The repl.Node
	// wrapper is what serves frame subscriptions off the WAL; the same
	// DurableConfig must be used on both ends — checkpoint cadence is
	// part of the replicated state's byte-identity (DESIGN.md §13).
	dcfg := anc.DurableConfig{CheckpointEvery: 2000}
	primary := startNode(pl, cfg, dcfg, repl.Config{})
	psrv := serve.New(primary, serve.Config{Repl: primary})
	if err := psrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary on %s\n", psrv.Addr())

	// Follower: same construction plus an upstream. Start launches the
	// replication loop: dial, subscribe from the local log end, apply.
	follower := startNode(pl, cfg, dcfg, repl.Config{
		Upstream:  psrv.Addr().String(),
		Durable:   dcfg,
		Heartbeat: 100 * time.Millisecond,
	})
	follower.Start()
	fsrv := serve.New(follower, serve.Config{Repl: follower})
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower on %s\n", fsrv.Addr())

	// Ingest at the primary; the frames replicate as they commit.
	ctx := context.Background()
	pc, err := client.Dial(psrv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 12, 0.05, 0.9, rng)
	sent := ingest(ctx, pc, pl, stream)
	fmt.Printf("ingested %d activations at the primary\n", sent)

	// The follower serves the same queries — reads scale out; writes are
	// refused with the typed read-only error until promotion. The client
	// retries idempotent queries (never ingest) through transient flakes.
	fc, err := client.Dial(fsrv.Addr().String(),
		client.WithRetry(4, 25*time.Millisecond, time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	for {
		rs, err := fc.ReplStatus(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if rs.LagFrames() == 0 && rs.Next > 0 {
			fmt.Printf("follower caught up: role %s, %d frames applied\n",
				serve.RoleName(rs.Role), rs.Next)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	local, err := fc.SmallestClusterOf(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica read: smallest cluster of node 0 has %d nodes\n", len(local))
	if err := fc.ActivateBatch(ctx, []anc.Activation{{U: 0, V: 1, T: 999}}); err != nil {
		fmt.Printf("replica write refused as expected: %v\n", err)
	}

	// Failover: the primary dies without a goodbye; the operator (here,
	// us) promotes the follower, which seals its log and accepts writes.
	pc.Close()
	psrv.Kill()
	if err := fc.Promote(ctx); err != nil {
		log.Fatal(err)
	}
	rs, err := fc.ReplStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted: role %s at frame %d\n", serve.RoleName(rs.Role), rs.Next)
	if err := fc.ActivateBatch(ctx, []anc.Activation{{U: 0, V: 1, T: 999}}); err != nil {
		log.Fatal(err)
	}
	st, err := fc.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new primary serving: %d activations, t=%.1f\n", st.Activations, st.Now)

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := fsrv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
}

// startNode builds a durable network in a throwaway directory and wraps
// it in a replication node.
func startNode(pl *gen.Planted, cfg anc.Config, dcfg anc.DurableConfig, rcfg repl.Config) *repl.Node {
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "anc-follower-example-")
	if err != nil {
		log.Fatal(err)
	}
	d, err := anc.NewDurable(net, dir, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	return repl.New(d, rcfg)
}

// ingest replays the generated stream as batches over the wire.
func ingest(ctx context.Context, c *client.Client, pl *gen.Planted, stream []gen.Activation) int {
	const per = 64
	sent := 0
	for i := 0; i < len(stream); i += per {
		end := i + per
		if end > len(stream) {
			end = len(stream)
		}
		batch := make([]anc.Activation, 0, end-i)
		for _, a := range stream[i:end] {
			u, v := pl.Graph.Endpoints(a.Edge)
			batch = append(batch, anc.Activation{U: int(u), V: int(v), T: a.T})
		}
		if err := c.ActivateBatch(ctx, batch); err != nil {
			log.Fatal(err)
		}
		sent += len(batch)
	}
	return sent
}
