// Monitor: production-shaped usage — watch specific users for real-time
// cluster-membership changes (the paper's change-reporting Remarks),
// snapshot the network to disk mid-stream, restore it, and continue
// seamlessly.
//
//	go run ./examples/monitor
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"anc"
	"anc/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	pl := gen.Community(400, 2800, 20, 0.15, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	cfg.Lambda = 0.2
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Watch two users from different communities.
	var userA, userB int = -1, -1
	for v, c := range pl.Truth {
		if c == 0 && userA < 0 {
			userA = v
		}
		if c == 1 && userB < 0 {
			userB = v
		}
	}
	net.Watch(userA)
	net.Watch(userB)
	fmt.Printf("watching users %d and %d on a %d-user network\n", userA, userB, net.N())

	// Phase 1: normal in-community traffic.
	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 20, 0.05, 0.9, rng)
	for _, a := range stream {
		u, v := pl.Graph.Endpoints(a.Edge)
		if err := net.Activate(int(u), int(v), a.T); err != nil {
			log.Fatal(err)
		}
	}
	report("phase 1 (steady in-community traffic)", net.Drain())

	// Snapshot to a buffer (stands in for a file) and restore.
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes\n", buf.Len())
	restored, err := anc.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	restored.Watch(userA)
	restored.Watch(userB)

	// Phase 2 on the restored network: the two communities start talking.
	churn := gen.ChurnStream(pl.Graph, pl.Truth, 40, 0.08, [2]int32{0, 1}, rng)
	t0 := restored.Now()
	for _, a := range churn {
		u, v := pl.Graph.Endpoints(a.Edge)
		if err := restored.Activate(int(u), int(v), t0+a.T); err != nil {
			log.Fatal(err)
		}
	}
	report("phase 2 (restored network, communities 0 and 1 merging)", restored.Drain())

	// Final state: are the watched users in one cluster now?
	level := restored.SqrtLevel()
	together := false
	for _, m := range restored.ClusterOf(userA, level) {
		if m == userB {
			together = true
		}
	}
	fmt.Printf("\nusers %d and %d share a cluster at level %d: %v\n", userA, userB, level, together)
}

func report(phase string, events []anc.ClusterEvent) {
	joins, leaves := 0, 0
	for _, e := range events {
		if e.Joined {
			joins++
		} else {
			leaves++
		}
	}
	fmt.Printf("%s: %d membership changes (%d joins, %d leaves)\n", phase, len(events), joins, leaves)
	for i, e := range events {
		if i == 3 {
			fmt.Printf("  … %d more\n", len(events)-3)
			break
		}
		verb := "left"
		if e.Joined {
			verb = "joined"
		}
		fmt.Printf("  t=%.1f: node %d %s the cluster side of node %d at level %d\n",
			e.Time, e.Node, verb, e.Other, e.Level)
	}
}
