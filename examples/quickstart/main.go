// Quickstart: build a tiny activation network, send a few interactions,
// and query clusters at several granularities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anc"
)

func main() {
	// Two triangles joined by a bridge — the smallest graph with visible
	// community structure.
	//
	//   0 — 1        3 — 4
	//    \  |        |  /
	//      2 —bridge— 3 ... (2–3)
	edges := [][2]int{
		{0, 1}, {1, 2}, {0, 2}, // triangle A
		{3, 4}, {4, 5}, {3, 5}, // triangle B
		{2, 3}, // bridge
	}
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 2
	net, err := anc.NewNetwork(6, edges, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d edges, %d granularity levels\n",
		net.N(), net.M(), net.Levels())

	// Before any activations, structural clustering separates the
	// triangles at a mid granularity. (The very finest level makes every
	// node its own seed, so it always reports singletons.)
	level := 2
	fmt.Printf("\nclusters at level %d (structure only):\n", level)
	for i, c := range net.Clusters(level) {
		fmt.Printf("  cluster %d: %v\n", i, c)
	}
	fmt.Printf("cluster of node 2: %v\n", net.ClusterOf(2, level))

	// Now the bridge endpoints interact heavily: 30 interactions.
	for i := 1; i <= 30; i++ {
		if err := net.Activate(2, 3, float64(i)); err != nil {
			log.Fatal(err)
		}
	}
	s, _ := net.Similarity(2, 3)
	a, _ := net.Activeness(2, 3)
	fmt.Printf("\nafter 30 interactions on the bridge: activeness=%.2f similarity=%.2f\n", a, s)
	fmt.Printf("cluster of node 2 at level %d (temporal + structural): %v\n",
		level, net.ClusterOf(2, level))

	// Zoom out step by step.
	v := net.View()
	for v.ZoomOut() {
	}
	fmt.Printf("\ncoarsest view (level %d): %d clusters\n", v.Level(), len(v.Clusters()))
}
