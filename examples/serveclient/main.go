// Serveclient: the serving layer end to end in one process — an
// ancserve-style TCP server over a small activation network on an
// ephemeral port, and the typed client driving it: batched ingest,
// clustering queries, change watching, and a zoom session, all over the
// wire protocol (DESIGN.md §11).
//
//	go run ./examples/serveclient
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"anc"
	"anc/internal/gen"
	"anc/internal/serve"
	"anc/internal/serve/client"
)

func main() {
	// A community-structured network, wrapped for concurrent serving.
	rng := rand.New(rand.NewSource(7))
	pl := gen.Community(300, 2100, 15, 0.12, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	backend := anc.NewConcurrent(net)
	defer backend.Close()

	// Serve it on an ephemeral loopback port. In production this is
	// `ancserve -addr :7654 -graph g.txt -wal-dir state/`; the in-process
	// server here is the same code path minus the WAL.
	srv := serve.New(backend, serve.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("serving %d-node network on %s\n", backend.N(), addr)

	c, err := client.Dial(addr, client.WithTimeout(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Watch a node, then ingest in-community traffic as batches — one
	// round trip, one backend lock acquisition, per batch.
	if err := c.Watch(ctx, 0); err != nil {
		log.Fatal(err)
	}
	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 12, 0.05, 0.9, rng)
	const per = 64
	for i := 0; i < len(stream); i += per {
		end := i + per
		if end > len(stream) {
			end = len(stream)
		}
		batch := make([]anc.Activation, 0, end-i)
		for _, a := range stream[i:end] {
			u, v := pl.Graph.Endpoints(a.Edge)
			batch = append(batch, anc.Activation{U: int(u), V: int(v), T: a.T})
		}
		if err := c.ActivateBatch(ctx, batch); err != nil {
			log.Fatal(err)
		}
	}

	// Queries over the wire.
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server state: %d nodes, %d edges, %d activations, t=%.1f\n",
		st.Nodes, st.Edges, st.Activations, st.Now)

	clusters, err := c.EvenClusters(ctx, int(st.SqrtLevel))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level %d: %d clusters\n", st.SqrtLevel, len(clusters))

	local, err := c.SmallestClusterOf(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smallest cluster of node 0: %d nodes\n", len(local))

	d, err := c.EstimateDistance(ctx, 0, 299)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated distance(0, 299) = %.3f\n", d)

	// The change events the watch accumulated during ingest.
	events, dropped, err := c.DrainEvents(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 saw %d membership changes (%d dropped)\n", len(events), dropped)

	// A zoom session: server-side state keyed to this connection.
	v, err := c.OpenView(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for {
		members, err := v.ClusterOf(ctx, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  view level %d: cluster of 0 has %d nodes\n", v.Level(), len(members))
		moved, err := v.ZoomIn(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if !moved {
			break
		}
	}
	if err := v.Close(ctx); err != nil {
		log.Fatal(err)
	}

	// Graceful drain: queued ingest commits, then the listener closes.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and shut down")
}
