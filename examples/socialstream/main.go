// Socialstream: simulate a social network whose users chat mostly inside
// their own communities, stream the interactions through the fully online
// ANCO method, and watch a user's local active community respond — the
// scenario the paper's introduction motivates.
//
//	go run ./examples/socialstream
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anc"
	"anc/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A social graph with planted friend groups: 600 users in ~49
	// communities.
	pl := gen.Community(600, 4200, 49, 0.2, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d users, %d friendships\n", net.N(), net.M())

	// Watch user 0's active community as interactions stream in.
	focus := 0
	level := net.SqrtLevel()
	fmt.Printf("watching user %d at granularity level %d (Θ(√n) clusters)\n\n", focus, level)

	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 50, 0.05, 0.9, rng)
	at := 0
	for ts := 1; ts <= 50; ts++ {
		for ; at < len(stream) && stream[at].T <= float64(ts); at++ {
			u, v := pl.Graph.Endpoints(stream[at].Edge)
			if err := net.Activate(int(u), int(v), stream[at].T); err != nil {
				log.Fatal(err)
			}
		}
		if ts%10 == 0 {
			community := net.ClusterOf(focus, level)
			sameTruth := 0
			for _, m := range community {
				if pl.Truth[m] == pl.Truth[focus] {
					sameTruth++
				}
			}
			fmt.Printf("t=%2d: local community of user %d has %3d members "+
				"(%d from the planted friend group)\n",
				ts, focus, len(community), sameTruth)
		}
	}

	// Global report at the default granularity.
	clusters := net.Clusters(level)
	big := 0
	for _, c := range clusters {
		if len(c) >= 3 {
			big++
		}
	}
	fmt.Printf("\nfinal: %d clusters (%d with ≥3 members) at level %d — planted: 49\n",
		len(clusters), big, level)
}
