// Zoomexplore: interactive-style exploration of the granularity hierarchy
// on a mid-size network — the zoom-in / zoom-out operations of Problem 1.
// It builds a 2,000-node collaboration-style graph, streams a burst of
// activity into one community, and walks the zoom ladder around a node,
// printing how its cluster grows as the view coarsens.
//
//	go run ./examples/zoomexplore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anc"
	"anc/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pl := gen.Community(2000, 14000, 89, 0.15, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d, %d zoom levels\n\n", net.N(), net.M(), net.Levels())

	// Pick a focus node from a mid-size community (community sizes are
	// power-law distributed, so node 0 often sits in a giant one).
	sizes := map[int32]int{}
	for _, c := range pl.Truth {
		sizes[c]++
	}
	focus := 0
	for v, c := range pl.Truth {
		if sizes[c] >= 15 && sizes[c] <= 40 {
			focus = v
			break
		}
	}

	// Heat up the focus community: all its internal edges interact for 20
	// timestamps.
	var hot [][2]int
	for e := 0; e < pl.Graph.M(); e++ {
		u, v := pl.Graph.Endpoints(int32(e))
		if pl.Truth[u] == pl.Truth[focus] && pl.Truth[v] == pl.Truth[focus] {
			hot = append(hot, [2]int{int(u), int(v)})
		}
	}
	for ts := 1; ts <= 20; ts++ {
		for _, e := range hot {
			if err := net.Activate(e[0], e[1], float64(ts)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("heated community of node %d (size %d): %d internal edges × 20 timestamps\n\n", focus, sizes[pl.Truth[focus]], len(hot))

	// Walk the ladder from the smallest cluster outward.
	fmt.Printf("zooming out from node %d's smallest cluster:\n", focus)
	v := net.View()
	for v.ZoomIn() {
	} // jump to the finest level
	for {
		members := v.ClusterOf(focus)
		fromGroup := 0
		for _, m := range members {
			if pl.Truth[m] == pl.Truth[focus] {
				fromGroup++
			}
		}
		fmt.Printf("  level %2d: cluster size %4d (%4d from the focus community)\n",
			v.Level(), len(members), fromGroup)
		if !v.ZoomOut() {
			break
		}
	}

	// Report all clusters at the Θ(√n) granularity.
	def := net.SqrtLevel()
	cs := net.Clusters(def)
	big := 0
	for _, c := range cs {
		if len(c) >= 3 {
			big++
		}
	}
	fmt.Printf("\nat the default level %d: %d clusters (%d with ≥3 members)\n", def, len(cs), big)
}
