module anc

go 1.22
