package anc_test

import (
	"bytes"
	"math/rand"
	"testing"

	"anc"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/quality"
)

// TestEndToEndCommunityRecovery: generate a planted community graph,
// stream community-biased activations, and verify the reported clustering
// tracks the planted structure well at the matching granularity.
func TestEndToEndCommunityRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := gen.Community(500, 3500, 16, 0.15, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 30, 0.05, 0.9, rng)
	for _, a := range stream {
		u, v := pl.Graph.Endpoints(a.Edge)
		if err := net.Activate(int(u), int(v), a.T); err != nil {
			t.Fatal(err)
		}
	}
	best := 0.0
	for l := 1; l <= net.Levels(); l++ {
		labels := labelsFromClusters(net.Clusters(l), net.N())
		if nmi := quality.NMI(quality.FilterNoise(labels, 3), pl.Truth); nmi > best {
			best = nmi
		}
	}
	if best < 0.5 {
		t.Fatalf("best NMI across levels = %v, want ≥ 0.5", best)
	}
}

// TestEndToEndDriftTracking: node 0's community goes quiet while it starts
// interacting heavily with another community; its local cluster must
// follow the activity.
func TestEndToEndDriftTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Two explicit communities bridged by node 0's cross edges.
	b := graph.NewBuilder(40)
	for c := 0; c < 2; c++ {
		base := graph.NodeID(c * 20)
		for u := base; u < base+20; u++ {
			for v := u + 1; v < base+20; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v)
				}
			}
		}
	}
	// Node 0 knows five members of the other community.
	for v := graph.NodeID(20); v < 25; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.25
	cfg.Mu = 3
	cfg.Lambda = 0.3
	net, err := anc.FromGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	countSide := func(members []int, lo, hi int) int {
		n := 0
		for _, m := range members {
			if m >= lo && m < hi && m != 0 {
				n++
			}
		}
		return n
	}

	// Phase 1: node 0 interacts within its home community.
	ts := 0.0
	for step := 0; step < 15; step++ {
		ts++
		for _, h := range g.Neighbors(0) {
			if h.To < 20 {
				if err := net.Activate(0, int(h.To), ts); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Background: both communities stay internally active.
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			if u != 0 && v != 0 && rng.Float64() < 0.3 {
				net.Activate(int(u), int(v), ts)
			}
		}
	}
	level := net.SqrtLevel()
	home := net.ClusterOf(0, level)
	if countSide(home, 0, 20) <= countSide(home, 20, 40) {
		t.Fatalf("phase 1: node 0 not grouped with home community: %v", home)
	}

	// Phase 2: node 0 abandons home and interacts only across the bridge,
	// long enough for the home ties to decay.
	for step := 0; step < 60; step++ {
		ts++
		for v := 20; v < 25; v++ {
			if err := net.Activate(0, v, ts); err != nil {
				t.Fatal(err)
			}
		}
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			if u != 0 && v != 0 && rng.Float64() < 0.3 {
				net.Activate(int(u), int(v), ts)
			}
		}
	}
	// Node 0's strongest ties are now the bridge edges.
	sHome, _ := net.Similarity(0, int(g.Neighbors(0)[0].To))
	sAway, _ := net.Similarity(0, 20)
	if sAway <= sHome {
		t.Fatalf("phase 2: bridge similarity %v not above decayed home %v", sAway, sHome)
	}
}

// TestEndToEndSaveLoadContinuity: stream, snapshot, restore, continue;
// final clusterings of the restored and original networks agree.
func TestEndToEndSaveLoadContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pl := gen.Community(200, 1400, 10, 0.15, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.CommunityBiasedStream(pl.Graph, pl.Truth, 20, 0.05, 0.9, rng)
	half := len(stream) / 2
	feed := func(nw *anc.Network, acts []gen.Activation) {
		for _, a := range acts {
			u, v := pl.Graph.Endpoints(a.Edge)
			if err := nw.Activate(int(u), int(v), a.T); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(net, stream[:half])
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := anc.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	feed(net, stream[half:])
	feed(restored, stream[half:])
	for _, l := range []int{2, net.SqrtLevel()} {
		a := labelsFromClusters(net.Clusters(l), net.N())
		b := labelsFromClusters(restored.Clusters(l), restored.N())
		if nmi := quality.NMI(a, b); nmi < 0.999 {
			t.Fatalf("level %d: restored clustering diverged, NMI %v", l, nmi)
		}
	}
}

// TestEndToEndAllMethodsAgreeAtStart: with no activations the three
// methods share S₀, so their clusterings coincide (paper: "They have the
// same performance at time 0").
func TestEndToEndAllMethodsAgreeAtStart(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pl := gen.Community(200, 1200, 10, 0.15, rng)
	var nets []*anc.Network
	for _, m := range []anc.Method{anc.ANCO, anc.ANCOR, anc.ANCF} {
		cfg := anc.DefaultConfig()
		cfg.Method = m
		cfg.Epsilon = 0.3
		cfg.Mu = 3
		cfg.Seed = 77 // same seeds -> same pyramids
		net, err := anc.FromGraph(pl.Graph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, net)
	}
	l := nets[0].SqrtLevel()
	ref := labelsFromClusters(nets[0].Clusters(l), nets[0].N())
	for i, net := range nets[1:] {
		got := labelsFromClusters(net.Clusters(l), net.N())
		if nmi := quality.NMI(ref, got); nmi < 0.999 {
			t.Fatalf("method %d differs at t=0: NMI %v", i+1, nmi)
		}
	}
}

func labelsFromClusters(cs [][]int, n int) []int32 {
	labels := make([]int32, n)
	for i, c := range cs {
		for _, v := range c {
			labels[v] = int32(i)
		}
	}
	return labels
}
