// Package analytics is the live analytics layer over the activation
// stream: continuous-time centrality and cluster-evolution tracking on
// top of the decayed similarity state and the pyramid clusterings.
//
// # TieRank
//
// The decayed-weight matrix S_t is exactly a tie-decay temporal network
// (Ahmad, Porter & Beguerisse-Díaz — see PAPERS.md): every activation
// adds a unit impulse to its edge and all weights decay as e^{-λΔt}.
// TieRank is the dominant-eigenvector centrality of that matrix,
// computed by deterministic power iteration: x ← (S + cI)·x / ‖·‖₂ from
// the uniform positive vector, with a fixed iteration cap and an
// epsilon convergence test. S_t is symmetric and non-negative, so the
// iteration converges to the Perron vector of the dominant component.
// The diagonal shift c = ½·max_v Σ_{e ∋ v} w(e) changes eigenvalues,
// never eigenvectors, and makes the Perron eigenvalue strictly dominant
// in magnitude — plain iteration oscillates forever on bipartite
// structure (λ_min = −λ_max), which real relation graphs contain.
//
// Rescale handling: the similarity store keeps anchored values s*(e)
// with the true weight s_t(e) = s*(e)·g(t) for a single global factor
// g(t) (DESIGN.md §3). A uniform positive scalar cancels under the
// normalization of power iteration, so TieRank runs directly on the
// anchored values — no rescale coordination, and the result is
// identical to iterating the true S_t. The shift keeps this exact:
// c is computed from the same weights, so the true-scale matrix is
// g·(S* + c*I) — the anchored iteration times a scalar. For the same reason the scores
// are constant between ingests: decay multiplies S_t uniformly, so a
// cached Rank stays exact until the next activation changes relative
// weights. That is what makes the RankCache sound (see rankcache.go).
//
// # Cluster evolution
//
// The Tracker (evolution.go) diffs successive clusterings between
// pyramid repairs into typed birth/death/split/merge/grow/shrink events
// held in a bounded ring, riding the coalesced vote-flip notifications
// that also drive the materialized clustering cache.
package analytics

import (
	"math"
	"sort"

	"anc/internal/cluster"
	"anc/internal/graph"
)

// RankConfig bounds the power iteration.
type RankConfig struct {
	// MaxIters caps the number of matrix-vector products.
	MaxIters int
	// Tol is the convergence epsilon: the iteration stops when the
	// max-norm change of the (normalized) vector is at most Tol.
	Tol float64
}

// DefaultRankConfig returns the fixed defaults used across the stack —
// every layer iterating with the same cap and epsilon is part of the
// determinism contract (identical seeds ⇒ identical vectors). The cap
// is sized for slowly-mixing graphs (power iteration converges like
// (λ₂/λ₁)^k, so near-ring topologies need a few hundred products to
// reach Tol); well-clustered graphs stop far earlier.
func DefaultRankConfig() RankConfig {
	return RankConfig{MaxIters: 500, Tol: 1e-12}
}

// Rank is one TieRank computation: the L2-normalized dominant
// eigenvector of the decayed-weight matrix, node-indexed. Immutable
// after construction — snapshots of it are shared lock-free.
type Rank struct {
	// Scores[v] is node v's TieRank centrality, ‖Scores‖₂ = 1.
	Scores []float64
	// Iters is the number of iterations performed; Converged reports
	// whether the epsilon test passed before the cap.
	Iters     int
	Converged bool
	// Now is the network time at which the rank was computed. Scores
	// stay exact until the next ingest (uniform decay cancels), so Now
	// identifies the state, not an expiry.
	Now float64
}

// ComputeRank runs the deterministic power iteration over the graph
// with the given edge weights (the anchored decayed similarities).
// Nodes are visited in ID order and neighbors in CSR order, so the
// float accumulation order — and therefore the result, bit for bit —
// is a pure function of the graph and the weights.
func ComputeRank(g *graph.Graph, weight func(e graph.EdgeID) float64, now float64, cfg RankConfig) *Rank {
	n := g.N()
	r := &Rank{Scores: make([]float64, n), Now: now}
	if n == 0 {
		r.Converged = true
		return r
	}
	if cfg.MaxIters <= 0 {
		cfg = DefaultRankConfig()
	}
	// Spectral shift: half the maximum weighted degree. An upper bound
	// proportional to ‖S‖ keeps the convergence ratio comparable across
	// weight scales (and across rescales, which multiply c and S by the
	// same factor).
	shift := 0.0
	for v := 0; v < n; v++ {
		row := 0.0
		for _, h := range g.Neighbors(graph.NodeID(v)) {
			row += weight(h.Edge)
		}
		if row > shift {
			shift = row
		}
	}
	shift *= 0.5
	x := r.Scores
	for v := range x {
		x[v] = 1
	}
	normalize(x)
	y := make([]float64, n)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		for v := 0; v < n; v++ {
			acc := shift * x[v]
			for _, h := range g.Neighbors(graph.NodeID(v)) {
				acc += weight(h.Edge) * x[h.To]
			}
			y[v] = acc
		}
		if !normalize(y) {
			// S·x vanished (no edges): the uniform vector is as good an
			// answer as any fixed point.
			r.Iters = iter
			r.Converged = true
			return r
		}
		delta := 0.0
		for v := range x {
			d := y[v] - x[v]
			if d < 0 {
				d = -d
			}
			if d > delta {
				delta = d
			}
		}
		x, y = y, x
		r.Iters = iter
		if delta <= cfg.Tol {
			r.Converged = true
			break
		}
	}
	copy(r.Scores, x)
	return r
}

// normalize scales v to unit L2 norm, returning false (and leaving v
// untouched) when the norm is zero or non-finite.
func normalize(v []float64) bool {
	ss := 0.0
	for _, x := range v {
		ss += x * x
	}
	if !(ss > 0) || math.IsInf(ss, 0) {
		return false
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
	return true
}

// NodeScore is one entry of a top-k ranking.
type NodeScore struct {
	Node  graph.NodeID
	Score float64
}

// TopK returns the k highest-scoring nodes in deterministic order:
// score descending, node ID ascending on equal scores. k is clamped to
// [0, len(scores)].
func TopK(scores []float64, k int) []NodeScore {
	if k < 0 {
		k = 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]NodeScore, 0, len(scores))
	for v, s := range scores {
		out = append(out, NodeScore{Node: graph.NodeID(v), Score: s})
	}
	sortScores(out)
	return out[:k:k]
}

// TopKGroups returns, for each cluster of cl in cluster-ID order, the
// cluster's top-k nodes under the same deterministic order as TopK.
func TopKGroups(scores []float64, cl *cluster.Clustering, k int) [][]NodeScore {
	if cl == nil {
		return nil
	}
	groups := make([][]NodeScore, len(cl.Clusters))
	for i, members := range cl.Clusters {
		g := make([]NodeScore, 0, len(members))
		for _, v := range members {
			g = append(g, NodeScore{Node: v, Score: scores[v]})
		}
		sortScores(g)
		kk := k
		if kk < 0 {
			kk = 0
		}
		if kk > len(g) {
			kk = len(g)
		}
		groups[i] = g[:kk:kk]
	}
	return groups
}

// sortScores orders by score descending, node ascending. The node
// tie-break makes the order total, so equal scores (common on symmetric
// graphs) cannot reorder between runs.
func sortScores(s []NodeScore) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Node < s[j].Node
	})
}
