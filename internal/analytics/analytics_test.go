package analytics

import (
	"math"
	"testing"

	"anc/internal/cluster"
	"anc/internal/floats"
	"anc/internal/graph"
)

// buildGraph assembles a graph from an edge list.
func buildGraph(t testing.TB, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// unitWeight weights every edge 1.
func unitWeight(graph.EdgeID) float64 { return 1 }

// TestTieRankStarOracle checks the power iteration against the closed
// form for the unit-weight star K_{1,3}: with center c and leaves l,
// A·x = λx gives λ = √3, x = (1/√2, 1/√6, 1/√6, 1/√6).
func TestTieRankStarOracle(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	r := ComputeRank(g, unitWeight, 0, DefaultRankConfig())
	if !r.Converged {
		t.Fatalf("star did not converge in %d iters", r.Iters)
	}
	want := []float64{1 / math.Sqrt2, 1 / math.Sqrt(6), 1 / math.Sqrt(6), 1 / math.Sqrt(6)}
	for v, w := range want {
		if !floats.Near(r.Scores[v], w, 1e-9) {
			t.Fatalf("node %d: score %v, want %v", v, r.Scores[v], w)
		}
	}
}

// TestTieRankPathOracle checks the path P3: eigenvector (1, √2, 1)/2
// at λ = √2.
func TestTieRankPathOracle(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	r := ComputeRank(g, unitWeight, 0, DefaultRankConfig())
	want := []float64{0.5, math.Sqrt2 / 2, 0.5}
	for v, w := range want {
		if !floats.Near(r.Scores[v], w, 1e-9) {
			t.Fatalf("node %d: score %v, want %v", v, r.Scores[v], w)
		}
	}
}

// TestTieRankBruteForceOracle compares the capped iteration against a
// long-horizon dense-matrix power iteration on a weighted graph — the
// brute-force eigenvector oracle of the acceptance criteria.
func TestTieRankBruteForceOracle(t *testing.T) {
	const n = 12
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	edges = append(edges, [2]int{0, 6}, [2]int{2, 9}, [2]int{3, 8}, [2]int{1, 7})
	g := buildGraph(t, n, edges)
	weight := func(e graph.EdgeID) float64 { return 0.25 + float64(e%7)*0.35 }

	// Dense brute force: y = A·x repeated far past convergence.
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		A[u][v] = weight(graph.EdgeID(e))
		A[v][u] = A[u][v]
	}
	// A deliberately different diagonal shift than ComputeRank's: any
	// positive shift leaves the eigenvector unchanged, so agreement here
	// also checks that the implementation's shift is inert.
	maxRow := 0.0
	for i := range A {
		row := 0.0
		for j := range A[i] {
			row += A[i][j]
		}
		if row > maxRow {
			maxRow = row
		}
	}
	for i := range A {
		A[i][i] = maxRow
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for iter := 0; iter < 10000; iter++ {
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc += A[i][j] * x[j]
			}
			y[i] = acc
		}
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
	}

	r := ComputeRank(g, weight, 0, DefaultRankConfig())
	if !r.Converged {
		t.Fatalf("no convergence in %d iters", r.Iters)
	}
	for v := 0; v < n; v++ {
		if !floats.Near(r.Scores[v], x[v], 1e-8) {
			t.Fatalf("node %d: score %v, brute force %v", v, r.Scores[v], x[v])
		}
	}
}

// TestTieRankDeterministic asserts two computations over the same
// inputs agree bit for bit.
func TestTieRankDeterministic(t *testing.T) {
	g := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	weight := func(e graph.EdgeID) float64 { return 1 + float64(e)*0.1 }
	a := ComputeRank(g, weight, 1, DefaultRankConfig())
	b := ComputeRank(g, weight, 1, DefaultRankConfig())
	for v := range a.Scores {
		if !floats.Eq(a.Scores[v], b.Scores[v]) {
			t.Fatalf("node %d: %v vs %v", v, a.Scores[v], b.Scores[v])
		}
	}
	if a.Iters != b.Iters || a.Converged != b.Converged {
		t.Fatalf("meta mismatch: %+v vs %+v", a, b)
	}
}

// TestTopKOrder checks the deterministic top-k order: score descending,
// node ascending on ties, k clamped.
func TestTopKOrder(t *testing.T) {
	scores := []float64{0.3, 0.7, 0.3, 0.9, 0.1}
	top := TopK(scores, 4)
	wantNodes := []graph.NodeID{3, 1, 0, 2}
	for i, w := range wantNodes {
		if top[i].Node != w {
			t.Fatalf("rank %d: node %d, want %d (%v)", i, top[i].Node, w, top)
		}
	}
	if got := TopK(scores, 99); len(got) != len(scores) {
		t.Fatalf("clamped k: %d entries, want %d", len(got), len(scores))
	}
	if got := TopK(scores, 0); len(got) != 0 {
		t.Fatalf("k=0: %d entries", len(got))
	}
}

// TestTopKGroups checks per-cluster top-k against the cluster order.
func TestTopKGroups(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.4, 0.8}
	cl := mkClustering(5, [][]graph.NodeID{{0, 1, 2}, {3, 4}})
	groups := TopKGroups(scores, cl, 2)
	if len(groups) != 2 {
		t.Fatalf("%d groups", len(groups))
	}
	if groups[0][0].Node != 1 || groups[0][1].Node != 2 {
		t.Fatalf("group 0: %v", groups[0])
	}
	if groups[1][0].Node != 4 || groups[1][1].Node != 3 {
		t.Fatalf("group 1: %v", groups[1])
	}
}

// mkClustering builds a Clustering over n nodes; nodes outside the
// given clusters become singletons appended after them.
func mkClustering(n int, clusters [][]graph.NodeID) *cluster.Clustering {
	cl := &cluster.Clustering{Labels: make([]int32, n)}
	for i := range cl.Labels {
		cl.Labels[i] = -1
	}
	for i, m := range clusters {
		for _, v := range m {
			cl.Labels[v] = int32(i)
		}
		cl.Clusters = append(cl.Clusters, m)
	}
	for v := 0; v < n; v++ {
		if cl.Labels[v] == -1 {
			cl.Labels[v] = int32(len(cl.Clusters))
			cl.Clusters = append(cl.Clusters, []graph.NodeID{graph.NodeID(v)})
		}
	}
	return cl
}

// observe seeds a tracker on first use and diffs on subsequent calls.
func events(t *testing.T, tr *Tracker, states ...*cluster.Clustering) []Event {
	t.Helper()
	for i, s := range states {
		if i == 0 {
			tr.Seed(s)
			continue
		}
		tr.Observe(s, float64(i))
	}
	evs, _, _ := tr.Events(0)
	return evs
}

// TestEvolutionGrowShrink: one node migrating between two mutually
// matched clusters emits exactly grow + shrink.
func TestEvolutionGrowShrink(t *testing.T) {
	tr := NewTracker(2, DefaultTrackerConfig())
	old := mkClustering(10, [][]graph.NodeID{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	cur := mkClustering(10, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9}})
	evs := events(t, tr, old, cur)
	if len(evs) != 2 {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Type != EventGrow || evs[0].Node != 0 || evs[0].Size != 6 || evs[0].PrevSize != 5 {
		t.Fatalf("grow: %+v", evs[0])
	}
	if evs[1].Type != EventShrink || evs[1].Node != 6 || evs[1].Size != 4 || evs[1].PrevSize != 5 {
		t.Fatalf("shrink: %+v", evs[1])
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seqs: %+v", evs)
	}
}

// TestEvolutionSplitMerge: a cluster breaking in two emits one split;
// fusing back emits one merge — no redundant size events.
func TestEvolutionSplitMerge(t *testing.T) {
	tr := NewTracker(3, DefaultTrackerConfig())
	whole := mkClustering(10, [][]graph.NodeID{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	halves := mkClustering(10, [][]graph.NodeID{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	evs := events(t, tr, whole, halves, whole)
	if len(evs) != 2 {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Type != EventSplit || evs[0].Node != 0 || evs[0].PrevSize != 10 || evs[0].Size != 2 {
		t.Fatalf("split: %+v", evs[0])
	}
	if evs[1].Type != EventMerge || evs[1].Node != 0 || evs[1].Size != 10 || evs[1].PrevSize != 2 {
		t.Fatalf("merge: %+v", evs[1])
	}
	if evs[0].Level != 3 || evs[1].Level != 3 {
		t.Fatalf("levels: %+v", evs)
	}
}

// TestEvolutionBirthDeath: dissolving into noise is a death; condensing
// out of noise is a birth.
func TestEvolutionBirthDeath(t *testing.T) {
	tr := NewTracker(1, DefaultTrackerConfig())
	old := mkClustering(12, [][]graph.NodeID{{0, 1, 2, 3}})
	cur := mkClustering(12, [][]graph.NodeID{{8, 9, 10, 11}})
	evs := events(t, tr, old, cur)
	if len(evs) != 2 {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Type != EventDeath || evs[0].Node != 0 || evs[0].PrevSize != 4 || evs[0].Size != 0 {
		t.Fatalf("death: %+v", evs[0])
	}
	if evs[1].Type != EventBirth || evs[1].Node != 8 || evs[1].Size != 4 || evs[1].PrevSize != 0 {
		t.Fatalf("birth: %+v", evs[1])
	}
}

// TestEvolutionContinuationQuiet: an unchanged clustering — and one
// with churn only below MinSize — emits nothing.
func TestEvolutionContinuationQuiet(t *testing.T) {
	tr := NewTracker(1, DefaultTrackerConfig())
	a := mkClustering(8, [][]graph.NodeID{{0, 1, 2, 3}})
	b := mkClustering(8, [][]graph.NodeID{{0, 1, 2, 3}})
	evs := events(t, tr, a, b, a)
	if len(evs) != 0 {
		t.Fatalf("events on continuation: %+v", evs)
	}
}

// TestEvolutionRingOverflow: the bounded ring overwrites its oldest
// events and counts every loss; the cursor read is non-draining.
func TestEvolutionRingOverflow(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Cap = 4
	tr := NewTracker(1, cfg)
	a := mkClustering(12, [][]graph.NodeID{{0, 1, 2, 3}})
	b := mkClustering(12, [][]graph.NodeID{{8, 9, 10, 11}})
	tr.Seed(a)
	for i, s := range []*cluster.Clustering{b, a, b} {
		tr.Observe(s, float64(i)) // each flip emits death + birth
	}
	evs, seq, dropped := tr.Events(0)
	if seq != 6 || dropped != 2 {
		t.Fatalf("seq %d dropped %d, want 6 and 2", seq, dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("ring: %+v", evs)
	}
	// Cursor semantics: the same read again, then a strict subset.
	again, _, _ := tr.Events(0)
	if len(again) != 4 {
		t.Fatalf("drained on read: %+v", again)
	}
	tail, _, _ := tr.Events(5)
	if len(tail) != 1 || tail[0].Seq != 6 {
		t.Fatalf("since=5: %+v", tail)
	}
	if tr.DroppedTotal() != 2 {
		t.Fatalf("dropped total %d", tr.DroppedTotal())
	}
}

// TestNilSafety: every probe-layer method tolerates nil receivers.
func TestNilSafety(t *testing.T) {
	var c *RankCache
	if _, ok := c.Get(); ok {
		t.Fatal("nil cache hit")
	}
	c.Store(&Rank{})
	c.Invalidate()
	c.Instrument(nil)
	var tr *Tracker
	tr.Seed(nil)
	tr.Observe(nil, 0)
	if evs, seq, dropped := tr.Events(0); evs != nil || seq != 0 || dropped != 0 {
		t.Fatal("nil tracker events")
	}
	if tr.DroppedTotal() != 0 || tr.Seq() != 0 || tr.Level() != 0 {
		t.Fatal("nil tracker stats")
	}
}
