// Cluster-evolution tracking: diffing successive clusterings at one
// granularity level into typed birth/death/split/merge/grow/shrink
// events.
//
// # Diff algorithm
//
// Let P (previous) and C (current) be the power clusterings at the
// tracked level, restricted to clusters with at least MinSize members
// (the paper treats smaller clusters as noise, and singleton churn
// would drown the signal). For an old cluster o and a new cluster n,
// overlap(o, n) counts shared members. With matching threshold θ
// (default 0.5):
//
//   - o "moved into" n   iff overlap(o, n) ≥ θ·|o|  — most of o's
//     members land in n;
//   - n "derives from" o iff overlap(o, n) ≥ θ·|n|  — most of n's
//     members came from o.
//
// Events, in deterministic order (old clusters by ID, then new
// clusters by ID; members and overlaps are accumulated in member
// order, so the whole diff is a pure function of the two label
// arrays):
//
//   - Split(o):  ≥ 2 new clusters derive from o. Node is o's smallest
//     member, PrevSize = |o|, Size = number of fragments.
//   - Death(o):  o moved nowhere and no new cluster derives from it —
//     it dissolved below the matching threshold. Size = 0.
//   - Merge(n):  ≥ 2 old clusters moved into n. Node is n's smallest
//     member, Size = |n|, PrevSize = number of sources.
//   - Birth(n):  no old cluster moved into n and n derives from
//     nothing — it condensed from noise or fragments. PrevSize = 0.
//   - Grow/Shrink(n): n is mutually matched to exactly the o with the
//     largest overlap (both directions ≥ θ) and |n| ≠ |o|; same-size
//     continuations emit nothing, however much membership churned.
//
// A cluster consumed by a merge or produced by a split emits only the
// merge/split event, not a redundant grow/shrink.
//
// The event ring reuses the Watcher's bounded-buffer pattern
// (internal/core/watch.go, cap 1<<16) with one difference: reads do
// not drain. Events(since) is an idempotent cursor read — safe to
// retry, identical on a caught-up follower — so the ring overwrites
// its oldest entry when full and counts the overwrite in DroppedTotal,
// surfaced through anc.Stats and /healthz like WatcherDrops.

package analytics

import (
	"fmt"
	"sync/atomic"

	"anc/internal/cluster"
	"anc/internal/graph"
	"anc/internal/obs"
)

// EventType classifies one cluster transition.
type EventType uint8

const (
	// EventBirth: a cluster appeared with no majority ancestor.
	EventBirth EventType = iota + 1
	// EventDeath: a cluster dissolved below the matching threshold.
	EventDeath
	// EventSplit: one cluster broke into ≥ 2 fragments.
	EventSplit
	// EventMerge: ≥ 2 clusters fused into one.
	EventMerge
	// EventGrow: a matched cluster gained members.
	EventGrow
	// EventShrink: a matched cluster lost members.
	EventShrink
)

// String returns the stable lower-case name used on the CLI and in logs.
func (t EventType) String() string {
	switch t {
	case EventBirth:
		return "birth"
	case EventDeath:
		return "death"
	case EventSplit:
		return "split"
	case EventMerge:
		return "merge"
	case EventGrow:
		return "grow"
	case EventShrink:
		return "shrink"
	}
	return fmt.Sprintf("event-%d", uint8(t))
}

// Event is one typed cluster transition. Seq numbers events from 1 in
// emission order; Node is the smallest member ID of the cluster
// concerned (the old cluster for death/split, the new one otherwise).
// Size and PrevSize are type-dependent — see the file comment.
type Event struct {
	Seq      uint64
	Type     EventType
	Level    int32
	Node     graph.NodeID
	Size     int32
	PrevSize int32
	// Time is the network time of the repair that produced the event.
	Time float64
}

// DefaultEventCap bounds the ring — the same cap as the Watcher's
// event buffer.
const DefaultEventCap = 1 << 16

// TrackerConfig tunes the diff.
type TrackerConfig struct {
	// Threshold is the matching fraction θ in (0, 1]; default 0.5.
	Threshold float64
	// MinSize filters noise clusters from both sides; default 3.
	MinSize int
	// Cap is the ring capacity; default DefaultEventCap.
	Cap int
}

// DefaultTrackerConfig returns the defaults shared by every layer.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{Threshold: 0.5, MinSize: 3, Cap: DefaultEventCap}
}

// Tracker accumulates evolution events at one granularity level.
// Observe is called from the exclusive-writer (ingest) context only;
// Events and Seq are called under at least the facade's shared lock.
// DroppedTotal is an always-on atomic, readable from any goroutine
// (the metrics scraper samples it without a lock).
type Tracker struct {
	level int
	cfg   TrackerConfig

	prev *cluster.Clustering

	ring  []Event
	start int // index of the oldest buffered event
	count int

	seq          uint64
	droppedTotal atomic.Uint64

	events      *obs.Counter   // nil until Instrument; nil-safe
	diffSeconds *obs.Histogram // nil until Instrument; nil-safe

	// diff scratch, reused across Observe calls.
	overlapCnt []int32
	touched    []int32
}

// NewTracker returns a tracker for the given level. Zero config fields
// fall back to the defaults.
func NewTracker(level int, cfg TrackerConfig) *Tracker {
	def := DefaultTrackerConfig()
	if !(cfg.Threshold > 0) || cfg.Threshold > 1 {
		cfg.Threshold = def.Threshold
	}
	if cfg.MinSize < 1 {
		cfg.MinSize = def.MinSize
	}
	if cfg.Cap < 1 {
		cfg.Cap = def.Cap
	}
	return &Tracker{level: level, cfg: cfg}
}

// Level returns the tracked granularity level.
func (t *Tracker) Level() int {
	if t == nil {
		return 0
	}
	return t.level
}

// Seed installs the baseline clustering without emitting events — the
// state at enable time is the ancestor of the first diff, not a storm
// of births. cl is retained and must not be mutated afterwards.
func (t *Tracker) Seed(cl *cluster.Clustering) {
	if t == nil {
		return
	}
	t.prev = cl
}

// Observe diffs the previous clustering against cur, appending the
// resulting events at the given network time, and makes cur the new
// baseline. Exclusive-writer context only. cur is retained and must
// not be mutated afterwards.
func (t *Tracker) Observe(cur *cluster.Clustering, now float64) {
	if t == nil || cur == nil {
		return
	}
	prev := t.prev
	t.prev = cur
	if prev == nil {
		return
	}
	w := t.diffSeconds.Start()
	t.diff(prev, cur, now)
	w.Stop()
}

// push appends one event, overwriting the oldest when the ring is full.
func (t *Tracker) push(e Event) {
	t.seq++
	e.Seq = t.seq
	t.events.Inc()
	if len(t.ring) < t.cfg.Cap {
		t.ring = append(t.ring, e)
		t.count++
		return
	}
	// Full: overwrite the oldest and count the loss.
	t.ring[t.start] = e
	t.start = (t.start + 1) % len(t.ring)
	t.droppedTotal.Add(1)
}

// Events returns the buffered events with Seq > since, in order,
// together with the latest sequence number and the cumulative
// overwrite count. The read is idempotent — nothing drains — so
// retries and replica comparisons see the same answer.
func (t *Tracker) Events(since uint64) (events []Event, seq, dropped uint64) {
	if t == nil {
		return nil, 0, 0
	}
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		e := t.ring[(t.start+i)%len(t.ring)]
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out, t.seq, t.droppedTotal.Load()
}

// Seq returns the sequence number of the newest event (0 when none).
func (t *Tracker) Seq() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// DroppedTotal returns the cumulative number of events overwritten
// before anyone could read them. Safe from any goroutine.
func (t *Tracker) DroppedTotal() uint64 {
	if t == nil {
		return 0
	}
	return t.droppedTotal.Load()
}

// Instrument exposes the tracker under anc_analytics_evolution_*:
// emitted events, ring overwrites, and diff latency. Idempotent;
// nil-safe.
func (t *Tracker) Instrument(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.events = reg.Counter("anc_analytics_evolution_events_total",
		"cluster-evolution events emitted by the tracker")
	reg.CounterFunc("anc_analytics_evolution_drops_total",
		"evolution events overwritten in the ring before being read",
		func() float64 { return float64(t.droppedTotal.Load()) })
	t.diffSeconds = reg.Histogram("anc_analytics_evolution_diff_seconds",
		"latency of one clustering diff between pyramid repairs", nil)
}

// effective lists the cluster IDs of cl with at least MinSize members.
func (t *Tracker) effective(cl *cluster.Clustering) []int32 {
	ids := make([]int32, 0, len(cl.Clusters))
	for i, m := range cl.Clusters {
		if len(m) >= t.cfg.MinSize {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// rep returns the smallest member ID of a cluster — the stable
// representative reported in events.
func rep(members []graph.NodeID) graph.NodeID {
	r := members[0]
	for _, v := range members[1:] {
		if v < r {
			r = v
		}
	}
	return r
}

// diff implements the algorithm of the file comment.
func (t *Tracker) diff(prev, cur *cluster.Clustering, now float64) {
	oldIDs := t.effective(prev)
	newIDs := t.effective(cur)
	if len(oldIDs) == 0 && len(newIDs) == 0 {
		return
	}
	newOK := make([]bool, cur.NumClusters())
	for _, n := range newIDs {
		newOK[n] = true
	}

	// Overlaps, sparse: for each effective old cluster, the effective new
	// clusters its members land in, in first-touch (member) order; the
	// transpose accumulates per-new source lists in old-ID order.
	type edge struct {
		id  int32
		cnt int32
	}
	fromOld := make(map[int32][]edge, len(oldIDs)) // keyed by old ID, built per old cluster
	intoNew := make(map[int32][]edge, len(newIDs)) // keyed by new ID
	if cap(t.overlapCnt) < cur.NumClusters() {
		t.overlapCnt = make([]int32, cur.NumClusters())
	}
	cnt := t.overlapCnt[:cur.NumClusters()]
	for _, o := range oldIDs {
		t.touched = t.touched[:0]
		for _, v := range prev.Clusters[o] {
			n := cur.Labels[v]
			if n < 0 || !newOK[n] {
				continue
			}
			if cnt[n] == 0 {
				t.touched = append(t.touched, n)
			}
			cnt[n]++
		}
		for _, n := range t.touched {
			fromOld[o] = append(fromOld[o], edge{id: n, cnt: cnt[n]})
			intoNew[n] = append(intoNew[n], edge{id: o, cnt: cnt[n]})
			cnt[n] = 0
		}
	}

	θ := t.cfg.Threshold
	meets := func(c, size int32) bool { return float64(c) >= θ*float64(size) }

	// Pass 1 — old clusters in ID order: splits and deaths.
	splitOld := make(map[int32]bool)
	for _, o := range oldIDs {
		oSize := int32(len(prev.Clusters[o]))
		fragments := 0
		moved := false
		for _, e := range fromOld[o] {
			if meets(e.cnt, int32(len(cur.Clusters[e.id]))) {
				fragments++
			}
			if meets(e.cnt, oSize) {
				moved = true
			}
		}
		switch {
		case fragments >= 2:
			splitOld[o] = true
			t.push(Event{Type: EventSplit, Level: int32(t.level),
				Node: rep(prev.Clusters[o]), Size: int32(fragments),
				PrevSize: oSize, Time: now})
		case fragments == 0 && !moved:
			t.push(Event{Type: EventDeath, Level: int32(t.level),
				Node: rep(prev.Clusters[o]), Size: 0,
				PrevSize: oSize, Time: now})
		}
	}

	// Pass 2 — new clusters in ID order: merges, births, grow/shrink.
	for _, n := range newIDs {
		nSize := int32(len(cur.Clusters[n]))
		sources := 0
		derives := false
		var best edge
		for _, e := range intoNew[n] {
			oSize := int32(len(prev.Clusters[e.id]))
			if meets(e.cnt, oSize) {
				sources++
			}
			if meets(e.cnt, nSize) {
				derives = true
			}
			if e.cnt > best.cnt {
				best = e
			}
		}
		switch {
		case sources >= 2:
			t.push(Event{Type: EventMerge, Level: int32(t.level),
				Node: rep(cur.Clusters[n]), Size: nSize,
				PrevSize: int32(sources), Time: now})
		case sources == 0 && !derives:
			t.push(Event{Type: EventBirth, Level: int32(t.level),
				Node: rep(cur.Clusters[n]), Size: nSize,
				PrevSize: 0, Time: now})
		default:
			oSize := int32(len(prev.Clusters[best.id]))
			if !meets(best.cnt, oSize) || !meets(best.cnt, nSize) || splitOld[best.id] {
				break // one-sided match or split fragment: no size event
			}
			if nSize > oSize {
				t.push(Event{Type: EventGrow, Level: int32(t.level),
					Node: rep(cur.Clusters[n]), Size: nSize,
					PrevSize: oSize, Time: now})
			} else if nSize < oSize {
				t.push(Event{Type: EventShrink, Level: int32(t.level),
					Node: rep(cur.Clusters[n]), Size: nSize,
					PrevSize: oSize, Time: now})
			}
		}
	}
}
