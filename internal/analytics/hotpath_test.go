package analytics

import (
	"testing"

	"anc/internal/obs"
)

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath
// contract (DESIGN.md §14) for the TieRank snapshot probe: probing a
// populated, an empty and a nil cache must not allocate — facades probe
// it before taking their locks on every TieRank query.
func TestHotPathAllocs(t *testing.T) {
	c := NewRankCache()
	c.Instrument(obs.NewRegistry())
	c.Store(&Rank{Scores: []float64{1}, Converged: true})
	empty := NewRankCache()
	var nilCache *RankCache
	if n := testing.AllocsPerRun(1000, func() {
		c.Get()     // hit
		empty.Get() // miss probe
		nilCache.Get()
		c.Stats()
	}); n != 0 {
		t.Fatalf("rank probe allocates %v times per run, want 0", n)
	}
}

// BenchmarkHotPathRankProbe measures the lock-free probe; run with
// -benchmem by make bench-smoke so an allocation regression is visible.
func BenchmarkHotPathRankProbe(b *testing.B) {
	c := NewRankCache()
	c.Store(&Rank{Scores: []float64{1}, Converged: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(); !ok {
			b.Fatal("probe missed")
		}
	}
}
