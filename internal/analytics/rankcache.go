// The TieRank snapshot cache. Same two-phase protocol as the
// materialized clustering cache (internal/cluster/cache): probes are a
// single lock-free atomic load, stores are first-store-wins CAS under
// the facade's shared lock, and invalidation happens only from the
// exclusive-writer context — here on *every* ingest, because any
// activation changes relative edge weights and therefore the
// eigenvector. Between ingests the cached Rank is exact: decay scales
// S_t uniformly and uniform scalars cancel under normalization (see the
// package comment), so unlike the clustering cache no vote-flip
// granularity is needed — the cache is one slot, valid or empty.

package analytics

import (
	"sync/atomic"

	"anc/internal/obs"
)

// RankCache holds at most one valid Rank snapshot. All methods are safe
// on a nil *RankCache (probes miss, stores and invalidations no-op), so
// layers need no "is analytics enabled" branch.
type RankCache struct {
	snap atomic.Pointer[Rank]

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	computeSecs   *obs.Histogram // nil until Instrument; nil-safe
}

// NewRankCache returns an empty cache.
func NewRankCache() *RankCache { return &RankCache{} }

// Get returns the cached Rank, if one is valid. The hit path is one
// atomic load and two predictable branches — no locks, no allocation.
// The returned Rank is shared and must not be mutated.
//
//anclint:hotpath
func (c *RankCache) Get() (*Rank, bool) {
	if c == nil {
		return nil, false
	}
	if r := c.snap.Load(); r != nil {
		c.hits.Add(1)
		return r, true
	}
	return nil, false
}

// Store publishes a freshly computed Rank. The caller must hold at
// least the facade's shared lock (so no invalidation is concurrently in
// flight) and r must be computed from the current state; concurrent
// stores keep the first published entry — the inputs are identical, so
// the results are too. Counted as one miss: every store is the tail of
// a probe that found nothing.
func (c *RankCache) Store(r *Rank) {
	if c == nil || r == nil {
		return
	}
	c.misses.Add(1)
	c.snap.CompareAndSwap(nil, r)
}

// Invalidate drops the snapshot. Exclusive-writer context only — the
// ingest paths call it after every batch, because any activation moves
// relative weights. A no-op when the slot is already empty, so a batch
// that follows an un-probed period costs one load.
func (c *RankCache) Invalidate() {
	if c == nil {
		return
	}
	if c.snap.Load() == nil {
		return
	}
	c.snap.Store(nil)
	c.invalidations.Add(1)
}

// Stats returns the cumulative hit, miss and invalidation totals.
func (c *RankCache) Stats() (hits, misses, invalidations uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.invalidations.Load()
}

// ComputeTimer returns a running timer against the rank-compute
// histogram (a zero-cost no-op before Instrument). The compute path
// brackets ComputeRank with it.
func (c *RankCache) ComputeTimer() obs.Timer {
	if c == nil {
		return obs.Timer{}
	}
	return c.computeSecs.Start()
}

// Instrument exposes the cache under the anc_analytics_rank_* families:
// hit/miss/invalidation totals sampled from the always-on atomics and a
// histogram of full TieRank computation latency. Nil receiver or
// registry is a no-op; idempotent.
func (c *RankCache) Instrument(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("anc_analytics_rank_hits_total",
		"TieRank queries served lock-free from the cached eigenvector",
		func() float64 { return float64(c.hits.Load()) })
	reg.CounterFunc("anc_analytics_rank_misses_total",
		"TieRank queries that ran the power iteration and stored the result",
		func() float64 { return float64(c.misses.Load()) })
	reg.CounterFunc("anc_analytics_rank_invalidations_total",
		"cached TieRank snapshots dropped by ingest",
		func() float64 { return float64(c.invalidations.Load()) })
	c.computeSecs = reg.Histogram("anc_analytics_rank_compute_seconds",
		"latency of a full TieRank power iteration", nil)
}
