// Package agglo implements greedy agglomerative modularity clustering
// (Clauset–Newman–Moore style): starting from singletons, repeatedly merge
// the pair of connected communities with the largest modularity gain,
// recording the full merge history. Cutting the dendrogram at any k gives
// a hierarchy of clusterings — the classical way to support zoom-in /
// zoom-out that the paper's Related Work dismisses as prohibitive on
// massive activation networks ("the time-consuming optimization of each
// iteration"). It serves as the zoom ablation comparator: correct
// hierarchies, but every timestamp requires full recomputation, whereas
// the pyramids maintain all O(log n) granularities incrementally.
package agglo

import (
	"container/heap"

	"anc/internal/graph"
)

// Dendrogram records the merge history: Merges[i] joined communities A
// and B (labels in the working space) into a new community at step i.
type Dendrogram struct {
	n      int
	merges []merge
}

type merge struct {
	a, b int32
	gain float64
}

// mergeCand is a candidate pair in the priority queue.
type mergeCand struct {
	a, b  int32
	gain  float64
	stamp int64 // freshness check against comVersion
}

type candHeap []mergeCand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(mergeCand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Build runs the greedy merging to a single component per connected
// component and returns the dendrogram. O(m log m)-ish with a lazy heap.
func Build(g *graph.Graph, w []float64) *Dendrogram {
	n := g.N()
	d := &Dendrogram{n: n}
	var totalW float64
	for e := 0; e < g.M(); e++ {
		totalW += w[e]
	}
	if totalW == 0 {
		return d
	}
	m2 := 2 * totalW
	// Community state: weighted degree a_i, inter-community weights.
	comDeg := make([]float64, n)
	adj := make([]map[int32]float64, n)
	version := make([]int64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int32]float64{}
		alive[v] = true
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		comDeg[u] += w[e]
		comDeg[v] += w[e]
		adj[u][v] += w[e]
		adj[v][u] += w[e]
	}
	gain := func(a, b int32) float64 {
		return 2 * (adj[a][b]/m2 - (comDeg[a]/m2)*(comDeg[b]/m2))
	}
	h := &candHeap{}
	for a := int32(0); int(a) < n; a++ {
		for b := range adj[a] {
			if b > a {
				heap.Push(h, mergeCand{a, b, gain(a, b), 0})
			}
		}
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(mergeCand)
		if !alive[c.a] || !alive[c.b] {
			continue
		}
		if c.stamp != version[c.a]+version[c.b] {
			// Stale: re-evaluate and push back if still connected.
			if _, ok := adj[c.a][c.b]; ok {
				heap.Push(h, mergeCand{c.a, c.b, gain(c.a, c.b), version[c.a] + version[c.b]})
			}
			continue
		}
		// Merge b into a.
		d.merges = append(d.merges, merge{c.a, c.b, c.gain})
		alive[c.b] = false
		version[c.a]++
		for nb, wt := range adj[c.b] {
			if nb == c.a {
				continue
			}
			delete(adj[nb], c.b)
			adj[c.a][nb] += wt
			adj[nb][c.a] += wt
		}
		delete(adj[c.a], c.b)
		comDeg[c.a] += comDeg[c.b]
		// Push fresh candidates for a's neighborhood.
		for nb := range adj[c.a] {
			if alive[nb] {
				heap.Push(h, mergeCand{c.a, nb, gain(c.a, nb), version[c.a] + version[nb]})
			}
		}
	}
	return d
}

// NumMerges returns the number of merge steps (n - #components).
func (d *Dendrogram) NumMerges() int { return len(d.merges) }

// Cut returns the clustering after applying the first `steps` merges —
// i.e. with n − steps clusters (plus isolated components). Clamp: steps
// outside [0, NumMerges()] are truncated. O(n α(n)).
func (d *Dendrogram) Cut(steps int) []int32 {
	if steps < 0 {
		steps = 0
	}
	if steps > len(d.merges) {
		steps = len(d.merges)
	}
	parent := make([]int32, d.n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.merges[:steps] {
		ra, rb := find(m.a), find(m.b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	labels := make([]int32, d.n)
	remap := map[int32]int32{}
	for v := range labels {
		r := find(int32(v))
		id, ok := remap[r]
		if !ok {
			id = int32(len(remap))
			remap[r] = id
		}
		labels[v] = id
	}
	return labels
}

// CutAt returns a clustering with (approximately) k clusters.
func (d *Dendrogram) CutAt(k int) []int32 {
	steps := d.n - k
	return d.Cut(steps)
}
