package agglo

import (
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func pairedCliques(t testing.TB) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder(12)
	for base := graph.NodeID(0); base <= 6; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return g, w
}

func TestCutAtTwoRecoversCliques(t *testing.T) {
	g, w := pairedCliques(t)
	d := Build(g, w)
	labels := d.CutAt(2)
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(labels, truth); nmi < 0.99 {
		t.Fatalf("NMI = %v, labels = %v", nmi, labels)
	}
}

func TestDendrogramHierarchy(t *testing.T) {
	g, w := pairedCliques(t)
	d := Build(g, w)
	if d.NumMerges() != 11 { // connected graph: n-1 merges
		t.Fatalf("merges = %d, want 11", d.NumMerges())
	}
	// The hierarchy is nested: each additional merge step can only merge
	// clusters, never split them.
	prev := d.Cut(0)
	for s := 1; s <= d.NumMerges(); s++ {
		cur := d.Cut(s)
		// Every pair co-clustered in prev stays co-clustered in cur.
		for u := 0; u < 12; u++ {
			for v := u + 1; v < 12; v++ {
				if prev[u] == prev[v] && cur[u] != cur[v] {
					t.Fatalf("hierarchy not nested at step %d", s)
				}
			}
		}
		prev = cur
	}
	// Cut(0) = singletons, full cut = one cluster.
	if quality.NumClusters(d.Cut(0)) != 12 {
		t.Fatal("cut 0 not singletons")
	}
	if quality.NumClusters(d.Cut(d.NumMerges())) != 1 {
		t.Fatal("full cut not a single cluster")
	}
}

func TestCutClamping(t *testing.T) {
	g, w := pairedCliques(t)
	d := Build(g, w)
	if quality.NumClusters(d.Cut(-5)) != 12 {
		t.Fatal("negative steps not clamped")
	}
	if quality.NumClusters(d.Cut(99)) != 1 {
		t.Fatal("excess steps not clamped")
	}
}

func TestZeroWeights(t *testing.T) {
	g, w := pairedCliques(t)
	for i := range w {
		w[i] = 0
	}
	d := Build(g, w)
	if d.NumMerges() != 0 {
		t.Fatalf("zero-weight graph merged %d times", d.NumMerges())
	}
	if quality.NumClusters(d.CutAt(3)) != 12 {
		t.Fatal("zero-weight cut not singletons")
	}
}

func TestDisconnectedComponents(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	w := []float64{1, 1, 1, 1}
	d := Build(g, w)
	if d.NumMerges() != 4 { // n - #components = 6 - 2
		t.Fatalf("merges = %d, want 4", d.NumMerges())
	}
	labels := d.Cut(d.NumMerges())
	if quality.NumClusters(labels) != 2 {
		t.Fatalf("full cut clusters = %d, want 2", quality.NumClusters(labels))
	}
	if labels[0] == labels[3] {
		t.Fatal("components merged")
	}
}
