// Package attractor implements Attractor (Shao et al., KDD 2015) —
// community detection by distance dynamics, the ATTR baseline and the
// conceptual ancestor of the paper's local reinforcement. Edge distances
// start from Jaccard distance and evolve under three interaction patterns
// (direct, common-neighbor, exclusive-neighbor) until they polarize to
// 0 (same community) or 1 (cut), or MaxIter is reached. As the paper notes,
// each iteration costs O(d·m) and tens of iterations are typical — it is
// the slow offline baseline of Table IV.
package attractor

import (
	"math"

	"anc/internal/graph"
)

// Params controls the dynamics.
type Params struct {
	// Cohesion is the λ parameter of Attractor's exclusive-neighbor
	// pattern (0.5 in the original paper; named Cohesion here to avoid
	// clashing with the decay factor λ).
	Cohesion float64
	// MaxIter bounds the number of iterations (paper: 3–50).
	MaxIter int
}

// DefaultParams mirrors the original paper.
func DefaultParams() Params { return Params{Cohesion: 0.5, MaxIter: 50} }

// jaccard returns the closed-neighborhood Jaccard similarity of u, v.
func jaccard(g *graph.Graph, u, v graph.NodeID) float64 {
	common := 0
	g.CommonNeighbors(u, v, func(graph.NodeID, graph.EdgeID, graph.EdgeID) { common++ })
	inter := float64(common)
	if g.FindEdge(u, v) != graph.None {
		inter += 2 // u in Γ(v), v in Γ(u)
	}
	union := float64(g.Degree(u)+1) + float64(g.Degree(v)+1) - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Cluster runs the distance dynamics and returns a dense label per node:
// connected components after removing edges whose distance converged to 1.
func Cluster(g *graph.Graph, p Params) []int32 {
	m := g.M()
	d := make([]float64, m)
	for e := 0; e < m; e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		d[e] = 1 - jaccard(g, u, v)
	}
	// sim of two (possibly non-adjacent) nodes, used by the exclusive
	// pattern; adjacent pairs use 1-d to reflect the dynamic state.
	simOf := func(u, v graph.NodeID) float64 {
		if e := g.FindEdge(u, v); e != graph.None {
			return 1 - d[e]
		}
		return jaccard(g, u, v)
	}
	delta := make([]float64, m)
	for iter := 0; iter < p.MaxIter; iter++ {
		converged := true
		for e := 0; e < m; e++ {
			if d[e] > 0 && d[e] < 1 {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		for e := 0; e < m; e++ {
			de := d[e]
			if de <= 0 || de >= 1 {
				delta[e] = 0
				continue
			}
			u, v := g.Endpoints(graph.EdgeID(e))
			degU, degV := float64(g.Degree(u)), float64(g.Degree(v))
			// Direct linear influence.
			di := -(math.Sin(1-de)/degU + math.Sin(1-de)/degV)
			// Common-neighbor influence.
			ci := 0.0
			g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
				ci += -(math.Sin(1-d[eu])*(1-d[ev]))/degU - (math.Sin(1-d[ev])*(1-d[eu]))/degV
			})
			// Exclusive-neighbor influence.
			ei := 0.0
			g.ExclusiveNeighbors(u, v, func(w graph.NodeID, ew graph.EdgeID) {
				rho := simOf(w, v) - p.Cohesion
				ei += -math.Sin(1-d[ew]) * rho / degU
			})
			g.ExclusiveNeighbors(v, u, func(w graph.NodeID, ew graph.EdgeID) {
				rho := simOf(w, u) - p.Cohesion
				ei += -math.Sin(1-d[ew]) * rho / degV
			})
			delta[e] = di + ci + ei
		}
		for e := 0; e < m; e++ {
			d[e] += delta[e]
			if d[e] < 0 {
				d[e] = 0
			}
			if d[e] > 1 {
				d[e] = 1
			}
		}
	}
	// Components over edges that did not converge to a cut.
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	var stack []graph.NodeID
	for v := 0; v < g.N(); v++ {
		if labels[v] >= 0 {
			continue
		}
		id := next
		next++
		labels[v] = id
		stack = append(stack[:0], graph.NodeID(v))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(x) {
				if labels[h.To] < 0 && d[h.Edge] < 1 {
					labels[h.To] = id
					stack = append(stack, h.To)
				}
			}
		}
	}
	return labels
}
