package attractor

import (
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func build(t testing.TB, n int, edges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestSeparatesTwoCliques(t *testing.T) {
	var edges [][2]graph.NodeID
	for base := graph.NodeID(0); base <= 6; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				edges = append(edges, [2]graph.NodeID{u, v})
			}
		}
	}
	edges = append(edges, [2]graph.NodeID{5, 6})
	g := build(t, 12, edges)
	labels := Cluster(g, DefaultParams())
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(labels, truth); nmi < 0.9 {
		t.Fatalf("NMI = %v, labels = %v", nmi, labels)
	}
}

func TestSingleCliqueStaysTogether(t *testing.T) {
	var edges [][2]graph.NodeID
	for u := graph.NodeID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, [2]graph.NodeID{u, v})
		}
	}
	g := build(t, 5, edges)
	labels := Cluster(g, DefaultParams())
	for _, l := range labels[1:] {
		if l != labels[0] {
			t.Fatalf("clique split: %v", labels)
		}
	}
}

func TestConvergesWithinMaxIter(t *testing.T) {
	// A ring of 12 nodes: distances polarize or hit MaxIter; either way
	// Cluster must terminate and label everyone.
	var edges [][2]graph.NodeID
	for v := 0; v < 12; v++ {
		edges = append(edges, [2]graph.NodeID{graph.NodeID(v), graph.NodeID((v + 1) % 12)})
	}
	g := build(t, 12, edges)
	labels := Cluster(g, Params{Cohesion: 0.5, MaxIter: 10})
	if len(labels) != 12 {
		t.Fatal("missing labels")
	}
	for _, l := range labels {
		if l < 0 {
			t.Fatal("unlabeled node")
		}
	}
}

func TestJaccardClosedNeighborhoods(t *testing.T) {
	// Triangle: for adjacent u,v: Γ(u)=Γ(v)={0,1,2}, J = 1.
	g := build(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	if j := jaccard(g, 0, 1); j != 1 {
		t.Fatalf("jaccard(0,1) = %v, want 1", j)
	}
	// Path 0-1-2: Γ(0)={0,1}, Γ(2)={1,2}, intersection {1}, union 3.
	g2 := build(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	if j := jaccard(g2, 0, 2); j != 1.0/3 {
		t.Fatalf("jaccard(0,2) = %v, want 1/3", j)
	}
}
