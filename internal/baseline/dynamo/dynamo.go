// Package dynamo implements the DYNA online baseline, modeled on DynaMo
// (Zhuang, Chang, Li, TKDE 2021): communities are initialized with Louvain
// and maintained along edge-weight updates by local modularity-improving
// moves around the changed edges. Crucially — and this is the inefficiency
// the paper's Exp 2 exposes — under the time-decay scheme *every* edge
// weight changes at every timestamp, so each Tick must touch all m edges
// even when no activation arrived; its per-timestamp cost is Ω(m) plus the
// local moves, versus ANC's activation-bounded updates.
package dynamo

import (
	"anc/internal/baseline/louvain"
	"anc/internal/graph"
)

// Dynamo maintains a modularity-oriented clustering under weight updates.
type Dynamo struct {
	g      *graph.Graph
	w      []float64 // current edge weights (the caller's decayed activeness)
	labels []int32
	deg    []float64 // weighted degree per node
	comTot []float64 // Σ deg over community, indexed by community label
	totalW float64
	// TouchedEdges counts edge-weight writes, the work measure of Exp 2.
	TouchedEdges int64
}

// New initializes communities with Louvain on the initial weights (the
// DYNA paper uses Louvain as its offline initializer).
func New(g *graph.Graph, w []float64) *Dynamo {
	d := &Dynamo{
		g: g,
		w: append([]float64(nil), w...),
	}
	d.labels = louvain.Cluster(g, d.w)
	d.recomputeAggregates()
	return d
}

func (d *Dynamo) recomputeAggregates() {
	n := d.g.N()
	d.deg = make([]float64, n)
	d.totalW = 0
	for e := 0; e < d.g.M(); e++ {
		u, v := d.g.Endpoints(graph.EdgeID(e))
		d.deg[u] += d.w[e]
		d.deg[v] += d.w[e]
		d.totalW += d.w[e]
	}
	d.comTot = make([]float64, n)
	for v := 0; v < n; v++ {
		d.comTot[d.labels[v]] += d.deg[v]
	}
}

// Labels returns the current community of every node (aliases internal
// state; copy before mutating).
func (d *Dynamo) Labels() []int32 { return d.labels }

// Tick applies the uniform decay factor to every edge weight, exploiting
// that modularity is scale-invariant — an optimization DynaMo itself does
// NOT have (it is the global-decay-factor idea of the paper under test).
// Experiments that model DYNA faithfully use TickAsUpdates instead.
func (d *Dynamo) Tick(decayFactor float64) {
	for e := range d.w {
		d.w[e] *= decayFactor
	}
	d.TouchedEdges += int64(len(d.w))
	for v := range d.deg {
		d.deg[v] *= decayFactor
	}
	for c := range d.comTot {
		d.comTot[c] *= decayFactor
	}
	d.totalW *= decayFactor
}

// TickAsUpdates is the faithful DynaMo behaviour on a time-decay
// activation network: every edge weight changes at every timestamp, so
// every edge is a weight-update event whose endpoints re-evaluate their
// community membership. This Ω(Σ deg) per-timestamp cost — even with zero
// activations — is exactly the inefficiency the paper's Exp 2 exposes
// ("the weight of all edges has to be updated at every timestamp").
func (d *Dynamo) TickAsUpdates(decayFactor float64) {
	for e := range d.w {
		d.w[e] *= decayFactor
	}
	d.TouchedEdges += int64(len(d.w))
	for v := range d.deg {
		d.deg[v] *= decayFactor
	}
	for c := range d.comTot {
		d.comTot[c] *= decayFactor
	}
	d.totalW *= decayFactor
	// Per-edge update events: each endpoint reconsiders its community.
	for v := 0; v < d.g.N(); v++ {
		d.moveBest(graph.NodeID(v))
	}
	for e := 0; e < d.g.M(); e++ {
		u, v := d.g.Endpoints(graph.EdgeID(e))
		d.moveBest(u)
		d.moveBest(v)
	}
}

// UpdateEdge sets a new weight on e and repairs the clustering with local
// moves around the endpoints (the DynaMo per-update rule).
func (d *Dynamo) UpdateEdge(e graph.EdgeID, newW float64) {
	u, v := d.g.Endpoints(e)
	delta := newW - d.w[e]
	d.w[e] = newW
	d.TouchedEdges++
	d.deg[u] += delta
	d.deg[v] += delta
	d.comTot[d.labels[u]] += delta
	d.comTot[d.labels[v]] += delta
	d.totalW += delta
	// Local repair: endpoints and their neighbors reconsider membership.
	frontier := []graph.NodeID{u, v}
	for _, h := range d.g.Neighbors(u) {
		frontier = append(frontier, h.To)
	}
	for _, h := range d.g.Neighbors(v) {
		frontier = append(frontier, h.To)
	}
	for rounds := 0; rounds < 3; rounds++ {
		moved := false
		for _, x := range frontier {
			if d.moveBest(x) {
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// moveBest moves x to the adjacent community with the largest modularity
// gain, if positive. Returns whether x moved.
func (d *Dynamo) moveBest(x graph.NodeID) bool {
	if d.totalW <= 0 {
		return false
	}
	old := d.labels[x]
	neighW := map[int32]float64{}
	for _, h := range d.g.Neighbors(x) {
		neighW[d.labels[h.To]] += d.w[h.Edge]
	}
	m2 := 2 * d.totalW
	d.comTot[old] -= d.deg[x]
	best, bestGain := old, 0.0
	baseIn := neighW[old]
	for c, kin := range neighW {
		gain := (kin - baseIn) - (d.comTot[c]-d.comTot[old])*d.deg[x]/m2
		if gain > bestGain+1e-12 {
			best, bestGain = c, gain
		}
	}
	d.labels[x] = best
	d.comTot[best] += d.deg[x]
	return best != old
}

// Rebuild re-runs Louvain from scratch on the current weights (used when
// drift accumulates; the experiments call it sparingly since DYNA's paper
// refreshes periodically).
func (d *Dynamo) Rebuild() {
	d.labels = louvain.Cluster(d.g, d.w)
	d.recomputeAggregates()
}
