package dynamo

import (
	"math"
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func pairedCliques(t testing.TB) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder(12)
	for base := graph.NodeID(0); base <= 6; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return g, w
}

func TestInitMatchesLouvainQuality(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(d.Labels(), truth); nmi < 0.99 {
		t.Fatalf("init NMI = %v", nmi)
	}
}

func TestTickScalesEverything(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	labelsBefore := append([]int32(nil), d.Labels()...)
	totalBefore := d.totalW
	d.Tick(0.5)
	if math.Abs(d.totalW-totalBefore/2) > 1e-12 {
		t.Fatalf("totalW = %v, want %v", d.totalW, totalBefore/2)
	}
	for i, l := range d.Labels() {
		if l != labelsBefore[i] {
			t.Fatal("uniform decay changed communities")
		}
	}
	if d.TouchedEdges != int64(g.M()) {
		t.Fatalf("TouchedEdges = %d, want %d (every edge rewritten)", d.TouchedEdges, g.M())
	}
}

// TestBridgeStrengtheningMerges: pumping weight into the bridge eventually
// merges the cliques under local moves.
func TestBridgeStrengtheningMerges(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	bridge := g.FindEdge(5, 6)
	if d.Labels()[5] == d.Labels()[6] {
		t.Fatal("cliques merged before update")
	}
	d.UpdateEdge(bridge, 200)
	if d.Labels()[5] != d.Labels()[6] {
		t.Fatalf("heavy bridge did not pull endpoints together: %v", d.Labels())
	}
}

// TestWeakeningKeepsValidAggregates: internal sums stay consistent with a
// full recompute after updates.
func TestAggregateConsistency(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	d.UpdateEdge(0, 3.5)
	d.UpdateEdge(graph.EdgeID(g.M()-1), 0.2)
	d.Tick(0.9)
	// Recompute from scratch and compare.
	totW := 0.0
	deg := make([]float64, g.N())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		totW += d.w[e]
		deg[u] += d.w[e]
		deg[v] += d.w[e]
	}
	if math.Abs(totW-d.totalW) > 1e-9 {
		t.Fatalf("totalW drifted: %v vs %v", d.totalW, totW)
	}
	for v := range deg {
		if math.Abs(deg[v]-d.deg[v]) > 1e-9 {
			t.Fatalf("deg[%d] drifted", v)
		}
	}
	comTot := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		comTot[d.labels[v]] += d.deg[v]
	}
	for c := range comTot {
		if math.Abs(comTot[c]-d.comTot[c]) > 1e-9 {
			t.Fatalf("comTot[%d] drifted: %v vs %v", c, d.comTot[c], comTot[c])
		}
	}
}

// TestTickAsUpdatesPreservesInvariants: the faithful per-edge tick keeps
// the clustering valid, touches every edge, and stays consistent with a
// full aggregate recompute.
func TestTickAsUpdatesPreservesInvariants(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	before := d.TouchedEdges
	d.TickAsUpdates(0.8)
	if d.TouchedEdges-before != int64(g.M()) {
		t.Fatalf("touched %d edges, want %d", d.TouchedEdges-before, g.M())
	}
	// The clique structure survives a uniform decay (modularity is scale
	// invariant, so no move should break it).
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(d.Labels(), truth); nmi < 0.99 {
		t.Fatalf("NMI after TickAsUpdates = %v", nmi)
	}
	// Aggregates consistent.
	totW := 0.0
	for e := 0; e < g.M(); e++ {
		totW += d.w[e]
	}
	if math.Abs(totW-d.totalW) > 1e-9 {
		t.Fatalf("totalW drifted: %v vs %v", d.totalW, totW)
	}
}

func TestRebuildRestoresQuality(t *testing.T) {
	g, w := pairedCliques(t)
	d := New(g, w)
	// Perturb: many noisy updates.
	for e := 0; e < g.M(); e++ {
		d.UpdateEdge(graph.EdgeID(e), 1+float64(e%3))
	}
	d.Rebuild()
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(d.Labels(), truth); nmi < 0.9 {
		t.Fatalf("NMI after rebuild = %v", nmi)
	}
}
