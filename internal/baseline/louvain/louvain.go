// Package louvain implements the Louvain method (Blondel et al. 2008) for
// weighted modularity maximization — the paper's offline baseline LOUV and
// the initializer of the DYNA baseline. Local moving passes alternate with
// graph aggregation until modularity stops improving.
package louvain

import (
	"anc/internal/graph"
)

// MaxPasses bounds local-moving sweeps per aggregation level.
const MaxPasses = 32

// Cluster partitions g under edge weights w (positive; higher = stronger
// tie) and returns a dense cluster label per node. Deterministic: nodes are
// scanned in ID order.
func Cluster(g *graph.Graph, w []float64) []int32 {
	n := g.N()
	// Working multigraph: adjacency maps with self-loops for aggregated
	// internal weight.
	adj := make([]map[int32]float64, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]float64, g.Degree(graph.NodeID(v)))
	}
	var totalW float64
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		adj[u][v] += w[e]
		adj[v][u] += w[e]
		totalW += w[e]
	}
	if totalW == 0 {
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(i)
		}
		return labels
	}
	// membership[v] maps original node -> current top-level community of
	// the aggregated hierarchy.
	membership := make([]int32, n)
	for i := range membership {
		membership[i] = int32(i)
	}
	cur := adj
	for {
		labels, improved := onePass(cur, totalW)
		// Renumber labels densely.
		remap := make(map[int32]int32)
		for i, l := range labels {
			if _, ok := remap[l]; !ok {
				remap[l] = int32(len(remap))
			}
			labels[i] = remap[labels[i]]
			_ = i
		}
		for v := range membership {
			membership[v] = labels[membership[v]]
		}
		if !improved || len(remap) == len(cur) {
			break
		}
		cur = aggregate(cur, labels, len(remap))
	}
	return dense(membership)
}

// onePass runs local moving over one (possibly aggregated) weighted graph.
// Returns per-node community labels and whether any move happened.
func onePass(adj []map[int32]float64, totalW float64) ([]int32, bool) {
	n := len(adj)
	labels := make([]int32, n)
	deg := make([]float64, n)    // weighted degree, loops counted twice
	comTot := make([]float64, n) // Σ deg over community members
	for v := 0; v < n; v++ {
		labels[v] = int32(v)
		//anclint:ignore determinism baseline-only degree sum; ulp-level order sensitivity cannot flip a community decision past the 1e-12 tie margin
		for u, wt := range adj[v] {
			if int(u) == v {
				deg[v] += 2 * wt
			} else {
				deg[v] += wt
			}
		}
		comTot[v] = deg[v]
	}
	m2 := 2 * totalW
	improvedEver := false
	neighW := make(map[int32]float64)
	for pass := 0; pass < MaxPasses; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			old := labels[v]
			clear(neighW)
			//anclint:ignore determinism baseline-only neighbor sums; candidate scan below resolves ties by smallest label, absorbing ulp-level order noise
			for u, wt := range adj[v] {
				if int(u) == v {
					continue
				}
				neighW[labels[u]] += wt
			}
			comTot[old] -= deg[v]
			best, bestGain := old, 0.0
			baseIn := neighW[old]
			for c, kin := range neighW {
				// ΔQ of joining c relative to staying alone, minus the
				// same for rejoining old: compare kin - comTot[c]·deg[v]/m2.
				gain := (kin - baseIn) - (comTot[c]-comTot[old])*deg[v]/m2
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best && gain > 1e-12) {
					best, bestGain = c, gain
				}
			}
			labels[v] = best
			comTot[best] += deg[v]
			if best != old {
				moved = true
				improvedEver = true
			}
		}
		if !moved {
			break
		}
	}
	return labels, improvedEver
}

// aggregate collapses communities into super-nodes.
func aggregate(adj []map[int32]float64, labels []int32, k int) []map[int32]float64 {
	out := make([]map[int32]float64, k)
	for i := range out {
		out[i] = make(map[int32]float64)
	}
	for v := range adj {
		cv := labels[v]
		//anclint:ignore determinism baseline-only aggregation; per-community totals are sums of the same terms in any order, consumed through the tie-tolerant gain test
		for u, wt := range adj[v] {
			cu := labels[u]
			if int(u) < v {
				continue // count each undirected pair once (loops: u==v handled below)
			}
			if int(u) == v {
				out[cv][cv] += wt
				continue
			}
			if cu == cv {
				out[cv][cv] += wt
			} else {
				out[cv][cu] += wt
				out[cu][cv] += wt
			}
		}
	}
	return out
}

// dense renumbers arbitrary labels to 0..k-1 in first-appearance order.
func dense(labels []int32) []int32 {
	remap := make(map[int32]int32)
	out := make([]int32, len(labels))
	for i, l := range labels {
		d, ok := remap[l]
		if !ok {
			d = int32(len(remap))
			remap[l] = d
		}
		out[i] = d
	}
	return out
}
