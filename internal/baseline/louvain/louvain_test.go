package louvain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/quality"
)

func unit(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cliques(t testing.TB, k, size int, bridges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(k * size)
	for c := 0; c < k; c++ {
		base := graph.NodeID(c * size)
		for u := base; u < base+graph.NodeID(size); u++ {
			for v := u + 1; v < base+graph.NodeID(size); v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, e := range bridges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestRecoversCliques(t *testing.T) {
	g := cliques(t, 3, 6, [][2]graph.NodeID{{5, 6}, {11, 12}})
	labels := Cluster(g, unit(g.M()))
	truth := make([]int32, g.N())
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(labels, truth); nmi < 0.99 {
		t.Fatalf("NMI = %v, want ~1; labels = %v", nmi, labels)
	}
}

func TestRespectsWeights(t *testing.T) {
	// A 4-cycle 0-1-2-3 where heavy edges (0,1) and (2,3) should pair up.
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	w := make([]float64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if (u == 0 && v == 1) || (u == 2 && v == 3) {
			w[e] = 10
		} else {
			w[e] = 0.1
		}
	}
	labels := Cluster(g, w)
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("weighted pairs not found: %v", labels)
	}
}

func TestImprovesModularityOverSingletons(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
		}
		for i := 0; i < n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		w := make([]float64, g.M())
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		labels := Cluster(g, w)
		singles := make([]int32, n)
		for i := range singles {
			singles[i] = int32(i)
		}
		return quality.Modularity(g, w, labels) >= quality.Modularity(g, w, singles)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWeightsFallsBackToSingletons(t *testing.T) {
	g := cliques(t, 1, 4, nil)
	labels := Cluster(g, make([]float64, g.M()))
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("zero-weight graph not singletons: %v", labels)
		}
		seen[l] = true
	}
}

func TestDeterministic(t *testing.T) {
	g := cliques(t, 2, 5, [][2]graph.NodeID{{4, 5}})
	w := unit(g.M())
	a := Cluster(g, w)
	b := Cluster(g, w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Louvain not deterministic")
		}
	}
}

func TestLabelsAreDense(t *testing.T) {
	g := cliques(t, 3, 4, nil)
	labels := Cluster(g, unit(g.M()))
	max := int32(-1)
	seen := map[int32]bool{}
	for _, l := range labels {
		if l < 0 {
			t.Fatal("negative label")
		}
		seen[l] = true
		if l > max {
			max = l
		}
	}
	if int(max)+1 != len(seen) {
		t.Fatalf("labels not dense: max=%d distinct=%d", max, len(seen))
	}
}
