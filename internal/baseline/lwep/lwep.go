// Package lwep implements the LWEP online baseline — the paper's [38],
// dynamic community detection in weighted graph streams (Wang, Lai, Yu,
// SDM 2013). The original system is closed source; per the reproduction's
// substitution rule (documented in DESIGN.md) this package provides a
// faithful-complexity stand-in: a weighted label-propagation method that,
// upon every batch of weight updates, re-propagates labels through the
// weighted graph for a number of rounds proportional to the changed-edge
// count. Its per-timestamp cost is Θ(rounds·m) with rounds growing in
// |ΔE| — matching LWEP's role in Table IV and Figure 10 as the slowest
// online method (O(d·|ΔE|·n²) in the paper's accounting) — while still
// producing reasonable communities on static snapshots.
package lwep

import (
	"anc/internal/graph"
)

// LWEP maintains a weighted label-propagation clustering.
type LWEP struct {
	g      *graph.Graph
	w      []float64
	cn     []float64 // 1 + common-neighbor count per edge (static structure)
	labels []int32
	// RoundsRun counts propagation rounds, the work measure for Exp 2.
	RoundsRun int64
}

// New initializes every node in its own community and propagates to a
// fixpoint on the initial weights.
func New(g *graph.Graph, w []float64) *LWEP {
	l := &LWEP{g: g, w: append([]float64(nil), w...)}
	l.cn = make([]float64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		common := 0
		g.CommonNeighbors(u, v, func(graph.NodeID, graph.EdgeID, graph.EdgeID) { common++ })
		l.cn[e] = float64(1 + common)
	}
	l.labels = make([]int32, g.N())
	for i := range l.labels {
		l.labels[i] = int32(i)
	}
	l.propagate(maxRounds)
	return l
}

const maxRounds = 30

// Labels returns the current labels (aliases internal state).
func (l *LWEP) Labels() []int32 { return l.labels }

// propagate runs asynchronous weighted label propagation: nodes are
// scanned in ID order and each adopts the label with the largest incident
// propagation weight w(e)·(1 + common neighbors) — the structural
// reinforcement that lets heavy, embedded edges dominate stray bridges.
// A node keeps its current label on ties; remaining ties break to the
// smaller label. In-place updates avoid the oscillations of synchronous
// LPA. Stops early at a fixpoint.
func (l *LWEP) propagate(rounds int) { l.propagateRounds(rounds, true) }

// propagateRounds optionally disables the fixpoint early-exit: the
// original LWEP has no convergence shortcut (its per-update cost is
// O(d·|ΔE|·n²) regardless), so UpdateBatch runs its full round budget to
// reproduce the paper's cost profile.
func (l *LWEP) propagateRounds(rounds int, earlyExit bool) {
	n := l.g.N()
	for r := 0; r < rounds; r++ {
		l.RoundsRun++
		changed := false
		for v := 0; v < n; v++ {
			cur := l.labels[v]
			acc := map[int32]float64{}
			for _, h := range l.g.Neighbors(graph.NodeID(v)) {
				acc[l.labels[h.To]] += l.w[h.Edge] * l.cn[h.Edge]
			}
			bestLabel, bestW := cur, acc[cur]
			for lab, wt := range acc {
				if wt > bestW+1e-12 || (wt > bestW-1e-12 && lab < bestLabel && lab != cur && bestLabel != cur && wt > 0) {
					bestLabel, bestW = lab, wt
				}
			}
			if bestLabel != cur {
				l.labels[v] = bestLabel
				changed = true
			}
		}
		if earlyExit && !changed {
			break
		}
	}
}

// RoundBudget is the propagation-round budget for a batch of the given
// size: it grows linearly in |ΔE|, reproducing LWEP's update-cost scaling.
func RoundBudget(batch int) int {
	rounds := 2 + batch/4
	if rounds > maxRounds {
		rounds = maxRounds
	}
	return rounds
}

// Tick applies the per-timestamp decay to all weights (same structural
// inefficiency as DYNA under the time-decay scheme).
func (l *LWEP) Tick(decayFactor float64) {
	for e := range l.w {
		l.w[e] *= decayFactor
	}
}

// UpdateBatch applies a batch of edge-weight changes and re-propagates.
// The round budget grows with the batch size, reproducing LWEP's
// update-cost scaling.
func (l *LWEP) UpdateBatch(edges []graph.EdgeID, newW []float64) {
	for i, e := range edges {
		l.w[e] = newW[i]
	}
	l.propagateRounds(RoundBudget(len(edges)), false)
}
