package lwep

import (
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func pairedCliques(t testing.TB) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder(12)
	for base := graph.NodeID(0); base <= 6; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return g, w
}

func TestInitialPropagationFindsCliques(t *testing.T) {
	g, w := pairedCliques(t)
	l := New(g, w)
	truth := make([]int32, 12)
	for v := range truth {
		truth[v] = int32(v / 6)
	}
	if nmi := quality.NMI(l.Labels(), truth); nmi < 0.8 {
		t.Fatalf("NMI = %v, labels = %v", nmi, l.Labels())
	}
}

func TestUpdateBatchRunsRounds(t *testing.T) {
	g, w := pairedCliques(t)
	l := New(g, w)
	before := l.RoundsRun
	l.UpdateBatch([]graph.EdgeID{0, 1, 2, 3}, []float64{2, 2, 2, 2})
	if l.RoundsRun <= before {
		t.Fatal("no propagation rounds after update")
	}
	// The round budget grows linearly with batch size (the cost scaling
	// the paper reports) and is capped.
	if RoundBudget(4) >= RoundBudget(40) {
		t.Fatal("budget not growing in batch size")
	}
	if RoundBudget(1<<20) != maxRounds {
		t.Fatal("budget not capped")
	}
}

func TestTickDecaysWeights(t *testing.T) {
	g, w := pairedCliques(t)
	l := New(g, w)
	l.Tick(0.5)
	for e := 0; e < g.M(); e++ {
		if l.w[e] != 0.5 {
			t.Fatalf("weight %d = %v", e, l.w[e])
		}
	}
}

func TestHeavyBridgeMergesCommunities(t *testing.T) {
	g, w := pairedCliques(t)
	l := New(g, w)
	bridge := g.FindEdge(5, 6)
	l.UpdateBatch([]graph.EdgeID{bridge}, []float64{100})
	if l.Labels()[5] != l.Labels()[6] {
		t.Fatalf("bridge endpoints still split: %v", l.Labels())
	}
}
