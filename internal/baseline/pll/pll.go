// Package pll implements Pruned Landmark Labeling (Akiba, Iwata, Yoshida,
// SIGMOD 2013) for exact shortest-distance queries on weighted graphs —
// the exact-index alternative the paper's Section II rules out for
// activation networks: "the index time and index size of PLL are
// bottlenecks on static massive graphs, let alone the update". It exists
// as an ablation comparator (ancbench -exp ablation) to measure exactly
// that trade-off against the pyramids: PLL answers exact distances but
// its labels blow up with size and every weight change invalidates them,
// while the pyramids answer approximate queries from an index that is
// linear in n and repairs locally.
package pll

import (
	"math"

	"anc/internal/graph"
	"anc/internal/pq"
)

// label is one entry (landmark rank, distance) of a node's 2-hop label.
// Landmarks are identified by their position in the degree order, so
// labels are appended in increasing rank during construction and stay
// sorted — the invariant the pruning query relies on.
type label struct {
	rank int32
	dist float64
}

// Index is a 2-hop labeling: Query(u, v) = min over common landmarks of
// d(u, w) + d(w, v), which pruned construction makes exact.
type Index struct {
	labels [][]label
}

// Build constructs the labeling with pruned Dijkstras from every node in
// decreasing-degree order (the standard vertex ordering). O(n · m) worst
// case; practical on small graphs only — which is the point of the
// comparison.
func Build(g *graph.Graph, w func(e graph.EdgeID) float64) *Index {
	n := g.N()
	ix := &Index{labels: make([][]label, n)}
	order := g.DegreeRank()
	rankOf := make([]int32, n)
	for r, v := range order {
		rankOf[v] = int32(r)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h := pq.New(n)
	var touched []graph.NodeID
	for _, root := range order {
		// Pruned Dijkstra from root.
		h.Reset()
		dist[root] = 0
		h.Push(root, 0)
		touched = touched[:0]
		touched = append(touched, root)
		for h.Len() > 0 {
			x, d := h.Pop()
			if d > dist[x] {
				continue
			}
			// Prune: if the current labels already certify d(root, x) ≤ d,
			// x (and everything behind it) needs no new entry.
			if ix.query(root, graph.NodeID(x)) <= d {
				continue
			}
			ix.labels[x] = append(ix.labels[x], label{rankOf[root], d})
			for _, half := range g.Neighbors(graph.NodeID(x)) {
				nd := d + w(half.Edge)
				if nd < dist[half.To] {
					if math.IsInf(dist[half.To], 1) {
						touched = append(touched, half.To)
					}
					dist[half.To] = nd
					h.Push(half.To, nd)
				}
			}
		}
		for _, x := range touched {
			dist[x] = math.Inf(1)
		}
	}
	return ix
}

// query evaluates the 2-hop merge-join over the rank-sorted labels of u
// and v.
func (ix *Index) query(u, v graph.NodeID) float64 {
	a, b := ix.labels[u], ix.labels[v]
	best := math.Inf(1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].rank < b[j].rank:
			i++
		case a[i].rank > b[j].rank:
			j++
		default:
			if d := a[i].dist + b[j].dist; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// Query returns the exact shortest distance between u and v (+Inf if
// disconnected).
func (ix *Index) Query(u, v graph.NodeID) float64 {
	if u == v {
		return 0
	}
	return ix.query(u, v)
}

// LabelEntries returns the total number of label entries — the index-size
// measure of the PLL-vs-pyramids ablation.
func (ix *Index) LabelEntries() int {
	total := 0
	for _, ls := range ix.labels {
		total += len(ls)
	}
	return total
}

// MemoryBytes estimates the resident size of the labeling.
func (ix *Index) MemoryBytes() int64 {
	return int64(ix.LabelEntries())*12 + int64(len(ix.labels))*24
}
