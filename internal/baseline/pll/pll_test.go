package pll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/metric"
)

func randomWeighted(rng *rand.Rand, n, extra int) (*graph.Graph, []float64) {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 0.1 + rng.Float64()*3
	}
	return g, w
}

// TestExactness is PLL's defining property: every query equals a
// reference Dijkstra distance.
func TestExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, w := randomWeighted(rng, 10+rng.Intn(40), 60)
		wf := func(e graph.EdgeID) float64 { return w[e] }
		ix := Build(g, wf)
		for trial := 0; trial < 15; trial++ {
			u := graph.NodeID(rng.Intn(g.N()))
			v := graph.NodeID(rng.Intn(g.N()))
			got := ix.Query(u, v)
			want := metric.Distance(g, u, v, wf)
			if math.IsInf(got, 1) != math.IsInf(want, 1) {
				return false
			}
			if !math.IsInf(got, 1) && math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	w := []float64{1, 2}
	ix := Build(g, func(e graph.EdgeID) float64 { return w[e] })
	if d := ix.Query(0, 2); !math.IsInf(d, 1) {
		t.Fatalf("cross-component distance = %v", d)
	}
	if d := ix.Query(2, 3); d != 2 {
		t.Fatalf("distance = %v, want 2", d)
	}
	if d := ix.Query(1, 1); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

// TestPruningEffective: on a star graph, the hub is ranked first and
// every label set stays tiny (pruning prevents quadratic labels).
func TestPruningEffective(t *testing.T) {
	n := 200
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.NodeID(v))
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	ix := Build(g, func(e graph.EdgeID) float64 { return w[e] })
	if got := ix.LabelEntries(); got > 2*n {
		t.Fatalf("label entries = %d on a star, want ≤ %d", got, 2*n)
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
}
