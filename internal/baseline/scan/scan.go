// Package scan implements SCAN (Xu et al., KDD 2007), the structural
// clustering baseline: nodes whose structural similarity to at least μ
// neighbors reaches ε are cores; clusters are the connected regions of
// structure-reachable nodes. Hubs and outliers (non-members) are reported
// as singleton clusters so that quality metrics over full partitions are
// well defined.
//
// For activation-network snapshots an optional weight vector filters the
// graph: edges below MinWeight are treated as absent, which is how the
// experiments let SCAN see the decayed snapshot.
package scan

import (
	"math"

	"anc/internal/graph"
)

// Params holds SCAN's two parameters plus the snapshot filter.
type Params struct {
	// Epsilon is the structural-similarity threshold (0, 1].
	Epsilon float64
	// Mu is the minimum ε-neighborhood size of a core.
	Mu int
	// Weights optionally filters edges: nil means all edges present;
	// otherwise edge e exists iff Weights[e] >= MinWeight.
	Weights   []float64
	MinWeight float64
}

// Cluster runs SCAN and returns a dense label per node.
func Cluster(g *graph.Graph, p Params) []int32 {
	n := g.N()
	present := func(e graph.EdgeID) bool {
		return p.Weights == nil || p.Weights[e] >= p.MinWeight
	}
	// Effective degree under the filter (+1 for the closed neighborhood).
	size := make([]int, n)
	for v := 0; v < n; v++ {
		for _, h := range g.Neighbors(graph.NodeID(v)) {
			if present(h.Edge) {
				size[v]++
			}
		}
		size[v]++ // closed neighborhood includes v itself
	}
	// sim computes the structural similarity of adjacent u, v:
	// |Γ(u)∩Γ(v)| / √(|Γ(u)||Γ(v)|) with closed neighborhoods.
	sim := func(u, v graph.NodeID) float64 {
		common := 2 // u and v are in both closed neighborhoods (adjacent)
		g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
			if present(eu) && present(ev) {
				common++
			}
		})
		return float64(common) / math.Sqrt(float64(size[u])*float64(size[v]))
	}
	// epsNeighbors[v] = neighbors with sim ≥ ε (v itself always counts
	// toward the core size, per the closed-neighborhood definition).
	core := make([]bool, n)
	epsAdj := make([][]graph.NodeID, n)
	for e := 0; e < g.M(); e++ {
		if !present(graph.EdgeID(e)) {
			continue
		}
		u, v := g.Endpoints(graph.EdgeID(e))
		if sim(u, v) >= p.Epsilon {
			epsAdj[u] = append(epsAdj[u], v)
			epsAdj[v] = append(epsAdj[v], u)
		}
	}
	for v := 0; v < n; v++ {
		core[v] = len(epsAdj[v])+1 >= p.Mu
	}
	// Clusters: BFS from cores along ε-neighborhood links; border nodes
	// join the first core cluster that reaches them.
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	var queue []graph.NodeID
	for v := 0; v < n; v++ {
		if !core[v] || labels[v] >= 0 {
			continue
		}
		id := next
		next++
		labels[v] = id
		queue = append(queue[:0], graph.NodeID(v))
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if !core[x] {
				continue // border node: absorbed but not expanded
			}
			for _, u := range epsAdj[x] {
				if labels[u] < 0 {
					labels[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	// Hubs/outliers become singletons.
	for v := 0; v < n; v++ {
		if labels[v] < 0 {
			labels[v] = next
			next++
		}
	}
	return labels
}
