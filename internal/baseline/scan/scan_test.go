package scan

import (
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func twoCliquesBridge(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for base := graph.NodeID(0); base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestSeparatesCliques(t *testing.T) {
	g := twoCliquesBridge(t)
	labels := Cluster(g, Params{Epsilon: 0.6, Mu: 3})
	truth := make([]int32, 10)
	for v := range truth {
		truth[v] = int32(v / 5)
	}
	if nmi := quality.NMI(labels, truth); nmi < 0.9 {
		t.Fatalf("NMI = %v, labels = %v", nmi, labels)
	}
	if labels[4] == labels[5] {
		t.Fatalf("bridge endpoints merged: %v", labels)
	}
}

func TestHubsBecomeSingletons(t *testing.T) {
	// Star: center similarity to leaves is low with closed neighborhoods
	// of very different size; with strict ε nothing is a core.
	b := graph.NewBuilder(6)
	for v := graph.NodeID(1); v < 6; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	labels := Cluster(g, Params{Epsilon: 0.9, Mu: 3})
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("expected all singletons, got %v", labels)
		}
		seen[l] = true
	}
}

func TestWeightFilterDropsDeadEdges(t *testing.T) {
	g := twoCliquesBridge(t)
	w := make([]float64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if u < 5 && v < 5 {
			w[e] = 1 // first clique alive
		} else {
			w[e] = 0.001 // second clique decayed to dust
		}
	}
	labels := Cluster(g, Params{Epsilon: 0.6, Mu: 3, Weights: w, MinWeight: 0.01})
	// First clique clusters together; second clique has no live edges, so
	// all singletons there.
	if labels[0] != labels[1] || labels[0] != labels[4] {
		t.Fatalf("live clique split: %v", labels)
	}
	for u := 5; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if labels[u] == labels[v] {
				t.Fatalf("dead clique still clustered: %v", labels)
			}
		}
	}
}

func TestEveryNodeLabeled(t *testing.T) {
	g := twoCliquesBridge(t)
	labels := Cluster(g, Params{Epsilon: 0.5, Mu: 2})
	for v, l := range labels {
		if l < 0 {
			t.Fatalf("node %d unlabeled", v)
		}
	}
}
