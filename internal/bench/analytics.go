package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"
	"time"

	"anc"
	"anc/internal/dataset"
	"anc/internal/obs"
	"anc/internal/serve"
	"anc/internal/serve/client"
	"anc/internal/serve/repl"
)

// analyticsTopK is the listing size every TieRank query in the
// experiment asks for — large enough that the per-cluster grouping does
// real work, small enough that response encoding stays cheap.
const analyticsTopK = 10

// AnalyticsResult measures the analytics read path end to end: TieRank
// and cluster-evolution queries issued over TCP against a durable
// network while conns connections replay the bursty day into it, plus a
// replication follower serving the same analytics queries under
// replication load. Latencies are client-observed round trips; the rank
// probe figures isolate the in-process snapshot path from the wire.
type AnalyticsResult struct {
	Dataset     string
	N, M        int
	Minutes     int
	Conns       int
	Activations int
	Batches     int

	IngestSeconds float64
	IngestRate    float64

	// Wire-level query latency at the primary, split by query kind:
	// global TieRank (level -1), per-cluster TieRank at the √n level,
	// and evolution reads with an advancing cursor.
	GlobalQueries    int
	GlobalP50ms      float64
	GlobalP99ms      float64
	ClusterQueries   int
	ClusterP50ms     float64
	ClusterP99ms     float64
	EvolutionQueries int
	EvolutionP50ms   float64
	EvolutionP99ms   float64

	// EvolutionEvents is the newest sequence number at the end of the
	// run (total events ever appended); EvolutionDropped counts events
	// overwritten in the ring before any reader saw them.
	EvolutionEvents  uint64
	EvolutionDropped uint64

	// Follower-side figures: one connection issuing the same analytics
	// mix against a replica tailing the primary's WAL throughout the
	// run. After catch-up the primary's and follower's TieRank answers
	// are asserted equal byte for byte.
	FollowerQueries    int
	FollowerP50ms      float64
	FollowerP99ms      float64
	FollowerCatchUpSec float64

	// Rank probe A/B: an in-process prober calls TieRank on the durable
	// facade for the whole ingest window and classifies each call by the
	// RankStats delta around it — hit (lock-free snapshot probe) or
	// compute (miss path under the shared lock). Wire queries touch the
	// same counters concurrently, so a sample whose delta moved both
	// hits and misses is ambiguous and discarded; the unambiguous ones
	// are classified correctly because the probe itself always bumps
	// exactly one of the two.
	RankProbeSamples int
	RankHitSamples   int
	RankHitP50ms     float64
	RankHitP99ms     float64
	RankComputeP50ms float64
	RankComputeP99ms float64
	// RankHitSpeedup is RankComputeP50ms / RankHitP50ms.
	RankHitSpeedup float64
	// RankHits/RankMisses/RankInvalidations mirror the run's
	// anc_analytics_rank_* counters.
	RankHits          uint64
	RankMisses        uint64
	RankInvalidations uint64

	// Metrics is the obs snapshot of the run (server, WAL, core and
	// analytics counters from the instrumented stack).
	Metrics map[string]float64 `json:",omitempty"`
}

// AnalyticsLoad runs the analytics load experiment: a server over a
// durable TW2-counterpart network on an ephemeral port, conns ingest
// connections replaying the bursty day minute by minute, and three
// query connections issuing TieRank (global and per-cluster) and
// evolution reads throughout — every latency datapoint is measured
// under write load, with the rank cache invalidated by every batch. A
// replication follower serves the same analytics mix; after ingest it
// catches up and its TieRank answers must match the primary's exactly.
func AnalyticsLoad(cfg Config, w io.Writer, minutes, conns int) AnalyticsResult {
	if conns < 1 {
		conns = 1
	}
	spec, err := dataset.ByName("TW2")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed)
	workload := serveWorkload(pl, minutes, conns, cfg.Seed+7)
	r := AnalyticsResult{Dataset: "TW2", N: pl.Graph.N(), M: pl.Graph.M(), Minutes: minutes, Conns: conns}

	acfg := anc.DefaultConfig()
	acfg.Lambda = 0.01
	acfg.Epsilon = 0.3
	acfg.Mu = 3
	acfg.Seed = cfg.Seed
	acfg.Parallel = true
	net, err := anc.FromGraph(pl.Graph, acfg)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "ancanalytics-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	d, err := anc.NewDurable(net, dir, anc.DurableConfig{Obs: reg})
	if err != nil {
		panic(err)
	}
	setActiveDurable(d)
	defer setActiveDurable(nil)

	pnode := repl.New(d, repl.Config{Heartbeat: 100 * time.Millisecond})
	srv := serve.New(pnode, serve.Config{RequestTimeout: 60 * time.Second, Obs: reg, Repl: pnode})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		panic(err)
	}
	addr := srv.Addr().String()
	ctx := context.Background()
	level := d.SqrtLevel()

	// Follower: its own graph copy and durable directory, tailing the
	// primary's WAL over TCP, fronted by its own server — replica
	// analytics reads go through the same wire path as primary reads.
	fdir, err := os.MkdirTemp("", "ancanalytics-bench-follow-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(fdir)
	fnet, err := anc.FromGraph(pl.Graph, acfg)
	if err != nil {
		panic(err)
	}
	fd, err := anc.NewDurable(fnet, fdir, anc.DurableConfig{})
	if err != nil {
		panic(err)
	}
	fnode := repl.New(fd, repl.Config{Upstream: addr, Heartbeat: 100 * time.Millisecond, Seed: cfg.Seed})
	fnode.Start()
	fsrv := serve.New(fnode, serve.Config{RequestTimeout: 60 * time.Second, Repl: fnode})
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		panic(err)
	}
	faddr := fsrv.Addr().String()

	// Query side: one connection per analytics kind, so the percentiles
	// are per-kind rather than blended.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	var globalLat, clusterLat, evoLat []time.Duration
	runQueries := func(lat *[]time.Duration, query func(qc *client.Client) error) {
		defer qwg.Done()
		qc, err := client.Dial(addr, client.WithTimeout(60*time.Second))
		if err != nil {
			panic(err)
		}
		defer qc.Close() //anclint:ignore droppederr benchmark teardown of a query connection
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			if err := query(qc); err != nil {
				panic(err)
			}
			*lat = append(*lat, time.Since(start))
		}
	}
	qwg.Add(3)
	//anclint:ignore goleak runQueries returns on close(stop); joined via qwg.Wait
	go runQueries(&globalLat, func(qc *client.Client) error {
		_, err := qc.TieRank(ctx, -1, analyticsTopK)
		return err
	})
	//anclint:ignore goleak runQueries returns on close(stop); joined via qwg.Wait
	go runQueries(&clusterLat, func(qc *client.Client) error {
		_, err := qc.TieRank(ctx, level, analyticsTopK)
		return err
	})
	var cursor uint64
	//anclint:ignore goleak runQueries returns on close(stop); joined via qwg.Wait
	go runQueries(&evoLat, func(qc *client.Client) error {
		_, seq, _, err := qc.Evolution(ctx, cursor)
		cursor = seq
		return err
	})

	// Replica analytics: one connection against the follower's server,
	// alternating the three kinds. The follower is never wrong, only
	// late — correctness is asserted after catch-up below.
	var followerLat []time.Duration
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		fc, err := client.Dial(faddr, client.WithTimeout(60*time.Second),
			client.WithRetry(3, 5*time.Millisecond, 100*time.Millisecond))
		if err != nil {
			panic(err)
		}
		defer fc.Close() //anclint:ignore droppederr benchmark teardown of a query connection
		var fcursor uint64
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			start := time.Now()
			switch i % 3 {
			case 0:
				_, err = fc.TieRank(ctx, -1, analyticsTopK)
			case 1:
				_, err = fc.TieRank(ctx, level, analyticsTopK)
			case 2:
				var seq uint64
				_, seq, _, err = fc.Evolution(ctx, fcursor)
				fcursor = seq
			}
			if err != nil {
				panic(err)
			}
			followerLat = append(followerLat, time.Since(start))
			i++
		}
	}()

	// Rank probe: in-process (no wire cost), classified by the RankStats
	// delta around each call. See the AnalyticsResult field docs for why
	// discarding ambiguous samples keeps the classification sound.
	var rankHitLat, rankComputeLat []time.Duration
	rankProbes := 0
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h0, m0, _ := d.RankStats()
			start := time.Now()
			d.TieRank(-1, analyticsTopK)
			elapsed := time.Since(start)
			h1, m1, _ := d.RankStats()
			rankProbes++
			switch {
			case h1 > h0 && m1 == m0:
				rankHitLat = append(rankHitLat, elapsed)
			case m1 > m0 && h1 == h0:
				rankComputeLat = append(rankComputeLat, elapsed)
			}
		}
	}()

	// Ingest side: conns persistent connections, one minute at a time
	// with a barrier between minutes (see serveWorkload).
	clients := make([]*client.Client, conns)
	for i := range clients {
		if clients[i], err = client.Dial(addr, client.WithTimeout(60*time.Second)); err != nil {
			panic(err)
		}
	}
	ingestStart := time.Now()
	for m := 0; m < minutes; m++ {
		var wg sync.WaitGroup
		for ci := 0; ci < conns; ci++ {
			chunk := workload[m][ci]
			if len(chunk) == 0 {
				continue
			}
			r.Activations += len(chunk)
			r.Batches++
			wg.Add(1)
			go func(ci int, chunk []anc.Activation) {
				defer wg.Done()
				if err := clients[ci].ActivateBatch(ctx, chunk); err != nil {
					panic(err)
				}
			}(ci, chunk)
		}
		wg.Wait()
	}
	r.IngestSeconds = time.Since(ingestStart).Seconds()
	primNext := d.LoggedActivations()
	close(stop)
	qwg.Wait()
	catchUp := time.Now()
	for deadline := catchUp.Add(120 * time.Second); fnode.Status().Next < primNext; {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("follower stuck at frame %d of %d", fnode.Status().Next, primNext))
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.FollowerCatchUpSec = time.Since(catchUp).Seconds()

	// Correctness at the replica: with ingest stopped and the follower
	// caught up, both nodes hold the same decayed state, so TieRank —
	// a pure function of that state — must agree exactly, through the
	// same wire path the latency numbers used.
	pc, err := client.Dial(addr, client.WithTimeout(60*time.Second))
	if err != nil {
		panic(err)
	}
	fc, err := client.Dial(faddr, client.WithTimeout(60*time.Second))
	if err != nil {
		panic(err)
	}
	for _, lv := range []int{-1, level} {
		prank, err := pc.TieRank(ctx, lv, analyticsTopK)
		if err != nil {
			panic(err)
		}
		frank, err := fc.TieRank(ctx, lv, analyticsTopK)
		if err != nil {
			panic(err)
		}
		if !reflect.DeepEqual(prank, frank) {
			panic(fmt.Sprintf("follower TieRank(level=%d) diverged from primary after catch-up", lv))
		}
	}
	for _, qc := range []*client.Client{pc, fc} {
		qc.Close() //anclint:ignore droppederr benchmark teardown of a query connection
	}

	_, seq, dropped := d.Evolution(0)
	r.EvolutionEvents = seq
	r.EvolutionDropped = dropped
	for _, c := range clients {
		c.Close() //anclint:ignore droppederr benchmark teardown of an ingest connection
	}
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := fsrv.Shutdown(sctx); err != nil {
		panic(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		panic(err)
	}

	if r.IngestSeconds > 0 {
		r.IngestRate = float64(r.Activations) / r.IngestSeconds
	}
	r.GlobalQueries = len(globalLat)
	r.GlobalP50ms = ms(percentile(globalLat, 0.50))
	r.GlobalP99ms = ms(percentile(globalLat, 0.99))
	r.ClusterQueries = len(clusterLat)
	r.ClusterP50ms = ms(percentile(clusterLat, 0.50))
	r.ClusterP99ms = ms(percentile(clusterLat, 0.99))
	r.EvolutionQueries = len(evoLat)
	r.EvolutionP50ms = ms(percentile(evoLat, 0.50))
	r.EvolutionP99ms = ms(percentile(evoLat, 0.99))
	r.FollowerQueries = len(followerLat)
	r.FollowerP50ms = ms(percentile(followerLat, 0.50))
	r.FollowerP99ms = ms(percentile(followerLat, 0.99))
	r.RankProbeSamples = rankProbes
	r.RankHitSamples = len(rankHitLat)
	r.RankHitP50ms = ms(percentile(rankHitLat, 0.50))
	r.RankHitP99ms = ms(percentile(rankHitLat, 0.99))
	r.RankComputeP50ms = ms(percentile(rankComputeLat, 0.50))
	r.RankComputeP99ms = ms(percentile(rankComputeLat, 0.99))
	if r.RankHitP50ms > 0 {
		r.RankHitSpeedup = r.RankComputeP50ms / r.RankHitP50ms
	}
	r.RankHits, r.RankMisses, r.RankInvalidations = d.RankStats()
	r.Metrics = reg.Snapshot()
	logf(cfg, w, "# analytics: %d acts in %d batches over %d conns: %.0f acts/s under %d/%d/%d tierank-g/tierank-c/evolution queries\n",
		r.Activations, r.Batches, conns, r.IngestRate, r.GlobalQueries, r.ClusterQueries, r.EvolutionQueries)
	logf(cfg, w, "# analytics: tierank global p99 %.2fms, cluster p99 %.2fms, evolution p99 %.2fms, follower p99 %.2fms (%d queries, caught up in %.2fs)\n",
		r.GlobalP99ms, r.ClusterP99ms, r.EvolutionP99ms, r.FollowerP99ms, r.FollowerQueries, r.FollowerCatchUpSec)
	logf(cfg, w, "# analytics: rank probe %d/%d hit (p50 %.4fms vs compute %.4fms, %.0fx), %d hits / %d misses / %d invalidations, %d evolution events (%d dropped)\n",
		r.RankHitSamples, r.RankProbeSamples, r.RankHitP50ms, r.RankComputeP50ms,
		r.RankHitSpeedup, r.RankHits, r.RankMisses, r.RankInvalidations, r.EvolutionEvents, r.EvolutionDropped)
	return r
}

// PrintAnalytics renders the analytics load results as a table.
func PrintAnalytics(w io.Writer, r AnalyticsResult) {
	t := newTable(w)
	t.row("metric", "value")
	t.row("connections", r.Conns)
	t.row("activations", r.Activations)
	t.row("batches", r.Batches)
	t.row("ingest acts/s", r.IngestRate)
	t.row("tierank global queries", r.GlobalQueries)
	t.row("tierank global p50 ms", r.GlobalP50ms)
	t.row("tierank global p99 ms", r.GlobalP99ms)
	t.row("tierank cluster queries", r.ClusterQueries)
	t.row("tierank cluster p50 ms", r.ClusterP50ms)
	t.row("tierank cluster p99 ms", r.ClusterP99ms)
	t.row("evolution queries", r.EvolutionQueries)
	t.row("evolution p50 ms", r.EvolutionP50ms)
	t.row("evolution p99 ms", r.EvolutionP99ms)
	t.row("evolution events (dropped)", fmt.Sprintf("%d (%d)", r.EvolutionEvents, r.EvolutionDropped))
	t.row("follower queries", r.FollowerQueries)
	t.row("follower p50 ms", r.FollowerP50ms)
	t.row("follower p99 ms", r.FollowerP99ms)
	t.row("follower catch-up s", r.FollowerCatchUpSec)
	t.row("rank probes (hits)", fmt.Sprintf("%d (%d)", r.RankProbeSamples, r.RankHitSamples))
	t.row("rank hit p50 ms", r.RankHitP50ms)
	t.row("rank hit p99 ms", r.RankHitP99ms)
	t.row("rank compute p50 ms", r.RankComputeP50ms)
	t.row("rank compute p99 ms", r.RankComputeP99ms)
	t.row("rank hit speedup", r.RankHitSpeedup)
	t.row("rank hits/misses/invalidations", fmt.Sprintf("%d/%d/%d", r.RankHits, r.RankMisses, r.RankInvalidations))
	t.flush()
}

// WriteAnalyticsJSON writes the result to path (BENCH_analytics.json)
// for the CI artifact and the README numbers.
func WriteAnalyticsJSON(path string, r AnalyticsResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
