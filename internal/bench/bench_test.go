package bench

import (
	"io"
	"testing"
)

// tinyConfig keeps the experiment smoke tests fast.
func tinyConfig() Config {
	return Config{TargetN: 150, EffTargetN: 512, Steps: 10, SampleEvery: 5, Seed: 1, Quiet: true}
}

func TestExp1Smoke(t *testing.T) {
	rows := Exp1StaticQuality(tinyConfig(), io.Discard)
	if len(rows) != len(Exp1Datasets)*7 { // 4 baselines + 3 ANCF reps
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[string][]Exp1Row{}
	for _, r := range rows {
		byMethod[r.Method] = append(byMethod[r.Method], r)
		if r.NMI < 0 || r.NMI > 1 || r.Purity < 0 || r.Purity > 1 {
			t.Fatalf("score out of range: %+v", r)
		}
	}
	// ANCF should be competitive on planted graphs: high absolute NMI.
	// (At smoke scale every decent method scores well, so the paper's
	// relative ordering is only asserted loosely here; the full-scale
	// run in EXPERIMENTS.md carries the comparison.)
	mean := func(rs []Exp1Row) float64 {
		s := 0.0
		for _, r := range rs {
			s += r.NMI
		}
		return s / float64(len(rs))
	}
	if ancf := mean(byMethod["ANCF9"]); ancf < 0.6 {
		t.Errorf("ANCF9 mean NMI %v below 0.6", ancf)
	}
	PrintExp1(io.Discard, rows)
}

func TestExp2TimeSmoke(t *testing.T) {
	rows := Exp2ActivationTime(tinyConfig(), io.Discard)
	if len(rows) != 5*8 {
		t.Fatalf("rows = %d", len(rows))
	}
	perDataset := map[string]map[string]float64{}
	for _, r := range rows {
		if perDataset[r.Dataset] == nil {
			perDataset[r.Dataset] = map[string]float64{}
		}
		perDataset[r.Dataset][r.Method] = r.Seconds
		if r.Seconds < 0 {
			t.Fatalf("negative time: %+v", r)
		}
	}
	if raceEnabled {
		t.Log("race detector active: skipping wall-clock assertions")
		return
	}
	// The headline claim: ANCO's per-activation cost is below DYNA's on
	// every dataset. The paper's gap is 3+ orders of magnitude at real
	// sizes; at n=150 smoke scale the gap is a small constant factor, so
	// only a 2× margin is asserted here — the scale run in EXPERIMENTS.md
	// shows the widening gap.
	for ds, m := range perDataset {
		if m["ANCO"]*2 > m["DYNA"] {
			t.Errorf("%s: ANCO %.3g not well below DYNA %.3g", ds, m["ANCO"], m["DYNA"])
		}
		if m["ANCO"] > m["ANCOR"]*3 {
			t.Errorf("%s: ANCO %.3g should not be much slower than ANCOR %.3g", ds, m["ANCO"], m["ANCOR"])
		}
	}
	PrintExp2Time(io.Discard, rows)
}

func TestExp2QualitySmoke(t *testing.T) {
	pts := Exp2QualitySeries(tinyConfig(), io.Discard, []string{"CO"})
	if len(pts) == 0 {
		t.Fatal("no quality points")
	}
	for _, p := range pts {
		if p.NMI < 0 || p.NMI > 1 {
			t.Fatalf("NMI out of range: %+v", p)
		}
	}
	means := MeanQuality(pts)
	if len(means) == 0 {
		t.Fatal("no means")
	}
	PrintExp2Quality(io.Discard, pts)
}

func TestExp3And4Smoke(t *testing.T) {
	cfg := tinyConfig()
	rows := Exp3IndexTime(cfg, io.Discard)
	if len(rows) != len(EffSuite(cfg))*4 {
		t.Fatalf("exp3 rows = %d", len(rows))
	}
	// Index time grows with k on the largest graph.
	last := rows[len(rows)-4:]
	if last[0].Seconds > last[3].Seconds*2 {
		t.Errorf("k=2 slower than 2x k=16: %+v", last)
	}
	PrintExp3(io.Discard, rows)

	mem := Exp4IndexMemory(cfg, io.Discard)
	if len(mem) != len(EffSuite(cfg))*3 {
		t.Fatalf("exp4 rows = %d", len(mem))
	}
	for i := 0; i+2 < len(mem); i += 3 {
		if !(mem[i].Bytes < mem[i+1].Bytes && mem[i+1].Bytes < mem[i+2].Bytes) {
			t.Errorf("memory not monotone in k: %+v", mem[i:i+3])
		}
	}
	PrintExp4(io.Discard, mem)
}

func TestExp5Smoke(t *testing.T) {
	rows := Exp5QueryTime(tinyConfig(), io.Discard)
	if len(rows) == 0 {
		t.Fatal("no exp5 rows")
	}
	PrintExp5(io.Discard, rows)
}

func TestExp6BatchSmoke(t *testing.T) {
	rows := Exp6UpdateVsReconstruct(tinyConfig(), io.Discard, 4)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// The single-update speedup must be large (the paper's headline is up
	// to six orders of magnitude; at smoke scale require 3× on batch=1).
	for _, r := range rows {
		if r.Batch == 1 && r.Update*3 > r.Reconstruct {
			t.Errorf("%s: single UPDATE %.3g not well below RECONSTRUCT %.3g", r.Dataset, r.Update, r.Reconstruct)
		}
	}
	PrintExp6Batch(io.Discard, rows)
}

func TestExp6DaySmoke(t *testing.T) {
	stats := Exp6DiurnalUpdates(tinyConfig(), io.Discard, 60)
	if stats.Activations == 0 || stats.P95 <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.P95 < stats.P50 {
		t.Fatal("p95 < p50")
	}
	PrintExp6Day(io.Discard, stats)
}

func TestExp6WorkloadSmoke(t *testing.T) {
	rows := Exp6MixedWorkload(tinyConfig(), io.Discard, 800)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if raceEnabled {
		t.Log("race detector active: skipping wall-clock assertions")
		return
	}
	// ANCO beats DYNA at every query share (Fig 10 shape). Wall-clock at
	// smoke scale is noisy, so a 1.5× tolerance absorbs scheduler jitter;
	// the scale run in EXPERIMENTS.md shows the real (much larger) gap.
	for _, r := range rows {
		if r.ANCO > r.DYNA*1.5 {
			t.Errorf("q=%v: ANCO %.3g slower than DYNA %.3g", r.QueryFrac, r.ANCO, r.DYNA)
		}
	}
	PrintExp6Workload(io.Discard, rows)
}

func TestCaseStudySmoke(t *testing.T) {
	obs := CaseStudy(tinyConfig(), io.Discard)
	if len(obs) != 6 { // 3 years × 2 levels
		t.Fatalf("observations = %d", len(obs))
	}
	byYearLevel := map[[2]int]CaseStudyObservation{}
	for _, o := range obs {
		byYearLevel[[2]int{o.Year, o.Level}] = o
	}
	// Year 10, level 3: v8 collaborates only with v7 so far; the
	// dis-similarity to v7 must be far below that to v26 (never active).
	o10 := byYearLevel[[2]int{10, 3}]
	if o10.DisSim[7] >= o10.DisSim[26] {
		t.Errorf("year 10: dissim(v7)=%v not below dissim(v26)=%v", o10.DisSim[7], o10.DisSim[26])
	}
	// Year 20: v0 and v11 are the active collaborators; v7 has faded.
	o20 := byYearLevel[[2]int{20, 3}]
	if o20.DisSim[0] >= o20.DisSim[7] {
		t.Errorf("year 20: dissim(v0)=%v not below dissim(v7)=%v", o20.DisSim[0], o20.DisSim[7])
	}
	// Year 30: v26 active, v11 faded.
	o30 := byYearLevel[[2]int{30, 3}]
	if o30.DisSim[26] >= o30.DisSim[11] {
		t.Errorf("year 30: dissim(v26)=%v not below dissim(v11)=%v", o30.DisSim[26], o30.DisSim[11])
	}
	PrintCaseStudy(io.Discard, obs)
}

func TestParamsSmoke(t *testing.T) {
	cfg := tinyConfig()
	rows := ParamSensitivity(cfg, io.Discard)
	if len(rows) != 4+6+6+8 {
		t.Fatalf("rows = %d", len(rows))
	}
	PrintParams(io.Discard, rows)
}

func TestAblationsSmoke(t *testing.T) {
	rows := Ablations(tinyConfig(), io.Discard)
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	PrintAblations(io.Discard, rows)
}

func TestTable1Smoke(t *testing.T) {
	rows := Table1Datasets(tinyConfig(), io.Discard)
	if len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	PrintTable1(io.Discard, rows)
}
