package bench

import (
	"fmt"
	"io"
	"sort"

	"anc/internal/core"
	"anc/internal/graph"
)

// CaseStudyFocus lists node v8's inspected neighbors from Figure 11.
var CaseStudyFocus = []graph.NodeID{0, 5, 7, 11, 26}

// CaseStudyObservation is one (year, level) snapshot of the Figure 11 case
// study: for each focus neighbor of v8, whether it shares v8's cluster and
// the current dis-similarity (1/S) of the connecting edge.
type CaseStudyObservation struct {
	Year        int
	Level       int
	SameCluster map[graph.NodeID]bool
	DisSim      map[graph.NodeID]float64
}

// caseStudyGraph builds the 29-node collaboration network: five research
// groups around v0, v5, v7, v11 and v26, with v8 linked to one member of
// each — mirroring the DB2 subgraph of Section VI-C.
func caseStudyGraph() (*graph.Graph, [][2]graph.NodeID) {
	b := graph.NewBuilder(29)
	var groups [][]graph.NodeID
	groups = append(groups,
		[]graph.NodeID{0, 1, 2, 3},         // v0's group
		[]graph.NodeID{5, 4, 6, 9},         // v5's group
		[]graph.NodeID{7, 13, 14, 15, 16},  // v7's group
		[]graph.NodeID{11, 17, 18, 19, 20}, // v11's group
		[]graph.NodeID{26, 23, 24, 25, 27}, // v26's group
		[]graph.NodeID{10, 12, 21, 22, 28}, // background collaborators
	)
	var intra [][2]graph.NodeID
	for _, grp := range groups {
		for i := range grp {
			for j := i + 1; j < len(grp); j++ {
				b.AddEdge(grp[i], grp[j])
				intra = append(intra, [2]graph.NodeID{grp[i], grp[j]})
			}
		}
	}
	for _, f := range CaseStudyFocus {
		b.AddEdge(8, f)
	}
	// Light cross-links so the graph is connected and realistic.
	for _, e := range [][2]graph.NodeID{{3, 4}, {9, 13}, {16, 17}, {20, 23}, {10, 0}, {12, 26}, {21, 7}, {22, 11}, {28, 5}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), intra
}

// CaseStudy reproduces Figure 11: a 30-year activation history in which
// v8 collaborates with v7 in years 5–11, with v11 in 11–22, with v0 in
// 11–30, with v5 in 17–26 and with v26 in 23–30, while each group stays
// internally active. Snapshots at years 10, 20 and 30 are reported at
// granularity levels 2 and 3.
func CaseStudy(cfg Config, w io.Writer) []CaseStudyObservation {
	g, intra := caseStudyGraph()
	opts := ancOptions(core.ANCOR, 3, cfg.Seed)
	opts.Lambda = 0.35 // yearly decay: old collaborations fade in a few years
	opts.Similarity.Mu = 3
	opts.ReinforceInterval = 1
	nw, err := core.New(g, opts)
	if err != nil {
		panic(err)
	}
	active := func(year int, from, to int) bool { return year >= from && year <= to }
	var obs []CaseStudyObservation
	for year := 1; year <= 30; year++ {
		t := float64(year)
		// Groups collaborate internally every year.
		for _, e := range intra {
			nw.ActivatePair(e[0], e[1], t)
		}
		pairs := map[graph.NodeID][2]int{
			7:  {5, 11},
			11: {11, 22},
			0:  {11, 30},
			5:  {17, 26},
			26: {23, 30},
		}
		for nb, span := range pairs {
			if active(year, span[0], span[1]) {
				nw.ActivatePair(8, nb, t)
			}
		}
		if year == 10 || year == 20 || year == 30 {
			nw.Flush()
			for _, level := range []int{2, 3} {
				o := CaseStudyObservation{
					Year: year, Level: level,
					SameCluster: map[graph.NodeID]bool{},
					DisSim:      map[graph.NodeID]float64{},
				}
				members := nw.LocalCluster(8, level)
				inCluster := map[graph.NodeID]bool{}
				for _, m := range members {
					inCluster[m] = true
				}
				for _, f := range CaseStudyFocus {
					o.SameCluster[f] = inCluster[f]
					e := g.FindEdge(8, f)
					o.DisSim[f] = 1 / nw.Similarity().At(e)
				}
				obs = append(obs, o)
			}
			logf(cfg, w, "# case study year %d recorded\n", year)
		}
	}
	return obs
}

// PrintCaseStudy renders the Figure 11 snapshots.
func PrintCaseStudy(w io.Writer, obs []CaseStudyObservation) {
	t := newTable(w)
	t.row("year", "level", "neighbor", "same cluster", "dis-similarity 1/S")
	for _, o := range obs {
		keys := make([]graph.NodeID, 0, len(o.SameCluster))
		for k := range o.SameCluster {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			t.row(o.Year, o.Level, fmt.Sprintf("v%d", k), o.SameCluster[k], o.DisSim[k])
		}
	}
	t.flush()
}
