package bench

import (
	"fmt"
	"io"
	"time"

	"anc/internal/plot"
)

// ChartExp2Quality renders the Figure 4 NMI series of one dataset as an
// ASCII line chart (one series per method).
func ChartExp2Quality(w io.Writer, pts []Exp2QualityPoint, dataset string) {
	byMethod := map[string]*plot.Series{}
	var order []string
	for _, p := range pts {
		if p.Dataset != dataset {
			continue
		}
		s, ok := byMethod[p.Method]
		if !ok {
			s = &plot.Series{Name: p.Method}
			byMethod[p.Method] = s
			order = append(order, p.Method)
		}
		s.X = append(s.X, float64(p.Timestamp))
		s.Y = append(s.Y, p.NMI)
	}
	var series []plot.Series
	for _, m := range order {
		series = append(series, *byMethod[m])
	}
	plot.Lines(w, fmt.Sprintf("Figure 4 (%s): NMI over timestamps", dataset), series, 60, 12)
}

// ChartExp3 renders Figure 5 as a log-scale bar chart (one bar per
// dataset × k).
func ChartExp3(w io.Writer, rows []Exp3Row) {
	var bars []plot.Bar
	for _, r := range rows {
		bars = append(bars, plot.Bar{Label: fmt.Sprintf("%s k=%d", r.Dataset, r.K), Value: r.Seconds})
	}
	plot.Bars(w, "Figure 5: index construction time (log scale)", bars, 46, true)
}

// ChartExp4 renders Figure 6 as a log-scale bar chart in megabytes.
func ChartExp4(w io.Writer, rows []Exp4Row) {
	var bars []plot.Bar
	for _, r := range rows {
		bars = append(bars, plot.Bar{Label: fmt.Sprintf("%s k=%d", r.Dataset, r.K), Value: float64(r.Bytes) / (1 << 20)})
	}
	plot.Bars(w, "Figure 6: index memory, MB (log scale)", bars, 46, true)
}

// ChartExp6Batch renders Figure 8 as paired UPDATE/RECONSTRUCT bars.
func ChartExp6Batch(w io.Writer, rows []Exp6BatchRow) {
	var bars []plot.Bar
	for _, r := range rows {
		bars = append(bars,
			plot.Bar{Label: fmt.Sprintf("%s b=%d UPD", r.Dataset, r.Batch), Value: r.Update},
			plot.Bar{Label: fmt.Sprintf("%s b=%d REC", r.Dataset, r.Batch), Value: r.Reconstruct})
	}
	plot.Bars(w, "Figure 8: UPDATE vs RECONSTRUCT seconds (log scale)", bars, 46, true)
}

// ChartExp6Day renders the Figure 9 per-minute series as a sparkline plus
// the p95 marker line.
func ChartExp6Day(w io.Writer, s Exp6DayStats) {
	vals := make([]float64, len(s.PerMinute))
	for i, d := range s.PerMinute {
		vals[i] = d.Seconds()
	}
	// Downsample to 120 columns for terminal width.
	const cols = 120
	if len(vals) > cols {
		ds := make([]float64, cols)
		per := len(vals) / cols
		for i := 0; i < cols; i++ {
			max := 0.0
			for j := i * per; j < (i+1)*per && j < len(vals); j++ {
				if vals[j] > max {
					max = vals[j]
				}
			}
			ds[i] = max
		}
		vals = ds
	}
	fmt.Fprintf(w, "Figure 9: per-minute update time over the day (max-downsampled)\n  %s\n", plot.Spark(vals))
	fmt.Fprintf(w, "  p50=%v p95=%v max=%v\n", round(s.P50), round(s.P95), round(s.Max))
}

// ChartExp6Workload renders Figure 10 as grouped log-scale bars.
func ChartExp6Workload(w io.Writer, rows []Exp6WorkloadRow) {
	var bars []plot.Bar
	for _, r := range rows {
		q := int(r.QueryFrac * 100)
		bars = append(bars,
			plot.Bar{Label: fmt.Sprintf("%d%% ANCO", q), Value: r.ANCO},
			plot.Bar{Label: fmt.Sprintf("%d%% DYNA", q), Value: r.DYNA},
			plot.Bar{Label: fmt.Sprintf("%d%% LWEP", q), Value: r.LWEP})
	}
	plot.Bars(w, "Figure 10: workload time, seconds (log scale)", bars, 46, true)
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
