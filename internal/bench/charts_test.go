package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestChartExp2Quality(t *testing.T) {
	pts := []Exp2QualityPoint{
		{Dataset: "CO", Method: "ANCO", Timestamp: 10, NMI: 0.5},
		{Dataset: "CO", Method: "ANCO", Timestamp: 20, NMI: 0.4},
		{Dataset: "CO", Method: "DYNA", Timestamp: 10, NMI: 0.6},
		{Dataset: "CO", Method: "DYNA", Timestamp: 20, NMI: 0.3},
		{Dataset: "FB", Method: "ANCO", Timestamp: 10, NMI: 0.9},
	}
	var buf bytes.Buffer
	ChartExp2Quality(&buf, pts, "CO")
	out := buf.String()
	if !strings.Contains(out, "o=ANCO") || !strings.Contains(out, "x=DYNA") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if strings.Contains(out, "FB") {
		t.Fatal("other dataset leaked into chart")
	}
}

func TestChartBars(t *testing.T) {
	var buf bytes.Buffer
	ChartExp3(&buf, []Exp3Row{{Dataset: "CA", K: 2, Seconds: 0.01}, {Dataset: "CA", K: 4, Seconds: 0.02}})
	if !strings.Contains(buf.String(), "CA k=4") {
		t.Fatal("exp3 chart labels missing")
	}
	buf.Reset()
	ChartExp4(&buf, []Exp4Row{{Dataset: "CA", K: 4, Bytes: 1 << 20}})
	if !strings.Contains(buf.String(), "MB") {
		t.Fatal("exp4 chart title missing")
	}
	buf.Reset()
	ChartExp6Batch(&buf, []Exp6BatchRow{{Dataset: "DB", Batch: 1, Update: 1e-5, Reconstruct: 1e-2}})
	if !strings.Contains(buf.String(), "UPD") || !strings.Contains(buf.String(), "REC") {
		t.Fatal("exp6 batch chart labels missing")
	}
	buf.Reset()
	ChartExp6Workload(&buf, []Exp6WorkloadRow{{QueryFrac: 0.01, ANCO: 1, DYNA: 10, LWEP: 100}})
	if !strings.Contains(buf.String(), "1% ANCO") {
		t.Fatal("workload chart labels missing")
	}
}

func TestChartExp6Day(t *testing.T) {
	per := make([]time.Duration, 300)
	for i := range per {
		per[i] = time.Duration(i) * time.Microsecond
	}
	s := Exp6DayStats{Minutes: 300, PerMinute: per, P50: 150 * time.Microsecond, P95: 285 * time.Microsecond, Max: 299 * time.Microsecond}
	var buf bytes.Buffer
	ChartExp6Day(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "p95=") {
		t.Fatalf("day chart summary missing:\n%s", out)
	}
	// Downsampled to ≤ 120 glyphs.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "▁") || strings.Contains(line, "█") {
			if n := len([]rune(strings.TrimSpace(line))); n > 121 {
				t.Fatalf("sparkline too wide: %d", n)
			}
		}
	}
}
