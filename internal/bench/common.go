// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic dataset counterparts. Each
// experiment has a function returning structured results plus a printer
// that emits the same rows/series the paper reports; cmd/ancbench and the
// root bench_test.go are thin wrappers over this package.
//
// Scaling: experiments run at a configurable scale so the default `go
// test -bench` finishes in minutes on a laptop. Absolute numbers differ
// from the paper's Java/Xeon setup by construction; the reproduction
// target is the *shape* of each result — who wins, by what order of
// magnitude, and how costs scale (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/decay"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

// Config scales and seeds every experiment.
type Config struct {
	// TargetN is the node count datasets are downscaled to for the
	// quality experiments (Exp 1, 2). Default 400.
	TargetN int
	// EffTargetN is the largest node count of the efficiency suite
	// (Exps 3–6). Default 4096.
	EffTargetN int
	// Steps is the number of activation timestamps in Exp 2. Default 60
	// (the paper uses 100).
	Steps int
	// SampleEvery controls how often Exp 2 scores quality. Default 10.
	SampleEvery int
	// Seed drives all generators.
	Seed int64
	// Quiet suppresses progress lines.
	Quiet bool
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{TargetN: 400, EffTargetN: 4096, Steps: 60, SampleEvery: 10, Seed: 1}
}

// scaleFor returns the generator scale that hits roughly targetN nodes for
// the given dataset spec.
func scaleFor(s dataset.Spec, targetN int) float64 {
	return float64(targetN) / float64(s.N)
}

// genCounterpart generates a dataset counterpart at the target size.
func genCounterpart(s dataset.Spec, targetN int, seed int64) *gen.Planted {
	return s.Generate(scaleFor(s, targetN), rand.New(rand.NewSource(seed)))
}

// ancOptions returns experiment-wide ANC options tuned for the synthetic
// counterparts: ε and μ mid-range (Table II), a given method and rep.
func ancOptions(method core.Method, rep int, seed int64) core.Options {
	o := core.DefaultOptions()
	o.Method = method
	o.Rep = rep
	o.Seed = seed
	o.Similarity = similarity.Config{Epsilon: 0.3, Mu: 3, SMin: 1e-9, SMax: 1e12}
	return o
}

// unitWeights returns m ones.
func unitWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

// timeIt measures f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// activenessTracker maintains plain decayed activeness weights for the
// baselines (DYNA, LWEP, SCAN, LOUV), mirroring what the paper feeds
// them. Decay routes through decay.Clock (the nakedexp invariant): the
// tracker registers as a Rescalable store, and each tick advances the
// clock one time unit and rescales, which folds g = exp(-λ·1) into the
// weights.
type activenessTracker struct {
	clock *decay.Clock
	act   []float64
	lastG float64
}

func newActivenessTracker(m int, lambda float64) *activenessTracker {
	t := &activenessTracker{clock: decay.NewClock(lambda), act: unitWeights(m)}
	t.clock.Register(t)
	return t
}

// OnRescale implements decay.Rescalable: activeness is PosM, so the
// anchored weights absorb ×g.
func (a *activenessTracker) OnRescale(g float64) {
	for i := range a.act {
		a.act[i] *= g
	}
	a.lastG = g
}

// tick decays all weights by one time unit and returns the factor.
func (a *activenessTracker) tick() float64 {
	a.clock.Advance(a.clock.Now() + 1)
	a.clock.Rescale()
	return a.lastG
}

// activate records one activation. The clock is always freshly rescaled
// (tick rescales every step), so the anchored increment 1/g is exactly 1.
func (a *activenessTracker) activate(e graph.EdgeID) {
	a.act[e] += 1 / a.clock.G()
}

// percentile returns the q-quantile (0..1) of the (unsorted) durations.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// table is a small helper over tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.tw, "%.4g", v)
		default:
			fmt.Fprint(t.tw, v)
		}
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() } //anclint:ignore droppederr stdout report table; a failed flush garbles console output, not data

// buildIndexOnly builds a pyramids index over a graph with unit weights —
// the Exp 3/4 primitive (index construction is similarity-independent).
func buildIndexOnly(g *graph.Graph, k int, seed int64) *pyramid.Index {
	w := unitWeights(g.M())
	ix, err := pyramid.Build(g, func(e graph.EdgeID) float64 { return w[e] },
		pyramid.Config{K: k, Theta: 0.7}, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err) // generator-produced graphs are always valid
	}
	return ix
}

func logf(cfg Config, w io.Writer, format string, args ...interface{}) {
	if !cfg.Quiet {
		fmt.Fprintf(w, format, args...)
	}
}
