package bench

import (
	"io"

	"anc/internal/baseline/attractor"
	"anc/internal/baseline/louvain"
	"anc/internal/baseline/lwep"
	"anc/internal/baseline/scan"
	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/quality"
)

// Exp1Row is one (method, dataset) cell group of Table III.
type Exp1Row struct {
	Method      string
	Dataset     string
	Modularity  float64
	Conductance float64
	NMI         float64
	Purity      float64
	F1          float64
	ARI         float64
	Clusters    int
}

// Exp1Datasets are the paper's four static quality datasets.
var Exp1Datasets = []string{"LA", "DB", "AM", "YT"}

// Exp1StaticQuality reproduces Table III: static-network clustering
// quality of ANCF (rep = 1, 5, 9) against SCAN, ATTR, LOUV and LWEP on
// the LA / DB / AM / YT counterparts with planted ground truth.
func Exp1StaticQuality(cfg Config, w io.Writer) []Exp1Row {
	var rows []Exp1Row
	for di, name := range Exp1Datasets {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, cfg.TargetN, cfg.Seed+int64(di))
		g := pl.Graph
		uw := unitWeights(g.M())
		truthK := quality.NumClusters(pl.Truth)
		logf(cfg, w, "# exp1 %s: n=%d m=%d truth clusters=%d\n", name, g.N(), g.M(), truthK)

		score := func(method string, labels []int32) {
			labels = quality.FilterNoise(labels, 3)
			rows = append(rows, Exp1Row{
				Method:      method,
				Dataset:     name,
				Modularity:  quality.Modularity(g, uw, labels),
				Conductance: quality.Conductance(g, uw, labels),
				NMI:         quality.NMI(labels, pl.Truth),
				Purity:      quality.Purity(labels, pl.Truth),
				F1:          quality.F1(labels, pl.Truth),
				ARI:         quality.ARI(labels, pl.Truth),
				Clusters:    quality.NumClusters(labels),
			})
		}

		score("SCAN", scan.Cluster(g, scan.Params{Epsilon: 0.5, Mu: 3}))
		score("ATTR", attractor.Cluster(g, attractor.DefaultParams()))
		score("LOUV", louvain.Cluster(g, uw))
		score("LWEP", lwep.New(g, uw).Labels())
		for _, rep := range []int{1, 5, 9} {
			nw, err := core.New(g, ancOptions(core.ANCF, rep, cfg.Seed))
			if err != nil {
				panic(err)
			}
			c, _ := nw.ClustersNear(truthK)
			score(methodName("ANCF", rep), c.Labels)
		}
	}
	return rows
}

func methodName(base string, rep int) string {
	return base + string(rune('0'+rep))
}

// PrintExp1 renders the rows grouped like Table III.
func PrintExp1(w io.Writer, rows []Exp1Row) {
	t := newTable(w)
	t.row("method", "dataset", "Modularity", "Conductance", "NMI", "Purity", "F1", "ARI", "#clusters")
	for _, r := range rows {
		t.row(r.Method, r.Dataset, r.Modularity, r.Conductance, r.NMI, r.Purity, r.F1, r.ARI, r.Clusters)
	}
	t.flush()
}

// snapshotWeights exposes an activeness snapshot for baselines needing
// weighted graphs (kept here for reuse by Exp 2).
func snapshotWeights(tr *activenessTracker) []float64 {
	out := make([]float64, len(tr.act))
	copy(out, tr.act)
	return out
}
