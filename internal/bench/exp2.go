package bench

import (
	"io"
	"math/rand"

	"anc/internal/baseline/attractor"
	"anc/internal/baseline/dynamo"
	"anc/internal/baseline/louvain"
	"anc/internal/baseline/lwep"
	"anc/internal/baseline/scan"
	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/quality"
	"anc/internal/spectral"
)

// Exp2TimeRow is one cell of Table IV: amortized cost per activation for
// online methods, or per-snapshot recomputation time for offline ones.
type Exp2TimeRow struct {
	Method  string
	Offline bool
	Dataset string
	// Seconds is per activation (online) or per snapshot (offline).
	Seconds float64
}

// Exp2ActivationTime reproduces Table IV on the five small dataset
// counterparts: activation networks with λ=0.1, Steps timestamps, 5% of
// edges activated per timestamp.
func Exp2ActivationTime(cfg Config, w io.Writer) []Exp2TimeRow {
	var rows []Exp2TimeRow
	const lambda = 0.1
	for di, spec := range dataset.Small() {
		pl := genCounterpart(spec, cfg.TargetN, cfg.Seed+int64(di))
		g := pl.Graph
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(di)))
		stream := gen.CommunityBiasedStream(g, pl.Truth, cfg.Steps, 0.05, 0.85, rng)
		logf(cfg, w, "# exp2 %s: n=%d m=%d activations=%d\n", spec.Name, g.N(), g.M(), len(stream))

		// --- Online methods: total stream time / #activations.
		onlineSeconds := func(run func()) float64 {
			return timeIt(run).Seconds() / float64(len(stream))
		}

		nwO, err := core.New(g, ancOptions(core.ANCO, 7, cfg.Seed))
		if err != nil {
			panic(err)
		}
		rows = append(rows, Exp2TimeRow{"ANCO", false, spec.Name, onlineSeconds(func() {
			for _, a := range stream {
				nwO.Activate(a.Edge, a.T)
			}
		})})

		nwR, err := core.New(g, ancOptions(core.ANCOR, 7, cfg.Seed))
		if err != nil {
			panic(err)
		}
		rows = append(rows, Exp2TimeRow{"ANCOR", false, spec.Name, onlineSeconds(func() {
			for _, a := range stream {
				nwR.Activate(a.Edge, a.T)
			}
		})})

		trD := newActivenessTracker(g.M(), lambda)
		dy := dynamo.New(g, trD.act)
		rows = append(rows, Exp2TimeRow{"DYNA", false, spec.Name, onlineSeconds(func() {
			at := 0
			for ts := 1; ts <= cfg.Steps; ts++ {
				dy.TickAsUpdates(trD.tick())
				for ; at < len(stream) && stream[at].T <= float64(ts); at++ {
					trD.activate(stream[at].Edge)
					dy.UpdateEdge(stream[at].Edge, trD.act[stream[at].Edge])
				}
			}
		})})

		trL := newActivenessTracker(g.M(), lambda)
		lw := lwep.New(g, trL.act)
		rows = append(rows, Exp2TimeRow{"LWEP", false, spec.Name, onlineSeconds(func() {
			at := 0
			for ts := 1; ts <= cfg.Steps; ts++ {
				lw.Tick(trL.tick())
				var edges []graph.EdgeID
				var nw []float64
				for ; at < len(stream) && stream[at].T <= float64(ts); at++ {
					trL.activate(stream[at].Edge)
					edges = append(edges, stream[at].Edge)
					nw = append(nw, trL.act[stream[at].Edge])
				}
				lw.UpdateBatch(edges, nw)
			}
		})})

		// --- Offline methods: one snapshot recomputation on the final
		// decayed weights, amortized per snapshot.
		tr := newActivenessTracker(g.M(), lambda)
		for ts, at := 1, 0; ts <= cfg.Steps; ts++ {
			tr.tick()
			for ; at < len(stream) && stream[at].T <= float64(ts); at++ {
				tr.activate(stream[at].Edge)
			}
		}
		snap := snapshotWeights(tr)

		rows = append(rows, Exp2TimeRow{"SCAN", true, spec.Name, timeIt(func() {
			scan.Cluster(g, scan.Params{Epsilon: 0.5, Mu: 3, Weights: snap, MinWeight: 0.05})
		}).Seconds()})
		rows = append(rows, Exp2TimeRow{"ATTR", true, spec.Name, timeIt(func() {
			attractor.Cluster(g, attractor.DefaultParams())
		}).Seconds()})
		rows = append(rows, Exp2TimeRow{"LOUV", true, spec.Name, timeIt(func() {
			louvain.Cluster(g, snap)
		}).Seconds()})
		nwF, err := core.New(g, ancOptions(core.ANCF, 7, cfg.Seed))
		if err != nil {
			panic(err)
		}
		for _, a := range stream {
			nwF.Activate(a.Edge, a.T)
		}
		rows = append(rows, Exp2TimeRow{"ANCF", true, spec.Name, timeIt(func() {
			if err := nwF.Snapshot(); err != nil {
				panic(err) // synthetic weights stay finite
			}
		}).Seconds()})
	}
	return rows
}

// PrintExp2Time renders Table IV.
func PrintExp2Time(w io.Writer, rows []Exp2TimeRow) {
	t := newTable(w)
	t.row("method", "kind", "dataset", "seconds (per activation | per snapshot)")
	for _, r := range rows {
		kind := "online"
		if r.Offline {
			kind = "offline"
		}
		t.row(r.Method, kind, r.Dataset, r.Seconds)
	}
	t.flush()
}

// Exp2QualityPoint is one (dataset, method, timestamp) sample of Figure 4.
type Exp2QualityPoint struct {
	Dataset   string
	Method    string
	Timestamp int
	NMI       float64
	Purity    float64
	F1        float64
	ARI       float64
}

// Exp2QualitySeries reproduces Figure 4: clustering quality over the
// activation stream, scored at sampled timestamps against spectral-
// clustering ground truth on the decayed snapshot (2√n clusters, as in
// Section VI-A).
func Exp2QualitySeries(cfg Config, w io.Writer, datasets []string) []Exp2QualityPoint {
	if datasets == nil {
		for _, s := range dataset.Small() {
			datasets = append(datasets, s.Name)
		}
	}
	var pts []Exp2QualityPoint
	const lambda = 0.1
	for di, name := range datasets {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, cfg.TargetN, cfg.Seed+int64(di))
		g := pl.Graph
		rng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(di)))
		stream := gen.CommunityBiasedStream(g, pl.Truth, cfg.Steps, 0.05, 0.85, rng)
		logf(cfg, w, "# exp2-quality %s: n=%d m=%d\n", name, g.N(), g.M())

		// Method states.
		nwO, _ := core.New(g, ancOptions(core.ANCO, 7, cfg.Seed))
		nwR, _ := core.New(g, ancOptions(core.ANCOR, 7, cfg.Seed))
		nwF, _ := core.New(g, ancOptions(core.ANCF, 7, cfg.Seed))
		trD := newActivenessTracker(g.M(), lambda)
		dy := dynamo.New(g, trD.act)
		trL := newActivenessTracker(g.M(), lambda)
		lw := lwep.New(g, trL.act)
		tr := newActivenessTracker(g.M(), lambda)
		attrLabels := attractor.Cluster(g, attractor.DefaultParams()) // weight-free, computed once

		truthK := quality.NumClusters(pl.Truth)
		gtRng := rand.New(rand.NewSource(cfg.Seed + 999))

		at := 0
		for ts := 1; ts <= cfg.Steps; ts++ {
			decay := tr.tick()
			trD.tick()
			trL.tick()
			dy.Tick(decay)
			lw.Tick(decay)
			var batchE []graph.EdgeID
			var batchW []float64
			for ; at < len(stream) && stream[at].T <= float64(ts); at++ {
				a := stream[at]
				nwO.Activate(a.Edge, a.T)
				nwR.Activate(a.Edge, a.T)
				nwF.Activate(a.Edge, a.T)
				tr.activate(a.Edge)
				trD.activate(a.Edge)
				trL.activate(a.Edge)
				dy.UpdateEdge(a.Edge, trD.act[a.Edge])
				batchE = append(batchE, a.Edge)
				batchW = append(batchW, trL.act[a.Edge])
			}
			lw.UpdateBatch(batchE, batchW)
			if ts%cfg.SampleEvery != 0 && ts != cfg.Steps {
				continue
			}
			// Ground truth on the decayed snapshot.
			snap := snapshotWeights(tr)
			truth := spectral.Cluster(g, snap, spectral.Params{K: truthK}, gtRng)

			record := func(method string, labels []int32) {
				labels = quality.FilterNoise(labels, 3)
				pts = append(pts, Exp2QualityPoint{
					Dataset: name, Method: method, Timestamp: ts,
					NMI:    quality.NMI(labels, truth),
					Purity: quality.Purity(labels, truth),
					F1:     quality.F1(labels, truth),
					ARI:    quality.ARI(labels, truth),
				})
			}
			cO, _ := nwO.ClustersNear(truthK)
			record("ANCO", cO.Labels)
			cR, _ := nwR.ClustersNear(truthK)
			record("ANCOR", cR.Labels)
			if err := nwF.Snapshot(); err != nil {
				panic(err) // synthetic weights stay finite
			}
			cF, _ := nwF.ClustersNear(truthK)
			record("ANCF", cF.Labels)
			record("DYNA", append([]int32(nil), dy.Labels()...))
			record("LWEP", append([]int32(nil), lw.Labels()...))
			record("SCAN", scan.Cluster(g, scan.Params{Epsilon: 0.5, Mu: 3, Weights: snap, MinWeight: 0.05}))
			record("LOUV", louvain.Cluster(g, snap))
			record("ATTR", attrLabels)
		}
	}
	return pts
}

// PrintExp2Quality renders the Figure 4 series as one row per sample.
func PrintExp2Quality(w io.Writer, pts []Exp2QualityPoint) {
	t := newTable(w)
	t.row("dataset", "method", "t", "NMI", "Purity", "F1", "ARI")
	for _, p := range pts {
		t.row(p.Dataset, p.Method, p.Timestamp, p.NMI, p.Purity, p.F1, p.ARI)
	}
	t.flush()
}

// MeanQuality aggregates the series per (dataset, method) for summary
// reporting and tests.
func MeanQuality(pts []Exp2QualityPoint) map[string]Exp2QualityPoint {
	sums := map[string]Exp2QualityPoint{}
	counts := map[string]int{}
	for _, p := range pts {
		key := p.Dataset + "/" + p.Method
		s := sums[key]
		s.Dataset, s.Method = p.Dataset, p.Method
		s.NMI += p.NMI
		s.Purity += p.Purity
		s.F1 += p.F1
		s.ARI += p.ARI
		sums[key] = s
		counts[key]++
	}
	for key, s := range sums {
		c := float64(counts[key])
		s.NMI /= c
		s.Purity /= c
		s.F1 /= c
		s.ARI /= c
		sums[key] = s
	}
	return sums
}
