package bench

import (
	"io"
	"math/rand"
	"time"

	"anc/internal/baseline/dynamo"
	"anc/internal/baseline/lwep"
	"anc/internal/cluster"
	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/pyramid"
)

// Exp6BatchRow is one point of Figure 8: UPDATE vs RECONSTRUCT time for a
// batch of weight changes.
type Exp6BatchRow struct {
	Dataset     string
	N, M        int
	Batch       int
	Update      float64 // seconds, incremental UPDATE
	Reconstruct float64 // seconds, full RECONSTRUCT
}

// Exp6UpdateVsReconstruct reproduces Figure 8: apply batches of 2⁰…2¹⁰
// weight changes either incrementally (UPDATE: Algorithms 1–3 per
// partition) or by rebuilding every partition (RECONSTRUCT).
func Exp6UpdateVsReconstruct(cfg Config, w io.Writer, maxBatchLog int) []Exp6BatchRow {
	var rows []Exp6BatchRow
	suite := []string{"DB", "YT"}
	for i, name := range suite {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed+int64(i))
		g := pl.Graph
		weights := unitWeights(g.M())
		ix, err := pyramid.Build(g, func(e graph.EdgeID) float64 { return weights[e] },
			pyramid.Config{K: 4, Theta: 0.7}, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 77))
		for bl := 0; bl <= maxBatchLog; bl += 2 {
			batch := 1 << uint(bl)
			edges, factors := randomWeightChanges(g.M(), batch, rng)
			upd := timeIt(func() {
				for j, e := range edges {
					weights[e] *= factors[j]
					ix.UpdateEdge(e, weights[e])
				}
			}).Seconds()
			// RECONSTRUCT: write the (already-updated) weights and rebuild.
			rec := timeIt(func() { ix.Reconstruct() }).Seconds()
			rows = append(rows, Exp6BatchRow{name, g.N(), g.M(), batch, upd, rec})
			logf(cfg, w, "# exp6 %s batch=%d update=%.4fs reconstruct=%.4fs\n", name, batch, upd, rec)
		}
	}
	return rows
}

// PrintExp6Batch renders Figure 8 as a table.
func PrintExp6Batch(w io.Writer, rows []Exp6BatchRow) {
	t := newTable(w)
	t.row("dataset", "n", "batch", "UPDATE s", "RECONSTRUCT s", "speedup")
	for _, r := range rows {
		speedup := 0.0
		if r.Update > 0 {
			speedup = r.Reconstruct / r.Update
		}
		t.row(r.Dataset, r.N, r.Batch, r.Update, r.Reconstruct, speedup)
	}
	t.flush()
}

// Exp6DayStats summarizes Figure 9: per-minute batched update times over a
// bursty day on the TW2 counterpart.
type Exp6DayStats struct {
	Minutes     int
	Activations int
	P50, P95    time.Duration
	Max         time.Duration
	Total       time.Duration
	// PerMinute carries the full series for plotting.
	PerMinute []time.Duration
}

// Exp6DiurnalUpdates reproduces Figure 9: 1440 per-minute activation
// batches with diurnal rate and bursts, λ=0.01, processed by ANCO.
func Exp6DiurnalUpdates(cfg Config, w io.Writer, minutes int) Exp6DayStats {
	spec, err := dataset.ByName("TW2")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed)
	g := pl.Graph
	opts := ancOptions(core.ANCO, 0, cfg.Seed)
	opts.Lambda = 0.01
	nw, err := core.New(g, opts)
	if err != nil {
		panic(err)
	}
	batches := gen.DefaultDiurnal().Generate(g, minutes, rand.New(rand.NewSource(cfg.Seed+5)))
	stats := Exp6DayStats{Minutes: minutes, PerMinute: make([]time.Duration, minutes)}
	for minute, batch := range batches {
		stats.Activations += len(batch)
		d := timeIt(func() {
			for _, a := range batch {
				nw.Activate(a.Edge, a.T)
			}
		})
		stats.PerMinute[minute] = d
		stats.Total += d
	}
	stats.P50 = percentile(stats.PerMinute, 0.50)
	stats.P95 = percentile(stats.PerMinute, 0.95)
	stats.Max = percentile(stats.PerMinute, 1.0)
	logf(cfg, w, "# exp6-day: %d activations, p95=%v\n", stats.Activations, stats.P95)
	return stats
}

// PrintExp6Day renders the Figure 9 summary.
func PrintExp6Day(w io.Writer, s Exp6DayStats) {
	t := newTable(w)
	t.row("minutes", "activations", "p50", "p95", "max", "total")
	t.row(s.Minutes, s.Activations, s.P50.String(), s.P95.String(), s.Max.String(), s.Total.String())
	t.flush()
}

// Exp6WorkloadRow is one bar group of Figure 10: total time to process a
// mixed update/query workload at a query share.
type Exp6WorkloadRow struct {
	QueryFrac float64
	ANCO      float64 // seconds
	DYNA      float64
	LWEP      float64
}

// Exp6MixedWorkload reproduces Figure 10: a day-scale stream on the TW2
// counterpart where a fraction of activations are replaced by local
// clustering queries; ANCO versus DYNA and LWEP total processing time.
func Exp6MixedWorkload(cfg Config, w io.Writer, ops int) []Exp6WorkloadRow {
	spec, err := dataset.ByName("TW2")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed)
	g := pl.Graph
	base := make([]gen.Activation, ops)
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	for i := range base {
		base[i] = gen.Activation{Edge: graph.EdgeID(rng.Intn(g.M())), T: float64(i+1) * 0.01}
	}
	var rows []Exp6WorkloadRow
	for _, qf := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32} {
		work := gen.MixedWorkload(g, base, qf, rand.New(rand.NewSource(cfg.Seed+10)))
		row := Exp6WorkloadRow{QueryFrac: qf}

		// ANCO: activations via bounded update; queries via local cluster.
		nw, err := core.New(g, ancOptions(core.ANCO, 0, cfg.Seed))
		if err != nil {
			panic(err)
		}
		level := pyramid.SqrtLevel(g.N())
		row.ANCO = timeIt(func() {
			for _, op := range work {
				if op.IsQuery {
					cluster.Local(nw.Index(), level, op.Node)
				} else {
					nw.Activate(op.Act.Edge, op.Act.T)
				}
			}
		}).Seconds()

		// DYNA: every 100 ops is one "timestamp" (decay over all edges);
		// queries read the label map locally.
		trD := newActivenessTracker(g.M(), 0.01)
		dy := dynamo.New(g, trD.act)
		row.DYNA = timeIt(func() {
			for i, op := range work {
				if i%100 == 99 {
					dy.TickAsUpdates(trD.tick())
				}
				if op.IsQuery {
					lbl := dy.Labels()[op.Node]
					for v, l := range dy.Labels() { // collect the community
						if l == lbl {
							_ = v
						}
					}
				} else {
					trD.activate(op.Act.Edge)
					dy.UpdateEdge(op.Act.Edge, trD.act[op.Act.Edge])
				}
			}
		}).Seconds()

		// LWEP: batches per "timestamp", full-scan queries.
		trL := newActivenessTracker(g.M(), 0.01)
		lw := lwep.New(g, trL.act)
		row.LWEP = timeIt(func() {
			var edges []graph.EdgeID
			var nws []float64
			for i, op := range work {
				if op.IsQuery {
					lbl := lw.Labels()[op.Node]
					for v, l := range lw.Labels() {
						if l == lbl {
							_ = v
						}
					}
				} else {
					trL.activate(op.Act.Edge)
					edges = append(edges, op.Act.Edge)
					nws = append(nws, trL.act[op.Act.Edge])
				}
				if i%100 == 99 {
					lw.Tick(trL.tick())
					lw.UpdateBatch(edges, nws)
					edges, nws = edges[:0], nws[:0]
				}
			}
		}).Seconds()

		rows = append(rows, row)
		logf(cfg, w, "# exp6-workload q=%.0f%%: ANCO=%.3fs DYNA=%.3fs LWEP=%.3fs\n",
			qf*100, row.ANCO, row.DYNA, row.LWEP)
	}
	return rows
}

// PrintExp6Workload renders Figure 10 as a table.
func PrintExp6Workload(w io.Writer, rows []Exp6WorkloadRow) {
	t := newTable(w)
	t.row("query%", "ANCO s", "DYNA s", "LWEP s")
	for _, r := range rows {
		t.row(r.QueryFrac*100, r.ANCO, r.DYNA, r.LWEP)
	}
	t.flush()
}
