package bench

import (
	"io"
	"math/rand"

	"anc/internal/cluster"
	"anc/internal/dataset"
	"anc/internal/graph"
)

// EffSuite returns the graph suite of the efficiency experiments: dataset
// counterparts in increasing size, capped at cfg.EffTargetN. The paper's
// Figures 5–8 span CA…TW; the counterparts span a ~32× size range so the
// linear scaling shape is visible at laptop scale.
func EffSuite(cfg Config) []string {
	return []string{"CA", "LA", "CM", "IE", "GI", "DB"}
}

// effTarget maps a suite position to a target node count: a geometric ramp
// ending at cfg.EffTargetN.
func effTarget(cfg Config, i, total int) int {
	n := cfg.EffTargetN
	for j := total - 1; j > i; j-- {
		n /= 2
	}
	if n < 128 {
		n = 128
	}
	return n
}

// Exp3Row is one bar of Figure 5: index construction time.
type Exp3Row struct {
	Dataset string
	N, M    int
	K       int
	Seconds float64
}

// Exp3IndexTime reproduces Figure 5: index time with k ∈ {2,4,8,16}
// pyramids across the suite.
func Exp3IndexTime(cfg Config, w io.Writer) []Exp3Row {
	var rows []Exp3Row
	suite := EffSuite(cfg)
	for i, name := range suite {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, effTarget(cfg, i, len(suite)), cfg.Seed+int64(i))
		g := pl.Graph
		for _, k := range []int{2, 4, 8, 16} {
			secs := timeIt(func() { buildIndexOnly(g, k, cfg.Seed) }).Seconds()
			rows = append(rows, Exp3Row{name, g.N(), g.M(), k, secs})
			logf(cfg, w, "# exp3 %s n=%d k=%d: %.3fs\n", name, g.N(), k, secs)
		}
	}
	return rows
}

// PrintExp3 renders Figure 5 as a table.
func PrintExp3(w io.Writer, rows []Exp3Row) {
	t := newTable(w)
	t.row("dataset", "n", "m", "k", "index seconds")
	for _, r := range rows {
		t.row(r.Dataset, r.N, r.M, r.K, r.Seconds)
	}
	t.flush()
}

// Exp4Row is one bar of Figure 6: index memory.
type Exp4Row struct {
	Dataset string
	N, M    int
	K       int
	Bytes   int64
}

// Exp4IndexMemory reproduces Figure 6: index size with k ∈ {4,8,16}.
func Exp4IndexMemory(cfg Config, w io.Writer) []Exp4Row {
	var rows []Exp4Row
	suite := EffSuite(cfg)
	for i, name := range suite {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, effTarget(cfg, i, len(suite)), cfg.Seed+int64(i))
		g := pl.Graph
		for _, k := range []int{4, 8, 16} {
			ix := buildIndexOnly(g, k, cfg.Seed)
			rows = append(rows, Exp4Row{name, g.N(), g.M(), k, ix.MemoryBytes()})
		}
		logf(cfg, w, "# exp4 %s done\n", name)
	}
	return rows
}

// PrintExp4 renders Figure 6 as a table.
func PrintExp4(w io.Writer, rows []Exp4Row) {
	t := newTable(w)
	t.row("dataset", "n", "m", "k", "index MB")
	for _, r := range rows {
		t.row(r.Dataset, r.N, r.M, r.K, float64(r.Bytes)/(1<<20))
	}
	t.flush()
}

// Exp5Row is one bar of Figure 7: cluster extraction time per level.
type Exp5Row struct {
	Dataset string
	N, M    int
	Level   int
	Seconds float64
}

// Exp5QueryTime reproduces Figure 7: DirectedCluster (power clustering)
// extraction time at levels 4–8.
func Exp5QueryTime(cfg Config, w io.Writer) []Exp5Row {
	var rows []Exp5Row
	suite := []string{"GI", "DB"} // the larger counterparts
	for i, name := range suite {
		spec, err := dataset.ByName(name)
		if err != nil {
			panic(err)
		}
		pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed+int64(i))
		g := pl.Graph
		ix := buildIndexOnly(g, 4, cfg.Seed)
		for l := 4; l <= 8 && l <= ix.Levels(); l++ {
			secs := timeIt(func() { cluster.Power(ix, l) }).Seconds()
			rows = append(rows, Exp5Row{name, g.N(), g.M(), l, secs})
		}
		logf(cfg, w, "# exp5 %s done\n", name)
	}
	return rows
}

// PrintExp5 renders Figure 7 as a table.
func PrintExp5(w io.Writer, rows []Exp5Row) {
	t := newTable(w)
	t.row("dataset", "n", "m", "level", "extract seconds")
	for _, r := range rows {
		t.row(r.Dataset, r.N, r.M, r.Level, r.Seconds)
	}
	t.flush()
}

// randomWeightChanges draws count (edge, factor) weight perturbations.
func randomWeightChanges(m, count int, rng *rand.Rand) ([]graph.EdgeID, []float64) {
	edges := make([]graph.EdgeID, count)
	factors := make([]float64, count)
	for i := range edges {
		edges[i] = graph.EdgeID(rng.Intn(m))
		factors[i] = 0.3 + rng.Float64()*2.4
	}
	return edges, factors
}
