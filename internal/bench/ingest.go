package bench

import (
	"encoding/json"
	"io"
	"math/rand"
	"os"

	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/obs"
)

// IngestResult compares the three ingest paths on the Figure 9 bursty
// diurnal workload: per-op Activate, ActivateBatch on a sequential index,
// and ActivateBatch on the pooled parallel index. Rates are activations
// per second; speedups are relative to the per-op path.
type IngestResult struct {
	Dataset     string
	N, M        int
	Minutes     int
	Activations int

	PerOpSeconds    float64
	BatchedSeconds  float64
	ParallelSeconds float64

	PerOpRate    float64
	BatchedRate  float64
	ParallelRate float64

	BatchedSpeedup  float64
	ParallelSpeedup float64

	// Metrics is the obs snapshot of a separate instrumented pass over the
	// same stream (parallel batched mode): activation/rescale counts,
	// pyramid repair timings and so on. The timed runs above stay
	// registry-free so their numbers remain comparable across commits.
	Metrics map[string]float64 `json:",omitempty"`
}

// ingestOptions returns the Figure 9 network options (ANCO, λ=0.01).
func ingestOptions(seed int64, parallel bool) core.Options {
	opts := ancOptions(core.ANCO, 0, seed)
	opts.Lambda = 0.01
	opts.Pyramid.Parallel = parallel
	return opts
}

// ingestWorkload generates the per-minute batches once, pre-converted to
// core activations so every mode times pure ingest over the same stream.
// Hotspot gives the heavy-tailed edge popularity of real traces — the
// regime batch coalescing is built for.
func ingestWorkload(pl *gen.Planted, minutes int, seed int64) [][]core.Activation {
	// Peak-traffic Figure 9 setup: the throughput question is what the
	// pipeline sustains when a minute of traffic is large, so the base
	// rate is the diurnal default ×10 and edge popularity is heavy-tailed
	// (Zipf 1.5) as in real activation traces.
	d := gen.DefaultDiurnal()
	d.BaseRate *= 30
	d.Hotspot = 1.5
	raw := d.Generate(pl.Graph, minutes, rand.New(rand.NewSource(seed)))
	out := make([][]core.Activation, len(raw))
	for i, batch := range raw {
		cb := make([]core.Activation, len(batch))
		for j, a := range batch {
			cb[j] = core.Activation{Edge: a.Edge, T: a.T}
		}
		out[i] = cb
	}
	return out
}

// runIngest feeds the batches to a fresh network and returns total ingest
// seconds. After every timed batch it validates the index (outside the
// timing) so a correctness regression cannot masquerade as a speedup.
func runIngest(cfg Config, pl *gen.Planted, batches [][]core.Activation, parallel, batched bool, reg *obs.Registry) float64 {
	nw, err := core.New(pl.Graph, ingestOptions(cfg.Seed, parallel))
	if err != nil {
		panic(err)
	}
	defer nw.Close()
	nw.Instrument(reg)
	total := 0.0
	for _, batch := range batches {
		total += timeIt(func() {
			if batched {
				if err := nw.ActivateBatch(batch); err != nil {
					panic(err)
				}
			} else {
				for _, a := range batch {
					if err := nw.Activate(a.Edge, a.T); err != nil {
						panic(err)
					}
				}
			}
		}).Seconds()
		if msg := nw.Index().Validate(); msg != "" {
			panic("index invalid after ingest batch: " + msg)
		}
	}
	return total
}

// IngestThroughput runs the throughput comparison on the TW2 counterpart
// (the Figure 9 dataset) for the given number of minutes.
func IngestThroughput(cfg Config, w io.Writer, minutes int) IngestResult {
	spec, err := dataset.ByName("TW2")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed)
	batches := ingestWorkload(pl, minutes, cfg.Seed+5)
	r := IngestResult{Dataset: "TW2", N: pl.Graph.N(), M: pl.Graph.M(), Minutes: minutes}
	for _, b := range batches {
		r.Activations += len(b)
	}

	r.PerOpSeconds = runIngest(cfg, pl, batches, false, false, nil)
	r.BatchedSeconds = runIngest(cfg, pl, batches, false, true, nil)
	r.ParallelSeconds = runIngest(cfg, pl, batches, true, true, nil)

	// A fourth, untimed pass with a registry attached captures the ingest
	// cost profile for the artifact without perturbing the timed numbers.
	reg := obs.NewRegistry()
	runIngest(cfg, pl, batches, true, true, reg)
	r.Metrics = reg.Snapshot()

	acts := float64(r.Activations)
	if r.PerOpSeconds > 0 {
		r.PerOpRate = acts / r.PerOpSeconds
		r.BatchedSpeedup = r.PerOpSeconds / r.BatchedSeconds
		r.ParallelSpeedup = r.PerOpSeconds / r.ParallelSeconds
	}
	if r.BatchedSeconds > 0 {
		r.BatchedRate = acts / r.BatchedSeconds
	}
	if r.ParallelSeconds > 0 {
		r.ParallelRate = acts / r.ParallelSeconds
	}
	logf(cfg, w, "# ingest: %d activations, per-op=%.3fs batched=%.3fs (%.1fx) parallel=%.3fs (%.1fx)\n",
		r.Activations, r.PerOpSeconds, r.BatchedSeconds, r.BatchedSpeedup,
		r.ParallelSeconds, r.ParallelSpeedup)
	return r
}

// PrintIngest renders the throughput comparison as a table.
func PrintIngest(w io.Writer, r IngestResult) {
	t := newTable(w)
	t.row("mode", "seconds", "acts/s", "speedup")
	t.row("per-op", r.PerOpSeconds, r.PerOpRate, 1.0)
	t.row("batched", r.BatchedSeconds, r.BatchedRate, r.BatchedSpeedup)
	t.row("batched+parallel", r.ParallelSeconds, r.ParallelRate, r.ParallelSpeedup)
	t.flush()
}

// WriteIngestJSON writes the result to path (BENCH_ingest.json) for the
// CI artifact and the README numbers.
func WriteIngestJSON(path string, r IngestResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
