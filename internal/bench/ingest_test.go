package bench

import (
	"io"
	"runtime"
	"testing"
	"time"
)

// TestIngestSmoke runs the throughput experiment at a tiny scale and
// verifies the three modes agree on the workload, the speedups are
// populated, and the pooled run leaks no goroutines (the pool drains on
// Close).
func TestIngestSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := DefaultConfig()
	cfg.EffTargetN = 512
	cfg.Quiet = true
	r := IngestThroughput(cfg, io.Discard, 20)
	if r.Activations == 0 {
		t.Fatal("no activations generated")
	}
	if r.PerOpSeconds <= 0 || r.BatchedSeconds <= 0 || r.ParallelSeconds <= 0 {
		t.Fatalf("unmeasured mode: %+v", r)
	}
	if r.BatchedSpeedup <= 0 || r.ParallelSpeedup <= 0 {
		t.Fatalf("speedups not populated: %+v", r)
	}
	// The pooled network is closed inside runIngest; give exiting workers
	// a moment, then require the goroutine count back at baseline.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked by ingest benchmark: %d before, %d after",
		before, runtime.NumGoroutine())
}
