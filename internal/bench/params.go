package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"anc/internal/baseline/agglo"
	"anc/internal/baseline/pll"
	"anc/internal/core"
	"anc/internal/dataset"
	"anc/internal/graph"
	"anc/internal/pyramid"
	"anc/internal/quality"
)

// ParamRow is one point of the Table II sensitivity sweeps.
type ParamRow struct {
	Param string
	Value float64
	NMI   float64
	// Seconds is the build time, relevant for the k sweep.
	Seconds float64
}

// ParamSensitivity sweeps the paper's four parameters (Table II) on the LA
// counterpart, reporting NMI against the planted truth and build time.
func ParamSensitivity(cfg Config, w io.Writer) []ParamRow {
	spec, err := dataset.ByName("LA")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.TargetN, cfg.Seed)
	g := pl.Graph
	truthK := quality.NumClusters(pl.Truth)
	var rows []ParamRow

	run := func(param string, value float64, mutate func(*core.Options)) {
		opts := ancOptions(core.ANCF, 7, cfg.Seed)
		mutate(&opts)
		var nw *core.Network
		secs := timeIt(func() {
			var err error
			nw, err = core.New(g, opts)
			if err != nil {
				panic(err)
			}
		}).Seconds()
		c, _ := nw.ClustersNear(truthK)
		labels := quality.FilterNoise(c.Labels, 3)
		rows = append(rows, ParamRow{param, value, quality.NMI(labels, pl.Truth), secs})
		logf(cfg, w, "# params %s=%v done\n", param, value)
	}

	for _, k := range []int{2, 4, 8, 16} {
		run("k", float64(k), func(o *core.Options) { o.Pyramid.K = k })
	}
	for _, rep := range []int{0, 1, 3, 5, 7, 9} {
		run("rep", float64(rep), func(o *core.Options) { o.Rep = rep })
	}
	for _, eps := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		run("epsilon", eps, func(o *core.Options) { o.Similarity.Epsilon = eps })
	}
	for _, mu := range []int{2, 3, 4, 5, 6, 7, 8, 9} {
		run("mu", float64(mu), func(o *core.Options) { o.Similarity.Mu = mu })
	}
	return rows
}

// PrintParams renders the sensitivity sweeps.
func PrintParams(w io.Writer, rows []ParamRow) {
	t := newTable(w)
	t.row("param", "value", "NMI", "build seconds")
	for _, r := range rows {
		t.row(r.Param, r.Value, r.NMI, r.Seconds)
	}
	t.flush()
}

// AblationRow is one finding of the design-choice ablations that
// DESIGN.md calls out.
type AblationRow struct {
	Name  string
	Value string
	Score float64
}

// Ablations runs the design ablations: even vs power clustering quality,
// the θ support-threshold sweep, and vote tracking vs per-query polling.
func Ablations(cfg Config, w io.Writer) []AblationRow {
	spec, err := dataset.ByName("LA")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.TargetN, cfg.Seed)
	g := pl.Graph
	truthK := quality.NumClusters(pl.Truth)
	var rows []AblationRow

	// Even vs power clustering: error amplification shows as a lower NMI
	// for even clustering (any mis-voted bridge merges whole clusters).
	nw, err := core.New(g, ancOptions(core.ANCF, 7, cfg.Seed))
	if err != nil {
		panic(err)
	}
	_, lvl := nw.ClustersNear(truthK)
	power := quality.FilterNoise(nw.Clusters(lvl).Labels, 3)
	even := quality.FilterNoise(nw.EvenClusters(lvl).Labels, 3)
	rows = append(rows,
		AblationRow{"clustering", "power", quality.NMI(power, pl.Truth)},
		AblationRow{"clustering", "even", quality.NMI(even, pl.Truth)})

	// θ sweep: vote support vs quality.
	for _, theta := range []float64{0.3, 0.5, 0.7, 0.9} {
		opts := ancOptions(core.ANCF, 7, cfg.Seed)
		opts.Pyramid.Theta = theta
		nwT, err := core.New(g, opts)
		if err != nil {
			panic(err)
		}
		c, _ := nwT.ClustersNear(truthK)
		rows = append(rows, AblationRow{"theta", ftoa(theta), quality.NMI(quality.FilterNoise(c.Labels, 3), pl.Truth)})
	}

	// Vote tracking: evaluating H_l over all edges with tracked counts vs
	// polling the K partitions per edge — the work the tracker replaces.
	// (Full cluster extraction is dominated by the shared BFS, so the
	// sweep is measured in isolation.)
	nwV, err := core.New(g, ancOptions(core.ANCO, 7, cfg.Seed))
	if err != nil {
		panic(err)
	}
	sweep := func() {
		for i := 0; i < 50; i++ {
			for e := 0; e < g.M(); e++ {
				nwV.Index().Votes(graph.EdgeID(e), lvl)
			}
		}
	}
	poll := timeIt(sweep).Seconds()
	nwV.Index().EnableVoteTracking()
	tracked := timeIt(sweep).Seconds()
	rows = append(rows,
		AblationRow{"votes", "poll-sweep-seconds", poll},
		AblationRow{"votes", "tracked-sweep-seconds", tracked})

	// Batched-rescale interval vs numerical drift: with the global decay
	// factor, anchored state grows as e^{λ·interval}; the drift of true
	// similarity values after a long stream measures the float error the
	// rescale bounds. Score = max relative deviation of S between an
	// aggressive (every 64 activations) and a lazy (every 65536) rescale.
	driftA := runDriftProbe(g, 64, cfg.Seed)
	driftB := runDriftProbe(g, 65536, cfg.Seed)
	maxDev := 0.0
	for e := range driftA {
		d := math.Abs(driftA[e]-driftB[e]) / math.Max(driftA[e], 1e-300)
		if d > maxDev {
			maxDev = d
		}
	}
	rows = append(rows, AblationRow{"rescale", "max-rel-drift", maxDev})

	// Exact distance index (PLL) vs the pyramids: the Section II argument.
	// PLL gives exact distances but its build cost and label size grow
	// fast and every weight change invalidates it; the pyramids build in
	// near-linear time and repair locally.
	weights := make([]float64, g.M())
	for e := range weights {
		weights[e] = nw.Index().Weight(graph.EdgeID(e))
	}
	wf := func(e graph.EdgeID) float64 { return weights[e] }
	var pllIx *pll.Index
	pllBuild := timeIt(func() { pllIx = pll.Build(g, wf) }).Seconds()
	var pyrIx *pyramid.Index
	pyrBuild := timeIt(func() {
		var err error
		pyrIx, err = pyramid.Build(g, wf, pyramid.DefaultConfig(), rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			panic(err)
		}
	}).Seconds()
	rows = append(rows,
		AblationRow{"distindex", "pll-build-seconds", pllBuild},
		AblationRow{"distindex", "pyramids-build-seconds", pyrBuild},
		AblationRow{"distindex", "pll-MB", float64(pllIx.MemoryBytes()) / (1 << 20)},
		AblationRow{"distindex", "pyramids-MB", float64(pyrIx.MemoryBytes()) / (1 << 20)})
	// Average sketch stretch vs PLL's exact answers.
	probe := rand.New(rand.NewSource(cfg.Seed + 5))
	stretch, count := 0.0, 0
	for trial := 0; trial < 200; trial++ {
		u := graph.NodeID(probe.Intn(g.N()))
		v := graph.NodeID(probe.Intn(g.N()))
		if u == v {
			continue
		}
		exact := pllIx.Query(u, v)
		est := pyrIx.EstimateDistance(u, v)
		if math.IsInf(exact, 1) || math.IsInf(est, 1) || exact == 0 {
			continue
		}
		stretch += est / exact
		count++
	}
	if count > 0 {
		rows = append(rows, AblationRow{"distindex", "sketch-avg-stretch", stretch / float64(count)})
	}

	// Hierarchical zoom: agglomerative dendrogram (recomputed per
	// snapshot) vs the pyramids' maintained granularities. The dendrogram
	// gives one comparable clustering quality but its per-snapshot build
	// is the cost the paper's Related Work rejects.
	var dendro *agglo.Dendrogram
	aggloBuild := timeIt(func() { dendro = agglo.Build(g, unitWeights(g.M())) }).Seconds()
	aggloLabels := quality.FilterNoise(dendro.CutAt(truthK), 3)
	zoomQuery := timeIt(func() {
		for l := 1; l <= nw.Index().Levels(); l++ {
			nw.Clusters(l)
		}
	}).Seconds()
	rows = append(rows,
		AblationRow{"zoom", "agglo-build-seconds", aggloBuild},
		AblationRow{"zoom", "agglo-NMI", quality.NMI(aggloLabels, pl.Truth)},
		AblationRow{"zoom", "pyramids-all-levels-seconds", zoomQuery})
	logf(cfg, w, "# ablations done\n")
	return rows
}

// runDriftProbe streams a fixed activation sequence with a given rescale
// interval and returns the final true similarity of every edge.
func runDriftProbe(g *graph.Graph, rescaleEvery int, seed int64) []float64 {
	opts := ancOptions(core.ANCO, 0, seed)
	opts.RescaleEvery = rescaleEvery
	opts.Lambda = 0.4
	nw, err := core.New(g, opts)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed + 1234))
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += rng.Float64() * 0.1
		nw.Activate(graph.EdgeID(rng.Intn(g.M())), now)
	}
	out := make([]float64, g.M())
	for e := range out {
		out[e] = nw.Similarity().At(graph.EdgeID(e))
	}
	return out
}

func ftoa(f float64) string { return fmt.Sprintf("%.2g", f) }

// PrintAblations renders the ablation findings.
func PrintAblations(w io.Writer, rows []AblationRow) {
	t := newTable(w)
	t.row("ablation", "variant", "score")
	for _, r := range rows {
		t.row(r.Name, r.Value, r.Score)
	}
	t.flush()
}
