//go:build !race

package bench

// raceEnabled reports whether the race detector is active; wall-clock
// assertions in the smoke tests are skipped under -race because the
// detector's slowdown distorts relative timings.
const raceEnabled = false
