package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"anc"
	"anc/internal/dataset"
	"anc/internal/gen"
	"anc/internal/obs"
	"anc/internal/serve"
	"anc/internal/serve/client"
	"anc/internal/serve/repl"
)

// ServeResult measures the serving layer end to end: a DiurnalBursty
// stream replayed through N concurrent client connections over TCP into a
// durable (WAL-backed) network, with query clients running against the
// same server throughout. Rates are activations per second as observed by
// the clients (framing, syscalls, admission, group commit and fsync all
// included); latencies are client-observed round trips.
type ServeResult struct {
	Dataset     string
	N, M        int
	Minutes     int
	Conns       int
	Activations int
	Batches     int

	IngestSeconds float64
	IngestRate    float64

	BatchP50ms float64
	BatchP99ms float64

	Queries    int
	QueryP50ms float64
	QueryP90ms float64
	QueryP99ms float64

	// Per-stage ingest breakdown, read off the instrumented stack's stage
	// histograms at the end of the run. Together the stages decompose a
	// batch round trip the same way a trace does: time queued behind the
	// single writer, WAL append (fsync inside it broken out separately),
	// pyramid repair, and serializing the reply. See DESIGN.md §17.
	StageQueueWaitP50ms float64
	StageQueueWaitP99ms float64
	StageWalAppendP50ms float64
	StageWalAppendP99ms float64
	StageFsyncP50ms     float64
	StageFsyncP99ms     float64
	StageRepairP50ms    float64
	StageRepairP99ms    float64
	StageReplyP50ms     float64
	StageReplyP99ms     float64

	// Follower-side figures: a repl.Node tails the primary's WAL over TCP
	// for the whole run, fronted by its own server, with one query
	// connection measuring read latency at the replica under replication
	// load. Lag is the frame staleness at the instant ingest finished;
	// catch-up is how long the replica took to drain it once the write
	// pressure stopped.
	FollowerQueries    int
	FollowerQueryP50ms float64
	FollowerQueryP99ms float64
	FollowerLagFrames  uint64
	FollowerCatchUpSec float64

	// Cache A/B: an in-process prober runs against the durable network for
	// the whole ingest window, alternating a cached Clusters call at the
	// √n level with a forced recompute (ClustersUncached). Each cached
	// call is classified as a hit or miss by the CacheStats hits delta
	// around it, so the hit percentiles measure exactly the lock-free
	// snapshot path while ingest churn invalidates levels underneath it.
	CacheProbeSamples   int
	CacheHitSamples     int
	CacheHitP50ms       float64
	CacheHitP99ms       float64
	CacheRecomputeP50ms float64
	CacheRecomputeP99ms float64
	// CacheHitSpeedup is CacheRecomputeP50ms / CacheHitP50ms.
	CacheHitSpeedup float64
	// CacheHits/CacheMisses/CacheInvalidations mirror the run's
	// anc_cache_* counters (also present in Metrics via the obs snapshot).
	CacheHits          uint64
	CacheMisses        uint64
	CacheInvalidations uint64

	// Metrics is the obs snapshot of the run itself — server, WAL, core and
	// pyramid counters from the instrumented stack (per-event atomics are
	// noise against TCP round trips and fsyncs, so unlike the ingest
	// benchmark this run is measured instrumented).
	Metrics map[string]float64 `json:",omitempty"`
}

// activeDurable is the durable network of the serve experiment currently
// running, if any — the signal-handler hook of cmd/ancbench, so an
// interrupted run still checkpoints and fsyncs before exiting.
var (
	activeMu      sync.Mutex
	activeDurable *anc.DurableNetwork
)

func setActiveDurable(d *anc.DurableNetwork) {
	activeMu.Lock()
	defer activeMu.Unlock()
	activeDurable = d
}

// CloseActive checkpoints and closes the durable network of a running
// serve experiment, if any. Safe to call at any time (DurableNetwork.Close
// is idempotent); meant for SIGINT/SIGTERM handlers.
func CloseActive() error {
	activeMu.Lock()
	d := activeDurable
	activeMu.Unlock()
	if d == nil {
		return nil
	}
	if err := d.Checkpoint(); err != nil {
		return err
	}
	return d.Close()
}

// serveWorkload splits the DiurnalBursty per-minute batches across conns
// connections, flooring every timestamp to its minute. Equal timestamps
// are what make concurrent ingest well-defined: the network accepts t ==
// Now(), so within a minute the C batches may commit in any order, and a
// barrier between minutes keeps time non-decreasing across them.
func serveWorkload(pl *gen.Planted, minutes, conns int, seed int64) [][][]anc.Activation {
	d := gen.DefaultDiurnal()
	d.BaseRate *= 30
	d.Hotspot = 1.5
	raw := d.Generate(pl.Graph, minutes, rand.New(rand.NewSource(seed)))
	out := make([][][]anc.Activation, minutes)
	for m, batch := range raw {
		chunks := make([][]anc.Activation, conns)
		per := (len(batch) + conns - 1) / conns
		for ci := 0; ci < conns; ci++ {
			lo := ci * per
			hi := min(lo+per, len(batch))
			if lo >= hi {
				continue
			}
			chunk := make([]anc.Activation, hi-lo)
			for j, a := range batch[lo:hi] {
				u, v := pl.Graph.Endpoints(a.Edge)
				chunk[j] = anc.Activation{U: int(u), V: int(v), T: math.Floor(a.T)}
			}
			chunks[ci] = chunk
		}
		out[m] = chunks
	}
	return out
}

// ServeLoad runs the serving-layer load experiment: a server over a
// durable TW2-counterpart network on an ephemeral port, conns ingest
// connections replaying the bursty day minute by minute, and two query
// connections interleaving cluster and distance queries. A replication
// follower tails the primary's WAL over TCP throughout, with one more
// query connection measuring replica read latency and staleness. It
// verifies that the server's activation counter matches what the clients
// sent and that the follower replayed every frame, then drains both
// servers gracefully (which checkpoints and closes the WALs).
func ServeLoad(cfg Config, w io.Writer, minutes, conns int) ServeResult {
	if conns < 1 {
		conns = 1
	}
	spec, err := dataset.ByName("TW2")
	if err != nil {
		panic(err)
	}
	pl := genCounterpart(spec, cfg.EffTargetN, cfg.Seed)
	workload := serveWorkload(pl, minutes, conns, cfg.Seed+5)
	r := ServeResult{Dataset: "TW2", N: pl.Graph.N(), M: pl.Graph.M(), Minutes: minutes, Conns: conns}

	acfg := anc.DefaultConfig()
	acfg.Lambda = 0.01
	acfg.Epsilon = 0.3
	acfg.Mu = 3
	acfg.Seed = cfg.Seed
	acfg.Parallel = true
	net, err := anc.FromGraph(pl.Graph, acfg)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "ancserve-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	d, err := anc.NewDurable(net, dir, anc.DurableConfig{Obs: reg})
	if err != nil {
		panic(err)
	}
	setActiveDurable(d)
	defer setActiveDurable(nil)

	// The durable server doubles as the replication primary: the node
	// wrapper serves frame subscriptions straight off d's WAL.
	pnode := repl.New(d, repl.Config{Heartbeat: 100 * time.Millisecond})
	srv := serve.New(pnode, serve.Config{RequestTimeout: 60 * time.Second, Obs: reg, Repl: pnode})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		panic(err)
	}
	addr := srv.Addr().String()
	ctx := context.Background()

	// Follower side: a replication node with its own graph copy and
	// durable directory tails the primary's WAL over TCP for the whole
	// run, fronted by its own server, so replica reads go through the
	// same wire path as primary reads.
	fdir, err := os.MkdirTemp("", "ancserve-bench-follow-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(fdir)
	fnet, err := anc.FromGraph(pl.Graph, acfg)
	if err != nil {
		panic(err)
	}
	fd, err := anc.NewDurable(fnet, fdir, anc.DurableConfig{})
	if err != nil {
		panic(err)
	}
	fnode := repl.New(fd, repl.Config{Upstream: addr, Heartbeat: 100 * time.Millisecond, Seed: cfg.Seed})
	fnode.Start()
	fsrv := serve.New(fnode, serve.Config{RequestTimeout: 60 * time.Second, Repl: fnode})
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		panic(err)
	}
	faddr := fsrv.Addr().String()

	// Query side: two connections issuing mixed reads for the whole ingest
	// window, so every latency datapoint is measured under write load.
	stop := make(chan struct{})
	const queryConns = 2
	queryLat := make([][]time.Duration, queryConns)
	var qwg sync.WaitGroup
	for qi := 0; qi < queryConns; qi++ {
		qwg.Add(1)
		go func(qi int) {
			defer qwg.Done()
			qc, err := client.Dial(addr, client.WithTimeout(60*time.Second))
			if err != nil {
				panic(err)
			}
			defer qc.Close() //anclint:ignore droppederr benchmark teardown of a query connection
			rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(qi)))
			n := pl.Graph.N()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				start := time.Now()
				switch rng.Intn(4) {
				case 0:
					_, err = qc.SmallestClusterOf(ctx, rng.Intn(n))
				case 1:
					_, err = qc.EstimateDistance(ctx, rng.Intn(n), rng.Intn(n))
				case 2:
					_, err = qc.Stats(ctx)
				case 3:
					_, err = qc.ClusterOf(ctx, rng.Intn(n), d.SqrtLevel())
				}
				if err != nil {
					panic(err)
				}
				queryLat[qi] = append(queryLat[qi], time.Since(start))
			}
		}(qi)
	}

	// Replica reads: one connection against the follower's server, same
	// cadence as the primary query connections. The follower is never
	// wrong, only late, so the mix sticks to point queries and stats.
	var followerLat []time.Duration
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		fc, err := client.Dial(faddr, client.WithTimeout(60*time.Second),
			client.WithRetry(3, 5*time.Millisecond, 100*time.Millisecond))
		if err != nil {
			panic(err)
		}
		defer fc.Close() //anclint:ignore droppederr benchmark teardown of a query connection
		rng := rand.New(rand.NewSource(cfg.Seed + 200))
		n := pl.Graph.N()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			start := time.Now()
			switch rng.Intn(3) {
			case 0:
				_, err = fc.SmallestClusterOf(ctx, rng.Intn(n))
			case 1:
				_, err = fc.EstimateDistance(ctx, rng.Intn(n), rng.Intn(n))
			case 2:
				_, err = fc.Stats(ctx)
			}
			if err != nil {
				panic(err)
			}
			followerLat = append(followerLat, time.Since(start))
		}
	}()

	// Cache A/B prober: in-process (no wire cost) so the numbers isolate
	// the materialized-cache path itself. Alternating cached and forced
	// calls keeps both sides sampled under identical ingest churn; the
	// prober is the only caller of Clusters on this network, so the hits
	// delta around a call classifies it unambiguously.
	var cacheHitLat, cacheRecomputeLat []time.Duration
	cacheProbes := 0
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		level := d.SqrtLevel()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h0, _, _ := d.CacheStats()
			start := time.Now()
			d.Clusters(level)
			elapsed := time.Since(start)
			h1, _, _ := d.CacheStats()
			cacheProbes++
			if h1 > h0 {
				cacheHitLat = append(cacheHitLat, elapsed)
			}
			start = time.Now()
			d.ClustersUncached(level)
			cacheRecomputeLat = append(cacheRecomputeLat, time.Since(start))
		}
	}()

	// Ingest side: conns persistent connections; each minute fans its
	// chunks out and barriers before the next (timestamps rise between
	// minutes, so the barrier is what keeps the stream contract).
	clients := make([]*client.Client, conns)
	for i := range clients {
		if clients[i], err = client.Dial(addr, client.WithTimeout(60*time.Second)); err != nil {
			panic(err)
		}
	}
	batchLat := make([][]time.Duration, conns)
	ingestStart := time.Now()
	for m := 0; m < minutes; m++ {
		var wg sync.WaitGroup
		for ci := 0; ci < conns; ci++ {
			chunk := workload[m][ci]
			if len(chunk) == 0 {
				continue
			}
			r.Activations += len(chunk)
			r.Batches++
			wg.Add(1)
			go func(ci int, chunk []anc.Activation) {
				defer wg.Done()
				start := time.Now()
				if err := clients[ci].ActivateBatch(ctx, chunk); err != nil {
					panic(err)
				}
				batchLat[ci] = append(batchLat[ci], time.Since(start))
			}(ci, chunk)
		}
		wg.Wait()
	}
	r.IngestSeconds = time.Since(ingestStart).Seconds()
	// Staleness at the instant the write pressure stops, then the time the
	// replica needs to drain it with the primary idle.
	primNext := d.LoggedActivations()
	if fn := fnode.Status().Next; primNext > fn {
		r.FollowerLagFrames = primNext - fn
	}
	close(stop)
	qwg.Wait()
	catchUp := time.Now()
	for deadline := catchUp.Add(120 * time.Second); fnode.Status().Next < primNext; {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("follower stuck at frame %d of %d", fnode.Status().Next, primNext))
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.FollowerCatchUpSec = time.Since(catchUp).Seconds()
	if fs := fnode.Stats(); fs.Activations != uint64(r.Activations) {
		panic(fmt.Sprintf("follower replayed %d activations, clients sent %d", fs.Activations, r.Activations))
	}

	// Every acknowledged activation must be visible in the server's
	// counter — the wire, queue and group-commit path lost nothing.
	st, err := clients[0].Stats(ctx)
	if err != nil {
		panic(err)
	}
	if st.Activations != uint64(r.Activations) {
		panic(fmt.Sprintf("server counted %d activations, clients sent %d", st.Activations, r.Activations))
	}
	for _, c := range clients {
		c.Close() //anclint:ignore droppederr benchmark teardown of an ingest connection
	}
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	// Follower first (its shutdown closes the replication node and its
	// WAL), then the primary — so the primary's drain frame has no
	// subscriber left to notify.
	if err := fsrv.Shutdown(sctx); err != nil {
		panic(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		panic(err)
	}

	if r.IngestSeconds > 0 {
		r.IngestRate = float64(r.Activations) / r.IngestSeconds
	}
	var allBatch, allQuery []time.Duration
	for _, l := range batchLat {
		allBatch = append(allBatch, l...)
	}
	for _, l := range queryLat {
		allQuery = append(allQuery, l...)
	}
	r.Queries = len(allQuery)
	r.BatchP50ms = ms(percentile(allBatch, 0.50))
	r.BatchP99ms = ms(percentile(allBatch, 0.99))
	r.QueryP50ms = ms(percentile(allQuery, 0.50))
	r.QueryP90ms = ms(percentile(allQuery, 0.90))
	r.QueryP99ms = ms(percentile(allQuery, 0.99))
	r.FollowerQueries = len(followerLat)
	r.FollowerQueryP50ms = ms(percentile(followerLat, 0.50))
	r.FollowerQueryP99ms = ms(percentile(followerLat, 0.99))
	r.CacheProbeSamples = cacheProbes
	r.CacheHitSamples = len(cacheHitLat)
	r.CacheHitP50ms = ms(percentile(cacheHitLat, 0.50))
	r.CacheHitP99ms = ms(percentile(cacheHitLat, 0.99))
	r.CacheRecomputeP50ms = ms(percentile(cacheRecomputeLat, 0.50))
	r.CacheRecomputeP99ms = ms(percentile(cacheRecomputeLat, 0.99))
	if r.CacheHitP50ms > 0 {
		r.CacheHitSpeedup = r.CacheRecomputeP50ms / r.CacheHitP50ms
	}
	r.CacheHits, r.CacheMisses, r.CacheInvalidations = d.CacheStats()
	r.Metrics = reg.Snapshot()
	stageMS := func(name string) (p50, p99 float64) {
		return r.Metrics[name+"_p50"] * 1e3, r.Metrics[name+"_p99"] * 1e3
	}
	r.StageQueueWaitP50ms, r.StageQueueWaitP99ms = stageMS("anc_serve_queue_wait_seconds")
	r.StageWalAppendP50ms, r.StageWalAppendP99ms = stageMS("anc_durable_wal_append_seconds")
	r.StageFsyncP50ms, r.StageFsyncP99ms = stageMS("anc_wal_fsync_seconds")
	r.StageRepairP50ms, r.StageRepairP99ms = stageMS("anc_pyramid_update_seconds")
	r.StageReplyP50ms, r.StageReplyP99ms = stageMS("anc_serve_reply_seconds")
	logf(cfg, w, "# serve: %d acts in %d batches over %d conns: %.0f acts/s, batch p99 %.2fms, %d queries p99 %.2fms\n",
		r.Activations, r.Batches, conns, r.IngestRate, r.BatchP99ms, r.Queries, r.QueryP99ms)
	logf(cfg, w, "# serve: follower %d queries p99 %.2fms, lag at ingest end %d frames, caught up in %.2fs\n",
		r.FollowerQueries, r.FollowerQueryP99ms, r.FollowerLagFrames, r.FollowerCatchUpSec)
	logf(cfg, w, "# serve: cache %d/%d probes hit (p50 %.4fms vs recompute %.4fms, %.0fx), %d hits / %d misses / %d invalidations\n",
		r.CacheHitSamples, r.CacheProbeSamples, r.CacheHitP50ms, r.CacheRecomputeP50ms,
		r.CacheHitSpeedup, r.CacheHits, r.CacheMisses, r.CacheInvalidations)
	logf(cfg, w, "# serve: stages ms p50/p99: queue %.3f/%.3f, wal %.3f/%.3f, fsync %.3f/%.3f, repair %.3f/%.3f, reply %.3f/%.3f\n",
		r.StageQueueWaitP50ms, r.StageQueueWaitP99ms, r.StageWalAppendP50ms, r.StageWalAppendP99ms,
		r.StageFsyncP50ms, r.StageFsyncP99ms, r.StageRepairP50ms, r.StageRepairP99ms,
		r.StageReplyP50ms, r.StageReplyP99ms)
	return r
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PrintServe renders the serving-layer load results as a table.
func PrintServe(w io.Writer, r ServeResult) {
	t := newTable(w)
	t.row("metric", "value")
	t.row("connections", r.Conns)
	t.row("activations", r.Activations)
	t.row("batches", r.Batches)
	t.row("ingest acts/s", r.IngestRate)
	t.row("batch p50 ms", r.BatchP50ms)
	t.row("batch p99 ms", r.BatchP99ms)
	t.row("queries", r.Queries)
	t.row("query p50 ms", r.QueryP50ms)
	t.row("query p90 ms", r.QueryP90ms)
	t.row("query p99 ms", r.QueryP99ms)
	t.row("stage queue-wait p50/p99 ms", fmt.Sprintf("%.4f / %.4f", r.StageQueueWaitP50ms, r.StageQueueWaitP99ms))
	t.row("stage wal-append p50/p99 ms", fmt.Sprintf("%.4f / %.4f", r.StageWalAppendP50ms, r.StageWalAppendP99ms))
	t.row("stage fsync p50/p99 ms", fmt.Sprintf("%.4f / %.4f", r.StageFsyncP50ms, r.StageFsyncP99ms))
	t.row("stage repair p50/p99 ms", fmt.Sprintf("%.4f / %.4f", r.StageRepairP50ms, r.StageRepairP99ms))
	t.row("stage reply p50/p99 ms", fmt.Sprintf("%.4f / %.4f", r.StageReplyP50ms, r.StageReplyP99ms))
	t.row("follower queries", r.FollowerQueries)
	t.row("follower query p50 ms", r.FollowerQueryP50ms)
	t.row("follower query p99 ms", r.FollowerQueryP99ms)
	t.row("follower lag frames", r.FollowerLagFrames)
	t.row("follower catch-up s", r.FollowerCatchUpSec)
	t.row("cache probes (hits)", fmt.Sprintf("%d (%d)", r.CacheProbeSamples, r.CacheHitSamples))
	t.row("cache hit p50 ms", r.CacheHitP50ms)
	t.row("cache hit p99 ms", r.CacheHitP99ms)
	t.row("cache recompute p50 ms", r.CacheRecomputeP50ms)
	t.row("cache recompute p99 ms", r.CacheRecomputeP99ms)
	t.row("cache hit speedup", r.CacheHitSpeedup)
	t.row("cache hits/misses/invalidations", fmt.Sprintf("%d/%d/%d", r.CacheHits, r.CacheMisses, r.CacheInvalidations))
	t.flush()
}

// WriteServeJSON writes the result to path (BENCH_serve.json) for the CI
// artifact and the README numbers.
func WriteServeJSON(path string, r ServeResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
