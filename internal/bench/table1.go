package bench

import (
	"io"

	"anc/internal/dataset"
	"anc/internal/graph"
)

// Table1Row describes one dataset counterpart: the paper's original sizes
// and the generated counterpart's actual sizes at the configured scale.
type Table1Row struct {
	Name, FullName, Type string
	OrigN, OrigM         int
	GenN, GenM           int
	IntraFrac            float64
}

// Table1Datasets regenerates Table I: every dataset spec plus the actual
// size and community purity of its synthetic counterpart at the quality
// scale.
func Table1Datasets(cfg Config, w io.Writer) []Table1Row {
	var rows []Table1Row
	for i, s := range dataset.TableI {
		pl := genCounterpart(s, cfg.TargetN, cfg.Seed+int64(i))
		intra := 0
		for e := 0; e < pl.Graph.M(); e++ {
			u, v := pl.Graph.Endpoints(graph.EdgeID(e))
			if pl.Truth[u] == pl.Truth[v] {
				intra++
			}
		}
		rows = append(rows, Table1Row{
			Name: s.Name, FullName: s.FullName, Type: s.Type,
			OrigN: s.N, OrigM: s.M,
			GenN: pl.Graph.N(), GenM: pl.Graph.M(),
			IntraFrac: float64(intra) / float64(pl.Graph.M()),
		})
		logf(cfg, w, "# table1 %s generated\n", s.Name)
	}
	return rows
}

// PrintTable1 renders the dataset inventory.
func PrintTable1(w io.Writer, rows []Table1Row) {
	t := newTable(w)
	t.row("name", "dataset", "type", "orig n", "orig m", "gen n", "gen m", "intra frac")
	for _, r := range rows {
		t.row(r.Name, r.FullName, r.Type, r.OrigN, r.OrigM, r.GenN, r.GenM, r.IntraFrac)
	}
	t.flush()
}
