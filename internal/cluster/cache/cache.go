// Package cache materializes per-level clustering results so repeated
// Clusters/EvenClusters queries are served lock-free from an immutable
// snapshot instead of re-running the voting function H_l over the whole
// pyramid under the backend read lock.
//
// # Protocol
//
// The cache is one atomic.Pointer to an immutable snapshot holding, per
// granularity level, the materialized power and even Clustering (nil when
// not yet computed or invalidated). The three operations:
//
//   - Hit (Power/Even): a single atomic load plus a slice index. No locks,
//     no allocation — annotated //anclint:hotpath and gated by the
//     AllocsPerRun tests. Safe from any goroutine at any time.
//   - Store (StorePower/StoreEven): copy-on-write — clone the level
//     slices, set the new entry, publish with CompareAndSwap, retrying on
//     contention with concurrent stores. Callers hold the facade's shared
//     (read) lock, so stores only race other stores, never invalidation.
//   - Invalidate/InvalidateAll: copy-on-write removal. Called only from
//     exclusive-writer context — the vote tracker's OnFlip listener fires
//     inside UpdateEdges, which runs under the facade's write lock — so an
//     invalidation never races a store. That lock discipline is what makes
//     the two-phase protocol sound without generation counters: a store
//     publishing a result computed from pre-write state cannot clobber an
//     invalidation that the write just issued.
//
// # Correctness contract
//
// A clustering at level l is a pure function of the static graph (adjacency
// and DegreeRank) and the per-edge pass states Votes(e, l) ≥ ⌈θ·K⌉. The
// VoteTracker reports exactly the net pass-state crossings per update cycle
// (coalesced), so "no flip at level l" implies the cached clustering at l
// is byte-identical to a recompute. Rescales (OnRescale) change no votes
// and need no invalidation; the ANCF full reconstruction fires no flips and
// must be followed by InvalidateAll.
//
// Readers that probe the cache without the lock may observe the snapshot
// from just before a concurrent write commits; that is the same answer a
// query linearized immediately before the write would get.
package cache

import (
	"sync/atomic"

	"anc/internal/cluster"
	"anc/internal/obs"
)

// snapshot is an immutable per-level view of materialized clusterings.
// Entries and the slices themselves are never mutated after publication;
// updates clone and swap.
type snapshot struct {
	power []*cluster.Clustering // [level-1]; nil = not materialized
	even  []*cluster.Clustering
}

func (s *snapshot) clone() *snapshot {
	nw := &snapshot{
		power: make([]*cluster.Clustering, len(s.power)),
		even:  make([]*cluster.Clustering, len(s.even)),
	}
	copy(nw.power, s.power)
	copy(nw.even, s.even)
	return nw
}

// Cache serves materialized per-level clusterings lock-free. All methods
// are safe on a nil *Cache (probes miss, stores and invalidations no-op),
// so callers need no "is the cache enabled" branch. The hit/miss/
// invalidation totals are always-on atomics; Instrument additionally
// exposes them as anc_cache_* metric families.
type Cache struct {
	levels int
	snap   atomic.Pointer[snapshot]

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	swapSeconds   *obs.Histogram // nil until Instrument; nil-safe
}

// New returns an empty cache over the given number of granularity levels.
func New(levels int) *Cache {
	if levels < 1 {
		levels = 1
	}
	c := &Cache{levels: levels}
	c.snap.Store(&snapshot{
		power: make([]*cluster.Clustering, levels),
		even:  make([]*cluster.Clustering, levels),
	})
	return c
}

// clamp mirrors the facade's level clamping so a lock-free probe and the
// locked recompute path agree on which level an out-of-range query means.
func (c *Cache) clamp(level int) int {
	if level < 1 {
		return 1
	}
	if level > c.levels {
		return c.levels
	}
	return level
}

// Power returns the materialized power clustering at level, if valid. The
// hit path is one atomic load and two predictable branches — no locks, no
// allocation. The returned Clustering is shared and must not be mutated.
//
//anclint:hotpath
func (c *Cache) Power(level int) (*cluster.Clustering, bool) {
	if c == nil {
		return nil, false
	}
	level = c.clamp(level)
	if cl := c.snap.Load().power[level-1]; cl != nil {
		c.hits.Add(1)
		return cl, true
	}
	return nil, false
}

// Even returns the materialized even clustering at level, if valid.
//
//anclint:hotpath
func (c *Cache) Even(level int) (*cluster.Clustering, bool) {
	if c == nil {
		return nil, false
	}
	level = c.clamp(level)
	if cl := c.snap.Load().even[level-1]; cl != nil {
		c.hits.Add(1)
		return cl, true
	}
	return nil, false
}

// StorePower publishes a freshly recomputed power clustering for level.
// The caller must hold at least the facade's shared lock (so no
// invalidation is concurrently in flight) and cl must be the recompute at
// the current index state; concurrent stores of the same level keep the
// first published entry (the inputs are identical, so the results are
// too). Counted as one miss: every store is the tail of a probe that found
// no entry.
func (c *Cache) StorePower(level int, cl *cluster.Clustering) {
	c.store(level, cl, false)
}

// StoreEven publishes a freshly recomputed even clustering for level,
// under the same contract as StorePower.
func (c *Cache) StoreEven(level int, cl *cluster.Clustering) {
	c.store(level, cl, true)
}

func (c *Cache) store(level int, cl *cluster.Clustering, even bool) {
	if c == nil || cl == nil {
		return
	}
	level = c.clamp(level)
	c.misses.Add(1)
	t := c.swapSeconds.Start()
	for {
		old := c.snap.Load()
		slot := old.power
		if even {
			slot = old.even
		}
		if slot[level-1] != nil {
			// A concurrent reader already published this level's result.
			break
		}
		nw := old.clone()
		if even {
			nw.even[level-1] = cl
		} else {
			nw.power[level-1] = cl
		}
		if c.snap.CompareAndSwap(old, nw) {
			break
		}
	}
	t.Stop()
}

// Invalidate drops both variants of one level — the vote tracker reported
// a net threshold crossing there, so the materialized results no longer
// match a recompute. Must be called from exclusive-writer context only
// (see the package comment); it is a no-op when the level holds nothing,
// so repeated flips at one level within a cycle swap once.
func (c *Cache) Invalidate(level int) {
	if c == nil {
		return
	}
	level = c.clamp(level)
	for {
		old := c.snap.Load()
		if old.power[level-1] == nil && old.even[level-1] == nil {
			return
		}
		nw := old.clone()
		nw.power[level-1] = nil
		nw.even[level-1] = nil
		if c.snap.CompareAndSwap(old, nw) {
			c.invalidations.Add(1)
			return
		}
	}
}

// InvalidateAll drops every level — the wholesale reset after an index
// reconstruction or snapshot restore, whose vote changes fire no flips.
// Exclusive-writer context only.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	dropped := uint64(0)
	old := c.snap.Load()
	for l := 0; l < c.levels; l++ {
		if old.power[l] != nil || old.even[l] != nil {
			dropped++
		}
	}
	c.snap.Store(&snapshot{
		power: make([]*cluster.Clustering, c.levels),
		even:  make([]*cluster.Clustering, c.levels),
	})
	c.invalidations.Add(dropped)
}

// Stats returns the cumulative hit, miss and invalidation totals. Always
// live (they do not require Instrument); zeros on a nil cache.
func (c *Cache) Stats() (hits, misses, invalidations uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.invalidations.Load()
}

// Instrument exposes the cache under the anc_cache_* families (DESIGN.md
// §12): hit/miss/invalidation totals sampled from the always-on atomics,
// and a histogram of snapshot-swap (store publication) latency. Nil cache
// or registry is a no-op; idempotent like every other Instrument.
func (c *Cache) Instrument(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("anc_cache_hits_total",
		"clustering queries served lock-free from the materialized cache",
		func() float64 { return float64(c.hits.Load()) })
	reg.CounterFunc("anc_cache_misses_total",
		"clustering queries that recomputed and stored their level",
		func() float64 { return float64(c.misses.Load()) })
	reg.CounterFunc("anc_cache_invalidations_total",
		"cache levels dropped on net vote-threshold crossings",
		func() float64 { return float64(c.invalidations.Load()) })
	c.swapSeconds = reg.Histogram("anc_cache_swap_seconds",
		"latency of publishing a recomputed clustering into the snapshot", nil)
}
