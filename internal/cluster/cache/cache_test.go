package cache

import (
	"sync"
	"testing"

	"anc/internal/cluster"
	"anc/internal/graph"
	"anc/internal/obs"
)

func mkClustering(label int32) *cluster.Clustering {
	return &cluster.Clustering{
		Labels:   []int32{label},
		Clusters: [][]graph.NodeID{{0}},
	}
}

func TestCacheStoreProbeInvalidate(t *testing.T) {
	c := New(3)
	if _, ok := c.Power(2); ok {
		t.Fatal("empty cache reported a hit")
	}
	p2 := mkClustering(2)
	c.StorePower(2, p2)
	if got, ok := c.Power(2); !ok || got != p2 {
		t.Fatalf("Power(2) = (%v, %v), want stored entry", got, ok)
	}
	if _, ok := c.Even(2); ok {
		t.Fatal("storing power must not materialize even")
	}
	e2 := mkClustering(-2)
	c.StoreEven(2, e2)
	if got, ok := c.Even(2); !ok || got != e2 {
		t.Fatal("Even(2) missed after StoreEven")
	}

	c.Invalidate(2)
	if _, ok := c.Power(2); ok {
		t.Fatal("Power(2) survived Invalidate(2)")
	}
	if _, ok := c.Even(2); ok {
		t.Fatal("Even(2) survived Invalidate(2)")
	}

	c.StorePower(1, mkClustering(1))
	c.StorePower(3, mkClustering(3))
	c.Invalidate(1)
	if _, ok := c.Power(3); !ok {
		t.Fatal("Invalidate(1) dropped level 3")
	}
	c.InvalidateAll()
	if _, ok := c.Power(3); ok {
		t.Fatal("Power(3) survived InvalidateAll")
	}
}

func TestCacheClampMirrorsFacade(t *testing.T) {
	c := New(3)
	top := mkClustering(3)
	c.StorePower(99, top) // clamped to level 3
	if got, ok := c.Power(3); !ok || got != top {
		t.Fatal("out-of-range store did not clamp to the top level")
	}
	if got, ok := c.Power(42); !ok || got != top {
		t.Fatal("out-of-range probe did not clamp to the top level")
	}
	bottom := mkClustering(1)
	c.StoreEven(-5, bottom)
	if got, ok := c.Even(0); !ok || got != bottom {
		t.Fatal("below-range probe did not clamp to level 1")
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	if _, ok := c.Power(1); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.Even(1); ok {
		t.Fatal("nil cache hit")
	}
	c.StorePower(1, mkClustering(0))
	c.StoreEven(1, mkClustering(0))
	c.Invalidate(1)
	c.InvalidateAll()
	c.Instrument(obs.NewRegistry())
	if h, m, i := c.Stats(); h+m+i != 0 {
		t.Fatal("nil cache reported counts")
	}
}

func TestCacheCountsAndMetrics(t *testing.T) {
	c := New(2)
	reg := obs.NewRegistry()
	c.Instrument(reg)

	c.Power(1)                       // probe miss: not counted (the store is)
	c.StorePower(1, mkClustering(1)) // miss++
	c.Power(1)                       // hit++
	c.Power(1)                       // hit++
	c.Invalidate(1)                  // invalidation++
	c.Invalidate(1)                  // empty level: no count
	c.InvalidateAll()                // nothing materialized: no count

	hits, misses, inv := c.Stats()
	if hits != 2 || misses != 1 || inv != 1 {
		t.Fatalf("Stats() = (%d, %d, %d), want (2, 1, 1)", hits, misses, inv)
	}
	snap := reg.Snapshot()
	if snap["anc_cache_hits_total"] != 2 || snap["anc_cache_misses_total"] != 1 ||
		snap["anc_cache_invalidations_total"] != 1 {
		t.Fatalf("obs snapshot disagrees with Stats: %v", snap)
	}
	if snap["anc_cache_swap_seconds_count"] != 1 {
		t.Fatalf("swap histogram observed %v stores, want 1", snap["anc_cache_swap_seconds_count"])
	}
}

// TestCacheFirstStoreWins: concurrent stores of the same level (readers
// racing to publish an identical recompute) keep exactly one entry and
// never deadlock or lose other levels.
func TestCacheFirstStoreWins(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for l := 1; l <= 4; l++ {
				c.StorePower(l, mkClustering(int32(l)))
				c.StoreEven(l, mkClustering(int32(-l)))
			}
		}(i)
	}
	wg.Wait()
	for l := 1; l <= 4; l++ {
		p, ok := c.Power(l)
		if !ok || p.Labels[0] != int32(l) {
			t.Fatalf("level %d power entry lost or wrong after racing stores", l)
		}
		e, ok := c.Even(l)
		if !ok || e.Labels[0] != int32(-l) {
			t.Fatalf("level %d even entry lost or wrong after racing stores", l)
		}
	}
}
