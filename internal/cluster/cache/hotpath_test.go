package cache

import (
	"testing"

	"anc/internal/obs"
)

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath contract
// (DESIGN.md §14) for the cache hit path: probing a populated, an empty
// and a nil cache must not allocate — the hit path runs on every query of
// every serving connection, outside any lock.
func TestHotPathAllocs(t *testing.T) {
	c := New(4)
	c.Instrument(obs.NewRegistry())
	c.StorePower(2, mkClustering(2))
	c.StoreEven(2, mkClustering(-2))
	var nilCache *Cache
	if n := testing.AllocsPerRun(1000, func() {
		c.Power(2) // hit
		c.Even(2)  // hit
		c.Power(4) // miss probe
		c.Even(0)  // clamped miss probe
		nilCache.Power(1)
		c.Stats()
	}); n != 0 {
		t.Fatalf("cache hit path allocates %v times per run, want 0", n)
	}
}

// BenchmarkHotPathCacheHit measures the lock-free probe; run with
// -benchmem by make bench-smoke so an allocation regression is visible.
func BenchmarkHotPathCacheHit(b *testing.B) {
	c := New(4)
	c.StorePower(2, mkClustering(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Power(2); !ok {
			b.Fatal("probe missed")
		}
	}
}
