// Package cluster implements the query side of Section V-B: evaluating the
// voting function H_l over the pyramids index, extracting clusters with
// even clustering (connected components of surviving edges) or power
// clustering (degree-ordered directed search — the paper's
// DirectedCluster), answering local cluster queries for a single node in
// output-proportional time (Lemma 9), and the zoom-in / zoom-out
// navigation of Problem 1.
package cluster

import (
	"sort"

	"anc/internal/graph"
	"anc/internal/pyramid"
)

// Clustering is a partition of the node set: Labels[v] is the cluster ID of
// node v (dense, starting at 0), and Clusters lists the members of each
// cluster.
type Clustering struct {
	Labels   []int32
	Clusters [][]graph.NodeID
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Clusters) }

// SizesAtLeast returns how many clusters have at least minSize members —
// the paper treats clusters below 3 nodes as noise.
func (c *Clustering) SizesAtLeast(minSize int) int {
	n := 0
	for _, cl := range c.Clusters {
		if len(cl) >= minSize {
			n++
		}
	}
	return n
}

// keepFunc reports whether an edge survives the vote at the queried level.
type keepFunc func(e graph.EdgeID) bool

func voteKeep(ix *pyramid.Index, level int) keepFunc {
	min := ix.MinSupport()
	return func(e graph.EdgeID) bool { return ix.Votes(e, level) >= min }
}

// keepMemo caches keep decisions in a pair of bitmaps so each undirected
// edge's vote is evaluated at most once per query, even though the edge
// appears in both endpoints' neighbor lists. Without tracking, one vote
// evaluation polls K partitions, so the full-graph traversals of Even and
// Power would pay that twice per edge; with the memo, vote evaluation is
// O(m) total.
type keepMemo struct {
	fn   keepFunc
	seen []uint64
	keep []uint64
}

func newKeepMemo(m int, fn keepFunc) *keepMemo {
	words := (m + 63) / 64
	return &keepMemo{fn: fn, seen: make([]uint64, words), keep: make([]uint64, words)}
}

func (k *keepMemo) Keep(e graph.EdgeID) bool {
	w, b := e/64, uint64(1)<<(uint(e)%64)
	if k.seen[w]&b == 0 {
		k.seen[w] |= b
		if k.fn(e) {
			k.keep[w] |= b
		}
	}
	return k.keep[w]&b != 0
}

// Even reports the even clustering at the given granularity level: the
// connected components of the graph restricted to edges whose vote passes
// the θ·K support threshold. O(n + m) plus vote evaluation (Lemma 8).
func Even(ix *pyramid.Index, level int) *Clustering {
	g := ix.Graph()
	memo := newKeepMemo(g.M(), voteKeep(ix, level))
	keep := memo.Keep
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var clusters [][]graph.NodeID
	var queue []graph.NodeID
	for v := 0; v < g.N(); v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(len(clusters))
		labels[v] = id
		queue = append(queue[:0], graph.NodeID(v))
		var members []graph.NodeID
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			members = append(members, x)
			for _, h := range g.Neighbors(x) {
				if labels[h.To] < 0 && keep(h.Edge) {
					labels[h.To] = id
					queue = append(queue, h.To)
				}
			}
		}
		clusters = append(clusters, members)
	}
	return &Clustering{Labels: labels, Clusters: clusters}
}

// Power reports the power clustering (the paper's DirectedCluster) at the
// given level: surviving edges are directed from the higher-degree to the
// lower-degree endpoint (ties by smaller node ID first), nodes are scanned
// in that rank order, and each still-unclustered node absorbs every
// unclustered node reachable through directed surviving edges. Power
// clustering avoids the error amplification of even clustering: a single
// mis-voted edge cannot merge two whole clusters. O(n + m) plus votes.
func Power(ix *pyramid.Index, level int) *Clustering {
	g := ix.Graph()
	memo := newKeepMemo(g.M(), voteKeep(ix, level))
	keep := memo.Keep
	rank := g.DegreeRank()
	pos := make([]int32, g.N()) // rank position of each node
	for i, v := range rank {
		pos[v] = int32(i)
	}
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var clusters [][]graph.NodeID
	var stack []graph.NodeID
	for _, v := range rank {
		if labels[v] >= 0 {
			continue
		}
		id := int32(len(clusters))
		labels[v] = id
		stack = append(stack[:0], v)
		var members []graph.NodeID
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, x)
			for _, h := range g.Neighbors(x) {
				// Follow the edge only in its high-rank -> low-rank direction.
				if pos[x] < pos[h.To] && labels[h.To] < 0 && keep(h.Edge) {
					labels[h.To] = id
					stack = append(stack, h.To)
				}
			}
		}
		clusters = append(clusters, members)
	}
	return &Clustering{Labels: labels, Clusters: clusters}
}

// Local answers the local cluster query of Problem 1(2): the cluster
// containing v at the given level, computed by searching outward from v
// over surviving edges only. The cost is proportional to the total degree
// of the reported nodes (Lemma 9), independent of the graph size. The
// result is sorted by node ID. Local semantics match Even: Local(ix, l, v)
// equals the Even cluster of v.
func Local(ix *pyramid.Index, level int, v graph.NodeID) []graph.NodeID {
	g := ix.Graph()
	keep := voteKeep(ix, level)
	seen := map[graph.NodeID]bool{v: true}
	queue := []graph.NodeID{v}
	var members []graph.NodeID
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		members = append(members, x)
		for _, h := range g.Neighbors(x) {
			if !seen[h.To] && keep(h.Edge) {
				seen[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// View is a stateful navigator over the granularity hierarchy, providing
// the repeated zoom-in / zoom-out operations of Problem 1.
type View struct {
	ix    *pyramid.Index
	level int
}

// NewView opens a navigator at the Θ(√n)-cluster granularity.
func NewView(ix *pyramid.Index) *View {
	return &View{ix: ix, level: pyramid.SqrtLevel(ix.Graph().N())}
}

// NewViewAt opens a navigator at an explicit level, clamped to the valid
// range [1, Levels].
func NewViewAt(ix *pyramid.Index, level int) *View {
	v := &View{ix: ix, level: level}
	v.clamp()
	return v
}

func (v *View) clamp() {
	if v.level < 1 {
		v.level = 1
	}
	if v.level > v.ix.Levels() {
		v.level = v.ix.Levels()
	}
}

// Level returns the current granularity level.
func (v *View) Level() int { return v.level }

// ZoomIn moves to a finer granularity (more, smaller clusters). Returns
// false if already at the finest level.
func (v *View) ZoomIn() bool {
	if v.level >= v.ix.Levels() {
		return false
	}
	v.level++
	return true
}

// ZoomOut moves to a coarser granularity. Returns false at the coarsest
// level.
func (v *View) ZoomOut() bool {
	if v.level <= 1 {
		return false
	}
	v.level--
	return true
}

// Clusters reports the power clustering at the current level.
func (v *View) Clusters() *Clustering { return Power(v.ix, v.level) }

// ClusterOf reports the local cluster of node x at the current level.
func (v *View) ClusterOf(x graph.NodeID) []graph.NodeID { return Local(v.ix, v.level, x) }

// SmallestClusterOf answers Problem 1(2): the smallest cluster containing
// x, i.e. its local cluster at the finest granularity. The returned View is
// positioned there so the caller can zoom out repeatedly.
func SmallestClusterOf(ix *pyramid.Index, x graph.NodeID) ([]graph.NodeID, *View) {
	v := NewViewAt(ix, ix.Levels())
	return v.ClusterOf(x), v
}
