package cluster

import (
	"math/rand"
	"testing"

	"anc/internal/graph"
	"anc/internal/pyramid"
)

func benchIndex(b *testing.B, n int) *pyramid.Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gb := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		gb.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
	}
	for i := 0; i < n*3; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			gb.AddEdge(u, v)
		}
	}
	g := gb.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 0.1 + rng.Float64()
	}
	ix, err := pyramid.Build(g, func(e graph.EdgeID) float64 { return w[e] },
		pyramid.DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// BenchmarkEven measures even clustering (the Lemma 8 O(m log n) path).
func BenchmarkEven(b *testing.B) {
	ix := benchIndex(b, 4096)
	l := pyramid.SqrtLevel(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Even(ix, l)
	}
}

// BenchmarkPower measures power clustering (DirectedCluster).
func BenchmarkPower(b *testing.B) {
	ix := benchIndex(b, 4096)
	l := pyramid.SqrtLevel(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Power(ix, l)
	}
}

// BenchmarkLocal measures the output-proportional local query (Lemma 9).
func BenchmarkLocal(b *testing.B) {
	ix := benchIndex(b, 4096)
	l := pyramid.SqrtLevel(4096)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(ix, l, graph.NodeID(rng.Intn(4096)))
	}
}
