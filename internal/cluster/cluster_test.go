package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/pyramid"
)

// twoCliques builds two K5s joined by a single heavy (weak) bridge, with
// edge weights that make intra-clique distances tiny and the bridge huge —
// the index should separate the cliques at any level with ≥ 2 seeds.
func twoCliques(t testing.TB) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder(10)
	add := func(u, v graph.NodeID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for u := graph.NodeID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			add(u, v)
		}
	}
	for u := graph.NodeID(5); u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			add(u, v)
		}
	}
	add(4, 5)
	g := b.Build()
	w := make([]float64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if (u < 5) == (v < 5) {
			w[e] = 0.1
		} else {
			w[e] = 1000
		}
	}
	return g, w
}

func buildIndex(t testing.TB, g *graph.Graph, w []float64, k int, seed int64) *pyramid.Index {
	t.Helper()
	ix, err := pyramid.Build(g, func(e graph.EdgeID) float64 { return w[e] },
		pyramid.Config{K: k, Theta: 0.7}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func clusterSet(members []graph.NodeID) map[graph.NodeID]bool {
	s := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		s[v] = true
	}
	return s
}

func TestEvenSeparatesCliques(t *testing.T) {
	g, w := twoCliques(t)
	ix := buildIndex(t, g, w, 4, 5)
	// Level 2 has 4 seeds: with overwhelming probability split across both
	// cliques; the bridge edge has weight 1000 so endpoints land in
	// different cells.
	c := Even(ix, 2)
	if c.Labels[0] == c.Labels[9] {
		t.Fatalf("cliques not separated: labels %v", c.Labels)
	}
	// Within one clique, all nodes share a label or are split into cells;
	// at least check the partition covers all nodes exactly once.
	total := 0
	for _, cl := range c.Clusters {
		total += len(cl)
	}
	if total != g.N() {
		t.Fatalf("clusters cover %d nodes, want %d", total, g.N())
	}
}

func TestPowerSeparatesCliques(t *testing.T) {
	g, w := twoCliques(t)
	ix := buildIndex(t, g, w, 4, 5)
	c := Power(ix, 2)
	if c.Labels[0] == c.Labels[9] {
		t.Fatalf("cliques not separated by power clustering")
	}
	total := 0
	for _, cl := range c.Clusters {
		total += len(cl)
	}
	if total != g.N() {
		t.Fatalf("clusters cover %d nodes, want %d", total, g.N())
	}
}

// TestPowerRefinesEven: every power cluster is contained in one even
// cluster (power only follows directed kept edges, a subset of kept
// connectivity).
func TestPowerRefinesEven(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
		}
		for i := 0; i < n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		w := make([]float64, g.M())
		for i := range w {
			w[i] = 0.1 + rng.Float64()*3
		}
		ix := buildIndex(t, g, w, 3, seed+7)
		for l := 1; l <= ix.Levels(); l++ {
			even := Even(ix, l)
			power := Power(ix, l)
			for _, cl := range power.Clusters {
				for _, v := range cl[1:] {
					if even.Labels[v] != even.Labels[cl[0]] {
						return false
					}
				}
			}
			if power.NumClusters() < even.NumClusters() {
				return false // refinement can only have >= clusters
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalMatchesEven: the local query equals the node's even cluster.
func TestLocalMatchesEven(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
		}
		g := b.Build()
		w := make([]float64, g.M())
		for i := range w {
			w[i] = 0.2 + rng.Float64()
		}
		ix := buildIndex(t, g, w, 2, seed+3)
		v := graph.NodeID(rng.Intn(n))
		for l := 1; l <= ix.Levels(); l++ {
			local := Local(ix, l, v)
			even := Even(ix, l)
			var want []graph.NodeID
			for x := 0; x < n; x++ {
				if even.Labels[x] == even.Labels[v] {
					want = append(want, graph.NodeID(x))
				}
			}
			if !reflect.DeepEqual(local, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGranularityMonotone: coarser levels (fewer seeds) cannot produce
// more even clusters than the number of connected components requires —
// and the number of even clusters is non-decreasing in the level, since
// more seeds can only split cells. (Votes make this stochastic; we check
// the weaker invariant that level 1 with 2 seeds per pyramid yields at
// most a few clusters more than components.)
func TestZoomChangesGranularity(t *testing.T) {
	g, w := twoCliques(t)
	ix := buildIndex(t, g, w, 4, 11)
	v := NewView(ix)
	startLevel := v.Level()
	if !v.ZoomIn() && ix.Levels() > startLevel {
		t.Fatal("zoom in failed")
	}
	for v.ZoomOut() {
	}
	if v.Level() != 1 {
		t.Fatalf("zoom out floor = %d, want 1", v.Level())
	}
	if v.ZoomOut() {
		t.Fatal("zoomed out beyond level 1")
	}
	for v.ZoomIn() {
	}
	if v.Level() != ix.Levels() {
		t.Fatalf("zoom in ceiling = %d, want %d", v.Level(), ix.Levels())
	}
	if v.ZoomIn() {
		t.Fatal("zoomed in beyond finest level")
	}
}

func TestSmallestClusterOf(t *testing.T) {
	g, w := twoCliques(t)
	ix := buildIndex(t, g, w, 4, 13)
	members, view := SmallestClusterOf(ix, 0)
	if view.Level() != ix.Levels() {
		t.Fatalf("view level = %d, want finest %d", view.Level(), ix.Levels())
	}
	if len(members) == 0 || !clusterSet(members)[0] {
		t.Fatalf("smallest cluster of 0 = %v", members)
	}
	// All members must be from the same clique as node 0 (bridge weight is
	// hostile at every level).
	for _, m := range members {
		if m >= 5 {
			t.Fatalf("smallest cluster crossed the bridge: %v", members)
		}
	}
}

func TestNewViewAtClamps(t *testing.T) {
	g, w := twoCliques(t)
	ix := buildIndex(t, g, w, 2, 17)
	if v := NewViewAt(ix, -5); v.Level() != 1 {
		t.Fatalf("clamp low = %d", v.Level())
	}
	if v := NewViewAt(ix, 99); v.Level() != ix.Levels() {
		t.Fatalf("clamp high = %d", v.Level())
	}
}

func TestSizesAtLeast(t *testing.T) {
	c := &Clustering{Clusters: [][]graph.NodeID{{0}, {1, 2}, {3, 4, 5}, {6, 7, 8, 9}}}
	if got := c.SizesAtLeast(3); got != 2 {
		t.Fatalf("SizesAtLeast(3) = %d, want 2", got)
	}
	if got := c.SizesAtLeast(1); got != 4 {
		t.Fatalf("SizesAtLeast(1) = %d, want 4", got)
	}
}

// TestPaperExample5Shape reproduces the flavor of Example 5: power
// clustering on a fixed kept-edge set via a 1-pyramid index with
// hand-crafted weights. We verify that searches start at the highest-degree
// node and only absorb unclustered reachable nodes.
func TestPowerOrderDeterminism(t *testing.T) {
	// Star center 0 (degree 4) with leaves 1-4; leaves 3,4 connected.
	b := graph.NewBuilder(5)
	for v := graph.NodeID(1); v <= 4; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(3, 4)
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	ix := buildIndex(t, g, w, 1, 19)
	// With one pyramid and θ=0.7 the vote needs 1 pyramid: level 1 has 2
	// seeds; whatever the cells, power clustering must be a partition and
	// deterministic across calls.
	c1 := Power(ix, 1)
	c2 := Power(ix, 1)
	if !reflect.DeepEqual(c1.Labels, c2.Labels) {
		t.Fatal("power clustering not deterministic")
	}
}
