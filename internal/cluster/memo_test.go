package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"anc/internal/graph"
	"anc/internal/pyramid"
)

// countingKeep wraps a keepFunc and counts how often each edge is
// evaluated.
func countingKeep(fn keepFunc, calls []int) keepFunc {
	return func(e graph.EdgeID) bool {
		calls[e]++
		return fn(e)
	}
}

// TestKeepMemoSingleEvaluation: the memo's whole point — the wrapped
// function is consulted at most once per edge no matter how often the
// traversal asks.
func TestKeepMemoSingleEvaluation(t *testing.T) {
	const m = 130 // spans three bitmap words
	calls := make([]int, m)
	memo := newKeepMemo(m, countingKeep(func(e graph.EdgeID) bool { return e%3 == 0 }, calls))
	for round := 0; round < 4; round++ {
		for e := 0; e < m; e++ {
			if got, want := memo.Keep(graph.EdgeID(e)), e%3 == 0; got != want {
				t.Fatalf("round %d: Keep(%d) = %v, want %v", round, e, got, want)
			}
		}
	}
	for e, c := range calls {
		if c != 1 {
			t.Fatalf("edge %d evaluated %d times, want 1", e, c)
		}
	}
}

// referenceEven is Even without the keep memo: the direct per-neighbor
// vote evaluation the memoized traversal must reproduce exactly.
func referenceEven(ix *pyramid.Index, level int) *Clustering {
	g := ix.Graph()
	keep := voteKeep(ix, level)
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var clusters [][]graph.NodeID
	var queue []graph.NodeID
	for v := 0; v < g.N(); v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(len(clusters))
		labels[v] = id
		queue = append(queue[:0], graph.NodeID(v))
		var members []graph.NodeID
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			members = append(members, x)
			for _, h := range g.Neighbors(x) {
				if labels[h.To] < 0 && keep(h.Edge) {
					labels[h.To] = id
					queue = append(queue, h.To)
				}
			}
		}
		clusters = append(clusters, members)
	}
	return &Clustering{Labels: labels, Clusters: clusters}
}

// referencePower is Power without the keep memo.
func referencePower(ix *pyramid.Index, level int) *Clustering {
	g := ix.Graph()
	keep := voteKeep(ix, level)
	rank := g.DegreeRank()
	pos := make([]int32, g.N())
	for i, v := range rank {
		pos[v] = int32(i)
	}
	labels := make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var clusters [][]graph.NodeID
	var stack []graph.NodeID
	for _, v := range rank {
		if labels[v] >= 0 {
			continue
		}
		id := int32(len(clusters))
		labels[v] = id
		stack = append(stack[:0], v)
		var members []graph.NodeID
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, x)
			for _, h := range g.Neighbors(x) {
				if pos[x] < pos[h.To] && labels[h.To] < 0 && keep(h.Edge) {
					labels[h.To] = id
					stack = append(stack, h.To)
				}
			}
		}
		clusters = append(clusters, members)
	}
	return &Clustering{Labels: labels, Clusters: clusters}
}

// TestMemoizedClusteringsIdentical: memoizing keep decisions changes the
// cost of vote evaluation, never the output — Even and Power must be
// byte-identical to the direct-evaluation reference on random graphs at
// every level.
func TestMemoizedClusteringsIdentical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
		}
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		w := make([]float64, g.M())
		for e := range w {
			w[e] = 0.1 + rng.Float64()*5
		}
		ix := buildIndex(t, g, w, 4, seed+100)
		for level := 1; level <= ix.Levels(); level++ {
			if got, want := Even(ix, level), referenceEven(ix, level); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d level %d: Even diverges from direct evaluation", seed, level)
			}
			if got, want := Power(ix, level), referencePower(ix, level); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d level %d: Power diverges from direct evaluation", seed, level)
			}
		}
	}
}
