package core

import (
	"math"
	"testing"

	"anc/internal/graph"
)

func TestActivateBatch(t *testing.T) {
	g := cliquePairGraph(t)
	for _, m := range []Method{ANCO, ANCOR, ANCF} {
		nw, err := New(g, options(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		batch := []Activation{
			{Edge: 0, T: 1}, {Edge: 1, T: 1}, {Edge: 2, T: 1.5},
			{Edge: g.FindEdge(5, 6), T: 2},
		}
		if err := nw.ActivateBatch(batch); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := nw.ActivateBatch([]Activation{{Edge: 0, T: 7}, {Edge: 0, T: 7}}); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if nw.Stats.Activations != 6 {
			t.Fatalf("%v: activations = %d", m, nw.Stats.Activations)
		}
		if m == ANCOR && len(nw.pending) != 0 {
			t.Fatalf("ANCOR batch left pending reinforcement")
		}
		if m != ANCF {
			if msg := nw.Index().Validate(); msg != "" {
				t.Fatalf("%v: %s", m, msg)
			}
		}
	}
}

// TestActivateBatchRejectsBadInput: an invalid batch is rejected as a unit
// before any state is touched.
func TestActivateBatchRejectsBadInput(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Activate(0, 3); err != nil {
		t.Fatal(err)
	}
	weightBefore := nw.Index().Weight(1)
	bad := [][]Activation{
		{{Edge: 1, T: 4}, {Edge: graph.EdgeID(g.M()), T: 4}}, // edge out of range
		{{Edge: -1, T: 4}},                                   // negative edge
		{{Edge: 1, T: math.NaN()}},                           // NaN time
		{{Edge: 1, T: math.Inf(1)}},                          // Inf time
		{{Edge: 1, T: 5}, {Edge: 1, T: 4}},                   // decreasing inside batch
		{{Edge: 1, T: 2}},                                    // before current time
	}
	for i, b := range bad {
		if err := nw.ActivateBatch(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	//anclint:ignore floateq a rejected batch must leave state bit-identical
	if nw.Index().Weight(1) != weightBefore || nw.Stats.Activations != 1 || nw.Clock().Now() != 3 {
		t.Fatal("rejected batch mutated state")
	}
}

// TestActivateBatchEquivalentToLoop: batched ingest of a stream matches
// per-op ingest bit-for-bit on index weights, for every method.
func TestActivateBatchEquivalentToLoop(t *testing.T) {
	g := cliquePairGraph(t)
	for _, m := range []Method{ANCO, ANCOR, ANCF} {
		a, err := New(g, options(m))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(g, options(m))
		if err != nil {
			t.Fatal(err)
		}
		stream := []Activation{
			{Edge: 3, T: 5}, {Edge: 7, T: 5}, {Edge: 3, T: 6},
			{Edge: g.FindEdge(5, 6), T: 12}, {Edge: 3, T: 12},
		}
		if err := a.ActivateBatch(stream); err != nil {
			t.Fatal(err)
		}
		for _, act := range stream {
			if err := b.Activate(act.Edge, act.T); err != nil {
				t.Fatal(err)
			}
		}
		// The per-op path has not seen the end-of-batch ANCOR flush yet;
		// align it the way a stream consumer would.
		if m == ANCOR {
			b.Flush()
		}
		exact := m == ANCO // reinforcement reads σ, whose refresh order differs
		for e := 0; e < g.M(); e++ {
			wa, wb := a.Index().Weight(graph.EdgeID(e)), b.Index().Weight(graph.EdgeID(e))
			//anclint:ignore floateq ANCO batched ingest is specified bit-identical to per-op
			if exact && wa != wb {
				t.Fatalf("%v: weights diverge at edge %d: %v vs %v", m, e, wa, wb)
			}
			if !exact && math.Abs(wa-wb) > 1e-9*(1+math.Abs(wb)) {
				t.Fatalf("%v: weights diverge at edge %d: %v vs %v", m, e, wa, wb)
			}
		}
	}
}
