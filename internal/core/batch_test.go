package core

import (
	"testing"

	"anc/internal/graph"
)

func TestActivateBatch(t *testing.T) {
	g := cliquePairGraph(t)
	for _, m := range []Method{ANCO, ANCOR, ANCF} {
		nw, err := New(g, options(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		batch := []graph.EdgeID{0, 1, 2, g.FindEdge(5, 6)}
		nw.ActivateBatch(batch, 1)
		nw.ActivateBatch(batch, 2)
		if nw.Stats.Activations != int64(2*len(batch)) {
			t.Fatalf("%v: activations = %d", m, nw.Stats.Activations)
		}
		if m == ANCOR && len(nw.pending) != 0 {
			t.Fatalf("ANCOR batch left pending reinforcement")
		}
		if m != ANCF {
			if msg := nw.Index().Validate(); msg != "" {
				t.Fatalf("%v: %s", m, msg)
			}
		}
	}
}

// TestActivateBatchEquivalentToLoop: for ANCO a batch is exactly the same
// as individual activations.
func TestActivateBatchEquivalentToLoop(t *testing.T) {
	g := cliquePairGraph(t)
	a, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	batch := []graph.EdgeID{3, 7, 3, g.FindEdge(5, 6)}
	a.ActivateBatch(batch, 5)
	for _, e := range batch {
		b.Activate(e, 5)
	}
	for e := 0; e < g.M(); e++ {
		if a.Index().Weight(graph.EdgeID(e)) != b.Index().Weight(graph.EdgeID(e)) {
			t.Fatalf("weights diverge at edge %d", e)
		}
	}
}
