// Package core wires the paper's pieces into the three Activation Network
// Clustering methods evaluated in Section VI:
//
//   - ANCO  — fully online: every activation applies its unit impact to the
//     similarity and triggers a bounded index update; no local
//     reinforcement after initialization.
//   - ANCOR — online with periodic reinforcement: like ANCO, plus a local
//     reinforcement pass over the recently activated edges every
//     ReinforceInterval time units (5 timestamps by default).
//   - ANCF  — offline: activations are buffered; Snapshot() applies Rep
//     rounds of local reinforcement to the activated edges and
//     reconstructs the pyramids from scratch, modeling the paper's
//     per-snapshot recomputation.
//
// A Network owns the decay clock, the similarity store and the pyramids
// index, and exposes the clustering queries of Problem 1.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"anc/internal/analytics"
	"anc/internal/cluster"
	clustercache "anc/internal/cluster/cache"
	"anc/internal/decay"
	"anc/internal/graph"
	"anc/internal/obs"
	"anc/internal/obs/trace"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

// Method selects the update policy of a Network.
type Method uint8

const (
	// ANCO is the fully online method (fastest updates).
	ANCO Method = iota
	// ANCOR is online with local reinforcement at intervals.
	ANCOR
	// ANCF is the offline method that recomputes per snapshot.
	ANCF
)

// String returns the paper's name of the method.
func (m Method) String() string {
	switch m {
	case ANCO:
		return "ANCO"
	case ANCOR:
		return "ANCOR"
	case ANCF:
		return "ANCF"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options configures a Network. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	// Method selects ANCO, ANCOR or ANCF.
	Method Method
	// Lambda is the decay factor λ of the time-decay scheme.
	Lambda float64
	// Rep is the number of local-reinforcement repetitions used to
	// initialize S₀ (and, for ANCF, per snapshot). Paper default: 7.
	Rep int
	// ReinforceInterval is the ANCOR reinforcement period in time units.
	// Paper default: 5 timestamps.
	ReinforceInterval float64
	// Similarity holds ε, μ and the similarity clamps.
	Similarity similarity.Config
	// Pyramid holds K, θ and the parallel-update switch.
	Pyramid pyramid.Config
	// Seed drives pyramid seed selection for reproducible experiments.
	Seed int64
	// RescaleEvery overrides the batched-rescale period in activations;
	// 0 keeps the decay package default.
	RescaleEvery int
}

// DefaultOptions returns the paper's default parameters (Table II): λ=0.1,
// rep=7, reinforcement interval 5, k=4 pyramids, θ=0.7.
func DefaultOptions() Options {
	return Options{
		Method:            ANCO,
		Lambda:            0.1,
		Rep:               7,
		ReinforceInterval: 5,
		Similarity:        similarity.DefaultConfig(),
		Pyramid:           pyramid.DefaultConfig(),
	}
}

// Network is an indexed activation network: the relation graph, the decayed
// similarity state and the pyramids index, kept mutually consistent under
// the activation stream.
type Network struct {
	g     *graph.Graph
	opts  Options
	clock *decay.Clock
	sim   *similarity.Store
	ix    *pyramid.Index

	pending     []graph.EdgeID // edges awaiting reinforcement (ANCOR/ANCF)
	pendingMark []bool
	lastFlush   float64
	watcher     *Watcher
	met         *metrics      // nil until Instrument; all methods nil-safe
	reg         *obs.Registry // the registry Instrument attached, for late cache enablement

	// cache, when enabled, serves Clusters/EvenClusters lock-free from
	// materialized per-level snapshots, invalidated by vote-threshold
	// crossings. Nil until EnableClusterCache; every cache method is
	// nil-safe, so the query path needs no enablement branch.
	cache *clustercache.Cache

	// Analytics (DESIGN.md §16): the TieRank snapshot cache and the
	// cluster-evolution tracker. Nil until EnableAnalytics; all methods
	// on both are nil-safe. evoDirty marks a vote flip at the tracked
	// level since the last diff; the ingest paths settle it via
	// afterRepair.
	rank     *analytics.RankCache
	evo      *analytics.Tracker
	evoDirty bool

	// Batch-ingest scratch: dirty-edge/node sets of the current batch and
	// the weight buffer handed to the index. Lazily allocated on the first
	// ActivateBatch and reused, so steady batch ingest allocates nothing.
	batchEdges    []graph.EdgeID
	batchEdgeMark []bool
	batchNodes    []graph.NodeID
	batchNodeMark []bool
	batchWeights  []float64
	flushWeights  []float64

	// Stats counts work done, for the experiment harness.
	Stats struct {
		Activations  int64
		Flushes      int64
		Reconstructs int64
	}
}

// New builds a Network over g: the similarity store starts from uniform
// activeness 1 and S₀ = 1, then Opts.Rep rounds of local reinforcement over
// all edges fold the structural cohesiveness into S₀ (Section IV-C), and
// the pyramids are built on the resulting weights.
func New(g *graph.Graph, opts Options) (*Network, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	clock := decay.NewClock(opts.Lambda)
	if opts.RescaleEvery > 0 {
		clock.SetRescaleEvery(opts.RescaleEvery)
	}
	sim, err := similarity.New(g, clock, 1, opts.Similarity)
	if err != nil {
		return nil, err
	}
	for r := 0; r < opts.Rep; r++ {
		for e := 0; e < g.M(); e++ {
			sim.Reinforce(graph.EdgeID(e))
		}
	}
	ix, err := pyramid.Build(g, sim.Weight, opts.Pyramid, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	clock.Register(ix)
	return &Network{
		g:           g,
		opts:        opts,
		clock:       clock,
		sim:         sim,
		ix:          ix,
		pendingMark: make([]bool, g.M()),
	}, nil
}

// Graph returns the relation graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Options returns the construction options.
func (nw *Network) Options() Options { return nw.opts }

// Clock returns the decay clock.
func (nw *Network) Clock() *decay.Clock { return nw.clock }

// Similarity returns the similarity store.
func (nw *Network) Similarity() *similarity.Store { return nw.sim }

// Index returns the pyramids index.
func (nw *Network) Index() *pyramid.Index { return nw.ix }

// validateOptions rejects parameter combinations that would corrupt or
// panic the pipeline. It is shared by New and the snapshot loader, so a
// corrupt snapshot cannot smuggle in values New would refuse.
func validateOptions(opts Options) error {
	if opts.Lambda < 0 || math.IsNaN(opts.Lambda) || math.IsInf(opts.Lambda, 0) {
		return fmt.Errorf("core: invalid lambda %v", opts.Lambda)
	}
	if opts.Rep < 0 {
		return fmt.Errorf("core: negative rep %d", opts.Rep)
	}
	if opts.Method == ANCOR && !(opts.ReinforceInterval > 0) {
		return fmt.Errorf("core: ANCOR needs a positive ReinforceInterval")
	}
	return nil
}

// checkTime enforces the ingest contract of anc.Network.Activate — the
// single authoritative statement of the rule: timestamps are finite and
// non-decreasing. Rejecting here, before any state is touched, keeps a bad
// ingest record from corrupting the anchored activeness (a NaN impact
// poisons every σ it reaches; a backwards timestamp breaks Observation 1).
func (nw *Network) checkTime(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("core: non-finite activation timestamp %v", t)
	}
	if t < nw.clock.Now() {
		return fmt.Errorf("core: activation timestamp %v precedes current time %v (timestamps must be non-decreasing)", t, nw.clock.Now())
	}
	return nil
}

// Activate feeds the activation (e, t) into the network under the
// configured method policy. It returns an error — before touching any
// state — when t violates the ingest contract (see anc.Network.Activate).
func (nw *Network) Activate(e graph.EdgeID, t float64) error {
	if err := nw.checkTime(t); err != nil {
		return err
	}
	nw.Stats.Activations++
	nw.met.activated(1)
	switch nw.opts.Method {
	case ANCO:
		// ANCO applies no local reinforcement after initialization
		// (Section VI); the activation's unit impact still changes S and
		// triggers a bounded index update.
		nw.ix.UpdateEdge(e, nw.sim.ActivateNoReinforce(e, t))
	case ANCOR:
		if t >= nw.lastFlush+nw.opts.ReinforceInterval {
			nw.Flush()
			nw.lastFlush = t
		}
		nw.ix.UpdateEdge(e, nw.sim.ActivateNoReinforce(e, t))
		nw.addPending(e)
	case ANCF:
		nw.sim.ActivateNoReinforce(e, t)
		nw.addPending(e)
	}
	nw.afterRepair()
	return nil
}

// Activation is one timestamped edge activation — the unit of batched
// ingest.
type Activation struct {
	Edge graph.EdgeID
	T    float64
}

// ActivateBatch feeds a batch of activations through the batched ingest
// pipeline — the per-minute batch processing of Exp 6 (Figure 9). The
// whole batch is validated up front (edges in range, timestamps finite,
// non-decreasing, and not before the current time); an invalid batch is
// rejected as a unit with no state touched. Compared with a loop over
// Activate, the batch path advances the decay clock once per distinct
// timestamp, coalesces repeated activations of the same edge into one
// σ-maintenance pass and one index update per distinct edge, and defers
// the rescale check to batch end. The anchored similarity and activeness
// arithmetic is per-impact identical to Activate's, so batched and per-op
// ingest of the same stream produce the same clusterings and byte-identical
// snapshots. ANCOR reinforcement fires at the same interval boundaries as
// the per-op path and once more at batch end.
func (nw *Network) ActivateBatch(batch []Activation) error {
	return nw.ActivateBatchTraced(batch, trace.SpanHandle{})
}

// ActivateBatchTraced is ActivateBatch carrying the request's span: each
// settle's pyramid index update is recorded as a "pyramid.repair" child
// and the end-of-batch analytics invalidation as "core.invalidate". A
// zero handle (the ActivateBatch path) makes every span call a no-op, so
// the untraced pipeline is unchanged. The clock stays untouched here —
// span timing happens inside the trace package, keeping this package
// deterministic.
func (nw *Network) ActivateBatchTraced(batch []Activation, sp trace.SpanHandle) error {
	if len(batch) == 0 {
		return nil
	}
	prev := nw.clock.Now()
	for i, a := range batch {
		if a.Edge < 0 || int(a.Edge) >= nw.g.M() {
			return fmt.Errorf("core: batch[%d]: edge %d out of range [0, %d)", i, a.Edge, nw.g.M())
		}
		if math.IsNaN(a.T) || math.IsInf(a.T, 0) {
			return fmt.Errorf("core: batch[%d]: non-finite activation timestamp %v", i, a.T)
		}
		if a.T < prev {
			return fmt.Errorf("core: batch[%d]: timestamp %v precedes %v (timestamps must be non-decreasing)", i, a.T, prev)
		}
		prev = a.T
	}
	for _, a := range batch {
		if a.T > nw.clock.Now() {
			nw.clock.Advance(a.T)
		}
		if nw.opts.Method == ANCOR && a.T >= nw.lastFlush+nw.opts.ReinforceInterval {
			// Interval boundary mid-batch: settle deferred σ maintenance so
			// reinforcement reads exact similarities, then flush as the
			// per-op path would.
			nw.settleBatch(sp)
			nw.Flush()
			nw.lastFlush = a.T
		}
		nw.sim.BumpNoReinforce(a.Edge)
		nw.markBatch(a.Edge)
		if nw.opts.Method != ANCO {
			nw.addPending(a.Edge)
		}
	}
	nw.settleBatch(sp)
	if nw.opts.Method == ANCOR {
		nw.Flush()
		nw.lastFlush = nw.clock.Now()
	}
	nw.Stats.Activations += int64(len(batch))
	nw.met.activated(len(batch))
	nw.met.batched()
	nw.clock.ActivatedN(len(batch))
	isp := sp.StartChild("core.invalidate")
	nw.afterRepair()
	isp.End()
	return nil
}

// markBatch records e and its endpoints in the batch's dirty sets.
func (nw *Network) markBatch(e graph.EdgeID) {
	if nw.batchEdgeMark == nil {
		nw.batchEdgeMark = make([]bool, nw.g.M())
		nw.batchNodeMark = make([]bool, nw.g.N())
	}
	if !nw.batchEdgeMark[e] {
		nw.batchEdgeMark[e] = true
		nw.batchEdges = append(nw.batchEdges, e)
	}
	u, v := nw.g.Endpoints(e)
	if !nw.batchNodeMark[u] {
		nw.batchNodeMark[u] = true
		nw.batchNodes = append(nw.batchNodes, u)
	}
	if !nw.batchNodeMark[v] {
		nw.batchNodeMark[v] = true
		nw.batchNodes = append(nw.batchNodes, v)
	}
}

// settleBatch applies the deferred per-distinct work of the running batch:
// one σ-numerator fold per dirty edge, one σ/active-count refresh per
// dirty node, and (except for the buffering ANCF) one batched index update
// over the dirty edges' final weights. When the batch is traced, the index
// update — the pyramid repair — is recorded as a child span.
func (nw *Network) settleBatch(sp trace.SpanHandle) {
	if len(nw.batchEdges) == 0 {
		return
	}
	for _, e := range nw.batchEdges {
		nw.sim.RefreshEdgeNum(e)
	}
	for _, x := range nw.batchNodes {
		nw.sim.RefreshNodeSigma(x)
		nw.batchNodeMark[x] = false
	}
	if nw.opts.Method != ANCF {
		nw.batchWeights = nw.batchWeights[:0]
		for _, e := range nw.batchEdges {
			nw.batchWeights = append(nw.batchWeights, nw.sim.Weight(e))
		}
		rsp := sp.StartChild("pyramid.repair")
		nw.ix.UpdateEdges(nw.batchEdges, nw.batchWeights)
		rsp.AnnotateInt("edges", int64(len(nw.batchEdges)))
		rsp.End()
	}
	for _, e := range nw.batchEdges {
		nw.batchEdgeMark[e] = false
	}
	nw.batchEdges = nw.batchEdges[:0]
	nw.batchNodes = nw.batchNodes[:0]
}

// Close stops the index worker pool (when parallel updates are enabled),
// waiting for its goroutines to exit. The network remains usable
// afterwards; updates fall back to the serial path.
func (nw *Network) Close() { nw.ix.Close() }

// ActivatePair is Activate keyed by endpoints; it returns an error when the
// relation graph has no such edge (activations only occur along existing
// edges in an activation network).
func (nw *Network) ActivatePair(u, v graph.NodeID, t float64) error {
	e := nw.g.FindEdge(u, v)
	if e == graph.None {
		return fmt.Errorf("core: no edge (%d, %d) in the relation graph", u, v)
	}
	return nw.Activate(e, t)
}

func (nw *Network) addPending(e graph.EdgeID) {
	if !nw.pendingMark[e] {
		nw.pendingMark[e] = true
		nw.pending = append(nw.pending, e)
	}
}

// Flush applies one local reinforcement pass to every pending trigger edge
// and pushes the resulting weight changes into the index incrementally.
// ANCOR calls it automatically at interval boundaries; it is exported for
// end-of-stream synchronization.
func (nw *Network) Flush() {
	if len(nw.pending) == 0 {
		return
	}
	nw.Stats.Flushes++
	nw.met.flushed()
	nw.flushWeights = nw.flushWeights[:0]
	for _, e := range nw.pending {
		nw.flushWeights = append(nw.flushWeights, nw.sim.Reinforce(e))
		nw.pendingMark[e] = false
	}
	nw.ix.UpdateEdges(nw.pending, nw.flushWeights)
	nw.pending = nw.pending[:0]
}

// Snapshot realizes the ANCF policy at the current time: Rep rounds of
// local reinforcement over the edges activated since the last snapshot
// ("updates the index P for each snapshot of S_t with rep repetitions of
// local reinforcement", Section VI), followed by a full index
// reconstruction — the offline recomputation whose cost Table IV charges
// ANCF. Reinforcement is restricted to the snapshot's trigger edges:
// reinforcing the entire edge set at every snapshot compounds across the
// stream and polarizes S (Attractor-style), washing out the temporal
// signal the activeness carries. For other methods Snapshot is a cheaper
// Flush.
//
// A non-nil error means a reinforced weight left the finite range — the
// repeated reinforcement overflowed the similarity clamp — and the index
// was left untouched; the buffered activations remain pending.
func (nw *Network) Snapshot() error {
	if nw.opts.Method != ANCF {
		nw.Flush()
		nw.afterRepair()
		return nil
	}
	for r := 0; r < nw.opts.Rep; r++ {
		for _, e := range nw.pending {
			nw.sim.Reinforce(e)
		}
	}
	// Validate every reinforced weight before touching the index, so a
	// failed snapshot never applies partially.
	for _, e := range nw.pending {
		if w := nw.sim.Weight(e); math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: snapshot: non-finite weight %v on edge %d after reinforcement", w, e)
		}
	}
	nw.Stats.Reconstructs++
	nw.met.reconstructed()
	for _, e := range nw.pending {
		nw.ix.SetWeight(e, nw.sim.Weight(e))
		nw.pendingMark[e] = false
	}
	nw.pending = nw.pending[:0]
	nw.ix.Reconstruct()
	// The reconstruction rebuilds vote counts wholesale without firing
	// flip events, so the cache cannot invalidate itself level by level —
	// drop everything, and force an evolution diff the same way.
	nw.cache.InvalidateAll()
	if nw.evo != nil {
		nw.evoDirty = true
	}
	nw.afterRepair()
	return nil
}

// afterRepair is the analytics hook at the end of every mutating entry
// point (Activate, ActivateBatch, Snapshot): any activation moves
// relative edge weights, so the cached TieRank eigenvector is dropped
// unconditionally; the evolution tracker diffs only when a vote flip
// touched its level — clusterings are a pure function of vote pass
// states, so no flip means no transition to report. Exclusive-writer
// context, like the cache invalidations it extends.
func (nw *Network) afterRepair() {
	nw.rank.Invalidate()
	if nw.evoDirty {
		nw.evoDirty = false
		nw.evo.Observe(nw.Clusters(nw.evo.Level()), nw.clock.Now())
	}
}

// EnableClusterCache materializes per-level clustering results: Clusters
// and EvenClusters memoize their answer and serve repeats lock-free from
// an atomically swapped snapshot until a net vote-threshold crossing
// invalidates the level (see internal/cluster/cache). The first call pays
// the vote tracker's one-time O(K·L·m) initialization if Watch has not
// already; it returns the cache so facades can probe it before taking
// their locks. Idempotent.
func (nw *Network) EnableClusterCache() *clustercache.Cache {
	if nw.cache != nil {
		return nw.cache
	}
	c := clustercache.New(nw.ix.Levels())
	vt := nw.ix.EnableVoteTracking()
	vt.OnFlip(func(l int, _ graph.EdgeID, _ bool) { c.Invalidate(l) })
	c.Instrument(nw.reg)
	nw.cache = c
	return c
}

// ClusterCache returns the materialized clustering cache, or nil if
// EnableClusterCache was never called. Every cache method is nil-safe.
func (nw *Network) ClusterCache() *clustercache.Cache { return nw.cache }

// EnableAnalytics turns on the live analytics layer (DESIGN.md §16): a
// TieRank snapshot cache invalidated on every ingest, and a
// cluster-evolution tracker diffing the power clustering at the Θ(√n)
// level across pyramid repairs, driven by the same coalesced vote-flip
// notifications as the clustering cache. The current clustering seeds
// the tracker, so enabling emits no event storm. Like
// EnableClusterCache it pays the vote tracker's one-time
// initialization, and it returns the rank cache so facades can probe it
// before taking their locks. Idempotent.
func (nw *Network) EnableAnalytics() *analytics.RankCache {
	if nw.rank != nil {
		return nw.rank
	}
	nw.rank = analytics.NewRankCache()
	level := pyramid.SqrtLevel(nw.g.N())
	if max := nw.ix.Levels(); level > max {
		level = max
	}
	if level < 1 {
		level = 1
	}
	nw.evo = analytics.NewTracker(level, analytics.DefaultTrackerConfig())
	vt := nw.ix.EnableVoteTracking()
	vt.OnFlip(func(l int, _ graph.EdgeID, _ bool) {
		if l == level {
			nw.evoDirty = true
		}
	})
	nw.evo.Seed(nw.Clusters(level))
	nw.rank.Instrument(nw.reg)
	nw.evo.Instrument(nw.reg)
	return nw.rank
}

// RankCache returns the TieRank snapshot cache, or nil if
// EnableAnalytics was never called. Every method on it is nil-safe.
func (nw *Network) RankCache() *analytics.RankCache { return nw.rank }

// EvolutionTracker returns the cluster-evolution tracker, or nil if
// EnableAnalytics was never called. Every method on it is nil-safe.
func (nw *Network) EvolutionTracker() *analytics.Tracker { return nw.evo }

// TieRank returns the current TieRank eigenvector, serving the cached
// snapshot when one is valid (it stays exact between ingests — uniform
// decay cancels under normalization) and otherwise running the power
// iteration over the anchored similarities and publishing the result.
// Works without EnableAnalytics; it just computes every time.
func (nw *Network) TieRank() *analytics.Rank {
	if r, ok := nw.rank.Get(); ok {
		return r
	}
	t := nw.rank.ComputeTimer()
	r := analytics.ComputeRank(nw.g, nw.sim.Anchored, nw.clock.Now(), analytics.DefaultRankConfig())
	t.Stop()
	nw.rank.Store(r)
	return r
}

// EvolutionEvents returns the buffered cluster-evolution events with
// sequence numbers after since, plus the newest sequence number and the
// cumulative ring-overwrite count. Non-draining and idempotent; empty
// until EnableAnalytics.
func (nw *Network) EvolutionEvents(since uint64) ([]analytics.Event, uint64, uint64) {
	return nw.evo.Events(since)
}

// EvolutionDrops returns the cumulative number of evolution events
// overwritten in the ring before being read — the analytics twin of
// WatcherDrops. Zero until EnableAnalytics.
func (nw *Network) EvolutionDrops() uint64 { return nw.evo.DroppedTotal() }

// Clusters reports the power clustering (the paper's DirectedCluster) at
// the given granularity level, served from the materialized cache when it
// is enabled and the level is valid since the last vote flip.
func (nw *Network) Clusters(level int) *cluster.Clustering {
	if cl, ok := nw.cache.Power(level); ok {
		return cl
	}
	cl := cluster.Power(nw.ix, level)
	nw.cache.StorePower(level, cl)
	return cl
}

// EvenClusters reports the even clustering at the given level, cached like
// Clusters.
func (nw *Network) EvenClusters(level int) *cluster.Clustering {
	if cl, ok := nw.cache.Even(level); ok {
		return cl
	}
	cl := cluster.Even(nw.ix, level)
	nw.cache.StoreEven(level, cl)
	return cl
}

// ClustersUncached recomputes the power clustering directly, bypassing the
// materialized cache — the forced-recompute baseline of the equivalence
// tests and the A/B benchmark.
func (nw *Network) ClustersUncached(level int) *cluster.Clustering {
	return cluster.Power(nw.ix, level)
}

// EvenClustersUncached recomputes the even clustering directly, bypassing
// the cache.
func (nw *Network) EvenClustersUncached(level int) *cluster.Clustering {
	return cluster.Even(nw.ix, level)
}

// LocalCluster reports the cluster containing v at the given level in
// output-proportional time (Lemma 9).
func (nw *Network) LocalCluster(v graph.NodeID, level int) []graph.NodeID {
	return cluster.Local(nw.ix, level, v)
}

// View opens a zoomable navigator at the Θ(√n) granularity.
func (nw *Network) View() *cluster.View { return cluster.NewView(nw.ix) }

// ClustersNear reports, among all granularity levels, the power clustering
// whose non-noise cluster count is closest to target — how the experiments
// align our granularities with a baseline's fixed cluster count.
func (nw *Network) ClustersNear(target int) (*cluster.Clustering, int) {
	var best *cluster.Clustering
	bestLevel := 1
	bestGap := int(^uint(0) >> 1)
	for l := 1; l <= nw.ix.Levels(); l++ {
		c := nw.Clusters(l)
		gap := c.SizesAtLeast(3) - target
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			best, bestLevel, bestGap = c, l, gap
		}
	}
	return best, bestLevel
}
