package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
)

// cliquePairGraph: two K6s bridged by one edge.
func cliquePairGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	for base := graph.NodeID(0); base <= 6; base += 6 {
		for u := base; u < base+6; u++ {
			for v := u + 1; v < base+6; v++ {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(5, 6); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func options(m Method) Options {
	o := DefaultOptions()
	o.Method = m
	o.Similarity.Epsilon = 0.2
	o.Similarity.Mu = 3
	o.Seed = 42
	return o
}

func TestNewValidation(t *testing.T) {
	g := cliquePairGraph(t)
	o := options(ANCO)
	o.Lambda = -1
	if _, err := New(g, o); err == nil {
		t.Error("negative lambda accepted")
	}
	o = options(ANCOR)
	o.ReinforceInterval = 0
	if _, err := New(g, o); err == nil {
		t.Error("ANCOR with zero interval accepted")
	}
	o = options(ANCO)
	o.Rep = -1
	if _, err := New(g, o); err == nil {
		t.Error("negative rep accepted")
	}
}

func TestMethodString(t *testing.T) {
	if ANCO.String() != "ANCO" || ANCOR.String() != "ANCOR" || ANCF.String() != "ANCF" {
		t.Fatal("method names wrong")
	}
}

// TestInitializationSeparatesCliques: after rep rounds of reinforcement at
// t=0, the clustering at a suitable level separates the two cliques.
func TestInitializationSeparatesCliques(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := nw.ClustersNear(2)
	if c.Labels[0] == c.Labels[11] {
		t.Fatalf("cliques merged at every granularity: labels=%v", c.Labels)
	}
	// The bridge edge must have much lower similarity than clique edges.
	bridge := g.FindEdge(5, 6)
	intra := g.FindEdge(0, 1)
	if nw.Similarity().Anchored(bridge) >= nw.Similarity().Anchored(intra) {
		t.Fatalf("bridge S=%v not below intra-clique S=%v",
			nw.Similarity().Anchored(bridge), nw.Similarity().Anchored(intra))
	}
}

// TestANCOActivationsKeepIndexValid: the invariant check passes after a
// random online stream.
func TestANCOActivationsKeepIndexValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cliquePairGraph(t)
		o := options(ANCO)
		o.RescaleEvery = 16
		nw, err := New(g, o)
		if err != nil {
			return false
		}
		now := 0.0
		for i := 0; i < 100; i++ {
			now += rng.Float64()
			nw.Activate(graph.EdgeID(rng.Intn(g.M())), now)
		}
		return nw.Index().Validate() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestANCORFlushesAtIntervals: reinforcement passes happen once per
// interval, and the index stays valid.
func TestANCORFlushesAtIntervals(t *testing.T) {
	g := cliquePairGraph(t)
	o := options(ANCOR)
	o.ReinforceInterval = 5
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for ts := 1; ts <= 20; ts++ {
		for i := 0; i < 3; i++ {
			nw.Activate(graph.EdgeID(rng.Intn(g.M())), float64(ts))
		}
	}
	if nw.Stats.Flushes < 3 {
		t.Fatalf("flushes = %d, want >= 3 over 20 timestamps at interval 5", nw.Stats.Flushes)
	}
	if msg := nw.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
	nw.Flush() // manual end-of-stream flush drains pending
	nw.Flush() // second call is a no-op
	if len(nw.pending) != 0 {
		t.Fatal("pending not drained")
	}
}

// TestANCFSnapshotReconstructs: ANCF buffers activations and rebuilds on
// Snapshot; the index reflects the stream only after the snapshot.
func TestANCFSnapshotReconstructs(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCF))
	if err != nil {
		t.Fatal(err)
	}
	bridge := g.FindEdge(5, 6)
	wBefore := nw.Index().Weight(bridge)
	for i := 0; i < 10; i++ {
		nw.Activate(bridge, float64(i+1))
	}
	if nw.Index().Weight(bridge) != wBefore {
		t.Fatal("ANCF updated the index before Snapshot")
	}
	nw.Snapshot()
	if nw.Stats.Reconstructs != 1 {
		t.Fatalf("reconstructs = %d", nw.Stats.Reconstructs)
	}
	if nw.Index().Weight(bridge) >= wBefore {
		t.Fatalf("bridge weight did not drop after activations: %v -> %v",
			wBefore, nw.Index().Weight(bridge))
	}
	if msg := nw.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestActivationsPullNodesTogether: repeatedly activating the bridge makes
// the two cliques merge at a coarse level (the case-study behaviour).
func TestActivationsPullNodesTogether(t *testing.T) {
	g := cliquePairGraph(t)
	o := options(ANCO)
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	bridge := g.FindEdge(5, 6)
	before := nw.Index().Weight(bridge)
	for i := 1; i <= 200; i++ {
		nw.Activate(bridge, float64(i)*0.05)
	}
	// Heavy bridge activity accrues ~200 unit impacts on S(bridge), so its
	// distance weight must collapse by orders of magnitude, while the
	// quiet intra-clique edges only decay (weight grows).
	if after := nw.Index().Weight(bridge); after > before/50 {
		t.Fatalf("bridge weight only %v -> %v; want ≥ 50x drop", before, after)
	}
	if msg := nw.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestActivatePair(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.ActivatePair(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.ActivatePair(0, 7, 2); err == nil {
		t.Fatal("activation on a non-edge accepted")
	}
	if nw.Stats.Activations != 1 {
		t.Fatalf("activations = %d", nw.Stats.Activations)
	}
}

// TestLocalClusterMatchesGlobal: local query equals the even-cluster
// restriction (cross-package integration).
func TestLocalClusterMatchesGlobal(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= nw.Index().Levels(); l++ {
		ec := nw.EvenClusters(l)
		local := nw.LocalCluster(0, l)
		count := 0
		for x := 0; x < g.N(); x++ {
			if ec.Labels[x] == ec.Labels[0] {
				count++
			}
		}
		if len(local) != count {
			t.Fatalf("level %d: local size %d, even size %d", l, len(local), count)
		}
	}
}

// TestViewNavigation: zooming in yields at least as many power clusters.
func TestViewNavigation(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	v := nw.View()
	coarse := v.Clusters().NumClusters()
	for v.ZoomIn() {
	}
	fine := v.Clusters().NumClusters()
	if fine < coarse {
		t.Fatalf("finest level has %d clusters < coarse %d", fine, coarse)
	}
}

// TestDecayDriftsApartWithRescales: long quiet periods with interleaved
// activations elsewhere keep the system numerically sane (no NaN/Inf
// weights) thanks to batched rescale.
func TestDecayDriftsApartWithRescales(t *testing.T) {
	g := cliquePairGraph(t)
	o := options(ANCO)
	o.Lambda = 0.5
	o.RescaleEvery = 8
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e := g.FindEdge(0, 1)
	for i := 1; i <= 500; i++ {
		nw.Activate(e, float64(i))
	}
	for e := 0; e < g.M(); e++ {
		w := nw.Index().Weight(graph.EdgeID(e))
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			t.Fatalf("edge %d weight degenerated: %v", e, w)
		}
	}
	if msg := nw.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestClustersNearPicksClosest: the helper returns the level whose cluster
// count is nearest the target.
func TestClustersNearPicksClosest(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	_, lvl := nw.ClustersNear(1)
	if lvl < 1 || lvl > nw.Index().Levels() {
		t.Fatalf("level %d out of range", lvl)
	}
}
