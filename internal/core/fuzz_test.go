package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"anc/internal/graph"
)

func fuzzSeedSnapshot(f *testing.F) []byte {
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			f.Fatal(err)
		}
	}
	nw, err := New(b.Build(), DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := nw.Activate(graph.EdgeID(i%6), float64(i)); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad feeds mutated and truncated snapshot bytes into Load: the only
// acceptable outcomes are an error or a usable network — never a panic
// and never an absurd allocation (bounds checks keep corrupt headers from
// demanding gigabytes).
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte("junk that is not a snapshot at all"))
	// A legacy (pre-CRC) snapshot: the bare gob payload with a corrupted
	// field, so the fuzzer starts with a foothold in the legacy path too.
	legacy := snapshotV1{Magic: snapshotMagic, Opts: DefaultOptions(), N: 3,
		Edges: [][2]int32{{0, 1}}, S: []float64{1}, Act: []float64{1}}
	var lbuf bytes.Buffer
	if err := gob.NewEncoder(&lbuf).Encode(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add(lbuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		nw, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loaded must be a usable network.
		if nw.Graph().N() == 0 {
			t.Fatal("loaded a network with zero nodes")
		}
		nw.Clusters(1)
		if nw.Graph().M() > 0 {
			if err := nw.Activate(0, nw.Clock().Now()+1); err != nil {
				t.Fatalf("loaded network rejects a valid activation: %v", err)
			}
		}
	})
}
