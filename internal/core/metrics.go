package core

import "anc/internal/obs"

// metrics are the core-layer observability handles. A nil *metrics (the
// default — Instrument never called) disables them; every method is
// nil-safe so the ingest hot path pays one predictable branch and nothing
// else.
type metrics struct {
	activations  *obs.Counter
	batches      *obs.Counter
	flushes      *obs.Counter
	reconstructs *obs.Counter
	watcherDrops *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		activations: reg.Counter("anc_core_activations_total",
			"activations applied to the network"),
		batches: reg.Counter("anc_core_batches_total",
			"ingest batches applied through ActivateBatch"),
		flushes: reg.Counter("anc_core_flushes_total",
			"reinforcement flushes (ANCOR interval boundaries and explicit Flush)"),
		reconstructs: reg.Counter("anc_core_reconstructs_total",
			"full index reconstructions (ANCF snapshots)"),
		watcherDrops: reg.Counter("anc_core_watcher_drops_total",
			"cluster events dropped on watcher buffer overflow"),
	}
}

func (m *metrics) activated(n int) {
	if m == nil {
		return
	}
	m.activations.Add(uint64(n))
}

func (m *metrics) batched() {
	if m == nil {
		return
	}
	m.batches.Inc()
}

func (m *metrics) flushed() {
	if m == nil {
		return
	}
	m.flushes.Inc()
}

func (m *metrics) reconstructed() {
	if m == nil {
		return
	}
	m.reconstructs.Inc()
}

func (m *metrics) watcherDropped() {
	if m == nil {
		return
	}
	m.watcherDrops.Inc()
}

// Instrument attaches the network's metrics to reg under the
// anc_core_* / anc_pyramid_* families (see DESIGN.md §12): activation,
// batch, flush and reconstruct counters here, rescale events on the decay
// clock, watcher overflow drops, and the index's build/update/reconstruct
// timings. A nil registry detaches nothing and costs nothing — the
// handles stay nil and every observation site no-ops. Instrument is
// idempotent: re-instrumenting against the same registry reuses the
// registered families.
func (nw *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	nw.met = newMetrics(reg)
	nw.reg = reg
	nw.clock.SetRescaleCounter(reg.Counter("anc_core_rescales_total",
		"batched rescales folding the global decay factor into anchored state"))
	nw.ix.Instrument(reg)
	nw.cache.Instrument(reg)
	nw.rank.Instrument(reg)
	nw.evo.Instrument(reg)
}

// WatcherDrops returns the cumulative number of cluster events dropped on
// watcher buffer overflow over the network's lifetime — unlike the
// per-Drain count, it is not reset by Drain, so operators can see loss
// without consuming events. Zero when Watch was never called.
func (nw *Network) WatcherDrops() uint64 {
	if nw.watcher == nil {
		return 0
	}
	return nw.watcher.droppedTotal
}
