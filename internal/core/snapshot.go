package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"anc/internal/decay"
	"anc/internal/graph"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

// snapshotV1 is the on-disk representation of a Network. Anchored values
// are saved after a Rescale, so they equal true values at Now and the
// restored clock anchors at Now.
type snapshotV1 struct {
	Magic string
	Opts  Options
	Now   float64
	N     int32
	Edges [][2]int32
	S     []float64
	Act   []float64
	Seeds [][]int32
}

const snapshotMagic = "ANCSNAP1"

// Save serializes the network — graph, options, decayed state and index
// seed sets — so Load can reconstruct an equivalent network. Pending
// reinforcement work is flushed first (Snapshot semantics), and the
// anchored state is rescaled to the current time. The shortest-path
// forests themselves are not stored; Load rebuilds them deterministically
// from the saved seeds and weights, trading O(index build) load time for a
// compact file.
func (nw *Network) Save(w io.Writer) error {
	nw.Snapshot()
	nw.clock.Rescale()
	s, act := nw.sim.ExportState()
	snap := snapshotV1{
		Magic: snapshotMagic,
		Opts:  nw.opts,
		Now:   nw.clock.Now(),
		N:     int32(nw.g.N()),
		S:     s,
		Act:   act,
	}
	for _, e := range nw.g.Edges() {
		snap.Edges = append(snap.Edges, [2]int32{e.U, e.V})
	}
	for _, seeds := range nw.ix.SeedSets() {
		snap.Seeds = append(snap.Seeds, append([]int32(nil), seeds...))
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var snap snapshotV1
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("core: not an ANC snapshot (magic %q)", snap.Magic)
	}
	b := graph.NewBuilder(int(snap.N))
	for _, e := range snap.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("core: corrupt snapshot: %w", err)
		}
	}
	g := b.Build()
	if len(snap.S) != g.M() || len(snap.Act) != g.M() {
		return nil, fmt.Errorf("core: snapshot state size mismatch")
	}
	opts := snap.Opts
	clock := decay.NewClock(opts.Lambda)
	if opts.RescaleEvery > 0 {
		clock.SetRescaleEvery(opts.RescaleEvery)
	}
	sim, err := similarity.New(g, clock, 1, opts.Similarity)
	if err != nil {
		return nil, err
	}
	sim.RestoreState(snap.S, snap.Act)
	clock.RestoreTime(snap.Now, snap.Now)
	seedSets := make([][]graph.NodeID, len(snap.Seeds))
	for i, s := range snap.Seeds {
		seedSets[i] = s
	}
	var ix *pyramid.Index
	if len(seedSets) == 0 {
		// Legacy or hand-built snapshot without seeds: draw fresh ones.
		ix, err = pyramid.Build(g, sim.Weight, opts.Pyramid, rand.New(rand.NewSource(opts.Seed)))
	} else {
		ix, err = pyramid.BuildWithSeeds(g, sim.Weight, opts.Pyramid, seedSets)
	}
	if err != nil {
		return nil, err
	}
	clock.Register(ix)
	return &Network{
		g:           g,
		opts:        opts,
		clock:       clock,
		sim:         sim,
		ix:          ix,
		pendingMark: make([]bool, g.M()),
		lastFlush:   snap.Now,
	}, nil
}
