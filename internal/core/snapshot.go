package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"

	"anc/internal/decay"
	"anc/internal/graph"
	"anc/internal/pyramid"
	"anc/internal/similarity"
)

// snapshotV1 is the on-disk representation of a Network. Anchored values
// are saved after a Rescale, so they equal true values at Now and the
// restored clock anchors at Now.
type snapshotV1 struct {
	Magic string
	Opts  Options
	Now   float64
	N     int32
	Edges [][2]int32
	S     []float64
	Act   []float64
	Seeds [][]int32
}

// Snapshot file layout (version 2):
//
//	8 bytes  fileMagic "ANCSNP2\n"
//	payload  gob(snapshotV1)
//	16 bytes trailer, little-endian:
//	           uint32  format version (snapshotVersion)
//	           uint64  payload byte count
//	           uint32  CRC32C (Castagnoli) of the payload
//
// Load verifies the trailer before the gob decoder ever sees the payload:
// a torn or bit-flipped snapshot is reported as corruption instead of
// being decoded into a silently wrong network. Files without the magic are
// decoded as legacy (pre-CRC) snapshots.
const (
	snapshotMagic   = "ANCSNAP1"
	fileMagic       = "ANCSNP2\n"
	snapshotVersion = 2
	trailerSize     = 4 + 8 + 4

	// maxIsolatedNodes bounds how far a snapshot's node count may exceed
	// what its edge list supports, so a corrupt header cannot demand a
	// multi-gigabyte allocation from a few bytes of input.
	maxIsolatedNodes = 1 << 20
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// Save serializes the network — graph, options, decayed state and index
// seed sets — so Load can reconstruct an equivalent network, then appends
// a version+CRC32C trailer so corruption is detected at load time. Pending
// reinforcement work is flushed first (Snapshot semantics), and the
// anchored state is rescaled to the current time. The shortest-path
// forests themselves are not stored; Load rebuilds them deterministically
// from the saved seeds and weights, trading O(index build) load time for a
// compact file.
func (nw *Network) Save(w io.Writer) error {
	if err := nw.Snapshot(); err != nil {
		return err
	}
	nw.clock.Rescale()
	s, act := nw.sim.ExportState()
	snap := snapshotV1{
		Magic: snapshotMagic,
		Opts:  nw.opts,
		Now:   nw.clock.Now(),
		N:     int32(nw.g.N()),
		S:     s,
		Act:   act,
	}
	for _, e := range nw.g.Edges() {
		snap.Edges = append(snap.Edges, [2]int32{e.U, e.V})
	}
	for _, seeds := range nw.ix.SeedSets() {
		snap.Seeds = append(snap.Seeds, append([]int32(nil), seeds...))
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return err
	}
	if _, err := io.WriteString(w, fileMagic); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint32(trailer[0:4], snapshotVersion)
	binary.LittleEndian.PutUint64(trailer[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(trailer[12:16], crc32.Checksum(payload.Bytes(), snapshotCRC))
	_, err := w.Write(trailer[:])
	return err
}

// Load reconstructs a network saved with Save. The snapshot's CRC trailer
// is verified before decoding, and every decoded field is bounds-checked,
// so a torn, truncated or bit-flipped file yields an error — never a
// panic, an absurd allocation or a silently wrong network. Snapshots from
// before the trailer was introduced load through a legacy path.
func Load(r io.Reader) (*Network, error) {
	head := make([]byte, len(fileMagic))
	n, err := io.ReadFull(r, head)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("core: reading snapshot: %w", err)
	}
	var snap snapshotV1
	if string(head) == fileMagic {
		body, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("core: reading snapshot: %w", err)
		}
		if len(body) < trailerSize {
			return nil, fmt.Errorf("core: snapshot truncated (no trailer)")
		}
		payload, trailer := body[:len(body)-trailerSize], body[len(body)-trailerSize:]
		version := binary.LittleEndian.Uint32(trailer[0:4])
		length := binary.LittleEndian.Uint64(trailer[4:12])
		crc := binary.LittleEndian.Uint32(trailer[12:16])
		if version != snapshotVersion {
			return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
		}
		if length != uint64(len(payload)) {
			return nil, fmt.Errorf("core: snapshot truncated: trailer says %d payload bytes, have %d", length, len(payload))
		}
		if got := crc32.Checksum(payload, snapshotCRC); got != crc {
			return nil, fmt.Errorf("core: snapshot corrupt: CRC mismatch (got %08x, want %08x)", got, crc)
		}
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
			return nil, fmt.Errorf("core: decoding snapshot: %w", err)
		}
	} else {
		// Legacy (pre-CRC) snapshot: the stream starts with gob data.
		dec := gob.NewDecoder(io.MultiReader(bytes.NewReader(head[:n]), r))
		if err := dec.Decode(&snap); err != nil {
			return nil, fmt.Errorf("core: decoding snapshot: %w", err)
		}
	}
	return restore(&snap)
}

// validate bounds-checks every decoded field before any of it is used to
// size an allocation or index a slice.
func (snap *snapshotV1) validate() error {
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("core: not an ANC snapshot (magic %q)", snap.Magic)
	}
	if err := validateOptions(snap.Opts); err != nil {
		return fmt.Errorf("core: corrupt snapshot: %w", err)
	}
	if math.IsNaN(snap.Now) || math.IsInf(snap.Now, 0) || snap.Now < 0 {
		return fmt.Errorf("core: corrupt snapshot: invalid time %v", snap.Now)
	}
	if snap.N < 0 {
		return fmt.Errorf("core: corrupt snapshot: negative node count %d", snap.N)
	}
	if int64(snap.N) > 2*int64(len(snap.Edges))+maxIsolatedNodes {
		return fmt.Errorf("core: corrupt snapshot: implausible node count %d for %d edges", snap.N, len(snap.Edges))
	}
	if len(snap.S) != len(snap.Edges) || len(snap.Act) != len(snap.Edges) {
		return fmt.Errorf("core: snapshot state size mismatch")
	}
	for i, v := range snap.S {
		if !(v > 0) || math.IsInf(v, 1) {
			return fmt.Errorf("core: corrupt snapshot: similarity[%d] = %v", i, v)
		}
	}
	for i, v := range snap.Act {
		if !(v >= 0) || math.IsInf(v, 1) {
			return fmt.Errorf("core: corrupt snapshot: activeness[%d] = %v", i, v)
		}
	}
	for i, set := range snap.Seeds {
		for _, s := range set {
			if s < 0 || s >= snap.N {
				return fmt.Errorf("core: corrupt snapshot: seed %d of set %d outside [0, %d)", s, i, snap.N)
			}
		}
	}
	return nil
}

// restore rebuilds the in-memory network from a decoded snapshot.
func restore(snap *snapshotV1) (*Network, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(int(snap.N))
	for _, e := range snap.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("core: corrupt snapshot: %w", err)
		}
	}
	g := b.Build()
	if len(snap.S) != g.M() || len(snap.Act) != g.M() {
		// Duplicate edges were merged by the builder: the per-edge state
		// no longer lines up.
		return nil, fmt.Errorf("core: snapshot state size mismatch")
	}
	opts := snap.Opts
	clock := decay.NewClock(opts.Lambda)
	if opts.RescaleEvery > 0 {
		clock.SetRescaleEvery(opts.RescaleEvery)
	}
	sim, err := similarity.New(g, clock, 1, opts.Similarity)
	if err != nil {
		return nil, err
	}
	sim.RestoreState(snap.S, snap.Act)
	clock.RestoreTime(snap.Now, snap.Now)
	seedSets := make([][]graph.NodeID, len(snap.Seeds))
	for i, s := range snap.Seeds {
		seedSets[i] = s
	}
	var ix *pyramid.Index
	if len(seedSets) == 0 {
		// Legacy or hand-built snapshot without seeds: draw fresh ones.
		ix, err = pyramid.Build(g, sim.Weight, opts.Pyramid, rand.New(rand.NewSource(opts.Seed)))
	} else {
		ix, err = pyramid.BuildWithSeeds(g, sim.Weight, opts.Pyramid, seedSets)
	}
	if err != nil {
		return nil, err
	}
	clock.Register(ix)
	return &Network{
		g:           g,
		opts:        opts,
		clock:       clock,
		sim:         sim,
		ix:          ix,
		pendingMark: make([]bool, g.M()),
		lastFlush:   snap.Now,
	}, nil
}
