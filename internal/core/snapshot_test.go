package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"anc/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := cliquePairGraph(t)
	o := options(ANCO)
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 1; i <= 200; i++ {
		nw.Activate(graph.EdgeID(rng.Intn(g.M())), float64(i)*0.1)
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph().N() != g.N() || got.Graph().M() != g.M() {
		t.Fatalf("graph size changed: %d/%d", got.Graph().N(), got.Graph().M())
	}
	if got.Clock().Now() != nw.Clock().Now() {
		t.Fatalf("time changed: %v vs %v", got.Clock().Now(), nw.Clock().Now())
	}
	// True similarity and activeness values must survive exactly.
	for e := 0; e < g.M(); e++ {
		a, b := nw.Similarity().At(graph.EdgeID(e)), got.Similarity().At(graph.EdgeID(e))
		if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
			t.Fatalf("S[%d]: %v vs %v", e, a, b)
		}
		aa := nw.Similarity().Activeness().At(graph.EdgeID(e))
		ba := got.Similarity().Activeness().At(graph.EdgeID(e))
		if math.Abs(aa-ba) > 1e-9*math.Max(1, math.Abs(aa)) {
			t.Fatalf("act[%d]: %v vs %v", e, aa, ba)
		}
	}
	// Same seeds + same weights => identical Voronoi partitions, hence
	// identical clusterings at every level.
	for l := 1; l <= nw.Index().Levels(); l++ {
		a := nw.Clusters(l)
		b := got.Clusters(l)
		if len(a.Clusters) != len(b.Clusters) {
			t.Fatalf("level %d: %d vs %d clusters", l, len(a.Clusters), len(b.Clusters))
		}
		for v := 0; v < g.N(); v++ {
			// Labels may be permuted; check co-membership on a sample pair.
			for u := 0; u < v; u++ {
				if (a.Labels[u] == a.Labels[v]) != (b.Labels[u] == b.Labels[v]) {
					t.Fatalf("level %d: co-membership of (%d,%d) changed", l, u, v)
				}
			}
		}
	}
	if msg := got.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestLoadedNetworkKeepsWorking: activations continue seamlessly after a
// round trip.
func TestLoadedNetworkKeepsWorking(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCOR))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		nw.Activate(graph.EdgeID(i%g.M()), float64(i))
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 51; i <= 120; i++ {
		got.Activate(graph.EdgeID(i%g.M()), float64(i))
	}
	got.Flush()
	if msg := got.Index().Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

// TestLoadRejectsCorruption: every single-byte flip and every truncation
// of a valid snapshot must be detected by the CRC trailer (or the frame
// bookkeeping) — a torn or bit-flipped snapshot is never decoded into a
// silently wrong network.
func TestLoadRejectsCorruption(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		nw.Activate(graph.EdgeID(i%g.M()), float64(i))
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Bit flips. Flipping inside the payload or trailer must error;
	// flipping the magic diverts to the legacy gob path, which must also
	// error (the stream is not valid gob), never panic.
	for off := 0; off < len(valid); off++ {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		}
	}
	// Truncations.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := Load(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestLoadRejectsOversizedHeader: a tiny forged snapshot announcing a huge
// node count must be rejected by the bounds checks, not allocated.
func TestLoadRejectsOversizedHeader(t *testing.T) {
	snap := snapshotV1{
		Magic: snapshotMagic,
		Opts:  DefaultOptions(),
		N:     1<<31 - 1,
		Edges: [][2]int32{{0, 1}},
		S:     []float64{1},
		Act:   []float64{1},
	}
	if err := snap.validate(); err == nil {
		t.Fatal("implausible node count accepted")
	}
	snap.N = -5
	if err := snap.validate(); err == nil {
		t.Fatal("negative node count accepted")
	}
}

// TestSaveFlushesPending: an ANCF network with buffered activations saves
// its post-snapshot state.
func TestSaveFlushesPending(t *testing.T) {
	g := cliquePairGraph(t)
	nw, err := New(g, options(ANCF))
	if err != nil {
		t.Fatal(err)
	}
	bridge := g.FindEdge(5, 6)
	for i := 1; i <= 10; i++ {
		nw.Activate(bridge, float64(i))
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded network reflects the snapshotted (reinforced) state.
	if math.Abs(got.Index().Weight(bridge)-nw.Index().Weight(bridge)) > 1e-9 {
		t.Fatalf("bridge weight %v vs %v", got.Index().Weight(bridge), nw.Index().Weight(bridge))
	}
	if len(got.pending) != 0 {
		t.Fatal("loaded network has pending work")
	}
}
