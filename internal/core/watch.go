package core

import (
	"anc/internal/graph"
)

// ClusterEvent reports that a watched node's direct cluster connectivity
// changed at a granularity level: the edge to Other started (Joined) or
// stopped passing the voting threshold. This is the paper's Remarks
// feature (Section V-C): because updates are local and vote counts are
// maintained in real time, changes on user-specified nodes are reported at
// a cost equal to the reporting itself.
type ClusterEvent struct {
	Node   graph.NodeID
	Other  graph.NodeID
	Level  int
	Joined bool
	// Time is the network time when the change was detected.
	Time float64
}

// DefaultEventCap is the default bound on buffered ClusterEvents per
// watcher. A watcher that is never drained stops accumulating at the cap
// and counts the overflow instead of growing without bound.
const DefaultEventCap = 1 << 16

// Watcher delivers ClusterEvents for a set of watched nodes. Obtain one
// with Network.Watch; events are appended during Activate/Flush/Snapshot
// and drained with Drain. At most cap events are buffered; once full,
// newer events are dropped and counted, so a forgotten watcher cannot
// OOM a long-running server.
type Watcher struct {
	nw      *Network
	watched map[graph.NodeID]map[int]bool // node -> levels (nil = all levels)
	events  []ClusterEvent
	cap     int
	dropped uint64 // events discarded since the last Drain
	// droppedTotal accumulates drops over the watcher's lifetime; unlike
	// dropped it is never reset, so loss is visible without draining.
	droppedTotal uint64
}

// Watch enables real-time change reporting and returns the watcher. The
// first call enables vote tracking on the index (a one-time O(K·L·m)
// initialization); subsequent calls return the same watcher.
func (nw *Network) Watch() *Watcher {
	if nw.watcher != nil {
		return nw.watcher
	}
	w := &Watcher{nw: nw, watched: map[graph.NodeID]map[int]bool{}, cap: DefaultEventCap}
	vt := nw.ix.EnableVoteTracking()
	vt.OnFlip(func(l int, e graph.EdgeID, pass bool) {
		u, v := nw.g.Endpoints(e)
		w.emit(u, v, l, pass)
		w.emit(v, u, l, pass)
	})
	nw.watcher = w
	return w
}

// Watcher returns the watcher created by Watch, or nil if Watch was never
// called — a way to inspect watch state without paying the vote-index
// build.
func (nw *Network) Watcher() *Watcher { return nw.watcher }

func (w *Watcher) emit(node, other graph.NodeID, level int, joined bool) {
	levels, ok := w.watched[node]
	if !ok || (levels != nil && !levels[level]) {
		return
	}
	if len(w.events) >= w.cap {
		w.dropped++
		w.droppedTotal++
		w.nw.met.watcherDropped()
		return
	}
	w.events = append(w.events, ClusterEvent{
		Node: node, Other: other, Level: level, Joined: joined,
		Time: w.nw.clock.Now(),
	})
}

// Add watches a node at the given levels; no levels means all levels.
func (w *Watcher) Add(node graph.NodeID, levels ...int) {
	if len(levels) == 0 {
		w.watched[node] = nil
		return
	}
	set := w.watched[node]
	if set == nil {
		set = map[int]bool{}
	}
	for _, l := range levels {
		set[l] = true
	}
	w.watched[node] = set
}

// Remove stops watching a node.
func (w *Watcher) Remove(node graph.NodeID) { delete(w.watched, node) }

// SetEventCap changes the event-buffer bound. n < 1 is clamped to 1;
// events already buffered beyond a lowered cap are kept until drained.
func (w *Watcher) SetEventCap(n int) {
	if n < 1 {
		n = 1
	}
	w.cap = n
}

// Drain returns and clears the accumulated events, together with the
// number of events dropped on buffer overflow since the previous Drain.
func (w *Watcher) Drain() ([]ClusterEvent, uint64) {
	out, d := w.events, w.dropped
	w.events, w.dropped = nil, 0
	return out, d
}

// DroppedTotal returns the cumulative number of events dropped on buffer
// overflow over the watcher's lifetime. It is not reset by Drain.
func (w *Watcher) DroppedTotal() uint64 { return w.droppedTotal }
