package core

import (
	"anc/internal/graph"
)

// ClusterEvent reports that a watched node's direct cluster connectivity
// changed at a granularity level: the edge to Other started (Joined) or
// stopped passing the voting threshold. This is the paper's Remarks
// feature (Section V-C): because updates are local and vote counts are
// maintained in real time, changes on user-specified nodes are reported at
// a cost equal to the reporting itself.
type ClusterEvent struct {
	Node   graph.NodeID
	Other  graph.NodeID
	Level  int
	Joined bool
	// Time is the network time when the change was detected.
	Time float64
}

// Watcher delivers ClusterEvents for a set of watched nodes. Obtain one
// with Network.Watch; events are appended during Activate/Flush/Snapshot
// and drained with Drain.
type Watcher struct {
	nw      *Network
	watched map[graph.NodeID]map[int]bool // node -> levels (nil = all levels)
	events  []ClusterEvent
}

// Watch enables real-time change reporting and returns the watcher. The
// first call enables vote tracking on the index (a one-time O(K·L·m)
// initialization); subsequent calls return the same watcher.
func (nw *Network) Watch() *Watcher {
	if nw.watcher != nil {
		return nw.watcher
	}
	w := &Watcher{nw: nw, watched: map[graph.NodeID]map[int]bool{}}
	vt := nw.ix.EnableVoteTracking()
	vt.OnFlip(func(l int, e graph.EdgeID, pass bool) {
		u, v := nw.g.Endpoints(e)
		w.emit(u, v, l, pass)
		w.emit(v, u, l, pass)
	})
	nw.watcher = w
	return w
}

func (w *Watcher) emit(node, other graph.NodeID, level int, joined bool) {
	levels, ok := w.watched[node]
	if !ok || (levels != nil && !levels[level]) {
		return
	}
	w.events = append(w.events, ClusterEvent{
		Node: node, Other: other, Level: level, Joined: joined,
		Time: w.nw.clock.Now(),
	})
}

// Add watches a node at the given levels; no levels means all levels.
func (w *Watcher) Add(node graph.NodeID, levels ...int) {
	if len(levels) == 0 {
		w.watched[node] = nil
		return
	}
	set := w.watched[node]
	if set == nil {
		set = map[int]bool{}
	}
	for _, l := range levels {
		set[l] = true
	}
	w.watched[node] = set
}

// Remove stops watching a node.
func (w *Watcher) Remove(node graph.NodeID) { delete(w.watched, node) }

// Drain returns and clears the accumulated events.
func (w *Watcher) Drain() []ClusterEvent {
	out := w.events
	w.events = nil
	return out
}
