package core

import (
	"testing"

	"anc/internal/graph"
)

func drainEvents(t *testing.T, w *Watcher) []ClusterEvent {
	t.Helper()
	evs, dropped := w.Drain()
	if dropped != 0 {
		t.Fatalf("unexpected event drops: %d", dropped)
	}
	return evs
}

// watchGraph: two triangles with a bridge; activations on the bridge make
// its endpoints join clusters.
func watchGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestWatcherReportsFlips(t *testing.T) {
	g := watchGraph(t)
	o := options(ANCO)
	o.Similarity.Mu = 2
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	w := nw.Watch()
	w.Add(2) // watch a bridge endpoint at all levels
	bridge := g.FindEdge(2, 3)
	// Drive the bridge weight down hard: at some point its vote at some
	// level must flip, producing at least one event for node 2.
	for i := 1; i <= 400; i++ {
		nw.Activate(bridge, float64(i)*0.02)
	}
	events, _ := w.Drain()
	if len(events) == 0 {
		t.Fatal("no events for watched node despite heavy bridge activity")
	}
	for _, ev := range events {
		if ev.Node != 2 {
			t.Fatalf("event for unwatched node: %+v", ev)
		}
		if ev.Other != 3 && ev.Other != 0 && ev.Other != 1 {
			t.Fatalf("event with non-adjacent other: %+v", ev)
		}
		if ev.Level < 1 || ev.Level > nw.Index().Levels() {
			t.Fatalf("bad level: %+v", ev)
		}
	}
	// Drain clears.
	if evs, _ := w.Drain(); len(evs) != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestWatcherLevelFilter(t *testing.T) {
	g := watchGraph(t)
	o := options(ANCO)
	o.Similarity.Mu = 2
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	w := nw.Watch()
	w.Add(2, 2) // only level 2
	w.Add(3, 2)
	bridge := g.FindEdge(2, 3)
	for i := 1; i <= 400; i++ {
		nw.Activate(bridge, float64(i)*0.02)
	}
	for _, ev := range drainEvents(t, w) {
		if ev.Level != 2 {
			t.Fatalf("event outside watched level: %+v", ev)
		}
	}
}

func TestWatcherRemove(t *testing.T) {
	g := watchGraph(t)
	o := options(ANCO)
	o.Similarity.Mu = 2
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	w := nw.Watch()
	w.Add(2)
	w.Remove(2)
	bridge := g.FindEdge(2, 3)
	for i := 1; i <= 300; i++ {
		nw.Activate(bridge, float64(i)*0.02)
	}
	if evs, _ := w.Drain(); len(evs) != 0 {
		t.Fatalf("events after Remove: %v", evs)
	}
}

func TestWatchIdempotent(t *testing.T) {
	g := watchGraph(t)
	nw, err := New(g, options(ANCO))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Watch() != nw.Watch() {
		t.Fatal("Watch not idempotent")
	}
}

// TestWatcherEventCap: a watcher that is never drained stops buffering at
// its cap and counts the overflow; Drain surfaces and resets the count.
func TestWatcherEventCap(t *testing.T) {
	g := watchGraph(t)
	o := options(ANCO)
	o.Similarity.Mu = 2
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	w := nw.Watch()
	w.SetEventCap(3)
	w.Add(2)
	w.Add(3)
	bridge := g.FindEdge(2, 3)
	for i := 1; i <= 500; i++ {
		nw.Activate(bridge, float64(i)*0.02)
	}
	evs, dropped := w.Drain()
	if len(evs) > 3 {
		t.Fatalf("buffer exceeded cap: %d events", len(evs))
	}
	if len(evs) == 3 && dropped == 0 {
		t.Fatal("full buffer but no drops counted")
	}
	if _, d := w.Drain(); d != 0 {
		t.Fatalf("drop counter not reset by Drain: %d", d)
	}
}

// TestWatcherEventsMatchVotes: every Joined event corresponds to the edge
// currently passing the threshold when it was the last event for that
// (edge, level).
func TestWatcherEventsConsistent(t *testing.T) {
	g := watchGraph(t)
	o := options(ANCO)
	o.Similarity.Mu = 2
	nw, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	w := nw.Watch()
	w.Add(2)
	w.Add(3)
	bridge := g.FindEdge(2, 3)
	for i := 1; i <= 500; i++ {
		nw.Activate(bridge, float64(i)*0.02)
	}
	last := map[[3]int32]bool{} // (node, other, level) -> joined
	for _, ev := range drainEvents(t, w) {
		last[[3]int32{int32(ev.Node), int32(ev.Other), int32(ev.Level)}] = ev.Joined
	}
	min := nw.Index().MinSupport()
	for key, joined := range last {
		e := g.FindEdge(graph.NodeID(key[0]), graph.NodeID(key[1]))
		pass := nw.Index().Votes(e, int(key[2])) >= min
		if pass != joined {
			t.Fatalf("final event state %v disagrees with votes (%v) for %v", joined, pass, key)
		}
	}
}
