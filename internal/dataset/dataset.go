// Package dataset provides named synthetic counterparts of the paper's 17
// real-world datasets (Table I). The originals are SNAP / NetworkRepository
// downloads that are unavailable in this offline reproduction; each
// counterpart is generated with the community generator of package gen,
// calibrated to the original's node count, edge count and domain type, and
// downscaled by a configurable factor so experiments run at laptop scale
// (see DESIGN.md's substitution table). Scaling preserves the *shape* of
// the efficiency experiments — index time/size linear in n (Figs 5–6),
// update-vs-reconstruct gap (Fig 8) — which is what the reproduction
// compares.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"anc/internal/gen"
)

// Spec describes one Table I dataset.
type Spec struct {
	// Name is the paper's short code (CO, FB, …).
	Name string
	// FullName is the paper's dataset name.
	FullName string
	// Type is the domain (social, collaboration, email, product).
	Type string
	// N and M are the original vertex and edge counts.
	N, M int
}

// TableI lists all 17 datasets of the paper, in paper order.
var TableI = []Spec{
	{"CO", "CollegeMsg", "social", 1893, 13835},
	{"FB", "fb-combine", "social", 4039, 88234},
	{"CA", "ca-GrQc", "collaboration", 4158, 13422},
	{"MI", "socfb-MIT", "social", 6402, 251230},
	{"LA", "lasftm-asia", "social", 7624, 27806},
	{"CM", "ca-CondMat", "collaboration", 21363, 91286},
	{"IE", "ia-email-eu", "email", 32430, 54397},
	{"GI", "git-web-ml", "social", 37770, 289003},
	{"EA", "email-EuAll", "email", 224832, 339925},
	{"DB", "dblp", "collaboration", 317080, 1049866},
	{"AM", "amazon", "product", 334863, 925872},
	{"YT", "youtube", "social", 1134890, 2987624},
	{"DB2", "dblp-2020", "collaboration", 2617981, 14796582},
	{"OK", "orkut", "social", 3072441, 117185083},
	{"LJ", "lj", "social", 3997962, 34681189},
	{"TW2", "twitter", "social", 4713138, 17610953},
	{"TW", "twitter-rv", "social", 41652230, 1202513046},
}

// ByName returns the spec with the given short code.
func ByName(name string) (Spec, error) {
	for _, s := range TableI {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Small lists the five small datasets used for the activation-network
// quality experiments (Exp 2 / Figure 4 / Table IV).
func Small() []Spec {
	out := make([]Spec, 0, 5)
	for _, name := range []string{"CO", "FB", "CA", "MI", "LA"} {
		s, _ := ByName(name)
		out = append(out, s)
	}
	return out
}

// Generate produces the synthetic counterpart at the given scale factor
// (1.0 = original size; experiments default far lower, e.g. 0.05). The
// graph carries planted ground-truth communities sized 2√n as in the
// paper's snapshot evaluation. The node count is floored at 64 and the
// average degree of the original is preserved.
func (s Spec) Generate(scale float64, rng *rand.Rand) *gen.Planted {
	n := int(float64(s.N) * scale)
	if n < 64 {
		n = 64
	}
	avgDeg := 2 * float64(s.M) / float64(s.N)
	m := int(avgDeg * float64(n) / 2)
	if m < n {
		m = n
	}
	k := int(2 * math.Sqrt(float64(n)))
	if k < 2 {
		k = 2
	}
	mu := mixingFor(s.Type)
	return gen.Community(n, m, k, mu, rng)
}

// mixingFor maps the domain type to a plausible inter-community mixing
// fraction: collaboration and product networks are strongly modular,
// social networks moderately, email networks weakly.
func mixingFor(typ string) float64 {
	switch typ {
	case "collaboration", "product":
		return 0.10
	case "email":
		return 0.30
	default: // social
		return 0.20
	}
}
