package dataset

import (
	"math"
	"math/rand"
	"testing"

	"anc/internal/graph"
)

func TestTableIComplete(t *testing.T) {
	if len(TableI) != 17 {
		t.Fatalf("TableI has %d datasets, want 17", len(TableI))
	}
	seen := map[string]bool{}
	for _, s := range TableI {
		if seen[s.Name] {
			t.Fatalf("duplicate dataset %s", s.Name)
		}
		seen[s.Name] = true
		if s.N <= 0 || s.M <= 0 || s.Type == "" || s.FullName == "" {
			t.Fatalf("incomplete spec: %+v", s)
		}
	}
	// Spot-check paper numbers.
	co, _ := ByName("CO")
	if co.N != 1893 || co.M != 13835 {
		t.Fatalf("CO spec wrong: %+v", co)
	}
	tw, _ := ByName("TW")
	if tw.N != 41652230 || tw.M != 1202513046 {
		t.Fatalf("TW spec wrong: %+v", tw)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSmallList(t *testing.T) {
	small := Small()
	want := []string{"CO", "FB", "CA", "MI", "LA"}
	if len(small) != len(want) {
		t.Fatalf("small = %v", small)
	}
	for i, s := range small {
		if s.Name != want[i] {
			t.Fatalf("small[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestGeneratePreservesAverageDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, _ := ByName("FB") // 4039 nodes, 88234 edges, avg deg ≈ 43.7
	pl := s.Generate(0.25, rng)
	n := pl.Graph.N()
	wantN := int(0.25 * float64(s.N))
	if n != wantN {
		t.Fatalf("n = %d, want %d", n, wantN)
	}
	avg := 2 * float64(pl.Graph.M()) / float64(n)
	wantAvg := 2 * 88234.0 / 4039
	if math.Abs(avg-wantAvg) > wantAvg*0.3 {
		t.Fatalf("avg degree %v, want ≈ %v", avg, wantAvg)
	}
}

func TestGenerateFloorsTinyScales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, _ := ByName("CO")
	pl := s.Generate(0.0001, rng)
	if pl.Graph.N() < 64 {
		t.Fatalf("n = %d below floor", pl.Graph.N())
	}
}

func TestGenerateCommunityStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := ByName("CA") // collaboration: strongly modular
	pl := s.Generate(0.2, rng)
	intra := 0
	for e := 0; e < pl.Graph.M(); e++ {
		u, v := pl.Graph.Endpoints(graph.EdgeID(e))
		if pl.Truth[u] == pl.Truth[v] {
			intra++
		}
	}
	frac := float64(intra) / float64(pl.Graph.M())
	if frac < 0.7 {
		t.Fatalf("intra fraction %v for collaboration network", frac)
	}
}
