// Package decay implements the time-decay scheme of Section IV-A: the
// activeness of an edge is the sum of exponentially decayed activations,
//
//	a_t(e) = Σ_{(e,t_i): t_i ≤ t} exp(-λ (t - t_i)),
//
// maintained with a single *global decay factor* g(t, t*) = exp(-λ (t - t*))
// so that the per-edge state — the anchored activeness a*_t(e) = a_t(e) /
// g(t, t*) — only changes when that edge is activated (Observation 1,
// Definition 1). A batched rescale periodically folds g into the anchored
// values and advances the anchor time t*, keeping floats in range; its cost
// is amortized over the activations that triggered it (Lemma 1).
package decay

import (
	"fmt"
	"math"

	"anc/internal/obs"
)

// DefaultRescaleEvery is the default number of activations between batched
// rescales of the anchored state.
const DefaultRescaleEvery = 4096

// Clock tracks the global decay state shared by every anchored quantity:
// the decay factor λ, the current time t, and the anchor time t*.
type Clock struct {
	lambda   float64
	now      float64 // current time t
	anchor   float64 // anchor time t*
	pending  int     // activations since last rescale
	every    int     // rescale period in activations (0 disables)
	rescalee []Rescalable
	rescales *obs.Counter // nil-safe; nil when observability is off
}

// Rescalable is implemented by stores of anchored values. OnRescale is
// called with the factor each anchored value must be multiplied by when the
// anchor time advances: g(t, t*) for positively maintainable (PosM)
// quantities, 1/g for negatively maintainable (NegM) ones (Definition 2).
// The callee knows its own polarity; it receives g and applies g or 1/g.
type Rescalable interface {
	OnRescale(g float64)
}

// NewClock returns a clock with decay factor lambda ≥ 0, at time 0.
func NewClock(lambda float64) *Clock {
	if lambda < 0 || math.IsNaN(lambda) {
		panic(fmt.Sprintf("decay: invalid lambda %v", lambda))
	}
	return &Clock{lambda: lambda, every: DefaultRescaleEvery}
}

// SetRescaleEvery sets the batched-rescale period in activations.
// A period of 0 disables automatic rescaling.
func (c *Clock) SetRescaleEvery(every int) { c.every = every }

// Register adds a store of anchored values to be notified on rescale.
func (c *Clock) Register(r Rescalable) { c.rescalee = append(c.rescalee, r) }

// SetRescaleCounter attaches an observability counter bumped on every
// batched rescale (a nil counter detaches; counter methods are nil-safe,
// so Rescale never branches on attachment). Rescale frequency is the
// hidden cost center of tie-decay maintenance — the paper amortizes its
// O(m) fold over the activations that triggered it — so operators watch
// this rate against the ingest rate.
func (c *Clock) SetRescaleCounter(ctr *obs.Counter) { c.rescales = ctr }

// Lambda returns the decay factor λ.
func (c *Clock) Lambda() float64 { return c.lambda }

// Now returns the current time t.
func (c *Clock) Now() float64 { return c.now }

// Anchor returns the anchor time t*.
func (c *Clock) Anchor() float64 { return c.anchor }

// G returns the global decay factor g(t, t*) = exp(-λ (t - t*)).
//
//anclint:hotpath
func (c *Clock) G() float64 { return math.Exp(-c.lambda * (c.now - c.anchor)) }

// Advance moves the current time forward to t. Time never goes backwards;
// Advance panics if t < Now(), since an activation stream is ordered.
func (c *Clock) Advance(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("decay: time moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Activated records that one activation arrived and triggers a batched
// rescale when the period is reached.
func (c *Clock) Activated() { c.ActivatedN(1) }

// ActivatedN records that n activations arrived and triggers a batched
// rescale when the period is reached. Batch ingest calls this once per
// batch, deferring the rescale check to batch end; deferral never changes
// results, only when the (semantically invisible, Lemma 10) refold
// happens.
func (c *Clock) ActivatedN(n int) {
	c.pending += n
	if c.every > 0 && c.pending >= c.every {
		c.Rescale()
	}
}

// RestoreTime sets the clock to a saved (now, anchor) state without
// touching registered stores. It exists for snapshot persistence, where
// anchored values are saved after a Rescale (so anchor == now and the
// stored values are true values); the caller restores those values
// directly and then re-aligns the clock with this method.
func (c *Clock) RestoreTime(now, anchor float64) {
	if anchor > now {
		panic(fmt.Sprintf("decay: anchor %v after now %v", anchor, now))
	}
	c.now = now
	c.anchor = anchor
	c.pending = 0
}

// Rescale folds the current global decay factor into every registered
// anchored store and advances the anchor time to now.
func (c *Clock) Rescale() {
	g := c.G()
	for _, r := range c.rescalee {
		r.OnRescale(g)
	}
	c.anchor = c.now
	c.pending = 0
	c.rescales.Inc()
}

// Activeness stores the anchored activeness a* of every edge and the
// per-node anchored weighted degree Σ_{x∈N(v)} a*(v,x), which the active
// similarity needs as its denominator (Section IV-B). Both are PosM, so a
// rescale multiplies them by g.
type Activeness struct {
	clock *Clock
	edge  []float64 // anchored activeness per edge ID
	node  []float64 // anchored weighted degree per node ID
	ends  func(e int32) (int32, int32)
}

// NewActiveness returns the activeness store for a graph with m edges and
// n nodes. Initial activeness is initial on every edge (the paper's online
// methods start from a_0(e) = 1; pass 0 for a cold start). ends maps an
// edge ID to its endpoints so node sums can be maintained.
func NewActiveness(clock *Clock, n, m int, initial float64, ends func(e int32) (int32, int32)) *Activeness {
	a := &Activeness{
		clock: clock,
		edge:  make([]float64, m),
		node:  make([]float64, n),
		ends:  ends,
	}
	if initial != 0 {
		for i := range a.edge {
			a.edge[i] = initial
		}
		for e := 0; e < m; e++ {
			u, v := ends(int32(e))
			a.node[u] += initial
			a.node[v] += initial
		}
	}
	clock.Register(a)
	return a
}

// OnRescale implements Rescalable: activeness is PosM so anchored values
// absorb ×g.
//
//anclint:hotpath
func (a *Activeness) OnRescale(g float64) {
	for i := range a.edge {
		a.edge[i] *= g
	}
	for i := range a.node {
		a.node[i] *= g
	}
}

// Activate applies the activation (e, t): advances the clock and adds
// 1/g(t, t*) to the anchored activeness of e (Definition 1), keeping the
// node sums in step. O(1) plus the amortized rescale cost.
//
//anclint:hotpath
func (a *Activeness) Activate(e int32, t float64) {
	a.clock.Advance(t)
	a.Bump(e)
	a.clock.Activated()
}

// Bump adds one activation impact 1/g at the clock's *current* time
// without advancing it or counting toward the rescale period. Batch ingest
// uses it to apply many impacts per clock advance: the caller advances the
// clock once per distinct timestamp, Bumps each activation, and settles
// the rescale accounting with Clock.ActivatedN at batch end. The arithmetic
// is identical to Activate's, so per-op and batched ingest produce
// bit-identical anchored state.
//
//anclint:hotpath
func (a *Activeness) Bump(e int32) {
	inc := 1 / a.clock.G()
	a.edge[e] += inc
	u, v := a.ends(e)
	a.node[u] += inc
	a.node[v] += inc
}

// Restore overwrites every anchored edge activeness with the given values
// and recomputes the node sums. Snapshot-persistence hook; values must be
// anchored at the clock's current anchor time.
func (a *Activeness) Restore(values []float64) {
	if len(values) != len(a.edge) {
		panic("decay: Restore length mismatch")
	}
	copy(a.edge, values)
	for i := range a.node {
		a.node[i] = 0
	}
	for e := range a.edge {
		u, v := a.ends(int32(e))
		a.node[u] += a.edge[e]
		a.node[v] += a.edge[e]
	}
}

// Anchored returns the anchored activeness a*_t(e).
//
//anclint:hotpath
func (a *Activeness) Anchored(e int32) float64 { return a.edge[e] }

// At returns the true activeness a_t(e) = a*_t(e) × g(t, t*).
//
//anclint:hotpath
func (a *Activeness) At(e int32) float64 { return a.edge[e] * a.clock.G() }

// NodeAnchored returns the anchored weighted degree Σ_{x∈N(v)} a*_t(v, x).
//
//anclint:hotpath
func (a *Activeness) NodeAnchored(v int32) float64 { return a.node[v] }

// NodeAt returns the true weighted degree at the current time.
//
//anclint:hotpath
func (a *Activeness) NodeAt(v int32) float64 { return a.node[v] * a.clock.G() }

// Clock returns the clock the store is anchored to.
func (a *Activeness) Clock() *Clock { return a.clock }
