package decay

import (
	"testing"
)

// BenchmarkActivateWithRescale measures the amortized per-activation cost
// including periodic batched rescales (Lemma 1's O(1) amortized claim).
func BenchmarkActivateWithRescale(b *testing.B) {
	c := NewClock(0.5)
	c.SetRescaleEvery(DefaultRescaleEvery)
	ends := func(e int32) (int32, int32) { return e % 1000, (e + 1) % 1000 }
	a := NewActiveness(c, 1000, 100000, 1, ends)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Activate(int32(i%100000), float64(i)*1e-4)
	}
}

// BenchmarkRescale measures one full batched rescale over a large store.
func BenchmarkRescale(b *testing.B) {
	c := NewClock(0.5)
	c.SetRescaleEvery(0)
	ends := func(e int32) (int32, int32) { return e % 1000, (e + 1) % 1000 }
	NewActiveness(c, 1000, 1_000_000, 1, ends)
	c.Advance(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Rescale()
	}
}
