package decay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pairEnds gives a tiny 2-node, 1-edge topology.
func pairEnds(e int32) (int32, int32) { return 0, 1 }

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// directActiveness computes a_t(e) from the raw definition (Equation 1).
func directActiveness(lambda float64, times []float64, t float64) float64 {
	sum := 0.0
	for _, ti := range times {
		if ti <= t {
			sum += math.Exp(-lambda * (t - ti))
		}
	}
	return sum
}

// TestPaperExample1 reproduces Example 1: λ=0.1, activations at t=0 and t=2.
func TestPaperExample1(t *testing.T) {
	c := NewClock(0.1)
	a := NewActiveness(c, 2, 1, 0, pairEnds)
	a.Activate(0, 0)
	c.Advance(1)
	if got := a.At(0); !almostEqual(got, math.Exp(-0.1)) {
		t.Fatalf("a_1 = %v, want %v", got, math.Exp(-0.1))
	}
	a.Activate(0, 2)
	want := math.Exp(-0.2) + 1
	if got := a.At(0); !almostEqual(got, want) {
		t.Fatalf("a_2 = %v, want %v", got, want)
	}
}

// TestPaperExample2 reproduces Example 2's anchored bookkeeping, including
// a manual rescale at t=2.
func TestPaperExample2(t *testing.T) {
	c := NewClock(0.1)
	c.SetRescaleEvery(0)
	a := NewActiveness(c, 2, 1, 0, pairEnds)
	a.Activate(0, 0)
	if a.Anchored(0) != 1 {
		t.Fatalf("a*_0 = %v, want 1", a.Anchored(0))
	}
	c.Advance(1)
	if !almostEqual(c.G(), math.Exp(-0.1)) {
		t.Fatalf("g = %v", c.G())
	}
	a.Activate(0, 2)
	// a*_2 = 1 + 1/g(2,0) = 1 + e^{0.2} ≈ 2.221
	if !almostEqual(a.Anchored(0), 1+math.Exp(0.2)) {
		t.Fatalf("a*_2 = %v, want %v", a.Anchored(0), 1+math.Exp(0.2))
	}
	trueBefore := a.At(0)
	c.Rescale()
	if c.Anchor() != 2 {
		t.Fatalf("anchor = %v, want 2", c.Anchor())
	}
	if !almostEqual(a.Anchored(0), trueBefore) {
		t.Fatalf("after rescale anchored = %v, want %v", a.Anchored(0), trueBefore)
	}
	if !almostEqual(a.At(0), trueBefore) {
		t.Fatalf("rescale changed true activeness: %v vs %v", a.At(0), trueBefore)
	}
}

func TestClockValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative lambda accepted")
		}
	}()
	NewClock(-1)
}

func TestTimeBackwardsPanics(t *testing.T) {
	c := NewClock(0.5)
	c.Advance(3)
	defer func() {
		if recover() == nil {
			t.Fatal("time moved backwards without panic")
		}
	}()
	c.Advance(2)
}

func TestZeroLambdaNeverDecays(t *testing.T) {
	c := NewClock(0)
	a := NewActiveness(c, 2, 1, 0, pairEnds)
	a.Activate(0, 1)
	a.Activate(0, 100)
	c.Advance(1e6)
	if got := a.At(0); !almostEqual(got, 2) {
		t.Fatalf("λ=0 activeness = %v, want 2", got)
	}
}

func TestInitialActiveness(t *testing.T) {
	c := NewClock(0.1)
	ends := func(e int32) (int32, int32) { return e, e + 1 } // path 0-1-2
	a := NewActiveness(c, 3, 2, 1, ends)
	if a.At(0) != 1 || a.At(1) != 1 {
		t.Fatal("initial edge activeness wrong")
	}
	if a.NodeAt(1) != 2 || a.NodeAt(0) != 1 {
		t.Fatal("initial node sums wrong")
	}
	c.Advance(5)
	g := math.Exp(-0.5)
	if !almostEqual(a.At(0), g) {
		t.Fatalf("decayed initial = %v, want %v", a.At(0), g)
	}
}

// TestAnchoredMatchesDirect is the core property: for random activation
// streams with interleaved rescales, the maintained activeness equals the
// raw Equation 1 sum at all probe times.
func TestAnchoredMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := rng.Float64() * 0.5
		c := NewClock(lambda)
		c.SetRescaleEvery(1 + rng.Intn(5))
		a := NewActiveness(c, 2, 1, 0, pairEnds)
		var times []float64
		now := 0.0
		for i := 0; i < 50; i++ {
			now += rng.Float64() * 3
			a.Activate(0, now)
			times = append(times, now)
			if rng.Intn(4) == 0 {
				c.Rescale()
			}
			want := directActiveness(lambda, times, now)
			if !almostEqual(a.At(0), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeSumsMatchEdgeSums: node anchored sums always equal the sum of
// incident anchored edge values, under random activations on a small graph.
func TestNodeSumsMatchEdgeSums(t *testing.T) {
	// Triangle: edges 0:(0,1) 1:(0,2) 2:(1,2).
	ends := func(e int32) (int32, int32) {
		switch e {
		case 0:
			return 0, 1
		case 1:
			return 0, 2
		default:
			return 1, 2
		}
	}
	incident := [][]int32{{0, 1}, {0, 2}, {1, 2}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock(0.2)
		c.SetRescaleEvery(3)
		a := NewActiveness(c, 3, 3, 1, ends)
		now := 0.0
		for i := 0; i < 40; i++ {
			now += rng.Float64()
			a.Activate(int32(rng.Intn(3)), now)
			for v := int32(0); v < 3; v++ {
				sum := 0.0
				for _, e := range incident[v] {
					sum += a.Anchored(e)
				}
				if !almostEqual(sum, a.NodeAnchored(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAutomaticRescaleBoundsState: with frequent automatic rescales the
// anchored values stay finite over long streams with strong decay.
func TestAutomaticRescaleBoundsState(t *testing.T) {
	c := NewClock(1.0)
	c.SetRescaleEvery(10)
	a := NewActiveness(c, 2, 1, 0, pairEnds)
	for i := 0; i < 10000; i++ {
		a.Activate(0, float64(i))
	}
	if math.IsInf(a.Anchored(0), 0) || math.IsNaN(a.Anchored(0)) {
		t.Fatalf("anchored state overflowed: %v", a.Anchored(0))
	}
	// Steady state of Σ e^{-k} ≈ 1/(1-e^{-1}) ≈ 1.582.
	want := 1 / (1 - math.Exp(-1))
	if math.Abs(a.At(0)-want) > 1e-6 {
		t.Fatalf("steady-state activeness = %v, want ≈ %v", a.At(0), want)
	}
}

func TestRescaleIsAmortizedNoop(t *testing.T) {
	// Rescaling twice in a row must not change anything.
	c := NewClock(0.3)
	c.SetRescaleEvery(0)
	a := NewActiveness(c, 2, 1, 0, pairEnds)
	a.Activate(0, 1)
	c.Advance(4)
	before := a.At(0)
	c.Rescale()
	c.Rescale()
	if !almostEqual(a.At(0), before) {
		t.Fatalf("double rescale drifted: %v vs %v", a.At(0), before)
	}
}
