package decay

import "testing"

var sinkF float64

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath
// contract (DESIGN.md §14): the per-activation decay kernels — G,
// Bump, Activate (including its amortized Rescale) and the accessors —
// must run allocation-free.
func TestHotPathAllocs(t *testing.T) {
	ends := func(e int32) (int32, int32) { return e % 4, (e + 1) % 4 }
	clock := NewClock(0.1)
	clock.SetRescaleEvery(64) // exercise Rescale inside the measured loop
	a := NewActiveness(clock, 4, 8, 1, ends)
	tick := 0.0
	if n := testing.AllocsPerRun(1000, func() {
		tick += 1e-3
		a.Activate(3, tick)
		a.Bump(5)
		sinkF += a.clock.G() + a.At(3) + a.NodeAt(1) + a.Anchored(5) + a.NodeAnchored(2)
	}); n != 0 {
		t.Errorf("decay kernels: %v allocs/op, want 0", n)
	}
}

// BenchmarkHotPathDecay is run by `make bench-smoke` under -benchmem so
// an allocation sneaking into the activation kernel shows as allocs/op.
func BenchmarkHotPathDecay(b *testing.B) {
	ends := func(e int32) (int32, int32) { return e % 4, (e + 1) % 4 }
	clock := NewClock(0.1)
	clock.SetRescaleEvery(1024)
	a := NewActiveness(clock, 4, 8, 1, ends)
	b.ReportAllocs()
	tick := 0.0
	for i := 0; i < b.N; i++ {
		tick += 1e-4
		a.Activate(int32(i%8), tick)
		sinkF += a.At(int32(i % 8))
	}
}
