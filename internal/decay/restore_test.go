package decay

import (
	"testing"
)

func TestAccessors(t *testing.T) {
	c := NewClock(0.25)
	if c.Lambda() != 0.25 {
		t.Fatalf("Lambda = %v", c.Lambda())
	}
	c.Advance(3)
	if c.Now() != 3 {
		t.Fatalf("Now = %v", c.Now())
	}
	a := NewActiveness(c, 2, 1, 1, func(int32) (int32, int32) { return 0, 1 })
	if a.Clock() != c {
		t.Fatal("Clock accessor wrong")
	}
}

func TestRestoreTime(t *testing.T) {
	c := NewClock(0.1)
	c.RestoreTime(10, 10)
	if c.Now() != 10 || c.Anchor() != 10 {
		t.Fatalf("restore: now=%v anchor=%v", c.Now(), c.Anchor())
	}
	if c.G() != 1 {
		t.Fatalf("g after restore = %v, want 1", c.G())
	}
	// Anchor after now panics.
	defer func() {
		if recover() == nil {
			t.Fatal("anchor > now accepted")
		}
	}()
	c.RestoreTime(5, 8)
}

func TestActivenessRestore(t *testing.T) {
	c := NewClock(0.2)
	ends := func(e int32) (int32, int32) { return e, e + 1 } // path 0-1-2
	a := NewActiveness(c, 3, 2, 1, ends)
	a.Restore([]float64{3, 5})
	if a.Anchored(0) != 3 || a.Anchored(1) != 5 {
		t.Fatalf("edge values wrong: %v %v", a.Anchored(0), a.Anchored(1))
	}
	// Node sums recomputed: node 1 touches both edges.
	if a.NodeAnchored(1) != 8 || a.NodeAnchored(0) != 3 || a.NodeAnchored(2) != 5 {
		t.Fatalf("node sums wrong: %v %v %v", a.NodeAnchored(0), a.NodeAnchored(1), a.NodeAnchored(2))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	a.Restore([]float64{1})
}
