// Package floats provides the epsilon comparisons the floateq analyzer
// (internal/lint/floateq) steers code toward: the numeric kernels carry
// weights through long multiply/rescale chains, so two mathematically
// equal values computed along different paths routinely differ in the
// last ulps, and exact == is almost always a latent bug.
package floats

import "math"

// Eps is the default comparison tolerance: loose enough to absorb a few
// hundred ulps of drift at magnitude 1, tight enough to distinguish any
// genuinely different activation weights.
const Eps = 1e-9

// Eq reports whether a and b are equal within the default tolerance,
// scaled by magnitude: |a-b| <= Eps * max(1, |a|, |b|).
func Eq(a, b float64) bool {
	return Near(a, b, Eps)
}

// Near reports whether a and b are equal within eps, scaled by
// magnitude: |a-b| <= eps * max(1, |a|, |b|). NaN is near nothing,
// including itself; equal infinities are near each other.
func Near(a, b, eps float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities, or infinite vs finite
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= eps*scale
}
