package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.0, 1.0, true},
		{1.0, 1.0 + 1e-12, true},
		{1.0, 1.0 + 1e-6, false},
		{0, 0, true},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{1e12, 1e12 + 1, true}, // relative: 1 part in 1e12
		{1e12, 1.001e12, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNear(t *testing.T) {
	if !Near(1.0, 1.05, 0.1) {
		t.Error("Near(1, 1.05, 0.1) = false, want true")
	}
	if Near(1.0, 1.5, 0.1) {
		t.Error("Near(1, 1.5, 0.1) = true, want false")
	}
}
