package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/quality"
)

func TestPairFromIndexBijective(t *testing.T) {
	idx := int64(0)
	for v := 1; v < 60; v++ {
		for u := 0; u < v; u++ {
			gu, gv := pairFromIndex(idx)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestSamplePairsDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	total := int64(200000)
	p := 0.03
	count := 0
	samplePairs(total, p, rng, func(int64) { count++ })
	want := float64(total) * p
	if math.Abs(float64(count)-want) > want*0.1 {
		t.Fatalf("sampled %d, want ≈ %v", count, want)
	}
	// Degenerate cases.
	samplePairs(0, 0.5, rng, func(int64) { t.Fatal("visited with total 0") })
	samplePairs(100, 0, rng, func(int64) { t.Fatal("visited with p 0") })
	count = 0
	samplePairs(50, 1, rng, func(int64) { count++ })
	if count != 50 {
		t.Fatalf("p=1 visited %d of 50", count)
	}
}

func TestPlantedPartitionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pl := PlantedPartition([]int{30, 30, 30}, 0.5, 0.01, rng)
	if pl.Graph.N() != 90 {
		t.Fatalf("n = %d", pl.Graph.N())
	}
	intra, inter := 0, 0
	for e := 0; e < pl.Graph.M(); e++ {
		u, v := pl.Graph.Endpoints(graph.EdgeID(e))
		if pl.Truth[u] == pl.Truth[v] {
			intra++
		} else {
			inter++
		}
	}
	if intra < inter*5 {
		t.Fatalf("intra=%d inter=%d: community structure too weak", intra, inter)
	}
}

func TestPowerLawSizesSumExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(2000)
		k := 2 + rng.Intn(20)
		sizes := PowerLawSizes(n, k, 3, 2.5, rng)
		sum := 0
		for _, s := range sizes {
			if s < 3 {
				return false
			}
			sum += s
		}
		return sum == n && len(sizes) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 2000, 10000
	pl := Community(n, m, 30, 0.2, rng)
	if pl.Graph.N() != n {
		t.Fatalf("n = %d", pl.Graph.N())
	}
	got := float64(pl.Graph.M())
	if math.Abs(got-float64(m)) > float64(m)*0.25 {
		t.Fatalf("m = %v, want ≈ %d", got, m)
	}
	// The planted structure should be recoverable in principle: most
	// edges intra.
	intra := 0
	for e := 0; e < pl.Graph.M(); e++ {
		u, v := pl.Graph.Endpoints(graph.EdgeID(e))
		if pl.Truth[u] == pl.Truth[v] {
			intra++
		}
	}
	frac := float64(intra) / float64(pl.Graph.M())
	if frac < 0.65 {
		t.Fatalf("intra fraction = %v, want ≈ 0.8", frac)
	}
	if quality.NumClusters(pl.Truth) != 30 {
		t.Fatalf("truth clusters = %d", quality.NumClusters(pl.Truth))
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ErdosRenyi(500, 0.02, rng)
	want := 0.02 * 500 * 499 / 2
	if math.Abs(float64(g.M())-want) > want*0.15 {
		t.Fatalf("m = %d, want ≈ %v", g.M(), want)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := BarabasiAlbert(500, 3, rng)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	// m ≈ 3(n - 4) + 6.
	if g.M() < 3*(500-4) {
		t.Fatalf("m = %d too small", g.M())
	}
	// Power-law-ish: the max degree should far exceed the attach count.
	maxDeg := 0
	for v := 0; v < 500; v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 15 {
		t.Fatalf("max degree %d: no hubs formed", maxDeg)
	}
}

func TestUniformStream(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := ErdosRenyi(100, 0.1, rng)
	stream := UniformStream(g, 10, 0.05, rng)
	per := int(0.05 * float64(g.M()))
	if len(stream) != 10*per {
		t.Fatalf("stream len %d, want %d", len(stream), 10*per)
	}
	// Within a timestamp, edges are distinct; timestamps non-decreasing.
	lastT := 0.0
	seen := map[graph.EdgeID]bool{}
	for _, a := range stream {
		if a.T < lastT {
			t.Fatal("timestamps decrease")
		}
		if a.T > lastT {
			lastT = a.T
			seen = map[graph.EdgeID]bool{}
		}
		if seen[a.Edge] {
			t.Fatalf("edge %d repeated within timestamp %v", a.Edge, a.T)
		}
		seen[a.Edge] = true
	}
}

func TestCommunityBiasedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := Community(300, 1500, 8, 0.2, rng)
	stream := CommunityBiasedStream(pl.Graph, pl.Truth, 20, 0.05, 0.9, rng)
	intra := 0
	for _, a := range stream {
		u, v := pl.Graph.Endpoints(a.Edge)
		if pl.Truth[u] == pl.Truth[v] {
			intra++
		}
	}
	if frac := float64(intra) / float64(len(stream)); frac < 0.8 {
		t.Fatalf("intra activation fraction %v, want ≈ 0.9", frac)
	}
}

func TestDiurnalBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ErdosRenyi(200, 0.05, rng)
	batches := DefaultDiurnal().Generate(g, 1440, rng)
	if len(batches) != 1440 {
		t.Fatalf("batches = %d", len(batches))
	}
	sizes := make([]int, len(batches))
	lastT := -1.0
	for i, b := range batches {
		sizes[i] = len(b)
		if len(b) == 0 {
			t.Fatalf("minute %d empty", i)
		}
		for _, a := range b {
			if a.T < lastT {
				t.Fatal("timestamps decrease across batches")
			}
			lastT = a.T
		}
	}
	// Diurnal shape: the midnight trough is well below the afternoon peak.
	trough := (sizes[0] + sizes[1] + sizes[2]) / 3
	peak := (sizes[720] + sizes[721] + sizes[722]) / 3
	if peak <= trough {
		t.Fatalf("no diurnal shape: trough %d, peak %d", trough, peak)
	}
}

func TestChurnStream(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pl := Community(300, 2000, 8, 0.2, rng)
	stream := ChurnStream(pl.Graph, pl.Truth, 40, 0.05, [2]int32{0, 1}, rng)
	if len(stream) == 0 {
		t.Fatal("empty churn stream")
	}
	// First half: all intra. Second half: a sizeable share of the
	// activations crosses the merge pair.
	cross := func(a Activation) bool {
		u, v := pl.Graph.Endpoints(a.Edge)
		cu, cv := pl.Truth[u], pl.Truth[v]
		return (cu == 0 && cv == 1) || (cu == 1 && cv == 0)
	}
	firstCross, secondCross, secondTotal := 0, 0, 0
	for _, a := range stream {
		if a.T <= 20 {
			if cross(a) {
				firstCross++
			}
		} else {
			secondTotal++
			if cross(a) {
				secondCross++
			}
		}
	}
	if firstCross != 0 {
		t.Fatalf("first half has %d cross activations", firstCross)
	}
	if secondTotal == 0 || float64(secondCross)/float64(secondTotal) < 0.2 {
		t.Fatalf("second half cross share too low: %d/%d", secondCross, secondTotal)
	}
}

func TestMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := ErdosRenyi(100, 0.1, rng)
	base := UniformStream(g, 10, 0.1, rng)
	ops := MixedWorkload(g, base, 0.3, rng)
	if len(ops) != len(base) {
		t.Fatal("length changed")
	}
	q := 0
	for _, op := range ops {
		if op.IsQuery {
			q++
			if int(op.Node) >= g.N() {
				t.Fatal("query node out of range")
			}
		}
	}
	frac := float64(q) / float64(len(ops))
	if math.Abs(frac-0.3) > 0.1 {
		t.Fatalf("query fraction %v, want ≈ 0.3", frac)
	}
}
