// Package gen provides the synthetic workload generators of the
// experiments: community-structured relation graphs (planted partition
// with power-law community sizes, Erdős–Rényi, Barabási–Albert) and
// activation streams (uniform, community-biased, bursty diurnal, and mixed
// update/query workloads). Every generator takes an explicit *rand.Rand so
// experiments are reproducible.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"anc/internal/graph"
)

// Planted holds a generated graph together with its planted ground truth.
type Planted struct {
	Graph *graph.Graph
	// Truth is the planted community of every node.
	Truth []int32
}

// PlantedPartition generates a graph with the given community sizes: node
// pairs inside a community are edges with probability pIn, across
// communities with pOut. Sparse sampling uses geometric skipping, so the
// cost is proportional to the number of edges, not n².
func PlantedPartition(sizes []int, pIn, pOut float64, rng *rand.Rand) *Planted {
	n := 0
	for _, s := range sizes {
		n += s
	}
	truth := make([]int32, n)
	starts := make([]int, len(sizes))
	{
		at := 0
		for c, s := range sizes {
			starts[c] = at
			for i := 0; i < s; i++ {
				truth[at+i] = int32(c)
			}
			at += s
		}
	}
	b := graph.NewBuilder(n)
	// Intra-community edges.
	for c, s := range sizes {
		base := starts[c]
		samplePairs(int64(s)*int64(s-1)/2, pIn, rng, func(idx int64) {
			u, v := pairFromIndex(idx)
			b.AddEdge(graph.NodeID(base+u), graph.NodeID(base+v))
		})
	}
	// Inter-community edges: sample over the full upper triangle and keep
	// only cross pairs (acceptable since pOut is small).
	samplePairs(int64(n)*int64(n-1)/2, pOut, rng, func(idx int64) {
		u, v := pairFromIndex(idx)
		if truth[u] != truth[v] {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	})
	return &Planted{Graph: b.Build(), Truth: truth}
}

// samplePairs visits each index in [0, total) independently with
// probability p, using geometric skips.
func samplePairs(total int64, p float64, rng *rand.Rand, visit func(idx int64)) {
	if p <= 0 || total <= 0 {
		return
	}
	if p >= 1 {
		for i := int64(0); i < total; i++ {
			visit(i)
		}
		return
	}
	logq := math.Log(1 - p)
	i := int64(0)
	for {
		skip := int64(math.Log(1-rng.Float64()) / logq)
		i += skip
		if i >= total {
			return
		}
		visit(i)
		i++
	}
}

// pairFromIndex maps a linear index over the strict upper triangle to a
// pair (u, v) with u < v, enumerating v = 1, 2, … and u < v.
func pairFromIndex(idx int64) (int, int) {
	// idx = v(v-1)/2 + u. Solve v = floor((1+sqrt(1+8idx))/2).
	v := int64((1 + math.Sqrt(float64(1+8*idx))) / 2)
	for v*(v-1)/2 > idx {
		v--
	}
	for (v+1)*v/2 <= idx {
		v++
	}
	u := idx - v*(v-1)/2
	return int(u), int(v)
}

// PowerLawSizes draws k community sizes from a truncated power law with
// exponent gamma over [minSize, maxSize], scaled to sum to n exactly.
func PowerLawSizes(n, k, minSize int, gamma float64, rng *rand.Rand) []int {
	if k < 1 {
		k = 1
	}
	raw := make([]float64, k)
	sum := 0.0
	for i := range raw {
		u := rng.Float64()
		raw[i] = math.Pow(u, -1/(gamma-1)) // Pareto ≥ 1
		sum += raw[i]
	}
	sizes := make([]int, k)
	used := 0
	for i := range raw {
		sizes[i] = minSize + int(raw[i]/sum*float64(n-k*minSize))
		used += sizes[i]
	}
	// Distribute the rounding remainder.
	for i := 0; used < n; i = (i + 1) % k {
		sizes[i]++
		used++
	}
	for i := 0; used > n; i = (i + 1) % k {
		if sizes[i] > minSize {
			sizes[i]--
			used--
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// Community generates an LFR-lite community graph: k power-law-sized
// communities over n nodes, calibrated so the expected edge count is
// roughly m with mixing fraction mu of inter-community edges.
func Community(n, m, k int, mu float64, rng *rand.Rand) *Planted {
	if k < 1 {
		k = 1
	}
	sizes := PowerLawSizes(n, k, 3, 2.5, rng)
	intraPairs := int64(0)
	for _, s := range sizes {
		intraPairs += int64(s) * int64(s-1) / 2
	}
	totalPairs := int64(n) * int64(n-1) / 2
	interPairs := totalPairs - intraPairs
	wantIntra := float64(m) * (1 - mu)
	wantInter := float64(m) * mu
	// Dense small communities may not have enough intra pairs to absorb
	// the target; route the overflow into inter-community edges so the
	// total edge count stays calibrated.
	if wantIntra > float64(intraPairs) {
		wantInter += wantIntra - float64(intraPairs)
		wantIntra = float64(intraPairs)
	}
	pIn := 0.0
	if intraPairs > 0 {
		pIn = wantIntra / float64(intraPairs)
	}
	pOut := 0.0
	if interPairs > 0 {
		pOut = wantInter / float64(interPairs)
	}
	if pIn > 1 {
		pIn = 1
	}
	if pOut > 1 {
		pOut = 1
	}
	// PlantedPartition samples pOut over all pairs and filters, so rescale
	// to keep the expected inter count.
	pOutAll := pOut * float64(interPairs) / float64(totalPairs)
	return PlantedPartition(sizes, pIn, pOutAll, rng)
}

// ErdosRenyi generates G(n, p) with geometric skipping.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	samplePairs(int64(n)*int64(n-1)/2, p, rng, func(idx int64) {
		u, v := pairFromIndex(idx)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	})
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches to degree attachments sampled proportionally to degree.
func BarabasiAlbert(n, attach int, rng *rand.Rand) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	b := graph.NewBuilder(n)
	// Repeated-endpoint list for preferential sampling.
	var targets []graph.NodeID
	start := attach + 1
	if start > n {
		start = n
	}
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			targets = append(targets, graph.NodeID(u), graph.NodeID(v))
		}
	}
	for v := start; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < attach {
			t := targets[rng.Intn(len(targets))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			b.AddEdge(graph.NodeID(v), t)
			targets = append(targets, graph.NodeID(v), t)
		}
	}
	return b.Build()
}
