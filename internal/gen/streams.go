package gen

import (
	"math"
	"math/rand"

	"anc/internal/graph"
)

// Activation is one stream element: edge e activated at time T.
type Activation struct {
	Edge graph.EdgeID
	T    float64
}

// UniformStream generates the Exp 2 workload: timestamps 1..steps, each
// activating frac·m randomly chosen edges (with replacement across steps,
// without within a step).
func UniformStream(g *graph.Graph, steps int, frac float64, rng *rand.Rand) []Activation {
	m := g.M()
	per := int(frac * float64(m))
	if per < 1 {
		per = 1
	}
	var out []Activation
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for ts := 1; ts <= steps; ts++ {
		// Partial shuffle picks `per` distinct edges.
		for i := 0; i < per; i++ {
			j := i + rng.Intn(m-i)
			perm[i], perm[j] = perm[j], perm[i]
			out = append(out, Activation{Edge: graph.EdgeID(perm[i]), T: float64(ts)})
		}
	}
	return out
}

// CommunityBiasedStream is UniformStream with activations drawn mostly
// from intra-community edges (probability bias), modeling users who
// interact mainly inside their community — the regime where clustering
// quality over time is meaningful.
func CommunityBiasedStream(g *graph.Graph, truth []int32, steps int, frac, bias float64, rng *rand.Rand) []Activation {
	var intra, inter []graph.EdgeID
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if truth[u] == truth[v] {
			intra = append(intra, graph.EdgeID(e))
		} else {
			inter = append(inter, graph.EdgeID(e))
		}
	}
	per := int(frac * float64(g.M()))
	if per < 1 {
		per = 1
	}
	var out []Activation
	for ts := 1; ts <= steps; ts++ {
		for i := 0; i < per; i++ {
			pool := intra
			if (rng.Float64() >= bias && len(inter) > 0) || len(intra) == 0 {
				pool = inter
			}
			out = append(out, Activation{Edge: pool[rng.Intn(len(pool))], T: float64(ts)})
		}
	}
	return out
}

// DiurnalBursty generates the Fig 9 workload: minutes per-minute batches
// over a day, with a sinusoidal diurnal base rate and Pareto-distributed
// bursts, as seen in real Twitter activation traces.
type DiurnalBursty struct {
	// BaseRate is the mean activations per minute at the diurnal peak.
	BaseRate float64
	// BurstProb is the per-minute probability of a burst.
	BurstProb float64
	// BurstScale multiplies the rate during a burst (Pareto tail).
	BurstScale float64
	// Hotspot, when > 1, draws edges from a Zipf(s=Hotspot) popularity
	// distribution over a random edge permutation instead of uniformly —
	// the heavy-tailed edge popularity of real activation traces, where a
	// minute of traffic hits the same hot edges repeatedly. 0 (the
	// default) keeps the uniform draw.
	Hotspot float64
}

// DefaultDiurnal mirrors the Figure 9 setup at laptop scale.
func DefaultDiurnal() DiurnalBursty {
	return DiurnalBursty{BaseRate: 200, BurstProb: 0.02, BurstScale: 10}
}

// Generate returns per-minute activation batches for `minutes` minutes.
func (d DiurnalBursty) Generate(g *graph.Graph, minutes int, rng *rand.Rand) [][]Activation {
	out := make([][]Activation, minutes)
	m := g.M()
	// pick draws one edge; the Zipf path is only set up when requested so
	// the uniform stream (and its rng consumption) is unchanged.
	pick := func() graph.EdgeID { return graph.EdgeID(rng.Intn(m)) }
	if d.Hotspot > 1 {
		zipf := rand.NewZipf(rng, d.Hotspot, 1, uint64(m-1))
		perm := rng.Perm(m)
		pick = func() graph.EdgeID { return graph.EdgeID(perm[zipf.Uint64()]) }
	}
	for min := 0; min < minutes; min++ {
		phase := 2 * math.Pi * float64(min) / 1440
		rate := d.BaseRate * (0.55 + 0.45*math.Sin(phase-math.Pi/2))
		if rng.Float64() < d.BurstProb {
			// Pareto(α=1.5) burst multiplier, capped.
			mult := math.Pow(1-rng.Float64(), -1/1.5)
			if mult > d.BurstScale {
				mult = d.BurstScale
			}
			rate *= mult
		}
		count := int(rate)
		if count < 1 {
			count = 1
		}
		batch := make([]Activation, count)
		for i := range batch {
			batch[i] = Activation{
				Edge: pick(),
				T:    float64(min) + float64(i)/float64(count+1),
			}
		}
		out[min] = batch
	}
	return out
}

// ChurnStream models community drift: for the first half of the
// timestamps, activations are biased into the planted communities; for the
// second half, the two communities in mergePair interact with each other
// as intensely as internally, pulling them together. It exercises the
// index's ability to track structural change over time.
func ChurnStream(g *graph.Graph, truth []int32, steps int, frac float64, mergePair [2]int32, rng *rand.Rand) []Activation {
	var intra, crossPair []graph.EdgeID
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		cu, cv := truth[u], truth[v]
		if cu == cv {
			intra = append(intra, graph.EdgeID(e))
		}
		if (cu == mergePair[0] && cv == mergePair[1]) || (cu == mergePair[1] && cv == mergePair[0]) {
			crossPair = append(crossPair, graph.EdgeID(e))
		}
	}
	per := int(frac * float64(g.M()))
	if per < 1 {
		per = 1
	}
	var out []Activation
	for ts := 1; ts <= steps; ts++ {
		secondHalf := ts > steps/2
		for i := 0; i < per; i++ {
			pool := intra
			if secondHalf && len(crossPair) > 0 && rng.Intn(2) == 0 {
				pool = crossPair
			}
			if len(pool) == 0 {
				pool = intra
			}
			out = append(out, Activation{Edge: pool[rng.Intn(len(pool))], T: float64(ts)})
		}
	}
	return out
}

// Op is one element of a mixed workload: either an activation or a local
// clustering query at a node.
type Op struct {
	// IsQuery selects between the two variants.
	IsQuery bool
	// Act is valid when !IsQuery.
	Act Activation
	// Node is the query node when IsQuery.
	Node graph.NodeID
}

// MixedWorkload replaces queryFrac of the activations of a base stream
// with local-cluster queries at random nodes — the Figure 10 workload.
func MixedWorkload(g *graph.Graph, base []Activation, queryFrac float64, rng *rand.Rand) []Op {
	out := make([]Op, len(base))
	for i, a := range base {
		if rng.Float64() < queryFrac {
			out[i] = Op{IsQuery: true, Node: graph.NodeID(rng.Intn(g.N()))}
		} else {
			out[i] = Op{Act: a}
		}
	}
	return out
}
