package graph

import "sort"

// Components returns the connected-component label of every node (dense,
// 0-based) and the number of components.
func Components(g *Graph) (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []NodeID
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(x) {
				if labels[h.To] < 0 {
					labels[h.To] = id
					stack = append(stack, h.To)
				}
			}
		}
	}
	return labels, count
}

// Stats summarizes a graph's shape: used by the generator tools and the
// dataset-counterpart validation.
type Stats struct {
	N, M            int
	Components      int
	LargestComp     int
	MinDeg, MaxDeg  int
	AvgDeg          float64
	MedianDeg       int
	Triangles       int64
	GlobalClustCoef float64 // 3·triangles / #wedges
}

// Summarize computes Stats in O(n + m·d) time (triangle listing bounded
// by the arboricity-style merge over sorted adjacency lists).
func Summarize(g *Graph) Stats {
	s := Stats{N: g.N(), M: g.M(), MinDeg: int(^uint(0) >> 1)}
	if g.N() == 0 {
		s.MinDeg = 0
		return s
	}
	labels, count := Components(g)
	s.Components = count
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComp {
			s.LargestComp = sz
		}
	}
	degs := make([]int, g.N())
	var wedges int64
	for v := 0; v < g.N(); v++ {
		d := g.Degree(NodeID(v))
		degs[v] = d
		if d < s.MinDeg {
			s.MinDeg = d
		}
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		wedges += int64(d) * int64(d-1) / 2
	}
	sort.Ints(degs)
	s.MedianDeg = degs[len(degs)/2]
	s.AvgDeg = 2 * float64(g.M()) / float64(g.N())
	// Count each triangle once: for each edge (u, v), common neighbors w
	// with w > v > u contribute a new triangle... simpler: count all
	// (edge, common neighbor) incidences and divide by 3.
	var inc int64
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		g.CommonNeighbors(u, v, func(NodeID, EdgeID, EdgeID) { inc++ })
	}
	s.Triangles = inc / 3
	if wedges > 0 {
		s.GlobalClustCoef = 3 * float64(s.Triangles) / float64(wedges)
	}
	return s
}

// Subgraph extracts the induced subgraph over keep (dense relabeling in
// keep order) and returns it with the old-to-new node mapping. Useful for
// case studies that zoom into a region of a larger network.
func Subgraph(g *Graph, keep []NodeID) (*Graph, map[NodeID]NodeID) {
	remap := make(map[NodeID]NodeID, len(keep))
	for _, v := range keep {
		if _, dup := remap[v]; dup {
			continue
		}
		remap[v] = NodeID(len(remap))
	}
	b := NewBuilder(len(remap))
	for _, v := range keep {
		nv := remap[v]
		for _, h := range g.Neighbors(v) {
			if nu, ok := remap[h.To]; ok && nv < nu {
				b.AddEdge(nv, nu)
			}
		}
	}
	return b.Build(), remap
}
