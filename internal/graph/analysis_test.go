package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	labels, count := Components(g)
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] {
		t.Fatalf("grouping wrong: %v", labels)
	}
	if labels[0] == labels[3] || labels[5] == labels[6] {
		t.Fatalf("separate components merged: %v", labels)
	}
}

func TestSummarizeTriangle(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	s := Summarize(g)
	if s.Triangles != 1 {
		t.Fatalf("triangles = %d, want 1", s.Triangles)
	}
	if s.Components != 1 || s.LargestComp != 4 {
		t.Fatalf("components wrong: %+v", s)
	}
	if s.MinDeg != 1 || s.MaxDeg != 3 {
		t.Fatalf("degree range wrong: %+v", s)
	}
	// Wedges: deg 1,2,2,3 -> 0+1+1+3 = 5; coefficient = 3/5.
	if s.GlobalClustCoef != 0.6 {
		t.Fatalf("clustering coefficient = %v, want 0.6", s.GlobalClustCoef)
	}
}

func TestSummarizeComplete(t *testing.T) {
	b := NewBuilder(5)
	for u := NodeID(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	s := Summarize(b.Build())
	if s.Triangles != 10 { // C(5,3)
		t.Fatalf("triangles = %d, want 10", s.Triangles)
	}
	if s.GlobalClustCoef != 1 {
		t.Fatalf("K5 coefficient = %v", s.GlobalClustCoef)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewBuilder(0).Build())
	if s.N != 0 || s.MinDeg != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSubgraph(t *testing.T) {
	b := NewBuilder(6)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	sub, remap := Subgraph(g, []NodeID{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 { // path 1-2-3 induced
		t.Fatalf("sub n=%d m=%d", sub.N(), sub.M())
	}
	if remap[1] != 0 || remap[2] != 1 || remap[3] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	// Duplicates in keep are ignored.
	sub2, _ := Subgraph(g, []NodeID{0, 0, 1})
	if sub2.N() != 2 || sub2.M() != 1 {
		t.Fatalf("dup keep: n=%d m=%d", sub2.N(), sub2.M())
	}
}

// TestComponentsPartitionProperty: labels form a partition where nodes
// share a label iff connected (checked against union-find).
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		b := NewBuilder(n)
		type edge struct{ u, v NodeID }
		var edges []edge
		for i := 0; i < n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
				edges = append(edges, edge{u, v})
			}
		}
		g := b.Build()
		labels, count := Components(g)
		// Union-find reference.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range edges {
			parent[find(int(e.u))] = find(int(e.v))
		}
		roots := map[int]bool{}
		for v := 0; v < n; v++ {
			roots[find(v)] = true
		}
		if len(roots) != count {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (labels[u] == labels[v]) != (find(u) == find(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
