package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary text input must never panic, and accepted
// inputs must produce an internally consistent graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n\n10 20\n")
	f.Add("0 0\n")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("9223372036854775807 1\n")
	f.Add("-5 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() != len(ids) {
			t.Fatalf("n=%d but %d ids", g.N(), len(ids))
		}
		// Internal consistency: every adjacency entry points back.
		for v := 0; v < g.N(); v++ {
			for _, h := range g.Neighbors(NodeID(v)) {
				if g.Other(h.Edge, NodeID(v)) != h.To {
					t.Fatalf("adjacency/edge mismatch at %d", v)
				}
			}
		}
		// Round trip preserves shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
