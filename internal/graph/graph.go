// Package graph provides the static relation-network representation used by
// every other package in this repository: an undirected, unweighted graph
// with dense node IDs, stable edge IDs, and sorted adjacency lists.
//
// The relation graph of an activation network is assumed to change rarely
// (Section I of the paper); all per-edge dynamic state (activeness,
// similarity) is kept in parallel arrays indexed by edge ID, owned by the
// packages that maintain it.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are dense integers in [0, N()).
type NodeID = int32

// EdgeID identifies an undirected edge; edges are dense integers in [0, M()).
type EdgeID = int32

// None marks an absent node or edge.
const None = int32(-1)

// Half is one direction of an undirected edge as stored in an adjacency list.
type Half struct {
	To   NodeID // the neighbor
	Edge EdgeID // stable ID of the undirected edge
}

// Graph is an immutable undirected graph in compressed-sparse-row form.
// Neighbor lists are sorted by neighbor ID, enabling linear-time
// intersection of two neighborhoods (used heavily by the similarity layer).
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []Half  // len 2m
	srcs    []NodeID
	dsts    []NodeID // endpoints by edge ID, srcs[e] < dsts[e]
}

// Edge is an undirected edge given by its two endpoints.
type Edge struct {
	U, V NodeID
}

// Builder accumulates edges and produces an immutable Graph.
// Self-loops are rejected; duplicate edges are merged (first wins).
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n)}
}

// AddEdge records the undirected edge (u, v). It returns an error if either
// endpoint is out of range or u == v.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
	return nil
}

// Build finalizes the builder into an immutable Graph. Duplicate edges are
// collapsed to a single edge.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq

	n := int(b.n)
	m := len(b.edges)
	g := &Graph{
		offsets: make([]int32, n+1),
		adj:     make([]Half, 2*m),
		srcs:    make([]NodeID, m),
		dsts:    make([]NodeID, m),
	}
	deg := make([]int32, n)
	for i, e := range b.edges {
		g.srcs[i] = e.U
		g.dsts[i] = e.V
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for i, e := range b.edges {
		g.adj[cursor[e.U]] = Half{To: e.V, Edge: EdgeID(i)}
		cursor[e.U]++
		g.adj[cursor[e.V]] = Half{To: e.U, Edge: EdgeID(i)}
		cursor[e.V]++
	}
	// Edges were added in sorted (U,V) order so each adjacency list is
	// already sorted by neighbor ID: for list of node w, entries with
	// To < w come from edges (To, w) sorted by To, then entries with
	// To > w come from edges (w, To) sorted by To.
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.srcs) }

// Degree returns the degree of node v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v, sorted by neighbor ID.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []Half {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Endpoints returns the two endpoints of edge e, with U < V.
func (g *Graph) Endpoints(e EdgeID) (u, v NodeID) {
	return g.srcs[e], g.dsts[e]
}

// Other returns the endpoint of e that is not x.
func (g *Graph) Other(e EdgeID, x NodeID) NodeID {
	if g.srcs[e] == x {
		return g.dsts[e]
	}
	return g.srcs[e]
}

// FindEdge returns the edge ID of (u, v), or None if absent.
// It binary-searches the shorter adjacency list: O(log min(deg u, deg v)).
func (g *Graph) FindEdge(u, v NodeID) EdgeID {
	if u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() {
		return None
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i].To >= v })
	if i < len(list) && list[i].To == v {
		return list[i].Edge
	}
	return None
}

// CommonNeighbors calls fn(w, eu, ev) for every common neighbor w of u and v,
// where eu = edge (u,w) and ev = edge (v,w). Runs in O(deg u + deg v).
func (g *Graph) CommonNeighbors(u, v NodeID, fn func(w NodeID, eu, ev EdgeID)) {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].To < b[j].To:
			i++
		case a[i].To > b[j].To:
			j++
		default:
			fn(a[i].To, a[i].Edge, b[j].Edge)
			i++
			j++
		}
	}
}

// ExclusiveNeighbors calls fn(w, e) for every neighbor w of u that is not a
// neighbor of v and is not v itself, where e = edge (u,w).
func (g *Graph) ExclusiveNeighbors(u, v NodeID, fn func(w NodeID, e EdgeID)) {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j].To < a[i].To {
			j++
		}
		if (j >= len(b) || b[j].To != a[i].To) && a[i].To != v {
			fn(a[i].To, a[i].Edge)
		}
		i++
	}
}

// Edges returns a fresh slice of all edges ordered by edge ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, g.M())
	for i := range out {
		out[i] = Edge{g.srcs[i], g.dsts[i]}
	}
	return out
}

// DegreeRank returns all nodes sorted by decreasing degree, ties broken by
// increasing node ID — the search order of power clustering (Section V-B).
func (g *Graph) DegreeRank() []NodeID {
	order := make([]NodeID, g.N())
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		du, dv := g.Degree(order[i]), g.Degree(order[j])
		if du != dv {
			return du > dv
		}
		return order[i] < order[j]
	})
	return order
}
