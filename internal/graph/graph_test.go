package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// k4 builds the complete graph on 4 nodes.
func k4(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for u := NodeID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func TestBuildBasic(t *testing.T) {
	g := k4(t)
	if g.N() != 4 || g.M() != 6 {
		t.Fatalf("got n=%d m=%d, want 4, 6", g.N(), g.M())
	}
	for v := NodeID(0); v < 4; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("deg(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(-1, 2); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(50)
	for i := 0; i < 300; i++ {
		u, v := NodeID(rng.Intn(50)), NodeID(rng.Intn(50))
		if u != v {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(NodeID(v))
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i].To < ns[j].To }) {
			t.Fatalf("neighbors of %d not sorted: %v", v, ns)
		}
	}
}

func TestEndpointsAndOther(t *testing.T) {
	g := k4(t)
	for e := EdgeID(0); int(e) < g.M(); e++ {
		u, v := g.Endpoints(e)
		if u >= v {
			t.Fatalf("edge %d endpoints not ordered: %d %d", e, u, v)
		}
		if g.Other(e, u) != v || g.Other(e, v) != u {
			t.Fatalf("Other inconsistent for edge %d", e)
		}
	}
}

func TestFindEdge(t *testing.T) {
	b := NewBuilder(5)
	must := func(u, v NodeID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 1)
	must(1, 2)
	must(3, 4)
	g := b.Build()
	if e := g.FindEdge(1, 0); e == None {
		t.Error("FindEdge(1,0) = None, want edge")
	}
	if e := g.FindEdge(0, 2); e != None {
		t.Errorf("FindEdge(0,2) = %d, want None", e)
	}
	if e := g.FindEdge(0, 99); e != None {
		t.Errorf("FindEdge out of range = %d, want None", e)
	}
	// Symmetry.
	if g.FindEdge(3, 4) != g.FindEdge(4, 3) {
		t.Error("FindEdge not symmetric")
	}
}

func TestCommonNeighbors(t *testing.T) {
	// Path 0-1-2 plus triangle 0-2: common neighbors of 0 and 2 is {1}.
	b := NewBuilder(4)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var got []NodeID
	g.CommonNeighbors(0, 2, func(w NodeID, eu, ev EdgeID) {
		got = append(got, w)
		if g.Other(eu, 0) != w || g.Other(ev, 2) != w {
			t.Errorf("edge ids wrong for common neighbor %d", w)
		}
	})
	if !reflect.DeepEqual(got, []NodeID{1}) {
		t.Fatalf("common neighbors = %v, want [1]", got)
	}
}

func TestExclusiveNeighbors(t *testing.T) {
	b := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	// Exclusive neighbors of 0 w.r.t. 1: neighbors of 0 minus neighbors of 1 minus {1} = {3}.
	var got []NodeID
	g.ExclusiveNeighbors(0, 1, func(w NodeID, e EdgeID) { got = append(got, w) })
	if !reflect.DeepEqual(got, []NodeID{3}) {
		t.Fatalf("exclusive = %v, want [3]", got)
	}
	// The other side: neighbors of 1 minus neighbors of 0 minus {0} = {4}.
	got = nil
	g.ExclusiveNeighbors(1, 0, func(w NodeID, e EdgeID) { got = append(got, w) })
	if !reflect.DeepEqual(got, []NodeID{4}) {
		t.Fatalf("exclusive = %v, want [4]", got)
	}
}

// TestNeighborSetProperty cross-checks CommonNeighbors/ExclusiveNeighbors
// against brute-force set computation on random graphs.
func TestNeighborSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			return true
		}
		inV := make(map[NodeID]bool)
		for _, h := range g.Neighbors(v) {
			inV[h.To] = true
		}
		var wantCommon, wantExcl []NodeID
		for _, h := range g.Neighbors(u) {
			if inV[h.To] {
				wantCommon = append(wantCommon, h.To)
			} else if h.To != v {
				wantExcl = append(wantExcl, h.To)
			}
		}
		var gotCommon, gotExcl []NodeID
		g.CommonNeighbors(u, v, func(w NodeID, _, _ EdgeID) { gotCommon = append(gotCommon, w) })
		g.ExclusiveNeighbors(u, v, func(w NodeID, _ EdgeID) { gotExcl = append(gotExcl, w) })
		return reflect.DeepEqual(wantCommon, gotCommon) && reflect.DeepEqual(wantExcl, gotExcl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeRank(t *testing.T) {
	// Star with center 3 plus pendant edge 0-1: deg 3 = 4, deg 0 = 2, rest 1.
	b := NewBuilder(5)
	for _, v := range []NodeID{0, 1, 2, 4} {
		if err := b.AddEdge(3, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	rank := g.DegreeRank()
	if rank[0] != 3 {
		t.Fatalf("rank[0] = %d, want 3", rank[0])
	}
	// Ties (deg 2): nodes 0, 1 in ID order.
	if rank[1] != 0 || rank[2] != 1 {
		t.Fatalf("tie order wrong: %v", rank)
	}
}

func TestReadWriteEdgeListRoundTrip(t *testing.T) {
	in := "# comment\n% other comment\n10 20\n20 30\n\n10 30\n10 10\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.N(), g.M())
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed sizes: %d,%d vs %d,%d", g2.N(), g2.M(), g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestEdgesAccessor(t *testing.T) {
	g := k4(t)
	es := g.Edges()
	if len(es) != 6 {
		t.Fatalf("len = %d", len(es))
	}
	for i, e := range es {
		u, v := g.Endpoints(EdgeID(i))
		if e.U != u || e.V != v {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}
