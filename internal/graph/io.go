package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#' or '%' comments allowed) and returns the graph. Node IDs in the input
// may be arbitrary non-negative integers; they are remapped to a dense
// [0, n) range in first-appearance order. The mapping from original to dense
// IDs is returned so callers can translate queries.
func ReadEdgeList(r io.Reader) (*Graph, map[int64]NodeID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]NodeID)
	var raw []Edge
	intern := func(x int64) NodeID {
		if id, ok := ids[x]; ok {
			return id
		}
		id := NodeID(len(ids))
		ids[x] = id
		return id
	}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' || s[0] == '%' {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: need two fields, got %q", line, s)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if a == b {
			continue // drop self-loops silently, as is conventional for these datasets
		}
		raw = append(raw, Edge{intern(a), intern(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	builder := NewBuilder(len(ids))
	for _, e := range raw {
		if err := builder.AddEdge(e.U, e.V); err != nil {
			return nil, nil, err
		}
	}
	return builder.Build(), ids, nil
}

// WriteEdgeList writes the graph as a "u v" per-line edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
