// Package analysis is a self-contained, stdlib-only workalike of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check with a
// Run function over a type-checked package (a Pass), reporting position-
// tagged Diagnostics. The subset implemented here — Analyzer, Pass,
// Diagnostic, Reportf — matches the upstream API shape so the ANC
// analyzers port to the real framework verbatim if a vendored
// golang.org/x/tools ever becomes available; the module itself stays
// dependency-free by design (see DESIGN.md §9).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //anclint:ignore comments. By convention a short lowercase word.
	Name string
	// Doc is the one-paragraph description: the invariant enforced and
	// why it matters.
	Doc string
	// Run applies the check to a single package and reports findings via
	// pass.Report. The result value is unused by the ANC runner (kept for
	// upstream API compatibility).
	Run func(*Pass) (interface{}, error)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass holds the inputs available to an Analyzer.Run call: one fully
// parsed and type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectOf resolves the types object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// CalleeObject resolves the object called by a call expression — a
// *types.Func for static calls to functions and methods, nil for dynamic
// calls and conversions. Shared by several ANC analyzers.
func (p *Pass) CalleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// IsStdFunc reports whether call statically invokes the package-level
// function pkgPath.name (e.g. "math".Exp, "time".Now).
func (p *Pass) IsStdFunc(call *ast.CallExpr, pkgPath, name string) bool {
	obj := p.CalleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
