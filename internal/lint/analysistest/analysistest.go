// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: a fixture line
// that should be flagged carries a trailing
//
//	// want "regexp"
//
// comment (several regexps for several findings on one line), and the
// test fails on any unmatched expectation or unexpected finding. Fixture
// packages live under <testdata>/src/<name> and may import only the
// standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"anc/internal/lint/analysis"
	"anc/internal/lint/load"
)

// wantRe extracts the quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run applies the analyzer to each fixture package under
// testdata/src/<pkg> and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := l.LoadDir(dir)
		if err != nil {
			t.Errorf("%s: load: %v", name, err)
			continue
		}
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: fixture has type errors: %v", name, e)
		}
		run(t, name, a, pkg)
	}
}

func run(t *testing.T, name string, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, collectWants(t, pkg.Fset, f)...)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: %s failed: %v", name, a.Name, err)
		return
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding at %s: %s", name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no finding at %s:%d matching %q", name, w.file, w.line, w.re)
		}
	}
}

// collectWants parses the // want comments of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			pos := fset.Position(c.Pos())
			ms := wantRe.FindAllStringSubmatch(text, -1)
			if len(ms) == 0 {
				t.Errorf("%s: want comment without a quoted regexp", pos)
				continue
			}
			for _, m := range ms {
				re, err := regexp.Compile(unquote(m[1]))
				if err != nil {
					t.Errorf("%s: bad want regexp: %v", pos, err)
					continue
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// unquote undoes the backslash escapes of a want string (\" and \\).
func unquote(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Fprint is a debugging helper: it renders diagnostics for a fixture the
// way the runner would.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
