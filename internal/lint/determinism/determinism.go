// Package determinism flags nondeterminism sources in the replay-critical
// packages (core, pyramid, cluster, decay, graph).
//
// Snapshot/recovery equivalence (the PR 1 invariant) holds only because
// the in-memory state is a pure function of the activation history: the
// WAL replays the history and must land on the byte-identical network.
// Three things silently break that purity:
//
//   - time.Now() — wall-clock reads differ across runs;
//   - the global math/rand functions — shared, unseeded (or
//     globally-seeded) stream; only explicit rand.New(rand.NewSource(seed))
//     generators are replayable;
//   - map-range iteration feeding ordered output — Go randomizes map
//     iteration order, so any slice appended to, writer written to, or
//     float accumulated into (FP addition is not associative) inside a
//     map-range loop differs from run to run.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags wall-clock reads, global math/rand use and order-
// sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags time.Now, global math/rand and map-range iteration " +
		"feeding ordered output in replay-critical packages; recovery " +
		"equivalence requires replayable execution",
	Run: run,
}

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than draw from the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				checkMapRange(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := pass.CalleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now is wall-clock and breaks replay determinism; thread the network time (decay.Clock.Now) instead")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s draws from the shared stream and breaks replay determinism; use an explicit rand.New(rand.NewSource(seed))",
				fn.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body feeds ordered output:
// appends to a slice declared outside the loop, writes through a writer
// or encoder, or accumulates floats (+=, -=, *=, /=) into storage
// declared outside the loop.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if sink := orderedSink(pass, rng); sink != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is random and this loop %s; collect and sort the keys first, or annotate with //anclint:ignore determinism <reason>",
			sink)
	}
}

func orderedSink(pass *analysis.Pass, rng *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range x.Lhs {
					if isFloat(pass, lhs) && declaredOutside(pass, lhs, rng) {
						sink = "accumulates floats in iteration order (FP addition is not associative)"
						return false
					}
				}
			case token.ASSIGN, token.DEFINE:
				// append to a slice declared outside the loop — except the
				// collect-then-sort idiom (appending only the range key),
				// which is the sanctioned fix for every other finding here.
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(x.Lhs) {
						continue
					}
					if declaredOutside(pass, x.Lhs[i], rng) && !appendsOnlyKey(pass, call, rng) {
						sink = "appends to a slice that outlives the loop"
						return false
					}
				}
			}
		case *ast.CallExpr:
			if isOrderedWrite(pass, x) {
				sink = "writes to an encoder or writer"
				return false
			}
		}
		return true
	})
	return sink
}

// appendsOnlyKey reports whether every appended value is exactly the
// range key variable: `keys = append(keys, k)` is the collect-then-sort
// idiom and deterministic once the caller sorts.
func appendsOnlyKey(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.ObjectOf(keyID)
	if keyObj == nil {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || pass.ObjectOf(id) != keyObj {
			return false
		}
	}
	return len(call.Args) > 1
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOrderedWrite reports whether the call emits bytes in call order:
// fmt.Fprint*/Print*, or a method named Write/WriteString/WriteByte/
// Encode/EncodeValue/Append.
func isOrderedWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := pass.CalleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "EncodeValue", "Append":
			return true
		}
	}
	return false
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the base identifier of e (unwrapping
// index and selector expressions) denotes an object declared outside the
// range statement.
func declaredOutside(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		default:
			return false
		}
	}
}
