package determinism_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata", determinism.Analyzer, "determinism")
}
