// Package droppederr flags discarded errors from Write, Sync, Close and
// Flush calls in the durability-critical code (internal/wal, the durable
// wrapper, the snapshot encoder, and the CLIs that persist state).
//
// A WAL or checkpoint whose Sync error vanishes turns "acknowledged means
// durable" into a silent lie: the caller proceeds as if the bytes were on
// disk. Discarding is either a bare call statement (including under defer
// and go) or a blank assignment of the error result.
//
// One pattern is exempt: cleanup on an error path that is already
// propagating a different error — e.g. f.Close() just before `return err`
// — because reporting the original failure matters more than the
// cleanup's. The exemption triggers when the innermost enclosing block
// also returns or records a non-nil error value.
package droppederr

import (
	"go/ast"
	"go/token"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags dropped errors from durability-relevant methods.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc: "flags discarded errors from Write/Sync/Close/Flush in " +
		"durability code; a dropped Sync error silently voids the " +
		"durability guarantee",
	Run: run,
}

// watched is the set of method/function names whose error results carry
// durability meaning.
var watched = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Sync":        true,
	"Close":       true,
	"Flush":       true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		var blocks []*ast.BlockStmt // enclosing block stack
		var inspect func(n ast.Node) bool
		inspect = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BlockStmt:
				blocks = append(blocks, x)
				for _, s := range x.List {
					ast.Inspect(s, inspect)
				}
				blocks = blocks[:len(blocks)-1]
				return false
			case *ast.ExprStmt:
				if call := watchedCall(pass, x.X); call != nil && !onErrorPath(pass, blocks) {
					report(pass, call)
				}
			case *ast.DeferStmt:
				if call := watchedCall(pass, x.Call); call != nil && !onErrorPath(pass, blocks) {
					report(pass, call)
				}
			case *ast.GoStmt:
				if call := watchedCall(pass, x.Call); call != nil {
					report(pass, call)
				}
			case *ast.AssignStmt:
				// _ = f.Close() or n, _ = w.Write(p): the error position
				// assigned to blank.
				for i, rhs := range x.Rhs {
					call := watchedCall(pass, rhs)
					if call == nil {
						continue
					}
					if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
						// Multi-value: the error is the last result.
						if isBlank(x.Lhs[len(x.Lhs)-1]) && !onErrorPath(pass, blocks) {
							report(pass, call)
						}
					} else if i < len(x.Lhs) && isBlank(x.Lhs[i]) && !onErrorPath(pass, blocks) {
						report(pass, call)
					}
				}
			}
			return true
		}
		ast.Inspect(f, inspect)
	}
	return nil, nil
}

func report(pass *analysis.Pass, call *ast.CallExpr) {
	name := calleeName(call)
	pass.Reportf(call.Pos(),
		"error from %s is discarded; durability promises die silently — handle it or annotate with //anclint:ignore droppederr <reason>",
		name)
}

// watchedCall returns the call if e invokes a watched method/function
// whose (last) result is an error.
func watchedCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if !watched[calleeName(call)] {
		return nil
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return nil
	}
	return call
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// onErrorPath reports whether the innermost enclosing block already
// propagates an error: it contains a return statement carrying a non-nil
// error expression, or an assignment storing into an error-typed
// variable. Cleanup calls on such paths may drop their own error.
func onErrorPath(pass *analysis.Pass, blocks []*ast.BlockStmt) bool {
	if len(blocks) == 0 {
		return false
	}
	block := blocks[len(blocks)-1]
	for _, s := range block.List {
		switch st := s.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if isNil(r) {
					continue
				}
				if t := pass.TypeOf(r); t != nil && isErrorType(t) {
					return true
				}
			}
		case *ast.AssignStmt:
			// Only plain assignment (=) into an existing error variable
			// counts as recording a failure; := defines a fresh one and
			// says nothing about being on an error path.
			if st.Tok != token.ASSIGN {
				continue
			}
			for _, lhs := range st.Lhs {
				if isBlank(lhs) {
					continue
				}
				if t := pass.TypeOf(lhs); t != nil && isErrorType(t) {
					return true
				}
			}
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
