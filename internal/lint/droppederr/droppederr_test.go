package droppederr_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/droppederr"
)

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, "../testdata", droppederr.Analyzer, "droppederr")
}
