// Package floateq flags == and != between floating-point expressions.
//
// The numeric kernels (decay, similarity, cluster, pyramid) carry values
// through long chains of multiplies and rescales; exact float equality
// there is almost always a latent bug — two mathematically equal
// quantities computed along different paths differ in the last ulps. The
// epsilon helpers in internal/floats (floats.Eq, floats.Near) state the
// intended tolerance explicitly. The rare sites where bit-exact equality
// is the intent (change-detection shortcuts) carry an
// //anclint:ignore floateq comment saying so.
//
// Comparisons against the exact literal 0 are allowed: testing "was this
// explicitly zeroed / never set" is well-defined in IEEE 754 and idiomatic
// for sentinel checks.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags float equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between float64 expressions; use the epsilon " +
		"helpers in internal/floats, or annotate bit-exact intent with " +
		"//anclint:ignore floateq <reason>",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, b.X) || !isFloat(pass, b.Y) {
				return true
			}
			// Constant folding: a comparison both sides of which are
			// compile-time constants is exact by construction.
			if isConst(pass, b.X) && isConst(pass, b.Y) {
				return true
			}
			// Exact-zero sentinel checks are allowed.
			if isZeroLit(pass, b.X) || isZeroLit(pass, b.Y) {
				return true
			}
			pass.Reportf(b.OpPos,
				"float equality %s between %s and %s; use floats.Eq/floats.Near (internal/floats) or annotate bit-exact intent",
				b.Op, types.ExprString(b.X), types.ExprString(b.Y))
			return true
		})
	}
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isZeroLit reports whether e is a constant exactly equal to zero.
func isZeroLit(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
