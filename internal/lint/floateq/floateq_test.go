package floateq_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "../testdata", floateq.Analyzer, "floateq")
}
