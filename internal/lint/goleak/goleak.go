// Package goleak requires every go statement to carry provable
// join-or-stop evidence: a goroutine that nothing can stop or wait for
// outlives its owner's Close, and under the ROADMAP's million-user
// traffic "rare leak per reconnect" becomes "unbounded goroutine
// growth". The replication reconnect loop and the serving layer's
// per-connection goroutines are exactly the shapes this guards.
//
// # Evidence
//
// The analyzer resolves the launched body — the function literal, or
// the same-package function/method the go statement calls — and
// searches it (and, transitively, its same-package callees) for any of:
//
//   - a Done() call on a sync.WaitGroup — the owner joins via Wait;
//   - close(ch) of a channel (typically deferred) — a done-channel the
//     owner can receive on;
//   - a channel receive (<-ch, for-range over a channel, a select with
//     a receive case, <-ctx.Done()) — a stop signal or work stream whose
//     close terminates the goroutine;
//   - a loop-free body that sends on a channel — the result-channel
//     pattern, where the send is the join.
//
// A body with none of these — including bodies that cannot be analyzed
// at all, like goroutines running another package's function — is
// flagged. The evidence is heuristic in the permissive direction
// (receiving from a channel nobody closes still leaks), so a pass is
// not a proof; a finding, however, is always a goroutine the owner has
// no handle on, and either needs one or needs an
// //anclint:ignore goleak <reason> stating who stops it.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags go statements without provable join/stop paths.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every go statement needs a provable join or stop path " +
		"(WaitGroup.Done, channel close, stop-channel receive, or a " +
		"loop-free completion send); leaked goroutines outlive Close",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := &goleak{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
					g.decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				g.check(gs)
			}
			return true
		})
	}
	return nil, nil
}

type goleak struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// facts aggregates what an evidence search saw.
type facts struct {
	joined bool // Done / close / receive found
	loops  bool // any for/range loop
	sends  bool // any channel send
}

func (g *goleak) check(gs *ast.GoStmt) {
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn, ok := g.pass.CalleeObject(gs.Call).(*types.Func); ok {
		if fd, ok := g.decls[fn]; ok {
			body = fd.Body
		}
	}
	if body == nil {
		g.pass.Reportf(gs.Pos(),
			"goroutine runs a body this package cannot analyze and has no provable join or stop path; "+
				"annotate with //anclint:ignore goleak <who stops it> if it is joined elsewhere")
		return
	}
	f := facts{}
	g.search(body, &f, map[*types.Func]bool{})
	if f.joined || (!f.loops && f.sends) {
		return
	}
	g.pass.Reportf(gs.Pos(),
		"goroutine has no provable join or stop path (no WaitGroup.Done, channel close, "+
			"channel receive, or loop-free completion send); it outlives Close — "+
			"annotate with //anclint:ignore goleak <who stops it> if it is joined elsewhere")
}

// search accumulates evidence facts from a body and its same-package
// callees (memoized against recursion via seen).
func (g *goleak) search(body ast.Node, f *facts, seen map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if f.joined {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				f.joined = true // a receive: stop signal or closable stream
			}
		case *ast.RangeStmt:
			if t := g.pass.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					f.joined = true // terminates when the channel closes
					return false
				}
			}
			f.loops = true
		case *ast.ForStmt:
			f.loops = true
		case *ast.SendStmt:
			f.sends = true
		case *ast.CallExpr:
			g.searchCall(x, f, seen)
		}
		return true
	})
}

func (g *goleak) searchCall(call *ast.CallExpr, f *facts, seen map[*types.Func]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := g.pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" {
			f.joined = true // a done-channel close the owner receives on
			return
		}
	}
	fn, ok := g.pass.CalleeObject(call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
		f.joined = true // WaitGroup join
		return
	}
	if fn.Pkg() == g.pass.Pkg && !seen[fn] {
		seen[fn] = true
		if fd, ok := g.decls[fn]; ok {
			g.search(fd.Body, f, seen)
		}
	}
}
