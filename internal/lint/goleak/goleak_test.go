package goleak_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/goleak"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "../testdata", goleak.Analyzer, "goleak")
}
