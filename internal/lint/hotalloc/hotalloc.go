// Package hotalloc enforces the //anclint:hotpath annotation: a marked
// function body must not contain constructs that heap-allocate — the
// per-activation and per-frame kernels (metrics handles, frame-header
// packing, decay arithmetic) run millions of times per second, and one
// hidden allocation per call turns into GC pressure that caps ingest
// throughput (ROADMAP item 1 demands allocation-free hot paths).
//
// # What is flagged in a marked body
//
//   - make, new, &T{...}, and slice/map composite literals;
//   - append (growth reallocates; hot kernels use preallocated storage);
//   - function literals (a closure capturing variables allocates);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface conversions — explicit, or implicit at a call whose
//     parameter is an interface (fmt-style ...interface{} included):
//     boxing a non-pointer value escapes it to the heap.
//
// Struct value literals (point{1, 2}) stay on the stack and pass.
//
// The check is syntactic: it cannot see allocations inside callees, and
// it cannot run escape analysis, so the annotation contract has a
// second, dynamic half — every //anclint:hotpath function is listed in
// a hot-path allocation test asserting testing.AllocsPerRun == 0, and
// `make bench-smoke` runs the matching benchmarks under -benchmem
// (DESIGN.md §14). The analyzer keeps the obvious regressions out at
// compile time; the gate proves the property end to end.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"anc/internal/lint/analysis"
)

// Directive marks a function as an allocation-free hot path.
const Directive = "//anclint:hotpath"

// Analyzer flags allocating constructs inside //anclint:hotpath bodies.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //anclint:hotpath must not allocate: no " +
		"make/new/composite-literal escapes, no append, no closures, no " +
		"string building, no interface boxing; backed by the " +
		"AllocsPerRun gate in bench-smoke",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

// marked reports whether the declaration's doc group carries the
// hotpath directive.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, Directive) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"hotpath %s: closure allocates (the captured environment escapes)", name)
			return false // its body is the closure's problem, already flagged
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(),
						"hotpath %s: &composite-literal allocates", name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(),
						"hotpath %s: %s literal allocates", name, kindWord(t))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypeOf(x)) {
				pass.Reportf(x.Pos(),
					"hotpath %s: string concatenation allocates", name)
			}
		case *ast.CallExpr:
			checkCall(pass, name, x)
		}
		return true
	})
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "hotpath %s: %s allocates", name, b.Name())
			case "append":
				pass.Reportf(call.Pos(), "hotpath %s: append may (re)allocate", name)
			}
			return
		}
	}
	// Conversions: T(x) where call.Fun denotes a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := pass.TypeOf(call.Args[0])
		switch {
		case isInterface(target) && !isInterface(src) && !isUntypedNil(src):
			pass.Reportf(call.Pos(),
				"hotpath %s: interface conversion boxes the value onto the heap", name)
		case isString(target) && isByteOrRuneSlice(src),
			isByteOrRuneSlice(target) && isString(src):
			pass.Reportf(call.Pos(),
				"hotpath %s: string conversion copies and allocates", name)
		}
		return
	}
	// Implicit interface boxing at call boundaries.
	sig, ok := typeAsSignature(pass.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := pass.TypeOf(arg)
		if isInterface(pt) && !isInterface(at) && !isUntypedNil(at) && at != nil {
			pass.Reportf(arg.Pos(),
				"hotpath %s: argument boxed into interface parameter (heap escape)", name)
		}
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
