package hotalloc_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc")
}
