// Package load parses and type-checks packages of this module for the
// internal/lint analyzers, using nothing but the standard library: module
// packages are resolved by path prefix against the module root (read from
// go.mod), standard-library imports are type-checked from GOROOT source
// via go/importer's "source" compiler. No go/packages, no export data, no
// network — the loader works in the same hermetic environment as `go
// build`.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("anc", "anc/internal/wal", …). Packages
	// loaded from explicit directories outside the module tree (test
	// fixtures) use their directory-derived name.
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Analyzers still run on
	// packages with type errors, but findings there may be unreliable.
	TypeErrors []error
}

// Loader loads module packages with a shared FileSet and import cache.
type Loader struct {
	Fset       *token.FileSet
	moduleRoot string
	modulePath string

	std  types.ImporterFrom // GOROOT source importer
	pkgs map[string]*entry  // by import path
}

type entry struct {
	pkg      *Package
	err      error
	checking bool // cycle guard
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("load: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       map[string]*entry{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the module's root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Load resolves patterns to packages and type-checks them. Supported
// patterns: "./..." (every package under the module root), a directory
// path ("./internal/wal", absolute paths work too), or a module import
// path ("anc/internal/wal").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := l.walkPackages(l.moduleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			ds, err := l.walkPackages(base)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		default:
			add(l.resolveDir(pat))
		}
	}
	var out []*Package
	for _, d := range dirs {
		p, err := l.LoadDir(d)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) resolveDir(pat string) string {
	if filepath.IsAbs(pat) {
		return pat
	}
	if strings.HasPrefix(pat, "./") || pat == "." {
		abs, _ := filepath.Abs(pat)
		return abs
	}
	// Module import path.
	if pat == l.modulePath {
		return l.moduleRoot
	}
	if rest, ok := strings.CutPrefix(pat, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
	}
	abs, _ := filepath.Abs(pat)
	return abs
}

// walkPackages lists every directory under root holding at least one
// non-test .go file, skipping testdata, hidden and underscore directories.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

type noGoError struct{ dir string }

func (e *noGoError) Error() string { return "load: no buildable Go files in " + e.dir }

func isNoGo(err error) bool {
	if _, ok := err.(*noGoError); ok {
		return true
	}
	_, ok := err.(*build.NoGoError)
	return ok
}

// LoadDir loads and type-checks the package in a single directory. The
// import path is derived from the directory's position under the module
// root; directories outside the module (test fixtures) get their base
// name as path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	return l.loadPath(path, abs)
}

func (l *Loader) importPathFor(dir string) string {
	if dir == l.moduleRoot {
		return l.modulePath
	}
	if rel, err := filepath.Rel(l.moduleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(dir)
}

// loadPath loads the package at dir, caching by import path.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("load: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &entry{checking: true}
	l.pkgs[path] = e
	pkg, err := l.check(path, dir)
	e.pkg, e.err, e.checking = pkg, err, false
	return pkg, err
}

// check parses the directory's buildable non-test files and type-checks
// them, resolving imports through the loader.
func (l *Loader) check(path, dir string) (*Package, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, &noGoError{dir: dir}
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &noGoError{dir: dir}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Info: info}
	conf := types.Config{
		Importer: &moduleImporter{l: l, fromDir: dir},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}

// moduleImporter routes module-internal imports to the loader and
// everything else to the GOROOT source importer.
type moduleImporter struct {
	l       *Loader
	fromDir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.fromDir, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := m.l
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		dir := l.moduleRoot
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			dir = filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
		}
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("load: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
