package load

import (
	"strings"
	"testing"
)

// TestLoadModule type-checks the entire module from source through the
// loader and demands zero type errors — if this fails, every analyzer's
// view of the code is suspect.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
	var sawRoot, sawWAL bool
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
		if p.Types == nil {
			t.Errorf("%s: no type information", p.Path)
		}
		switch p.Path {
		case "anc":
			sawRoot = true
		case "anc/internal/wal":
			sawWAL = true
		}
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("testdata package loaded by ./...: %s", p.Dir)
		}
	}
	if !sawRoot || !sawWAL {
		t.Fatalf("expected anc and anc/internal/wal among loaded packages (root=%v wal=%v)", sawRoot, sawWAL)
	}
}

// TestLoadSingleDir loads one package by directory and by import path.
func TestLoadSingleDir(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(l.ModuleRoot() + "/internal/decay")
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "anc/internal/decay" {
		t.Fatalf("path = %q", p.Path)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	pkgs, err := l.Load("anc/internal/decay")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0] != p {
		t.Fatalf("import-path load did not hit the cache: %+v", pkgs)
	}
}
