// Package lockdiscipline enforces the informal locking contract of the
// concurrency wrappers (ConcurrentNetwork, DurableNetwork): every
// exported method of a struct carrying a `mu` mutex field must take the
// lock before touching the wrapped state, and must never call another
// exported method of the same receiver while holding it — sync.RWMutex is
// not reentrant, so a self-call is a self-deadlock that only fires under
// load.
//
// Concretely, for each struct type T with a field `mu` of type
// sync.Mutex or sync.RWMutex, and each exported pointer-receiver method
// of T whose body reads or writes receiver fields other than mu:
//
//  1. the first statement must be recv.mu.Lock() or recv.mu.RLock();
//  2. the second must be the matching defer recv.mu.Unlock()/RUnlock();
//  3. no statement may call an exported method on recv.
//
// Unexported methods (the *Locked helpers) are exempt from 1–2 and are
// the sanctioned way to share code between locked entry points.
//
// Fields whose type is internally synchronized — sync/atomic values, the
// nil-safe metric handles of anc/internal/obs, the lock-free
// materialized clustering cache of anc/internal/cluster/cache, and the
// analytics rank-snapshot cache of anc/internal/analytics — do not
// count as guarded state: reading an atomic snapshot counter, bumping a
// metric, or probing a cache lock-free is the whole point of using
// those types, and forcing the mu around them would make metric scrapes
// and cache hits queue behind long batch ingests.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer enforces mu discipline on mutex-guarded wrapper types.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "exported methods of mu-guarded structs must lock first, " +
		"defer-unlock second, and never call exported sibling methods " +
		"while holding the lock (RWMutex self-deadlock)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := guardedTypes(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tname := receiverType(pass, fd)
			if tname == nil || !guarded[tname] {
				continue
			}
			checkMethod(pass, fd, tname)
		}
	}
	return nil, nil
}

// guardedTypes returns the named struct types of the package that carry a
// field `mu` of type sync.Mutex or sync.RWMutex.
func guardedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() == "mu" && isSyncMutex(fld.Type()) {
				out[tn] = true
			}
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	n := named.Obj().Name()
	return n == "Mutex" || n == "RWMutex"
}

func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, tname *types.TypeName) {
	recv := recvName(fd)
	if recv == "" || recv == "_" {
		return
	}
	exported := fd.Name.IsExported()
	touches := touchesGuardedState(pass, fd, recv)
	if exported && touches {
		lockKind := firstIsLock(fd, recv)
		if lockKind == "" {
			pass.Reportf(fd.Name.Pos(),
				"exported method %s.%s touches guarded state but does not start with %s.mu.Lock/RLock",
				tname.Name(), fd.Name.Name, recv)
		} else if !secondIsMatchingDeferUnlock(fd, recv, lockKind) {
			pass.Reportf(fd.Name.Pos(),
				"exported method %s.%s must defer %s.mu.%s directly after %s.mu.%s",
				tname.Name(), fd.Name.Name, recv, unlockFor(lockKind), recv, lockKind)
		}
	}
	// Self-call check applies to every method that holds the lock —
	// exported ones by rule 1, so scan all exported bodies plus any body
	// that locks.
	if exported || firstIsLock(fd, recv) != "" {
		flagSelfCalls(pass, fd, tname, recv)
	}
}

// touchesGuardedState reports whether the body mentions recv.<field> for
// any selector other than mu, ignoring fields of internally synchronized
// types (sync/atomic, anc/internal/obs, anc/internal/cluster/cache,
// anc/internal/analytics) which are safe to touch bare.
func touchesGuardedState(pass *analysis.Pass, fd *ast.FuncDecl, recv string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && sel.Sel.Name != "mu" {
			if internallySynced(pass.TypeOf(sel)) {
				return true
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// internallySynced reports whether t (after one pointer deref) is a named
// type from a package whose values carry their own synchronization, so
// touching such a field without mu is sound by construction.
func internallySynced(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync/atomic", "anc/internal/obs", "anc/internal/cluster/cache",
		"anc/internal/analytics":
		return true
	}
	return false
}

// firstIsLock returns "Lock" or "RLock" when the method's first statement
// is recv.mu.Lock() / recv.mu.RLock(), else "".
func firstIsLock(fd *ast.FuncDecl, recv string) string {
	if len(fd.Body.List) == 0 {
		return ""
	}
	es, ok := fd.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return ""
	}
	return muCallName(es.X, recv, "Lock", "RLock")
}

func unlockFor(lock string) string {
	if lock == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

func secondIsMatchingDeferUnlock(fd *ast.FuncDecl, recv, lockKind string) bool {
	if len(fd.Body.List) < 2 {
		return false
	}
	ds, ok := fd.Body.List[1].(*ast.DeferStmt)
	if !ok {
		return false
	}
	return muCallName(ds.Call, recv, unlockFor(lockKind)) != ""
}

// muCallName matches recv.mu.<name>() for any of the given names and
// returns the matched name.
func muCallName(e ast.Expr, recv string, names ...string) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return ""
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return ""
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n
		}
	}
	return ""
}

// flagSelfCalls reports calls to exported methods on the receiver — a
// self-deadlock while the lock is held.
func flagSelfCalls(pass *analysis.Pass, fd *ast.FuncDecl, tname *types.TypeName, recv string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		if sel.Sel.Name == "mu" || !sel.Sel.IsExported() {
			return true
		}
		// recv.Method(...): confirm it is a method of T, not a field
		// holding a func.
		if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				pass.Reportf(call.Pos(),
					"%s.%s calls exported method %s while holding %s.mu — RWMutex is not reentrant, this self-deadlocks",
					tname.Name(), fd.Name.Name, sel.Sel.Name, recv)
			}
		}
		return true
	})
}
