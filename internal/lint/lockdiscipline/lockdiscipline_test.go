package lockdiscipline_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", lockdiscipline.Analyzer, "lockdiscipline")
}
