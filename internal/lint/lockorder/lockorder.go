// Package lockorder builds the intra-package lock-acquisition graph and
// flags the two ways a mutex can wedge the serving path: lock-order
// cycles (A held while B is acquired somewhere, B held while A is
// acquired somewhere else — two goroutines interleave and both stall
// forever) and blocking calls made while a lock is held (network I/O,
// an unguarded channel send, a WaitGroup/Cond Wait), which turn one
// stalled peer into a pile-up of every caller of that lock.
//
// # Model
//
// A lock is a sync.Mutex / sync.RWMutex variable or struct field,
// identified by its types.Var — all instances of Server.mu are one
// node, the standard lock-order approximation. Within each function
// body (function literals are separate bodies: a goroutine's statements
// do not run while the spawner's lock is held), a lock is held from its
// x.mu.Lock()/RLock() statement to the first matching Unlock statement,
// or to the end of the body when the unlock is deferred. Source
// position bounds the held region — exact for the straight-line
// lock-use-unlock shapes this module writes, and the reason convoluted
// control flow around Lock calls should be refactored rather than
// annotated.
//
// Per-function summaries (which locks a body acquires, which blocking
// calls it makes) propagate over the package-local static call graph,
// so a method that dials the network three helpers deep is still caught
// when called under a lock.
//
// Findings are suppressed the usual way when the order or the blocking
// call is intentional — e.g. a mutex whose entire job is to serialize
// connection I/O — with //anclint:ignore lockorder <reason>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"anc/internal/lint/analysis"
)

// Analyzer flags lock-order cycles and lock-held blocking calls.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "builds the intra-package lock graph and flags acquisition " +
		"cycles and blocking calls (network I/O, channel send, Wait) " +
		"made while a lock is held",
	Run: run,
}

// netBlocking are the package-level functions and interface/concrete
// methods of package net that can block on a peer indefinitely (or until
// a deadline a reviewer cannot see from the call site).
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "Listen": true,
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "AcceptTCP": true,
}

// lockVar is one lock node: the mutex field or variable.
type lockVar struct {
	obj  *types.Var
	name string // "Server.mu" for fields, plain name otherwise
}

// event is one position-tagged occurrence inside a body.
type event struct {
	pos token.Pos
	// kind: "lock", "unlock", "block", "call"
	kind string
	lock *types.Var  // lock / unlock
	desc string      // block: human description
	fn   *types.Func // call: same-package callee
}

// body is one analysis unit: a function declaration or function literal.
type body struct {
	fn     *types.Func // nil for function literals
	name   string
	events []event // in position order
	end    token.Pos
}

// summary is what a function does transitively: the locks it acquires
// and the blocking operations it performs.
type summary struct {
	acquires map[*types.Var]bool
	blocking []string
}

func run(pass *analysis.Pass) (interface{}, error) {
	lo := &lockorder{
		pass:    pass,
		names:   map[*types.Var]string{},
		decls:   map[*types.Func]*body{},
		summing: map[*types.Func]bool{},
		sums:    map[*types.Func]*summary{},
	}
	lo.findLockNames()
	var bodies []*body
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bodies = append(bodies, lo.collect(fd)...)
		}
	}
	for _, b := range bodies {
		if b.fn != nil {
			lo.decls[b.fn] = b
		}
	}
	type edge struct {
		from, to *types.Var
		pos      token.Pos
		via      string
	}
	var edges []edge
	edgeSet := map[[2]*types.Var]bool{}
	for _, b := range bodies {
		for _, held := range heldRegions(b) {
			for _, ev := range b.events {
				if ev.pos <= held.from || ev.pos >= held.to {
					continue
				}
				switch ev.kind {
				case "lock":
					if ev.lock != held.lock {
						edges = append(edges, edge{held.lock, ev.lock, ev.pos, ""})
						edgeSet[[2]*types.Var{held.lock, ev.lock}] = true
					}
				case "block":
					pass.Reportf(ev.pos,
						"%s while holding %s: a stalled peer wedges every user of this lock",
						ev.desc, lo.name(held.lock))
				case "call":
					s := lo.summarize(ev.fn)
					if s == nil {
						continue
					}
					for _, d := range s.blocking {
						pass.Reportf(ev.pos,
							"call to %s, which performs %s, while holding %s: a stalled peer wedges every user of this lock",
							ev.fn.Name(), d, lo.name(held.lock))
					}
					for l := range s.acquires {
						if l != held.lock && !edgeSet[[2]*types.Var{held.lock, l}] {
							edges = append(edges, edge{held.lock, l, ev.pos,
								" (via " + ev.fn.Name() + ")"})
							edgeSet[[2]*types.Var{held.lock, l}] = true
						}
					}
				}
			}
			// Re-acquiring the lock already held: immediate self-deadlock
			// (sync mutexes are not reentrant) unless the two are provably
			// distinct instances of the same type.
			for _, ev := range b.events {
				if ev.pos > held.from && ev.pos < held.to && ev.kind == "lock" && ev.lock == held.lock {
					pass.Reportf(ev.pos,
						"%s acquired while already held: mutexes are not reentrant — "+
							"a second Lock on the same instance self-deadlocks",
						lo.name(held.lock))
				}
			}
		}
	}
	// Cycle detection: an edge A→B closes a cycle when B reaches A.
	adj := map[*types.Var][]*types.Var{}
	for e := range edgeSet {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	for _, e := range edges {
		if reaches(adj, e.to, e.from) {
			pass.Reportf(e.pos,
				"lock cycle: %s acquired while holding %s%s, and %s is (transitively) acquired while %s is held elsewhere",
				lo.name(e.to), lo.name(e.from), e.via, lo.name(e.from), lo.name(e.to))
		}
	}
	return nil, nil
}

func reaches(adj map[*types.Var][]*types.Var, from, to *types.Var) bool {
	seen := map[*types.Var]bool{}
	stack := []*types.Var{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

type lockorder struct {
	pass    *analysis.Pass
	names   map[*types.Var]string
	decls   map[*types.Func]*body
	summing map[*types.Func]bool
	sums    map[*types.Func]*summary
}

// findLockNames pre-computes "Type.field" display names for the mutex
// fields of package structs; other mutex vars fall back to their own name.
func (lo *lockorder) findLockNames() {
	scope := lo.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fld := st.Field(i); isMutex(fld.Type()) {
				lo.names[fld] = tn.Name() + "." + fld.Name()
			}
		}
	}
}

func (lo *lockorder) name(v *types.Var) string {
	if n, ok := lo.names[v]; ok {
		return n
	}
	return v.Name()
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	n := named.Obj().Name()
	return n == "Mutex" || n == "RWMutex"
}

// mutexVarOf resolves the lock variable of a x.mu.Lock()-shaped selector
// base: the mutex-typed field or variable being locked, or nil.
func (lo *lockorder) mutexVarOf(e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := lo.pass.ObjectOf(x.Sel).(*types.Var); ok && isMutex(v.Type()) {
			return v
		}
	case *ast.Ident:
		if v, ok := lo.pass.ObjectOf(x).(*types.Var); ok && isMutex(v.Type()) {
			return v
		}
	}
	return nil
}

// collect splits one declaration into analysis bodies — the declaration
// itself plus one per function literal — and records each body's events.
func (lo *lockorder) collect(fd *ast.FuncDecl) []*body {
	var out []*body
	var walk func(name string, fn *types.Func, node ast.Node, end token.Pos)
	walk = func(name string, fn *types.Func, node ast.Node, end token.Pos) {
		b := &body{fn: fn, name: name, end: end}
		var lits []*ast.FuncLit
		skip := map[ast.Node]bool{}
		ast.Inspect(node, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && n != node {
				lits = append(lits, fl)
				return false // a literal's statements are its own body
			}
			switch x := n.(type) {
			case *ast.DeferStmt:
				// A deferred Unlock runs at return: the lock is held to the
				// body end, so the unlock event must not close the region
				// at the defer statement's position.
				if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") &&
					lo.mutexVarOf(sel.X) != nil {
					skip[x.Call] = true
				}
			case *ast.GoStmt:
				// The spawned call runs in a new goroutine, not under any
				// lock the spawner holds.
				skip[x.Call] = true
			}
			if !skip[n] {
				lo.record(b, n)
			}
			return true
		})
		out = append(out, b)
		for i, fl := range lits {
			walk(fmt.Sprintf("%s.func%d", name, i+1), nil, fl.Body, fl.Body.End())
		}
	}
	walk(fd.Name.Name, lo.funcObj(fd), fd.Body, fd.Body.End())
	return out
}

func (lo *lockorder) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := lo.pass.ObjectOf(fd.Name).(*types.Func)
	return fn
}

// record classifies one node into the body's event stream.
func (lo *lockorder) record(b *body, n ast.Node) {
	switch x := n.(type) {
	case *ast.SendStmt:
		if !lo.inSelectWithDefault(x) {
			b.events = append(b.events, event{pos: x.Pos(), kind: "block",
				desc: "channel send without a default case"})
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if ok {
			name := sel.Sel.Name
			switch name {
			case "Lock", "RLock":
				if v := lo.mutexVarOf(sel.X); v != nil {
					b.events = append(b.events, event{pos: x.Pos(), kind: "lock", lock: v})
					return
				}
			case "Unlock", "RUnlock":
				if v := lo.mutexVarOf(sel.X); v != nil {
					b.events = append(b.events, event{pos: x.Pos(), kind: "unlock", lock: v})
					return
				}
			}
		}
		obj := lo.pass.CalleeObject(x)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch {
		case fn.Pkg().Path() == "net" && netBlocking[fn.Name()]:
			b.events = append(b.events, event{pos: x.Pos(), kind: "block",
				desc: "network I/O (" + shortName(fn) + ")"})
		case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
			b.events = append(b.events, event{pos: x.Pos(), kind: "block",
				desc: shortName(fn) + " (waits for other goroutines)"})
		case fn.Pkg() == lo.pass.Pkg:
			b.events = append(b.events, event{pos: x.Pos(), kind: "call", fn: fn})
		}
	}
}

// inSelectWithDefault reports whether the send is the comm statement of
// a select clause whose select carries a default (i.e. non-blocking).
func (lo *lockorder) inSelectWithDefault(send *ast.SendStmt) bool {
	found := false
	for _, f := range lo.pass.Files {
		if f.Pos() <= send.Pos() && send.End() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectStmt)
				if !ok {
					return true
				}
				hasDefault := false
				isComm := false
				for _, c := range sel.Body.List {
					cc := c.(*ast.CommClause)
					if cc.Comm == nil {
						hasDefault = true
					} else if cc.Comm.Pos() == send.Pos() {
						isComm = true
					}
				}
				if isComm && hasDefault {
					found = true
				}
				return !found
			})
			break
		}
	}
	return found
}

func shortName(fn *types.Func) string {
	full := fn.FullName() // e.g. "(net.Conn).Read" or "net.DialTimeout"
	return strings.ReplaceAll(full, "command-line-arguments", fn.Pkg().Name())
}

// region is one held span of a lock within a body.
type region struct {
	lock     *types.Var
	from, to token.Pos
}

// heldRegions pairs each lock event with the first later unlock of the
// same lock (deferred unlocks end at the body end). Events between two
// paired statements count as "while held".
func heldRegions(b *body) []region {
	var out []region
	used := map[int]bool{}
	for i, ev := range b.events {
		if ev.kind != "lock" {
			continue
		}
		end := b.end
		for j := i + 1; j < len(b.events); j++ {
			e2 := b.events[j]
			if e2.kind == "unlock" && e2.lock == ev.lock && !used[j] {
				used[j] = true
				end = e2.pos
				break
			}
		}
		out = append(out, region{lock: ev.lock, from: ev.pos, to: end})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	return out
}

// summarize computes (memoized, cycle-safe) what fn does transitively:
// locks acquired and blocking operations performed, through same-package
// callees.
func (lo *lockorder) summarize(fn *types.Func) *summary {
	if s, ok := lo.sums[fn]; ok {
		return s
	}
	if lo.summing[fn] {
		return nil // recursion: the cycle's other frames cover it
	}
	b, ok := lo.decls[fn]
	if !ok {
		return nil
	}
	lo.summing[fn] = true
	s := &summary{acquires: map[*types.Var]bool{}}
	seenBlock := map[string]bool{}
	for _, ev := range b.events {
		switch ev.kind {
		case "lock":
			s.acquires[ev.lock] = true
		case "block":
			if !seenBlock[ev.desc] {
				seenBlock[ev.desc] = true
				s.blocking = append(s.blocking, ev.desc)
			}
		case "call":
			if sub := lo.summarize(ev.fn); sub != nil {
				for l := range sub.acquires {
					s.acquires[l] = true
				}
				for _, d := range sub.blocking {
					via := d + " in " + ev.fn.Name()
					if !seenBlock[via] {
						seenBlock[via] = true
						s.blocking = append(s.blocking, via)
					}
				}
			}
		}
	}
	delete(lo.summing, fn)
	lo.sums[fn] = s
	return s
}
