package lockorder_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder")
}
