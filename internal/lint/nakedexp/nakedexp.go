// Package nakedexp flags raw math.Exp calls over time quantities outside
// internal/decay.
//
// The invariant (Section IV of the paper): every exponential decay
// computation must route through the anchored global decay factor
// maintained by decay.Clock. A raw exp(-λ·Δt) against unanchored time is
// exactly the silent numerical-drift bug the batched-rescale scheme
// exists to prevent — it bypasses the anchor, so its result diverges from
// the anchored state as t grows, and nothing ever rescales it back into
// range.
package nakedexp

import (
	"go/ast"
	"regexp"

	"anc/internal/lint/analysis"
)

// Analyzer flags math.Exp calls whose argument involves a time quantity.
var Analyzer = &analysis.Analyzer{
	Name: "nakedexp",
	Doc: "flags raw math.Exp over timestamp deltas or decay factors; " +
		"all decay math must go through decay.Clock so the batched " +
		"rescale keeps anchored values in range",
	Run: run,
}

// timeish matches identifiers (or selector fields) that denote time
// quantities or decay factors: t, dt, Δt spellings, now/anchor, lambda.
var timeish = regexp.MustCompile(`(?i)^(t|ti|t0|t1|tn|dt|deltat|delta|now|anchor|lambda|elapsed|age)$|time|stamp|decay|lambda`)

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !pass.IsStdFunc(call, "math", "Exp") || len(call.Args) != 1 {
				return true
			}
			if name := timeQuantity(call.Args[0]); name != "" {
				pass.Reportf(call.Pos(),
					"raw math.Exp over time quantity %q bypasses the anchored global decay factor; route decay through decay.Clock (internal/decay)",
					name)
			}
			return true
		})
	}
	return nil, nil
}

// timeQuantity returns the name of a time-like identifier appearing in
// the expression, or "" if none does.
func timeQuantity(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if timeish.MatchString(x.Name) {
				found = x.Name
			}
		case *ast.SelectorExpr:
			if timeish.MatchString(x.Sel.Name) {
				found = x.Sel.Name
				return false
			}
		}
		return true
	})
	return found
}
