package nakedexp_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/nakedexp"
)

func TestNakedExp(t *testing.T) {
	analysistest.Run(t, "../testdata", nakedexp.Analyzer, "nakedexp")
}
