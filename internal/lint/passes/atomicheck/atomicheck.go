// Package atomicheck re-implements the stock vet atomic pass: assigning
// the result of sync/atomic.AddT back to the operand, as in
//
//	x = atomic.AddInt32(&x, 1)
//
// destroys the atomicity — the store racing with other Adds loses
// updates. The atomic call already stores the new value; the assignment
// must go.
package atomicheck

import (
	"go/ast"
	"go/types"
	"strings"

	"anc/internal/lint/analysis"
)

// Analyzer flags x = atomic.AddT(&x, …) self-assignments.
var Analyzer = &analysis.Analyzer{
	Name: "atomic",
	Doc:  "flags non-atomic self-assignment of sync/atomic.Add results",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				if i >= len(assign.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAtomicAdd(pass, call) || len(call.Args) == 0 {
					continue
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if sameExpr(pass, assign.Lhs[i], addr.X) {
					pass.Reportf(assign.Pos(),
						"direct assignment of %s result back to its operand defeats the atomicity; drop the assignment",
						calleeName(call))
				}
			}
			return true
		})
	}
	return nil, nil
}

func isAtomicAdd(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := pass.CalleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && strings.HasPrefix(fn.Name(), "Add")
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "atomic." + sel.Sel.Name
	}
	return "the atomic add"
}

// sameExpr reports whether two expressions denote the same variable (an
// identifier or selector chain resolving to the same objects).
func sameExpr(pass *analysis.Pass, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := pass.ObjectOf(ax), pass.ObjectOf(bx)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return pass.ObjectOf(ax.Sel) == pass.ObjectOf(bx.Sel) && sameExpr(pass, ax.X, bx.X)
	}
	return false
}
