package atomicheck_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/passes/atomicheck"
)

func TestAtomic(t *testing.T) {
	analysistest.Run(t, "../../testdata", atomicheck.Analyzer, "atomic")
}
