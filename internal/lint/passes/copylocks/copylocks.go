// Package copylocks re-implements the essential cases of the stock vet
// copylocks pass over the internal/lint framework: values of types that
// contain a sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once or
// sync.Cond must not be copied — a copied lock is a different lock, and
// the copy silently stops guarding the original state.
//
// Covered cases: by-value method receivers, by-value function parameters
// and results, assignments and variable initializations whose right-hand
// side is a lock-bearing value (not a pointer), and by-value range
// iteration over lock-bearing elements. (The upstream pass also tracks
// copies through interface conversions and call arguments; those cases
// do not occur in this module.)
package copylocks

import (
	"go/ast"
	"go/token"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags copies of lock-bearing values.
var Analyzer = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flags copies of values containing sync.Mutex and friends; a copied lock guards nothing",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, x.Recv, "%s passes a lock by value (receiver contains %s)")
				if x.Type != nil {
					checkSignature(pass, x.Type.Params, "%s passes a lock by value (parameter contains %s)")
					checkSignature(pass, x.Type.Results, "%s returns a lock by value (result contains %s)")
				}
			case *ast.AssignStmt:
				if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
					return true
				}
				for _, rhs := range x.Rhs {
					checkValueCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range x.Values {
					checkValueCopy(pass, v)
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if name := lockIn(pass.TypeOf(x.Value)); name != "" {
						pass.Reportf(x.Value.Pos(),
							"range copies lock-bearing values (element contains %s); iterate by index or over pointers", name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkSignature flags by-value receiver/parameter/result declarations of
// lock-bearing types.
func checkSignature(pass *analysis.Pass, fl *ast.FieldList, format string) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		t := pass.TypeOf(fld.Type)
		if name := lockIn(t); name != "" {
			what := "_"
			if len(fld.Names) > 0 {
				what = fld.Names[0].Name
			}
			pass.Reportf(fld.Pos(), format, what, name)
		}
	}
}

// checkValueCopy flags expressions that copy a lock-bearing value: a
// plain identifier/selector/index of such a type, or a dereference *p.
// Composite literals and calls construct fresh values and are fine.
func checkValueCopy(pass *analysis.Pass, e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if name := lockIn(pass.TypeOf(e)); name != "" {
		pass.Reportf(e.Pos(), "assignment copies a lock-bearing value (contains %s); use a pointer", name)
	}
}

// lockIn reports the sync primitive a by-value copy of t would copy, or
// "". Pointers are fine; arrays and structs are searched recursively.
func lockIn(t types.Type) string {
	return lockInDepth(t, 0)
}

func lockInDepth(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockInDepth(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInDepth(u.Elem(), depth+1)
	}
	return ""
}
