package copylocks_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/passes/copylocks"
)

func TestCopyLocks(t *testing.T) {
	analysistest.Run(t, "../../testdata", copylocks.Analyzer, "copylocks")
}
