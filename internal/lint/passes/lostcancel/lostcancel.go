// Package lostcancel re-implements the core of the stock vet lostcancel
// pass: the cancel function returned by context.WithCancel,
// context.WithTimeout or context.WithDeadline must not be discarded —
// dropping it leaks the context's resources until the parent is
// cancelled.
//
// Covered cases: assigning the cancel result to the blank identifier, and
// binding it to a variable that is never subsequently used (called,
// deferred, passed or stored). The upstream pass proves "not called on
// every path" with a CFG; this version checks use, which catches the
// leak shapes that occur in practice.
package lostcancel

import (
	"go/ast"
	"go/types"

	"anc/internal/lint/analysis"
)

// Analyzer flags discarded context cancel functions.
var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  "flags dropped cancel functions from context.WithCancel/WithTimeout/WithDeadline; the context leaks until its parent ends",
	Run:  run,
}

var cancelReturning = map[string]bool{
	"WithCancel":   true,
	"WithTimeout":  true,
	"WithDeadline": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, body := funcOf(n)
			if body == nil {
				return true
			}
			checkFunc(pass, fn, body)
			return true
		})
	}
	return nil, nil
}

func funcOf(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch x := n.(type) {
	case *ast.FuncDecl:
		return x, x.Body
	case *ast.FuncLit:
		return x, x.Body
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if isFuncLit(n) && n != fn {
			return false // nested literals are visited on their own
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isContextCancelCall(pass, call) {
			return true
		}
		if len(assign.Lhs) != 2 {
			return true
		}
		cancel := assign.Lhs[1]
		if id, ok := cancel.(*ast.Ident); ok {
			if id.Name == "_" {
				pass.Reportf(id.Pos(),
					"the cancel function returned by context.%s is discarded; the context leaks — call or defer it",
					calleeName(call))
				return true
			}
			obj := pass.ObjectOf(id)
			if obj != nil && !usedAfter(pass, body, id, obj) {
				pass.Reportf(id.Pos(),
					"the cancel function %s is never used; the context leaks — call or defer it", id.Name)
			}
		}
		return true
	})
}

func isFuncLit(n ast.Node) bool {
	_, ok := n.(*ast.FuncLit)
	return ok
}

func isContextCancelCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := pass.CalleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context" && cancelReturning[fn.Name()]
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "WithCancel"
}

// usedAfter reports whether obj is referenced anywhere in body other than
// at its defining identifier.
func usedAfter(pass *analysis.Pass, body *ast.BlockStmt, def *ast.Ident, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
