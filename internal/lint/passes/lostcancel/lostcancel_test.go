package lostcancel_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/passes/lostcancel"
)

func TestLostCancel(t *testing.T) {
	analysistest.Run(t, "../../testdata", lostcancel.Analyzer, "lostcancel")
}
