// Package runner drives the ANC analyzer suite over module packages: it
// loads and type-checks the requested packages, applies each analyzer to
// the packages its scope covers, filters findings through
// //anclint:ignore comments, and renders the survivors in the familiar
// file:line:col format. cmd/anclint is a thin wrapper over Run.
//
// # Scoping
//
// Upstream go/analysis runs every analyzer on every package; the ANC
// invariants are narrower (e.g. floateq only covers the numeric-kernel
// packages), so each analyzer is registered with an include/exclude
// package-path scope and an optional file-basename glob. A finding must
// pass all three filters to be reported.
//
// # Suppression
//
// A comment of the form
//
//	//anclint:ignore <analyzer> <reason>
//
// suppresses findings of <analyzer> ("all" suppresses every analyzer) on
// the comment's own line and on the line directly below it, so it works
// both as a trailing comment and as a lead comment. The reason is
// mandatory: a bare ignore is itself reported as a finding.
package runner

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"anc/internal/lint/analysis"
	"anc/internal/lint/load"
)

// Scoped binds an analyzer to the part of the module it covers.
type Scoped struct {
	Analyzer *analysis.Analyzer
	// Include lists package paths the analyzer runs on; empty means
	// every package. An entry names one package exactly; a trailing
	// "/..." covers the subtree too ("anc/cmd/...").
	Include []string
	// Exclude lists package paths (same syntax) skipped even when
	// included.
	Exclude []string
	// Files, when non-empty, restricts findings to files whose base name
	// matches one of these globs (e.g. "snapshot*.go").
	Files []string
}

// Covers reports whether the scope includes the package path.
func (s Scoped) Covers(pkgPath string) bool {
	match := func(list []string) bool {
		for _, e := range list {
			if base, ok := strings.CutSuffix(e, "/..."); ok {
				if pkgPath == base || strings.HasPrefix(pkgPath, base+"/") {
					return true
				}
				continue
			}
			if pkgPath == e {
				return true
			}
		}
		return false
	}
	if match(s.Exclude) {
		return false
	}
	return len(s.Include) == 0 || match(s.Include)
}

func (s Scoped) coversFile(base string) bool {
	if len(s.Files) == 0 {
		return true
	}
	for _, g := range s.Files {
		if ok, _ := filepath.Match(g, base); ok {
			return true
		}
	}
	return false
}

// Finding is one surviving diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// IgnorePrefix is the suppression-comment marker.
const IgnorePrefix = "//anclint:ignore"

type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	file     string
	pos      token.Pos
	used     bool // suppressed at least one diagnostic this run
}

// collectIgnores gathers the suppression directives of one file.
// Malformed directives (no analyzer, or no reason) are returned
// separately so the runner can report them.
func collectIgnores(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, malformed []analysis.Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				malformed = append(malformed, analysis.Diagnostic{
					Pos:     c.Pos(),
					Message: "malformed ignore: want //anclint:ignore <analyzer> <reason>",
				})
				continue
			}
			p := fset.Position(c.Pos())
			dirs = append(dirs, &ignoreDirective{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				line:     p.Line,
				file:     p.Filename,
				pos:      c.Pos(),
			})
		}
	}
	return dirs, malformed
}

// Options tunes a runner invocation beyond the analyzer suite itself.
type Options struct {
	// UnusedIgnores additionally reports every //anclint:ignore directive
	// that suppressed nothing this run: a dead suppression either
	// outlived the finding it silenced (delete it) or never matched one
	// (typo'd analyzer name, wrong line) — both are lies to the reader.
	UnusedIgnores bool
}

// Result is everything one runner invocation learned.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Finding
	// Packages lists the import path of every package the run
	// type-checked and analyzed, sorted. The scoping test diffs this
	// against the module's directory tree so new packages cannot
	// silently escape lint.
	Packages []string
	// ModuleDir is the absolute module root the run loaded from;
	// PrintJSON uses it to emit module-relative file paths.
	ModuleDir string
}

// Run loads the packages matching patterns and applies every scoped
// analyzer whose scope covers them. Findings come back sorted by
// position; an error means the run itself failed (parse failure, missing
// directory), not that findings exist.
func Run(moduleDir string, patterns []string, suite []Scoped) ([]Finding, error) {
	res, err := RunWithOptions(moduleDir, patterns, suite, Options{})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunWithOptions is Run with Options and the full Result.
func RunWithOptions(moduleDir string, patterns []string, suite []Scoped, opts Options) (*Result, error) {
	l, err := load.NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{ModuleDir: l.ModuleRoot()}
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		res.Packages = append(res.Packages, pkg.Path)
		var ignores []*ignoreDirective
		for _, f := range pkg.Files {
			dirs, malformed := collectIgnores(pkg.Fset, f)
			ignores = append(ignores, dirs...)
			for _, d := range malformed {
				findings = append(findings, Finding{
					Analyzer: "anclint",
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		for _, sc := range suite {
			if !sc.Covers(pkg.Path) {
				continue
			}
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  sc.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := sc.Analyzer.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", sc.Analyzer.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if !sc.coversFile(filepath.Base(pos.Filename)) {
					continue
				}
				if suppressed(ignores, sc.Analyzer.Name, pos) {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: sc.Analyzer.Name,
					Pos:      pos,
					Message:  d.Message,
				})
			}
		}
		if opts.UnusedIgnores {
			for _, d := range ignores {
				if d.used {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: "anclint",
					Pos:      pkg.Fset.Position(d.pos),
					Message: fmt.Sprintf(
						"unused //anclint:ignore %s directive (%q): no finding here to suppress; delete it",
						d.analyzer, d.reason),
				})
			}
		}
	}
	sort.Strings(res.Packages)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res.Findings = findings
	return res, nil
}

// suppressed reports whether a directive covers the diagnostic — same
// file, matching analyzer (or "all"), on the directive's line or the one
// directly below — and marks the matching directive used so
// Options.UnusedIgnores can flag the dead ones.
func suppressed(dirs []*ignoreDirective, analyzer string, pos token.Position) bool {
	for _, d := range dirs {
		if d.file != pos.Filename {
			continue
		}
		if d.analyzer != analyzer && d.analyzer != "all" {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			d.used = true
			return true
		}
	}
	return false
}

// Print renders findings one per line.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// jsonFinding is the machine-readable shape of one finding. File is
// module-relative when the finding lies under the module root, so CI
// annotation steps can pass it straight to the source-control host.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// PrintJSON renders the full result as one JSON object:
//
//	{"findings": [{"analyzer", "file", "line", "col", "message"}, ...],
//	 "packages": ["anc", "anc/internal/core", ...]}
//
// findings is always an array (never null), so `jq '.findings[]'`
// consumers need no null guard.
func PrintJSON(w io.Writer, res *Result) error {
	out := struct {
		Findings []jsonFinding `json:"findings"`
		Packages []string      `json:"packages"`
	}{Findings: make([]jsonFinding, 0, len(res.Findings)), Packages: res.Packages}
	for _, f := range res.Findings {
		file := f.Pos.Filename
		if res.ModuleDir != "" {
			if rel, err := filepath.Rel(res.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out.Findings = append(out.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     file,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
