package runner_test

import (
	"strings"
	"testing"

	"anc/internal/lint/floateq"
	"anc/internal/lint/runner"
)

// TestIgnoreDirectives runs floateq over the ignores fixture and checks
// the suppression rules: well-formed directives (lead or trailing)
// silence the finding, malformed directives are reported themselves and
// suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	suite := []runner.Scoped{{Analyzer: floateq.Analyzer}}
	findings, err := runner.Run(".", []string{"../testdata/src/ignores"}, suite)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	joined := strings.Join(got, "\n")

	wantSubstr := []string{
		"malformed ignore",           // the reason-less directive
		"float equality != between",  // the finding it failed to suppress
		"float equality == between",  // the unsuppressed function
	}
	for _, w := range wantSubstr {
		if !strings.Contains(joined, w) {
			t.Errorf("missing expected finding %q in:\n%s", w, joined)
		}
	}
	if n := strings.Count(joined, "float equality == between"); n != 1 {
		t.Errorf("want exactly 1 surviving == finding (suppressed ones must not appear), got %d:\n%s", n, joined)
	}
	if len(findings) != 3 {
		t.Errorf("want 3 findings total, got %d:\n%s", len(findings), joined)
	}
}

// TestScoping checks the include/exclude package-path syntax: exact
// entries cover one package, trailing /... covers the subtree.
func TestScoping(t *testing.T) {
	cases := []struct {
		include []string
		pkg     string
		want    bool
	}{
		{[]string{"anc"}, "anc", true},
		{[]string{"anc"}, "anc/internal/core", false},
		{[]string{"anc/cmd/..."}, "anc/cmd/anccli", true},
		{[]string{"anc/cmd/..."}, "anc/cmd", true},
		{[]string{"anc/cmd/..."}, "anc/cmdx", false},
		{nil, "anything", true},
	}
	for _, c := range cases {
		s := runner.Scoped{Include: c.include}
		if got := s.Covers(c.pkg); got != c.want {
			t.Errorf("Include %v covers %q = %v, want %v", c.include, c.pkg, got, c.want)
		}
	}
}
