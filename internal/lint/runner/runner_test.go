package runner_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"anc/internal/lint/floateq"
	"anc/internal/lint/runner"
)

// TestIgnoreDirectives runs floateq over the ignores fixture and checks
// the suppression rules: well-formed directives (lead or trailing)
// silence the finding, malformed directives are reported themselves and
// suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	suite := []runner.Scoped{{Analyzer: floateq.Analyzer}}
	findings, err := runner.Run(".", []string{"../testdata/src/ignores"}, suite)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	joined := strings.Join(got, "\n")

	wantSubstr := []string{
		"malformed ignore",          // the reason-less directive
		"float equality != between", // the finding it failed to suppress
		"float equality == between", // the unsuppressed function
	}
	for _, w := range wantSubstr {
		if !strings.Contains(joined, w) {
			t.Errorf("missing expected finding %q in:\n%s", w, joined)
		}
	}
	if n := strings.Count(joined, "float equality == between"); n != 1 {
		t.Errorf("want exactly 1 surviving == finding (suppressed ones must not appear), got %d:\n%s", n, joined)
	}
	if len(findings) != 3 {
		t.Errorf("want 3 findings total, got %d:\n%s", len(findings), joined)
	}
}

// TestUnusedIgnores checks the -unused-ignores mode: a directive that
// suppressed a finding is kept, one that suppressed nothing (wrong site
// or typo'd analyzer name) is reported — and only in that mode.
func TestUnusedIgnores(t *testing.T) {
	suite := []runner.Scoped{{Analyzer: floateq.Analyzer}}
	pats := []string{"../testdata/src/unusedignores"}

	res, err := runner.RunWithOptions(".", pats, suite, runner.Options{UnusedIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	var unused, other []string
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "unused //anclint:ignore") {
			unused = append(unused, f.String())
		} else {
			other = append(other, f.String())
		}
	}
	if len(unused) != 2 {
		t.Errorf("want 2 unused-ignore findings (wrong site + typo), got %d:\n%s",
			len(unused), strings.Join(unused, "\n"))
	}
	// The typo'd directive also fails to suppress its floateq finding.
	if len(other) != 1 || !strings.Contains(other[0], "float equality") {
		t.Errorf("want exactly the typo'd function's floateq finding, got:\n%s",
			strings.Join(other, "\n"))
	}

	// Without the option only the floateq finding surfaces.
	plain, err := runner.Run(".", pats, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 {
		t.Errorf("without UnusedIgnores want 1 finding, got %d", len(plain))
	}
}

// TestPrintJSON checks the machine-readable output: a findings array
// (never null) with module-relative slash-separated paths, plus the
// analyzed-package list.
func TestPrintJSON(t *testing.T) {
	suite := []runner.Scoped{{Analyzer: floateq.Analyzer}}
	res, err := runner.RunWithOptions(".", []string{"../testdata/src/ignores"}, suite, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runner.PrintJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
		Packages []string `json:"packages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.Findings) != 3 {
		t.Errorf("want 3 findings, got %d:\n%s", len(out.Findings), buf.String())
	}
	for _, f := range out.Findings {
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file %q is not a module-relative slash path", f.File)
		}
		if f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding %+v", f)
		}
	}
	if len(out.Packages) != 1 || !strings.HasSuffix(out.Packages[0], "ignores") {
		t.Errorf("want the single ignores fixture package, got %v", out.Packages)
	}

	// An empty result still renders an array, so jq needs no null guard.
	buf.Reset()
	if err := runner.PrintJSON(&buf, &runner.Result{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty findings must render as [], got:\n%s", buf.String())
	}
}

// TestScoping checks the include/exclude package-path syntax: exact
// entries cover one package, trailing /... covers the subtree.
func TestScoping(t *testing.T) {
	cases := []struct {
		include []string
		pkg     string
		want    bool
	}{
		{[]string{"anc"}, "anc", true},
		{[]string{"anc"}, "anc/internal/core", false},
		{[]string{"anc/cmd/..."}, "anc/cmd/anccli", true},
		{[]string{"anc/cmd/..."}, "anc/cmd", true},
		{[]string{"anc/cmd/..."}, "anc/cmdx", false},
		{nil, "anything", true},
	}
	for _, c := range cases {
		s := runner.Scoped{Include: c.include}
		if got := s.Covers(c.pkg); got != c.want {
			t.Errorf("Include %v covers %q = %v, want %v", c.include, c.pkg, got, c.want)
		}
	}
}
