// Package lint assembles the ANC analyzer suite: five custom invariant
// checkers born from the paper's correctness arguments plus three stock
// vet-style passes, each scoped to the part of the module whose contract
// it encodes. cmd/anclint runs Suite over ./...; `make lint` gates every
// PR on it. See DESIGN.md §9 for the invariant behind each analyzer.
package lint

import (
	"anc/internal/lint/determinism"
	"anc/internal/lint/droppederr"
	"anc/internal/lint/floateq"
	"anc/internal/lint/lockdiscipline"
	"anc/internal/lint/nakedexp"
	"anc/internal/lint/passes/atomicheck"
	"anc/internal/lint/passes/copylocks"
	"anc/internal/lint/passes/lostcancel"
	"anc/internal/lint/runner"
)

// Suite returns the scoped analyzer suite for this module.
func Suite() []runner.Scoped {
	return []runner.Scoped{
		{
			// All decay math routes through decay.Clock; only the decay
			// package itself may touch raw math.Exp over time.
			Analyzer: nakedexp.Analyzer,
			Exclude:  []string{"anc/internal/decay", "anc/internal/lint/..."},
		},
		{
			// Exact float equality in the numeric kernels.
			Analyzer: floateq.Analyzer,
			Include: []string{
				"anc/internal/decay",
				"anc/internal/similarity",
				"anc/internal/cluster",
				"anc/internal/pyramid",
			},
		},
		{
			// Durability code must not drop Write/Sync/Close/Flush errors:
			// the WAL, the durable/concurrent wrappers, and the CLIs.
			Analyzer: droppederr.Analyzer,
			Include: []string{
				"anc",
				"anc/internal/wal",
				"anc/cmd/...",
			},
		},
		{
			// In core, only the snapshot encoder persists state.
			Analyzer: droppederr.Analyzer,
			Include:  []string{"anc/internal/core"},
			Files:    []string{"snapshot*.go"},
		},
		{
			// Replay-critical packages must be deterministic. The louvain
			// baseline is included because it documents a determinism
			// contract ("nodes are scanned in ID order") and seeds DYNA.
			Analyzer: determinism.Analyzer,
			Include: []string{
				"anc/internal/core",
				"anc/internal/pyramid",
				"anc/internal/cluster",
				"anc/internal/decay",
				"anc/internal/graph",
				"anc/internal/baseline/louvain",
			},
		},
		{
			// The concurrency wrappers live in the root package.
			Analyzer: lockdiscipline.Analyzer,
			Include:  []string{"anc"},
		},
		// Stock passes run module-wide.
		{Analyzer: copylocks.Analyzer},
		{Analyzer: lostcancel.Analyzer},
		{Analyzer: atomicheck.Analyzer},
	}
}
