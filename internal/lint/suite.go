// Package lint assembles the ANC analyzer suite: five custom invariant
// checkers born from the paper's correctness arguments plus three stock
// vet-style passes, each scoped to the part of the module whose contract
// it encodes. cmd/anclint runs Suite over ./...; `make lint` gates every
// PR on it. See DESIGN.md §9 for the invariant behind each analyzer.
package lint

import (
	"anc/internal/lint/determinism"
	"anc/internal/lint/droppederr"
	"anc/internal/lint/floateq"
	"anc/internal/lint/goleak"
	"anc/internal/lint/hotalloc"
	"anc/internal/lint/lockdiscipline"
	"anc/internal/lint/lockorder"
	"anc/internal/lint/nakedexp"
	"anc/internal/lint/passes/atomicheck"
	"anc/internal/lint/passes/copylocks"
	"anc/internal/lint/passes/lostcancel"
	"anc/internal/lint/runner"
	"anc/internal/lint/wirecomplete"
)

// Suite returns the scoped analyzer suite for this module.
func Suite() []runner.Scoped {
	return []runner.Scoped{
		{
			// All decay math routes through decay.Clock; only the decay
			// package itself may touch raw math.Exp over time.
			Analyzer: nakedexp.Analyzer,
			Exclude:  []string{"anc/internal/decay", "anc/internal/lint/..."},
		},
		{
			// Exact float equality in the numeric kernels.
			Analyzer: floateq.Analyzer,
			Include: []string{
				"anc/internal/decay",
				"anc/internal/similarity",
				"anc/internal/cluster",
				"anc/internal/pyramid",
			},
		},
		{
			// Durability code must not drop Write/Sync/Close/Flush errors:
			// the WAL, the durable/concurrent wrappers, the CLIs, and the
			// whole serving stack (server, client, replication, obs, bench).
			Analyzer: droppederr.Analyzer,
			Include: []string{
				"anc",
				"anc/internal/wal",
				"anc/internal/serve/...",
				"anc/internal/obs/...",
				"anc/internal/bench",
				"anc/cmd/...",
			},
		},
		{
			// In core, only the snapshot encoder persists state.
			Analyzer: droppederr.Analyzer,
			Include:  []string{"anc/internal/core"},
			Files:    []string{"snapshot*.go"},
		},
		{
			// Replay-critical packages must be deterministic. The louvain
			// baseline is included because it documents a determinism
			// contract ("nodes are scanned in ID order") and seeds DYNA.
			Analyzer: determinism.Analyzer,
			Include: []string{
				"anc/internal/core",
				"anc/internal/pyramid",
				"anc/internal/cluster",
				"anc/internal/decay",
				"anc/internal/graph",
				"anc/internal/baseline/louvain",
				// The shared backoff helper: its one wall-clock read (the
				// seed-0 fallback) must stay explicitly annotated.
				"anc/internal/serve/backoff",
			},
		},
		{
			// The concurrency wrappers live in the root package.
			Analyzer: lockdiscipline.Analyzer,
			Include:  []string{"anc"},
		},
		{
			// Lock-acquisition ordering and no blocking calls under a held
			// mutex, in every package that mixes locks with goroutines or
			// network I/O.
			Analyzer: lockorder.Analyzer,
			Include: []string{
				"anc",
				"anc/internal/serve/...",
				"anc/internal/obs/...",
				"anc/internal/wal",
			},
		},
		{
			// Every goroutine needs a provable join/stop path, everywhere
			// except the lint tree's own fixtures and helpers.
			Analyzer: goleak.Analyzer,
			Exclude:  []string{"anc/internal/lint/..."},
		},
		{
			// //anclint:hotpath bodies must not allocate. Module-wide: the
			// annotation is opt-in per function, so unannotated packages are
			// free.
			Analyzer: hotalloc.Analyzer,
			Exclude:  []string{"anc/internal/lint/..."},
		},
		{
			// The wire-protocol package must keep every Op*/ErrCode*
			// constant fully wired: names, encoders, decoders, fuzz corpus,
			// client methods, metrics table.
			Analyzer: wirecomplete.Analyzer,
			Include:  []string{"anc/internal/serve"},
		},
		// Stock passes run module-wide.
		{Analyzer: copylocks.Analyzer},
		{Analyzer: lostcancel.Analyzer},
		{Analyzer: atomicheck.Analyzer},
	}
}
