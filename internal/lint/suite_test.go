package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anc/internal/lint"
	"anc/internal/lint/load"
	"anc/internal/lint/runner"
)

// TestSuiteAnalyzerRoster is the hand-maintained roster of the suite:
// adding an analyzer means adding it here too, and dropping one from
// Suite() — the easy way to silently lose a whole class of checks —
// fails this test.
func TestSuiteAnalyzerRoster(t *testing.T) {
	want := map[string]bool{
		"nakedexp":       true,
		"floateq":        true,
		"droppederr":     true,
		"determinism":    true,
		"lockdiscipline": true,
		"lockorder":      true,
		"goleak":         true,
		"hotalloc":       true,
		"wirecomplete":   true,
		"copylocks":      true,
		"lostcancel":     true,
		"atomic":         true,
	}
	got := map[string]bool{}
	for _, s := range lint.Suite() {
		got[s.Analyzer.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("Suite() lost analyzer %s", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("Suite() has unlisted analyzer %s; add it to the roster", name)
		}
	}
}

// TestSuiteAnalyzesEveryPackage runs the full suite the way cmd/anclint
// does and checks that every non-testdata package of the module was
// actually loaded and analyzed — a scoping or loader regression that
// silently skips packages must not pass CI.
func TestSuiteAnalyzesEveryPackage(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root := l.ModuleRoot()
	res, err := runner.RunWithOptions(root, []string{"./..."}, lint.Suite(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	analyzed := map[string]bool{}
	for _, p := range res.Packages {
		analyzed[p] = true
	}

	// Independent ground truth: walk the module tree for every directory
	// holding at least one non-test .go file, skipping testdata trees.
	var missing []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := l.ModulePath()
		if rel != "." {
			imp = imp + "/" + filepath.ToSlash(rel)
		}
		if !analyzed[imp] {
			missing = append(missing, imp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("anclint ./... did not analyze %d package(s): %v", len(missing), missing)
	}
	if len(res.Findings) != 0 {
		for _, f := range res.Findings {
			t.Errorf("repo not lint-clean: %s", f)
		}
	}
}
