package atomic

import "sync/atomic"

var hits int64

func bump() {
	hits = atomic.AddInt64(&hits, 1) // want "defeats the atomicity"
}

type stats struct{ n int64 }

func (s *stats) bump() {
	s.n = atomic.AddInt64(&s.n, 1) // want "defeats the atomicity"
}
