package atomic

import "sync/atomic"

var misses int64

func bumpMisses() int64 {
	atomic.AddInt64(&misses, 1)
	return atomic.LoadInt64(&misses)
}
