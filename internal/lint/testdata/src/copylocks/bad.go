package copylocks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) Bump() { // want "passes a lock by value"
	c.n++
}

func dup(c *counter) {
	cp := *c // want "assignment copies a lock-bearing value"
	cp.n++
}

func each(cs []counter) {
	for _, c := range cs { // want "range copies lock-bearing values"
		_ = c.n
	}
}
