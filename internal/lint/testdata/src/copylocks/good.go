package copylocks

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int
}

func (g *gauge) Bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func bumpAll(gs []*gauge) {
	for _, g := range gs {
		g.Bump()
	}
}
