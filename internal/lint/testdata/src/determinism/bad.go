package determinism

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now is wall-clock"
}

func draw() float64 {
	return rand.Float64() // want "global math/rand.Float64"
}

func flatten(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "appends to a slice that outlives the loop"
		out = append(out, v)
	}
	return out
}

func total(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "accumulates floats in iteration order"
		sum += v
	}
	return sum
}
