package determinism

import (
	"math/rand"
	"sort"
)

// Explicit seeded generators are replayable.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// The collect-then-sort idiom: appending only the range key is the
// sanctioned fix and is not flagged.
func flattenSorted(m map[int]float64) []float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Order-insensitive work inside a map range is fine.
func count(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
