package droppederr

type file struct{}

func (file) Close() error                { return nil }
func (file) Sync() error                 { return nil }
func (file) Write(p []byte) (int, error) { return len(p), nil }

func bareCalls(f file) {
	f.Close()    // want "error from Close is discarded"
	_ = f.Sync() // want "error from Sync is discarded"
}

func blankWrite(f file, p []byte) {
	_, _ = f.Write(p) // want "error from Write is discarded"
}

func deferred(f file) {
	defer f.Close() // want "error from Close is discarded"
}
