package droppederr

import "fmt"

type gfile struct{}

func (gfile) Close() error { return nil }
func (gfile) Sync() error  { return nil }

// Handled errors are the rule.
func handled(f gfile) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return f.Close()
}

// Cleanup on a path that already propagates a different error is exempt:
// the original failure matters more than the cleanup's.
func cleanupOnErrorPath(f gfile, err error) error {
	if err != nil {
		f.Close()
		return fmt.Errorf("op: %w", err)
	}
	return f.Close()
}
