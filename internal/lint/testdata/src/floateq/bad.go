package floateq

func changed(a, b float64) bool {
	return a == b // want "float equality =="
}

func differs(a, b float64) bool {
	return a != b // want "float equality !="
}

func viaExpr(a, b, c float64) bool {
	return a*b == c+1 // want "float equality =="
}
