package floateq

const eps = 1e-9

// Epsilon comparison is the sanctioned form.
func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Exact-zero sentinel checks are well-defined and allowed.
func isZeroed(a float64) bool {
	return a == 0
}

// Integer equality is not float equality.
func sameID(a, b int) bool {
	return a == b
}

// Constant folding: both sides compile-time constants.
func constCompare() bool {
	return 0.5 == 1.0/2.0
}
