// Package goleak exercises the goroutine-leak analyzer: every go
// statement needs join/stop evidence in its launched body.
package goleak

import (
	"context"
	"sync"
)

type worker struct {
	tasks chan int
	done  chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
}

// WaitGroup join: the owner waits via wg.Wait.
func (w *worker) startWG() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for t := range w.tasks {
			_ = t
		}
	}()
}

// Close-guarded done channel.
func (w *worker) startDone() {
	go func() {
		defer close(w.done)
		for t := range w.tasks {
			_ = t
		}
	}()
}

// Stop-channel select.
func (w *worker) startStop() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case t := <-w.tasks:
				_ = t
			}
		}
	}()
}

// Context cancellation.
func startCtx(ctx context.Context, tasks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-tasks:
				_ = t
			}
		}
	}()
}

// Loop-free completion send: the result channel is the join.
func startResult(compute func() int) chan int {
	result := make(chan int, 1)
	go func() {
		result <- compute()
	}()
	return result
}

// A named method whose body carries the evidence.
func (w *worker) loop() {
	defer close(w.done)
	for range w.tasks {
	}
}

func (w *worker) startMethod() {
	go w.loop()
}

// Evidence through a same-package helper call.
func (w *worker) helperDone() {
	w.wg.Done()
}

func (w *worker) runHelper() {
	defer w.helperDone()
	for range w.tasks {
	}
}

func (w *worker) startHelper() {
	w.wg.Add(1)
	go w.runHelper()
}

// Fire-and-forget polling loop: nothing stops it.
func (w *worker) poll() {}

func (w *worker) leak() {
	go func() { // want "no provable join or stop path"
		for {
			w.poll()
		}
	}()
}

// An infinite producer: a send inside a loop is not a completion signal.
func leakProducer(out chan int) {
	go func() { // want "no provable join or stop path"
		for i := 0; ; i++ {
			out <- i
		}
	}()
}

// A body from outside the package cannot be analyzed.
func leakExternal(srv interface{ ListenAndServe() error }) {
	go srv.ListenAndServe() // want "no provable join or stop path"
}
