// Package hotalloc exercises the hot-path allocation analyzer: bodies
// marked //anclint:hotpath must not contain allocating constructs;
// unmarked functions may do whatever they like.
package hotalloc

type point struct{ x, y int }

type sinkIface interface{ m() }

type impl struct{}

func (impl) m() {}

// ---- passing hot paths ----

//anclint:hotpath
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// putU32 packs in place: index writes into caller storage are free.
//
//anclint:hotpath
func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// A struct value literal stays on the stack.
//
//anclint:hotpath
func mid(a, b point) point {
	return point{(a.x + b.x) / 2, (a.y + b.y) / 2}
}

// Passing an interface value to an interface parameter does not box.
//
//anclint:hotpath
func forward(s sinkIface) {
	use(s)
}

// Comparisons and indexing on strings are allocation-free.
//
//anclint:hotpath
func strEq(a, b string) bool {
	return len(a) == len(b) && (len(a) == 0 || a[0] == b[0]) && a == b
}

// Unmarked: allocation is fine here.
func unmarked(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// ---- flagged hot paths ----

//anclint:hotpath
func badMake(n int) []int {
	return make([]int, n) // want "hotpath badMake: make allocates"
}

//anclint:hotpath
func badNew() *int {
	return new(int) // want "hotpath badNew: new allocates"
}

//anclint:hotpath
func badAddrLit() *point {
	return &point{1, 2} // want "hotpath badAddrLit: &composite-literal allocates"
}

//anclint:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want "hotpath badSliceLit: slice literal allocates"
}

//anclint:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want "hotpath badMapLit: map literal allocates"
}

//anclint:hotpath
func badAppend(xs []int, v int) []int {
	return append(xs, v) // want "hotpath badAppend: append may \(re\)allocate"
}

//anclint:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want "hotpath badClosure: closure allocates"
}

//anclint:hotpath
func badConcat(a, b string) string {
	return a + b // want "hotpath badConcat: string concatenation allocates"
}

//anclint:hotpath
func badBytes(s string) []byte {
	return []byte(s) // want "hotpath badBytes: string conversion copies and allocates"
}

//anclint:hotpath
func badString(b []byte) string {
	return string(b) // want "hotpath badString: string conversion copies and allocates"
}

//anclint:hotpath
func badExplicitIface(v impl) sinkIface {
	return sinkIface(v) // want "hotpath badExplicitIface: interface conversion boxes the value onto the heap"
}

//anclint:hotpath
func badImplicitIface(v int) {
	sinkAny(v) // want "hotpath badImplicitIface: argument boxed into interface parameter"
}

//anclint:hotpath
func badVariadicIface(a, b int) {
	sinkVariadic(a, b) // want "hotpath badVariadicIface: argument boxed into interface parameter" "hotpath badVariadicIface: argument boxed into interface parameter"
}

func use(sinkIface)               {}
func sinkAny(interface{})         {}
func sinkVariadic(...interface{}) {}
