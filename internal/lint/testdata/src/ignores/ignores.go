package ignores

// Suppressed by a lead comment: no finding.
func suppressed(a, b float64) bool {
	//anclint:ignore floateq bit-exact change detection is the intent here
	return a == b
}

// Suppressed by a trailing comment on the same line: no finding.
func suppressedTrailing(a, b float64) bool {
	return a == b //anclint:ignore floateq bit-exact change detection is the intent here
}

// A directive without a reason is malformed: the directive is reported
// and the finding it meant to suppress survives.
func malformed(a, b float64) bool {
	//anclint:ignore floateq
	return a != b
}

// No directive at all: reported.
func unsuppressed(a, b float64) bool {
	return a == b
}
