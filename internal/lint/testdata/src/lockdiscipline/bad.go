package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type inner struct{ n int }

type Wrapper struct {
	mu    sync.RWMutex
	inner *inner
}

func (w *Wrapper) Bad() int { // want "touches guarded state but does not start with w.mu.Lock/RLock"
	return w.inner.n
}

func (w *Wrapper) MissingDefer() int { // want "must defer w.mu.RUnlock directly after w.mu.RLock"
	w.mu.RLock()
	n := w.inner.n
	w.mu.RUnlock()
	return n
}

func (w *Wrapper) Size() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sizeLocked()
}

func (w *Wrapper) sizeLocked() int { return w.inner.n }

func (w *Wrapper) SelfCall() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Size() // want "calls exported method Size while holding w.mu"
}

// A Stats-style aggregate accessor must take the lock once for the whole
// snapshot, not read each guarded field bare.
type wrapperStats struct {
	A, B int
}

func (w *Wrapper) Stats() wrapperStats { // want "touches guarded state but does not start with w.mu.Lock/RLock"
	return wrapperStats{A: w.inner.n, B: w.inner.n * 2}
}

// An atomic field alongside plain guarded state exempts only itself: the
// plain read still demands the lock.
type Mixed struct {
	mu   sync.Mutex
	n    int
	acts atomic.Uint64
}

func (m *Mixed) Both() int { // want "touches guarded state but does not start with m.mu.Lock/RLock"
	_ = m.acts.Load()
	return m.n
}
