package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type state struct{ n int }

type Guarded struct {
	mu sync.Mutex
	st *state
}

func (g *Guarded) Add(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.st.n += n
}

// Exported entry points share code through unexported *Locked helpers.
func (g *Guarded) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lenLocked()
}

func (g *Guarded) lenLocked() int { return g.st.n }

// AggStats mirrors the Stats-style aggregate accessor: several guarded
// reads folded into one snapshot under a single lock acquisition.
type AggStats struct {
	Items, Total int
}

func (g *Guarded) Stats() AggStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AggStats{Items: 1, Total: g.st.n}
}

// Internally synchronized fields are not guarded state: an atomic
// snapshot counter may be read lock-free so metric scrapes never queue
// behind a long batch ingest held under mu.
type Counting struct {
	mu   sync.Mutex
	st   *state
	acts atomic.Uint64
}

func (c *Counting) Activations() uint64 { return c.acts.Load() }

func (c *Counting) Bump(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.n++
	c.acts.Add(n)
}
