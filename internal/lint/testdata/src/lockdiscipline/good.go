package lockdiscipline

import "sync"

type state struct{ n int }

type Guarded struct {
	mu sync.Mutex
	st *state
}

func (g *Guarded) Add(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.st.n += n
}

// Exported entry points share code through unexported *Locked helpers.
func (g *Guarded) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lenLocked()
}

func (g *Guarded) lenLocked() int { return g.st.n }

// AggStats mirrors the Stats-style aggregate accessor: several guarded
// reads folded into one snapshot under a single lock acquisition.
type AggStats struct {
	Items, Total int
}

func (g *Guarded) Stats() AggStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AggStats{Items: 1, Total: g.st.n}
}
