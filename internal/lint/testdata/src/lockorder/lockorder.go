// Package lockorder exercises the lock-acquisition-graph analyzer: lock
// cycles, self-reacquisition, and blocking calls (network I/O, channel
// send, Wait) made while a lock is held.
package lockorder

import (
	"net"
	"sync"
)

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// ab holds A.mu while taking B.mu; ba does the reverse. Together they
// form the classic two-lock cycle — both acquisition sites are flagged.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock cycle"
	b.n++
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "lock cycle"
	a.n++
	a.mu.Unlock()
}

// sequential releases B.mu before taking A.mu: no overlap, no edge, so
// it does not feed the ab/ba cycle.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// cd and holdsCallsLockD both order C.mu before D.mu — a consistent
// hierarchy, so the C→D edges never close a cycle.
func cd(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func holdsCallsLockD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d)
}

// again re-locks a mutex it already holds: immediate self-deadlock.
func again(c *C) {
	c.mu.Lock()
	c.mu.Lock() // want "acquired while already held"
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// holdsDuringIO reads from the network under the lock.
func holdsDuringIO(c *C, conn net.Conn, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn.Read(buf) // want "network I/O .* while holding C.mu"
	c.n++
}

// ioOutside releases first: fine.
func ioOutside(c *C, conn net.Conn, buf []byte) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	conn.Read(buf)
}

// dialHelper blocks on the network; callers holding a lock are flagged
// through the call-graph summary.
func dialHelper(addr string) net.Conn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	return conn
}

func holdsDuringDial(c *C, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dialHelper(addr) // want "call to dialHelper, which performs network I/O"
	c.n++
}

// sendWhileHeld blocks on an unbuffered peer under the lock; the select
// with a default in sendNonBlocking cannot block and passes.
func sendWhileHeld(c *C, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- 1 // want "channel send without a default case while holding C.mu"
	c.n++
}

func sendNonBlocking(c *C, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
	c.n++
}

// waitWhileHeld parks under the lock until other goroutines finish —
// goroutines that may themselves need the lock.
func waitWhileHeld(c *C, wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "Wait .*while holding C.mu"
	c.n++
}

// spawns launches a goroutine while holding the lock: the goroutine's
// body does not run under the lock, so its network read is fine.
func spawns(c *C, conn net.Conn, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	go func() {
		conn.Read(buf)
	}()
}

// E/F close a cycle where one direction goes through a helper call.
type E struct {
	mu sync.Mutex
	n  int
}

type F struct {
	mu sync.Mutex
	n  int
}

func lockE(e *E) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

func fThenE(f *F, e *E) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lockE(e) // want "lock cycle"
}

func eThenF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock() // want "lock cycle"
	f.n++
	f.mu.Unlock()
}
