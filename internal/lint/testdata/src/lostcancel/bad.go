package lostcancel

import (
	"context"
	"time"
)

func leak(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "cancel function returned by context.WithCancel is discarded"
	return ctx
}

func leakTimeout(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want "cancel function returned by context.WithTimeout is discarded"
	return ctx
}
