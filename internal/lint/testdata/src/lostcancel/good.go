package lostcancel

import "context"

func scoped(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}
