package nakedexp

import "math"

// A raw exp over a lambda/Δt product is exactly the drift bug the
// anchored decay clock exists to prevent.
func decayFactor(lambda, dt float64) float64 {
	return math.Exp(-lambda * dt) // want "raw math.Exp over time quantity"
}

func aged(now, anchor float64) float64 {
	return math.Exp(anchor - now) // want "raw math.Exp over time quantity"
}

type edge struct{ timestamp float64 }

func weight(e edge) float64 {
	return math.Exp(-e.timestamp) // want "raw math.Exp over time quantity"
}
