package nakedexp

import "math"

// Exponentials over non-time quantities are legitimate.
func softmaxish(x, y float64) float64 {
	return math.Exp(x) / (math.Exp(x) + math.Exp(y))
}

func gaussian(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z * z / 2)
}
