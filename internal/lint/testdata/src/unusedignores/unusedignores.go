// Package unusedignores exercises the runner's -unused-ignores check:
// directives that suppress a real finding survive, directives that
// suppress nothing are themselves reported.
package unusedignores

// Live: suppresses a real floateq finding, so -unused-ignores keeps it.
func live(a, b float64) bool {
	return a == b //anclint:ignore floateq bit-exact comparison is the point
}

// Dead: integers never trigger floateq, so this directive has no
// finding to suppress.
func deadWrongSite(a, b int) bool {
	return a == b //anclint:ignore floateq nothing here ever fires
}

// Dead: the analyzer name is typo'd, so it can never match a finding —
// and the floateq finding it meant to silence survives.
func deadTypo(a, b float64) bool {
	//anclint:ignore floateqq typo'd analyzer name
	return a == b
}
