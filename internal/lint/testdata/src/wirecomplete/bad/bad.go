// Package bad declares wire constants with missing wiring: OpOrphan
// exists only in the const block, OpTieRank is wired through the server
// side (name, codec, tests) but has no typed client method, ErrCodeLost
// has no name case or test coverage, and there is no [opMax]-sized
// metrics table.
package bad

// Wire ops.
const (
	OpPing    uint8 = iota + 1
	OpOrphan        // want "wire op OpOrphan: no case in any .Name function" "wire op OpOrphan: not referenced by any Encode function" "wire op OpOrphan: not referenced by any Decode function" "wire op OpOrphan: not referenced in any package test file" "wire op OpOrphan: no reference under client/"
	OpTieRank       // want "wire op OpTieRank: no reference under client/"
	opMax           // want "opMax: no .opMax.-sized array in the package"
)

// Error codes.
const (
	ErrCodeBad  uint8 = iota + 1
	ErrCodeLost       // want "error code ErrCodeLost: no case in any .Name function" "error code ErrCodeLost: not referenced in any package test file"
)

// OpName labels the ops it knows about.
func OpName(op uint8) string {
	switch op {
	case OpPing:
		return "ping"
	case OpTieRank:
		return "tierank"
	}
	return "unknown"
}

func errCodeName(code uint8) string {
	switch code {
	case ErrCodeBad:
		return "bad"
	}
	return "unknown"
}

// EncodeRequest knows OpPing and OpTieRank.
func EncodeRequest(op uint8, buf []byte) []byte {
	switch op {
	case OpPing, OpTieRank:
		buf = append(buf, op)
	}
	return buf
}

// DecodeRequest knows OpPing and OpTieRank.
func DecodeRequest(buf []byte) (uint8, bool) {
	if len(buf) == 1 && (buf[0] == OpPing || buf[0] == OpTieRank) {
		return buf[0], true
	}
	return 0, false
}

var _ = errCodeName
