package bad

import "testing"

// TestPing covers OpPing and ErrCodeBad only — OpOrphan and ErrCodeLost
// are deliberately absent from the corpus.
func TestPing(t *testing.T) {
	got, ok := DecodeRequest(EncodeRequest(OpPing, nil))
	if !ok || got != OpPing {
		t.Fatal("ping round trip")
	}
	_ = errCodeName(ErrCodeBad)
}
