package bad

import "testing"

// TestPing covers OpPing, OpTieRank and ErrCodeBad only — OpOrphan and
// ErrCodeLost are deliberately absent from the corpus.
func TestPing(t *testing.T) {
	for _, op := range []uint8{OpPing, OpTieRank} {
		got, ok := DecodeRequest(EncodeRequest(op, nil))
		if !ok || got != op {
			t.Fatal("round trip")
		}
	}
	_ = errCodeName(ErrCodeBad)
}
