// Package client references only OpPing — OpOrphan has no typed
// client method.
package client

var speaks = []uint8{OpPing}

const OpPing uint8 = 1
