// Package client is the raw-parsed typed client of the good protocol:
// it references every request op by name.
package client

// speaks lists the ops this client issues: OpPing, OpGet and OpEvolve.
// The analyzer matches the identifiers; this file is parsed, not
// compiled.
var speaks = []uint8{OpPing, OpGet, OpEvolve}

// Placeholder declarations so the file parses standalone.
const (
	OpPing   uint8 = 1
	OpGet    uint8 = 2
	OpEvolve uint8 = 3
)
