// Package good is a fully wired miniature protocol: every op has a
// name case, encoder and decoder references, a test reference (in
// good_test.go, raw-parsed) and a client reference (in client/,
// raw-parsed), and the per-op metrics table is sized by opMax.
package good

// Wire ops.
const (
	OpPing uint8 = iota + 1
	OpGet
	OpEvolve
	opMax
)

// Error codes.
const (
	ErrCodeBad uint8 = iota + 1
)

// table is the per-op metrics table, sized by the op space.
var table [opMax]uint64

// OpName labels each op.
func OpName(op uint8) string {
	switch op {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpEvolve:
		return "evolve"
	}
	return "unknown"
}

func errCodeName(code uint8) string {
	switch code {
	case ErrCodeBad:
		return "bad"
	}
	return "unknown"
}

// EncodeRequest produces the one-byte wire form.
func EncodeRequest(op uint8, buf []byte) []byte {
	switch op {
	case OpPing, OpGet, OpEvolve:
		buf = append(buf, op)
	}
	return buf
}

// DecodeRequest parses it back.
func DecodeRequest(buf []byte) (uint8, bool) {
	if len(buf) == 0 {
		return 0, false
	}
	switch buf[0] {
	case OpPing, OpGet, OpEvolve:
		return buf[0], true
	}
	return 0, false
}

// touch keeps the table and name helpers referenced.
func touch(op uint8) string {
	table[op]++
	return errCodeName(ErrCodeBad) + OpName(op)
}

var _ = touch
