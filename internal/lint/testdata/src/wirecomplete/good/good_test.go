package good

import "testing"

// TestRoundTrip is the raw-parsed test reference for every wire
// constant: OpPing, OpGet, OpEvolve and ErrCodeBad all round-trip.
func TestRoundTrip(t *testing.T) {
	for _, op := range []uint8{OpPing, OpGet, OpEvolve} {
		got, ok := DecodeRequest(EncodeRequest(op, nil))
		if !ok || got != op {
			t.Fatalf("round trip %d: got %d, %v", op, got, ok)
		}
	}
	if errCodeName(ErrCodeBad) != "bad" {
		t.Fatal("ErrCodeBad name")
	}
}
