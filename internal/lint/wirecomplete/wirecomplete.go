// Package wirecomplete checks that every wire-protocol constant is
// fully wired through the serving stack. PR 5's protocol review found
// the failure mode this automates away: an op constant added for one
// side of the wire and forgotten everywhere else — decodable but never
// encodable, invisible in metrics, untested against corruption, or
// unreachable from the client library.
//
// The analyzer activates on packages that declare exported integer
// constants named Op* together with a lowercase opMax terminator (the
// shape of internal/serve). For each op constant it requires:
//
//   - a reference inside a *Name function (OpName) — per-op metric
//     series and log lines are labeled by that switch, so a missing
//     case silently merges the op into "unknown";
//   - a reference inside an Encode* function and inside a Decode*
//     function — both directions of the wire must know the op (for
//     push-only ops the Decode reference is the explicit rejection);
//   - a reference in some *_test.go of the package directory — the
//     decode∘encode round-trip/fuzz corpus must include the op;
//   - a reference anywhere under the package's client/ subdirectory —
//     a typed client method — or an explicit
//     //anclint:ignore wirecomplete <reason> exemption on the constant.
//
// ErrCode* constants need the *Name case and the test reference.
// Finally, the package must declare an [opMax]-sized array — the
// per-op metrics table whose length tracks the op space by
// construction.
//
// Test files and the client/ subdirectory are not loaded by the module
// loader (it skips _test.go and nested packages), so those two checks
// parse the files directly from the package directory and match the
// constant by identifier name.
package wirecomplete

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"anc/internal/lint/analysis"
)

// Analyzer flags wire constants missing encoder, decoder, name, test,
// client or metrics wiring.
var Analyzer = &analysis.Analyzer{
	Name: "wirecomplete",
	Doc: "every Op*/ErrCode* wire constant needs a *Name case, Encode* " +
		"and Decode* references, a test-corpus reference, a client " +
		"method (or explicit exemption), and an [opMax]-sized metrics " +
		"table in the package",
	Run: run,
}

// wireConst is one Op*/ErrCode* constant under audit.
type wireConst struct {
	obj *types.Const
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	var ops, errCodes []wireConst
	var term *wireConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.ObjectOf(name).(*types.Const)
					if !ok || !isInteger(c.Type()) {
						continue
					}
					wc := wireConst{obj: c, pos: name.Pos()}
					switch {
					case strings.HasPrefix(name.Name, "Op") && ast.IsExported(name.Name):
						ops = append(ops, wc)
					case strings.HasPrefix(name.Name, "ErrCode"):
						errCodes = append(errCodes, wc)
					case name.Name == "opMax":
						t := wc
						term = &t
					}
				}
			}
		}
	}
	if len(ops) == 0 || term == nil {
		return nil, nil // not a wire-protocol package
	}

	named, encoded, decoded := scanFunctions(pass)
	dir := packageDir(pass)
	testRefs := identsIn(dir, func(name string) bool {
		return strings.HasSuffix(name, "_test.go")
	})
	clientRefs := identsIn(filepath.Join(dir, "client"), func(name string) bool {
		return strings.HasSuffix(name, ".go")
	})

	for _, op := range ops {
		n := op.obj.Name()
		if !named[op.obj] {
			pass.Reportf(op.pos,
				"wire op %s: no case in any *Name function; per-op metric series and log labels come from that switch", n)
		}
		if !encoded[op.obj] {
			pass.Reportf(op.pos,
				"wire op %s: not referenced by any Encode function; nothing can produce it on the wire", n)
		}
		if !decoded[op.obj] {
			pass.Reportf(op.pos,
				"wire op %s: not referenced by any Decode function; not even an explicit rejection parses it", n)
		}
		if !testRefs[n] {
			pass.Reportf(op.pos,
				"wire op %s: not referenced in any package test file; add it to the round-trip/fuzz corpus", n)
		}
		if !clientRefs[n] {
			pass.Reportf(op.pos,
				"wire op %s: no reference under client/; add a typed client method or exempt with //anclint:ignore wirecomplete <reason>", n)
		}
	}
	for _, ec := range errCodes {
		n := ec.obj.Name()
		if !named[ec.obj] {
			pass.Reportf(ec.pos,
				"error code %s: no case in any *Name function; error metrics are labeled by that switch", n)
		}
		if !testRefs[n] {
			pass.Reportf(ec.pos,
				"error code %s: not referenced in any package test file; error replies need round-trip coverage", n)
		}
	}
	if !hasOpSizedArray(pass, term.obj) {
		pass.Reportf(term.pos,
			"%s: no [%s]-sized array in the package; the per-op metrics table must be indexed by wire op so its length tracks the op space",
			term.obj.Name(), term.obj.Name())
	}
	return nil, nil
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// scanFunctions records, for every constant object, whether it is
// referenced inside a *Name, Encode* or Decode* function of the loaded
// package files.
func scanFunctions(pass *analysis.Pass) (named, encoded, decoded map[types.Object]bool) {
	named = map[types.Object]bool{}
	encoded = map[types.Object]bool{}
	decoded = map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fname := fd.Name.Name
			isName := strings.Contains(fname, "Name")
			isEnc := hasPrefixFold(fname, "encode")
			isDec := hasPrefixFold(fname, "decode")
			if !isName && !isEnc && !isDec {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pass.ObjectOf(id).(*types.Const)
				if !ok {
					return true
				}
				if isName {
					named[obj] = true
				}
				if isEnc {
					encoded[obj] = true
				}
				if isDec {
					decoded[obj] = true
				}
				return true
			})
		}
	}
	return named, encoded, decoded
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// packageDir resolves the on-disk directory of the package under
// analysis from its first file's position.
func packageDir(pass *analysis.Pass) string {
	for _, f := range pass.Files {
		return filepath.Dir(pass.Fset.Position(f.Pos()).Filename)
	}
	return ""
}

// identsIn parses every file of dir accepted by keep (without
// type-checking — these are files the module loader skips) and returns
// the set of identifier names appearing in them. A missing or
// unreadable directory yields an empty set: the absence of references
// is exactly what the caller then reports.
func identsIn(dir string, keep func(name string) bool) map[string]bool {
	names := map[string]bool{}
	if dir == "" {
		return names
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return names
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || !keep(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				names[id.Name] = true
			}
			return true
		})
	}
	return names
}

// hasOpSizedArray reports whether any array type in the package uses
// the terminator constant as its length.
func hasOpSizedArray(pass *analysis.Pass, term *types.Const) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			at, ok := n.(*ast.ArrayType)
			if !ok || at.Len == nil {
				return true
			}
			if id, ok := ast.Unparen(at.Len).(*ast.Ident); ok && pass.ObjectOf(id) == term {
				found = true
			}
			return true
		})
	}
	return found
}
