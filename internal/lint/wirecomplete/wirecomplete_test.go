package wirecomplete_test

import (
	"testing"

	"anc/internal/lint/analysistest"
	"anc/internal/lint/wirecomplete"
)

func TestWireComplete(t *testing.T) {
	analysistest.Run(t, "../testdata", wirecomplete.Analyzer,
		"wirecomplete/good", "wirecomplete/bad")
}
