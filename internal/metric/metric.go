// Package metric implements the distance metric M_t of Section IV-C: the
// pairwise shortest distance on the relation graph under the reciprocal
// similarity edge weight 1/S_t. The attraction strength of two nodes is
// 1/dist(u, v) — the maximum over u-v paths of the harmonic mean of edge
// similarities divided by the hop count, which is how the shortest distance
// propagates local structural coherence (the paper's key observation).
//
// The package also provides the plain and multi-source Dijkstra primitives
// shared by the pyramids index and used as the brute-force reference in
// tests of the incremental update algorithms.
package metric

import (
	"math"

	"anc/internal/graph"
	"anc/internal/pq"
)

// WeightFunc maps an edge ID to its positive weight (normally 1/S*).
type WeightFunc func(e graph.EdgeID) float64

// Inf is the distance of unreachable nodes.
var Inf = math.Inf(1)

// Dijkstra computes single-source shortest distances from src under w.
// Returns dist (Inf for unreachable) and parent (graph.None for roots and
// unreachable nodes).
func Dijkstra(g *graph.Graph, src graph.NodeID, w WeightFunc) (dist []float64, parent []graph.NodeID) {
	return MultiSourceDijkstra(g, []graph.NodeID{src}, w)
}

// MultiSourceDijkstra runs Dijkstra with every node of srcs at distance 0
// (the super-source construction of the Voronoi partition in Section V-A).
// parent[v] is v's predecessor on its shortest path from the closest
// source; sources have parent None.
func MultiSourceDijkstra(g *graph.Graph, srcs []graph.NodeID, w WeightFunc) (dist []float64, parent []graph.NodeID) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = graph.None
	}
	h := pq.New(n)
	for _, s := range srcs {
		dist[s] = 0
		h.Push(s, 0)
	}
	for h.Len() > 0 {
		x, d := h.Pop()
		if d > dist[x] {
			continue
		}
		for _, half := range g.Neighbors(x) {
			nd := d + w(half.Edge)
			if nd < dist[half.To] {
				dist[half.To] = nd
				parent[half.To] = x
				h.Push(half.To, nd)
			}
		}
	}
	return dist, parent
}

// Distance returns dist(u, v) under w, or Inf if disconnected. O(m log n);
// intended for reference computations and small queries — index-backed
// queries go through the pyramids.
func Distance(g *graph.Graph, u, v graph.NodeID, w WeightFunc) float64 {
	if u == v {
		return 0
	}
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[u] = 0
	h := pq.New(n)
	h.Push(u, 0)
	for h.Len() > 0 {
		x, d := h.Pop()
		if x == v {
			return d
		}
		if d > dist[x] {
			continue
		}
		for _, half := range g.Neighbors(x) {
			nd := d + w(half.Edge)
			if nd < dist[half.To] {
				dist[half.To] = nd
				h.Push(half.To, nd)
			}
		}
	}
	return Inf
}

// Attraction returns the attraction strength 1/dist(u, v) of Section IV-C:
// the maximum over all u-v paths of the harmonic mean of the edge
// similarities on the path divided by the number of hops. Zero for
// disconnected pairs; Inf never occurs for u ≠ v since weights are positive.
func Attraction(g *graph.Graph, u, v graph.NodeID, w WeightFunc) float64 {
	d := Distance(g, u, v, w)
	if math.IsInf(d, 1) {
		return 0
	}
	if d == 0 {
		return Inf
	}
	return 1 / d
}

// PathAttraction evaluates the attraction of one explicit path given edge
// similarities s: (harmonic mean of s over the path) / hops. It exists to
// let tests verify that Attraction equals the max over paths.
func PathAttraction(sims []float64) float64 {
	if len(sims) == 0 {
		return Inf
	}
	sumInv := 0.0
	for _, s := range sims {
		if s <= 0 {
			return 0
		}
		sumInv += 1 / s
	}
	// harmonic mean / hops = (len/sumInv) / len = 1/sumInv.
	return 1 / sumInv
}
