package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
)

func build(t testing.TB, n int, edges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func unitWeight(graph.EdgeID) float64 { return 1 }

func TestDijkstraPath(t *testing.T) {
	// 0-1-2-3 path plus shortcut 0-3 with heavy weight.
	g := build(t, 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	w := func(e graph.EdgeID) float64 {
		u, v := g.Endpoints(e)
		if u == 0 && v == 3 {
			return 10
		}
		return 1
	}
	dist, parent := Dijkstra(g, 0, w)
	want := []float64{0, 1, 2, 3}
	for v, d := range dist {
		if d != want[v] {
			t.Errorf("dist[%d] = %v, want %v", v, d, want[v])
		}
	}
	if parent[0] != graph.None || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 {
		t.Errorf("parents = %v", parent)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := build(t, 4, [][2]graph.NodeID{{0, 1}, {2, 3}})
	dist, parent := Dijkstra(g, 0, unitWeight)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Errorf("unreachable dist = %v", dist)
	}
	if parent[2] != graph.None {
		t.Errorf("unreachable parent = %v", parent[2])
	}
}

func TestMultiSourceVoronoi(t *testing.T) {
	// Path 0-1-2-3-4 with sources {0, 4}: node 2 ties, goes to the source
	// whose relaxation wins deterministically (via smaller dist first; tie
	// at equal distance keeps first setter — node 1 relaxes 2 before 3 does
	// because heap breaks ties by smaller node ID).
	g := build(t, 5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	dist, parent := MultiSourceDijkstra(g, []graph.NodeID{0, 4}, unitWeight)
	wantDist := []float64{0, 1, 2, 1, 0}
	for v := range wantDist {
		if dist[v] != wantDist[v] {
			t.Errorf("dist[%d] = %v, want %v", v, dist[v], wantDist[v])
		}
	}
	if parent[1] != 0 || parent[3] != 4 {
		t.Errorf("parents = %v", parent)
	}
}

func TestDistanceSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		weights := make([]float64, g.M())
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()*5
		}
		w := func(e graph.EdgeID) float64 { return weights[e] }
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		du := Distance(g, u, v, w)
		dv := Distance(g, v, u, w)
		if math.IsInf(du, 1) && math.IsInf(dv, 1) {
			return true
		}
		return math.Abs(du-dv) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTriangleInequalityProperty: shortest distances always satisfy the
// triangle inequality, making M_t a true metric on connected components.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		weights := make([]float64, g.M())
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
		w := func(e graph.EdgeID) float64 { return weights[e] }
		a := graph.NodeID(rng.Intn(n))
		bn := graph.NodeID(rng.Intn(n))
		c := graph.NodeID(rng.Intn(n))
		dab := Distance(g, a, bn, w)
		dbc := Distance(g, bn, c, w)
		dac := Distance(g, a, c, w)
		if math.IsInf(dab, 1) || math.IsInf(dbc, 1) {
			return true
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceMatchesDijkstra: the early-exit Distance equals the full
// single-source run.
func TestDistanceMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		weights := make([]float64, g.M())
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()
		}
		w := func(e graph.EdgeID) float64 { return weights[e] }
		src := graph.NodeID(rng.Intn(n))
		dist, _ := Dijkstra(g, src, w)
		for v := 0; v < n; v++ {
			d := Distance(g, src, graph.NodeID(v), w)
			if math.IsInf(d, 1) != math.IsInf(dist[v], 1) {
				return false
			}
			if !math.IsInf(d, 1) && math.Abs(d-dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAttractionIsHarmonicMeanOverHops verifies the paper's formulation:
// on a single path graph, attraction(ends) = (harmonic mean of sims)/hops.
func TestAttractionIsHarmonicMeanOverHops(t *testing.T) {
	sims := []float64{2, 0.5, 1, 4}
	edges := make([][2]graph.NodeID, len(sims))
	for i := range sims {
		edges[i] = [2]graph.NodeID{graph.NodeID(i), graph.NodeID(i + 1)}
	}
	g := build(t, len(sims)+1, edges)
	w := func(e graph.EdgeID) float64 {
		u, _ := g.Endpoints(e)
		return 1 / sims[u] // edge i connects (i, i+1); u = i
	}
	got := Attraction(g, 0, graph.NodeID(len(sims)), w)
	// Harmonic mean H = L / Σ 1/s; attraction = H / L = 1 / Σ 1/s.
	sumInv := 0.0
	for _, s := range sims {
		sumInv += 1 / s
	}
	want := 1 / sumInv
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("attraction = %v, want %v", got, want)
	}
	if pa := PathAttraction(sims); math.Abs(pa-want) > 1e-12 {
		t.Fatalf("PathAttraction = %v, want %v", pa, want)
	}
}

func TestAttractionEdgeCases(t *testing.T) {
	g := build(t, 3, [][2]graph.NodeID{{0, 1}})
	if a := Attraction(g, 0, 2, unitWeight); a != 0 {
		t.Errorf("disconnected attraction = %v, want 0", a)
	}
	if a := Attraction(g, 1, 1, unitWeight); !math.IsInf(a, 1) {
		t.Errorf("self attraction = %v, want +Inf", a)
	}
	if pa := PathAttraction(nil); !math.IsInf(pa, 1) {
		t.Errorf("empty path attraction = %v", pa)
	}
	if pa := PathAttraction([]float64{1, 0}); pa != 0 {
		t.Errorf("zero-similarity path attraction = %v", pa)
	}
}

// TestAttractionMaxOverPaths: adding a better path can only increase
// attraction (monotonicity of max over paths).
func TestAttractionMaxOverPaths(t *testing.T) {
	// Two parallel routes 0->1->3 and 0->2->3 with different similarities.
	g := build(t, 4, [][2]graph.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	sims := map[graph.EdgeID]float64{}
	for e := 0; e < g.M(); e++ {
		u, _ := g.Endpoints(graph.EdgeID(e))
		if u == 0 {
			sims[graph.EdgeID(e)] = 1
		} else {
			sims[graph.EdgeID(e)] = 1
		}
	}
	// Route via 1: sims (2, 2); route via 2: sims (1, 1).
	sims[g.FindEdge(0, 1)] = 2
	sims[g.FindEdge(1, 3)] = 2
	w := func(e graph.EdgeID) float64 { return 1 / sims[e] }
	got := Attraction(g, 0, 3, w)
	if want := 1.0; math.Abs(got-want) > 1e-12 { // via 1: 1/(0.5+0.5) = 1
		t.Fatalf("attraction = %v, want %v (best path should win)", got, want)
	}
}
