package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets spans 1µs .. 10s in roughly 2.5× steps — wide
// enough for everything from an in-memory counter bump to a slow fsync or
// a full pyramid reconstruction, and fine enough near the bottom that
// p50/p95 of microsecond-scale operations interpolate usefully.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// ExponentialBuckets returns n upper bounds starting at start, each factor
// times the previous — the helper for size-style histograms (batch
// records, payload bytes). start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// atomicFloat accumulates a float64 with a CAS loop over its bit pattern,
// keeping the histogram update path lock-free.
type atomicFloat struct {
	bits atomic.Uint64
}

//anclint:hotpath
func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Buckets hold non-cumulative per-bucket counts (the renderer accumulates
// them into Prometheus's cumulative form); quantiles are estimated by
// linear interpolation within the bucket containing the rank. All methods
// are nil-safe.
//
// A scrape may run concurrently with observations, so a rendered snapshot
// is not a single atomic cut: count, sum and buckets each advance
// monotonically but can be read a few observations apart. Prometheus
// tolerates this (it rates and re-accumulates server-side).
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds, immutable
	counts []atomic.Uint64
	inf    atomic.Uint64 // observations above the last bound
	total  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(upper []float64) *Histogram {
	bounds := make([]float64, len(upper))
	copy(bounds, upper)
	sort.Float64s(bounds)
	return &Histogram{
		upper:  bounds,
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// Observe records one value.
//
//anclint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.total.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) by locating the bucket
// holding the rank and interpolating linearly inside it. Observations in
// the overflow bucket clamp to the largest finite bound. Returns 0 for an
// empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 || len(h.upper) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			hi := h.upper[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// Timer measures one duration into a histogram; obtain one from Start and
// call Stop when the operation completes. The zero Timer (and any timer
// from a nil histogram) is a no-op that never reads the clock, so timed
// sections cost nothing when observability is off.
type Timer struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing an operation (no-op timer on a nil histogram).
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, t0: time.Now()}
}

// Stop records the elapsed seconds since Start.
func (t Timer) Stop() {
	if t.h != nil {
		t.h.Observe(time.Since(t.t0).Seconds())
	}
}

// Stopwatch measures elapsed wall time unconditionally — for durations
// that must be captured before a registry exists (e.g. index build time,
// observed later at instrument time). obs is the one layer of the repo
// allowed to read the wall clock: timing captured here feeds metrics only,
// never replayed state, which is what the determinism lint protects.
type Stopwatch struct {
	t0 time.Time
}

// NewStopwatch starts measuring now.
func NewStopwatch() Stopwatch { return Stopwatch{t0: time.Now()} }

// Seconds returns the elapsed time since NewStopwatch in seconds.
func (s Stopwatch) Seconds() float64 { return time.Since(s.t0).Seconds() }
