package obs

import "testing"

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath
// contract (DESIGN.md §14): the instrument-side handle methods must run
// allocation-free, both live and with observability off (nil handles).
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("anc_test_hot_counter", "t")
	g := reg.Gauge("anc_test_hot_gauge", "t")
	h := reg.Histogram("anc_test_hot_hist", "t", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Inc()
		g.Dec()
		g.Add(-2)
		h.Observe(1.5e-4)
	}); n != 0 {
		t.Errorf("live handles: %v allocs/op, want 0", n)
	}

	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nc.Add(3)
		ng.Set(7)
		ng.Add(-2)
		nh.Observe(1.5e-4)
	}); n != 0 {
		t.Errorf("nil handles: %v allocs/op, want 0", n)
	}
}

// BenchmarkHotPathHandles is run by `make bench-smoke` under -benchmem
// so a handle-method allocation regression is visible as allocs/op.
func BenchmarkHotPathHandles(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("anc_bench_hot_counter", "t")
	h := reg.Histogram("anc_bench_hot_hist", "t", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i%1000) * 1e-6)
	}
}
