package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's Prometheus text exposition. A nil
// registry serves an empty (but well-formed) exposition, so a metrics
// listener can come up before anything is instrumented.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// NewMux returns the operational HTTP surface: /metrics (Prometheus
// exposition of r), /healthz (the given handler, skipped when nil),
// /debug/traces (the given flight-recorder handler, skipped when nil —
// pass trace.Tracer.Handler()), and the net/http/pprof profiling
// endpoints under /debug/pprof/. This is what ancserve binds on
// -metrics-addr.
func NewMux(r *Registry, healthz, traces http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	if healthz != nil {
		mux.Handle("/healthz", healthz)
	}
	if traces != nil {
		mux.Handle("/debug/traces", traces)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
