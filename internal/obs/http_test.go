package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMuxPprofEndpoints smoke-scrapes the pprof surface the operational
// mux exposes — the pages an operator reaches for first during an
// incident — and checks the scrapes leak no goroutines (a stuck pprof
// handler would hold its connection goroutine forever).
func TestMuxPprofEndpoints(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	reg.Counter("anc_test_pprof_counter", "t").Inc()
	RegisterRuntimeGauges(reg)

	srv := httptest.NewServer(NewMux(reg, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`)) //anclint:ignore droppederr test handler
	}), nil))

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profile listing:\n%s", body)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine profile") {
		t.Fatalf("goroutine profile malformed:\n%s", body)
	}
	if body := get("/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap profile") {
		t.Fatalf("heap profile malformed:\n%s", body)
	}
	get("/debug/pprof/cmdline")
	if body := get("/metrics"); !strings.Contains(body, "anc_test_pprof_counter") ||
		!strings.Contains(body, "anc_runtime_goroutines") {
		t.Fatalf("/metrics missing expected series:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %s", body)
	}

	srv.Close()
	// Idle HTTP conns unwind asynchronously; retry before declaring a leak.
	for i := 0; ; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if i >= 50 {
			t.Fatalf("goroutine leak after pprof scrapes: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRuntimeGauges exercises the gauge-func callbacks directly through
// a snapshot: the values must be live and sane.
func TestRuntimeGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeGauges(reg)
	// Force at least one GC so the pause histogram is populated.
	runtime.GC()
	snap := reg.Snapshot()
	if g := snap["anc_runtime_goroutines"]; g < 1 {
		t.Fatalf("anc_runtime_goroutines = %v, want >= 1", g)
	}
	if h := snap["anc_runtime_heap_bytes"]; h <= 0 {
		t.Fatalf("anc_runtime_heap_bytes = %v, want > 0", h)
	}
	if p, ok := snap["anc_runtime_gc_pause_p99_seconds"]; !ok || p < 0 {
		t.Fatalf("anc_runtime_gc_pause_p99_seconds = %v (present %v)", p, ok)
	}
	// Re-registration must not panic or double-register.
	RegisterRuntimeGauges(reg)
	RegisterRuntimeGauges(nil)
}
