package obs

import (
	"fmt"
	"strings"
)

// Level classifies a log line's severity.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level-%d", l)
}

// Logger is the serving stack's one structured logger: leveled key=value
// lines over a printf-style sink, so every line a subsystem emits has
// the same grep-able shape (level=… sys=… msg=… op=… trace=…) instead
// of ad-hoc Printf formats. A nil *Logger discards everything, so
// subsystems log unconditionally.
//
// The sink indirection keeps the logger composable with what callers
// already have: tests pass t.Logf, ancserve passes its stderr logger's
// Printf, and the serve/repl Config Logf fields keep working unchanged.
type Logger struct {
	name string
	min  Level
	sink func(format string, args ...interface{})
}

// NewLogger builds a logger for the named subsystem that emits lines at
// or above min through sink. A nil sink returns a nil (discard-all)
// logger.
func NewLogger(name string, min Level, sink func(format string, args ...interface{})) *Logger {
	if sink == nil {
		return nil
	}
	return &Logger{name: name, min: min, sink: sink}
}

// Named returns a logger sharing l's sink and level under a different
// subsystem name. Nil-safe.
func (l *Logger) Named(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{name: name, min: l.min, sink: l.sink}
}

func (l *Logger) Debug(msg string, kv ...interface{}) { l.log(LevelDebug, msg, kv...) }
func (l *Logger) Info(msg string, kv ...interface{})  { l.log(LevelInfo, msg, kv...) }
func (l *Logger) Warn(msg string, kv ...interface{})  { l.log(LevelWarn, msg, kv...) }
func (l *Logger) Error(msg string, kv ...interface{}) { l.log(LevelError, msg, kv...) }

// log formats one key=value line. kv alternates keys and values; a
// dangling key is emitted with the value "(missing)" rather than
// dropped, so a miscounted call site is visible in the output.
func (l *Logger) log(level Level, msg string, kv ...interface{}) {
	if l == nil || level < l.min {
		return
	}
	line := "level=" + level.String() + " sys=" + l.name + " msg=" + quote(msg)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "(missing)"
		if i+1 < len(kv) {
			val = fmt.Sprint(kv[i+1])
		}
		line += " " + key + "=" + quote(val)
	}
	l.sink("%s", line)
}

// quote wraps values containing spaces, quotes or equals signs so the
// line stays unambiguously splittable on spaces.
func quote(s string) string {
	if strings.ContainsAny(s, " \"=\t\n") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
