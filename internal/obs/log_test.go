package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestLoggerFormat(t *testing.T) {
	var lines []string
	log := NewLogger("serve", LevelInfo, func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	log.Warn("slow request", "op", "clusters", "took", "1.2s", "trace", "00c0ffee00c0ffee")
	if len(lines) != 1 {
		t.Fatalf("%d lines, want 1", len(lines))
	}
	want := `level=warn sys=serve msg="slow request" op=clusters took=1.2s trace=00c0ffee00c0ffee`
	if lines[0] != want {
		t.Fatalf("got  %q\nwant %q", lines[0], want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var n int
	log := NewLogger("repl", LevelWarn, func(string, ...interface{}) { n++ })
	log.Debug("d")
	log.Info("i")
	log.Warn("w")
	log.Error("e")
	if n != 2 {
		t.Fatalf("%d lines passed a warn-level filter, want 2", n)
	}
}

func TestLoggerQuoting(t *testing.T) {
	var line string
	log := NewLogger("s", LevelDebug, func(format string, args ...interface{}) {
		line = fmt.Sprintf(format, args...)
	})
	log.Info("msg", "k", `a "b" = c`, "empty", "")
	if !strings.Contains(line, `k="a \"b\" = c"`) || !strings.Contains(line, `empty=""`) {
		t.Fatalf("values not quoted: %q", line)
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	var line string
	log := NewLogger("s", LevelDebug, func(format string, args ...interface{}) {
		line = fmt.Sprintf(format, args...)
	})
	log.Info("m", "orphan")
	if !strings.Contains(line, "orphan=(missing)") {
		t.Fatalf("dangling key not surfaced: %q", line)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var log *Logger
	log.Info("into the void", "k", "v") // must not panic
	if NewLogger("x", LevelInfo, nil) != nil {
		t.Fatal("nil sink must yield the nil logger")
	}
	if log.Named("other") != nil {
		t.Fatal("Named on nil must stay nil")
	}
	var lines int
	real := NewLogger("a", LevelInfo, func(string, ...interface{}) { lines++ })
	real.Named("b").Info("m")
	if lines != 1 {
		t.Fatal("Named logger lost the sink")
	}
}
