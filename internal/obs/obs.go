// Package obs is the in-process observability layer: atomic counters,
// gauges and fixed-bucket histograms collected in a Registry that renders
// both a typed snapshot (for embedding in JSON artifacts and CLI output)
// and the Prometheus text exposition format for scraping.
//
// The package is dependency-free by design — the repo's no-new-deps rule
// applies to the serving path above all — and built so that instrumented
// code costs near zero when no registry is attached:
//
//   - Every handle constructor is nil-safe: calling Counter/Gauge/Histogram
//     on a nil *Registry returns a nil handle.
//   - Every handle method is nil-safe: Inc/Add/Set/Observe on a nil handle
//     is a single predictable branch and no memory traffic.
//   - The update fast path takes no locks: counters and gauges are single
//     atomic adds, histograms are one atomic add per bucket plus a CAS loop
//     for the float sum. The registry mutex is only taken at registration
//     and scrape time.
//
// Metric names follow the repo-wide scheme anc_<layer>_<name>
// (anc_serve_requests_total, anc_wal_fsync_seconds, ...); see DESIGN.md §12.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe on a
// nil receiver (no-ops), so instrumented code never branches on "is the
// registry attached".
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//anclint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//anclint:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
//
//anclint:hotpath
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//anclint:hotpath
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Inc adds one.
//
//anclint:hotpath
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
//
//anclint:hotpath
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds n (which may be negative).
//
//anclint:hotpath
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil handle).
//
//anclint:hotpath
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of counters split by one label; With returns the
// child for a label value, creating it on first use. Callers on hot paths
// should cache the child handle rather than calling With per event.
type CounterVec struct {
	fam *family
}

// With returns the counter child for the given label value (nil on a nil
// vec, so a cached child from a disabled registry stays free).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.counterChild(value)
}

// kind discriminates what a registered family holds.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric family: either a single unlabeled child (key
// "") or, for CounterVec, one child per label value.
type family struct {
	name     string
	help     string
	kind     kind
	labelKey string // "" for unlabeled families

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fns      map[string]func() float64
	hists    map[string]*Histogram
	buckets  []float64 // histogram bucket upper bounds
}

func (f *family) counterChild(value string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[value]
	if !ok {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// childKeys returns the family's label values in sorted order.
func (f *family) childKeys() []string {
	var keys []string
	switch f.kind {
	case kindCounter:
		for k := range f.counters {
			keys = append(keys, k)
		}
	case kindGauge:
		for k := range f.gauges {
			keys = append(keys, k)
		}
	case kindGaugeFunc, kindCounterFunc:
		for k := range f.fns {
			keys = append(keys, k)
		}
	case kindHistogram:
		for k := range f.hists {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid "observability off" value:
// every registration method returns a nil handle.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// lookup returns the family for name, creating it on first registration.
// Re-registering an existing name with the same kind and label key returns
// the existing family, so independently instrumented layers can share a
// registry without coordination; a kind or label mismatch panics (it is a
// programming error, not an operational condition).
func (r *Registry) lookup(name, help string, k kind, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			kind:     k,
			labelKey: labelKey,
			counters: map[string]*Counter{},
			gauges:   map[string]*Gauge{},
			fns:      map[string]func() float64{},
			hists:    map[string]*Histogram{},
		}
		r.fams[name] = f
		return f
	}
	if f.kind != k || f.labelKey != labelKey {
		panic(fmt.Sprintf("obs: %s re-registered as %s(label %q), was %s(label %q)",
			name, k, labelKey, f.kind, f.labelKey))
	}
	return f
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, "").counterChild("")
}

// CounterVec registers (or returns the existing) counter family split by
// one label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, kindCounter, labelKey)}
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gauges[""]
	if !ok {
		g = &Gauge{}
		f.gauges[""] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time — the natural fit for values another subsystem already
// maintains (queue depths, pool occupancy). fn must be safe for concurrent
// use. Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGaugeFunc, "")
	f.mu.Lock()
	f.fns[""] = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is sampled by calling fn at
// scrape time — for monotone totals another subsystem already maintains in
// its own atomics (the clustering cache's hit/miss counters). fn must be
// safe for concurrent use and monotonically non-decreasing. Re-registering
// replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindCounterFunc, "")
	f.mu.Lock()
	f.fns[""] = fn
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (ascending; an implicit +Inf bucket is appended).
// Passing nil buckets uses DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	f := r.lookup(name, help, kindHistogram, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[""]
	if !ok {
		h = newHistogram(buckets)
		f.buckets = h.upper
		f.hists[""] = h
	}
	return h
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Snapshot flattens every metric into a name → value map: counters and
// gauges under their exposition name (children as name{key="value"}),
// histograms as name_count, name_sum and interpolated name_p50 / name_p95 /
// name_p99. The map is freshly allocated and safe to mutate; it is the
// form embedded in BENCH_*.json artifacts and printed by anccli. A nil
// registry yields an empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	for _, f := range r.families() {
		f.mu.Lock()
		for _, key := range f.childKeys() {
			name := f.name
			if key != "" {
				name = fmt.Sprintf("%s{%s=%q}", f.name, f.labelKey, key)
			}
			switch f.kind {
			case kindCounter:
				out[name] = float64(f.counters[key].Value())
			case kindGauge:
				out[name] = float64(f.gauges[key].Value())
			case kindGaugeFunc, kindCounterFunc:
				out[name] = f.fns[key]()
			case kindHistogram:
				h := f.hists[key]
				out[name+"_count"] = float64(h.Count())
				out[name+"_sum"] = h.Sum()
				out[name+"_p50"] = h.Quantile(0.50)
				out[name+"_p95"] = h.Quantile(0.95)
				out[name+"_p99"] = h.Quantile(0.99)
			}
		}
		f.mu.Unlock()
	}
	return out
}
