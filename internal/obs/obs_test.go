package obs

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
)

// goldenRegistry builds the fixed registry behind testdata/golden.prom.
// Observed values are exactly representable in binary so the rendered sum
// is byte-stable.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("anc_test_ops_total", "total operations").Add(3)
	v := reg.CounterVec("anc_test_requests_total", "requests by op", "op")
	v.With("get").Inc()
	v.With("put").Add(2)
	reg.Gauge("anc_test_queue_depth", "ingest queue depth").Set(7)
	reg.GaugeFunc("anc_test_load", "sampled load", func() float64 { return 1.5 })
	h := reg.Histogram("anc_test_latency_seconds", "request latency", []float64{0.1, 1, 10})
	h.Observe(0.0625)
	h.Observe(5)
	h.Observe(99)
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramQuantileOracle checks the interpolated quantile against a
// sorted-slice oracle: the estimate must land inside the bucket that
// contains the true order statistic.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	h := newHistogram(DefaultLatencyBuckets)
	vals := make([]float64, n)
	for i := range vals {
		// Exponential around 1ms: spans several buckets with a long tail.
		vals[i] = rng.ExpFloat64() * 1e-3
		h.Observe(vals[i])
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(math.Ceil(q*float64(n))) - 1
		oracle := sorted[rank]
		est := h.Quantile(q)
		// The bucket holding the oracle value: (lo, hi].
		i := sort.SearchFloat64s(h.upper, oracle)
		if i >= len(h.upper) {
			t.Fatalf("q=%g: oracle %g beyond the last bucket; widen DefaultLatencyBuckets", q, oracle)
		}
		lo := 0.0
		if i > 0 {
			lo = h.upper[i-1]
		}
		hi := h.upper[i]
		if est < lo || est > hi {
			t.Errorf("q=%g: estimate %g outside oracle bucket (%g, %g] (oracle %g)", q, est, lo, hi, oracle)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	nilH.Start().Stop()
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}

	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(1e9) // overflow bucket only
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("overflow-only quantile = %g, want last finite bound 1", got)
	}
	if h.Count() != 1 || h.Sum() != 1e9 {
		t.Errorf("count/sum = %d/%g, want 1/1e9", h.Count(), h.Sum())
	}

	h2 := newHistogram([]float64{1, 2})
	h2.Start().Stop()
	if h2.Count() != 1 {
		t.Errorf("timer did not observe: count = %d", h2.Count())
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y", "")
	g.Set(3)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	v := r.CounterVec("z", "", "op")
	v.With("a").Inc()
	r.GaugeFunc("w", "", func() float64 { return 1 })
	h := r.Histogram("h", "", nil)
	h.Observe(1)
	if got := len(r.Snapshot()); got != 0 {
		t.Errorf("nil registry snapshot has %d entries", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry rendered %q, err %v", buf.String(), err)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Error("re-registering a counter returned a different handle")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{1, 2, 3}) // buckets of the first registration win
	if h1 != h2 {
		t.Error("re-registering a histogram returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "")
}

func TestSnapshot(t *testing.T) {
	s := goldenRegistry().Snapshot()
	want := map[string]float64{
		"anc_test_ops_total":                3,
		`anc_test_requests_total{op="get"}`: 1,
		`anc_test_requests_total{op="put"}`: 2,
		"anc_test_queue_depth":              7,
		"anc_test_load":                     1.5,
		"anc_test_latency_seconds_count":    3,
		"anc_test_latency_seconds_sum":      104.0625,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("snapshot[%q] = %g, want %g", k, s[k], v)
		}
	}
	for _, k := range []string{"anc_test_latency_seconds_p50", "anc_test_latency_seconds_p95", "anc_test_latency_seconds_p99"} {
		if _, ok := s[k]; !ok {
			t.Errorf("snapshot missing %q", k)
		}
	}
}

// TestRegistryConcurrent hammers the lock-free update path while scraping;
// run under -race it is the data-race proof for the whole package.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("anc_stress_total", "")
	v := r.CounterVec("anc_stress_by_op", "", "op")
	g := r.Gauge("anc_stress_depth", "")
	h := r.Histogram("anc_stress_seconds", "", nil)
	r.GaugeFunc("anc_stress_fn", "", func() float64 { return float64(g.Value()) })

	const workers = 8
	const perWorker = 5000
	ops := []string{"get", "put", "del"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(ops[i%len(ops)]).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	// Concurrent scrapers.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var byOp uint64
	for _, op := range ops {
		byOp += v.With(op).Value()
	}
	if byOp != workers*perWorker {
		t.Errorf("vec total = %d, want %d", byOp, workers*perWorker)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(NewMux(goldenRegistry(), nil, nil))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q, want %q", ct, ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "anc_test_ops_total 3") {
		t.Errorf("scrape missing series:\n%s", buf.String())
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
}
