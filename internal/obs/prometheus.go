package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the MIME type of the text exposition format rendered by
// WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by label value, histograms in cumulative _bucket/_sum/_count
// form. A nil registry renders nothing. Rendering takes each family's
// mutex but never blocks the lock-free update path.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		for _, key := range f.childKeys() {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f, key), f.counters[key].Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f, key), f.gauges[key].Value())
			case kindGaugeFunc, kindCounterFunc:
				fmt.Fprintf(bw, "%s %s\n", seriesName(f, key), formatFloat(f.fns[key]()))
			case kindHistogram:
				writeHistogram(bw, f.name, f.hists[key])
			}
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

// writeHistogram renders one histogram in cumulative bucket form.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	var cum uint64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// seriesName renders a family's child series name, with the label pair for
// labeled children. %q's Go-style quoting matches the exposition format's
// escaping rules for backslash, quote and newline.
func seriesName(f *family, key string) string {
	if key == "" {
		return f.name
	}
	return fmt.Sprintf("%s{%s=%q}", f.name, f.labelKey, key)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trippable decimal, with explicit +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
