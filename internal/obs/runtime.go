package obs

import (
	"runtime"
	rtmetrics "runtime/metrics"
)

// BuildVersion is the build's version string, stamped by the Makefile
// via -ldflags "-X anc/internal/obs.BuildVersion=$(VERSION)". It stays
// "dev" for plain `go build`/`go test` invocations.
var BuildVersion = "dev"

// runtime/metrics sample names read by the runtime gauges.
const (
	heapBytesMetric = "/memory/classes/heap/objects:bytes"
	gcPausesMetric  = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeGauges attaches process-health gauges to the registry:
// goroutine count, live heap bytes, and the p99 GC stop-the-world pause.
// All three are gauge-funcs — sampled at scrape time, zero cost between
// scrapes. Nil-registry safe.
func RegisterRuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("anc_runtime_goroutines",
		"number of live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("anc_runtime_heap_bytes",
		"bytes of live heap objects (runtime/metrics "+heapBytesMetric+")",
		func() float64 {
			s := []rtmetrics.Sample{{Name: heapBytesMetric}}
			rtmetrics.Read(s)
			if s[0].Value.Kind() != rtmetrics.KindUint64 {
				return 0
			}
			return float64(s[0].Value.Uint64())
		})
	r.GaugeFunc("anc_runtime_gc_pause_p99_seconds",
		"p99 of cumulative GC stop-the-world pauses (runtime/metrics "+gcPausesMetric+")",
		func() float64 {
			s := []rtmetrics.Sample{{Name: gcPausesMetric}}
			rtmetrics.Read(s)
			if s[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
				return 0
			}
			return histogramQuantile(s[0].Value.Float64Histogram(), 0.99)
		})
}

// histogramQuantile computes a quantile from a runtime/metrics
// Float64Histogram: the upper edge of the bucket where the cumulative
// count crosses q of the total. Unbounded edges fall back to the
// nearest finite one.
func histogramQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i+1] is the bucket's upper edge; len(Buckets) ==
			// len(Counts)+1 by the runtime/metrics contract.
			edge := h.Buckets[i+1]
			if edge > 1e300 || edge != edge { // +Inf or NaN edge
				edge = h.Buckets[i]
			}
			if edge < -1e300 {
				edge = 0
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
