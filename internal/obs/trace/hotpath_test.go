package trace

import (
	"testing"
	"time"
)

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath
// contract for the tracing layer (DESIGN.md §17): with tracing disabled
// — a nil Tracer and the zero SpanHandle it mints — every
// instrumentation-site method must run allocation-free, so threading
// handles through the serve/WAL/core hot paths costs one branch.
func TestHotPathAllocs(t *testing.T) {
	var tr *Tracer
	var sp SpanHandle
	var ctx Context
	if n := testing.AllocsPerRun(1000, func() {
		if tr.ShouldTrace(ctx) {
			t.Error("nil tracer sampled")
		}
		_ = sp.Active()
		_ = sp.TraceID()
		_ = sp.Context()
		_ = ctx.Valid()
		c := sp.StartChild("stage")
		c.Annotate("k", "v")
		c.AnnotateInt("n", 42)
		c.Leaf("leaf", time.Millisecond)
		c.Fail()
		c.End()
		sp.End()
	}); n != 0 {
		t.Errorf("disabled tracing handles: %v allocs/op, want 0", n)
	}

	// A live tracer that declines a request must also stay free: the
	// 1-in-N sampling decision is on the hot path of every request.
	live := New(Config{SampleEvery: 1 << 30})
	if n := testing.AllocsPerRun(1000, func() {
		if live.ShouldTrace(ctx) {
			t.Error("sampled at 1-in-2^30")
		}
	}); n != 0 {
		t.Errorf("sampling decision: %v allocs/op, want 0", n)
	}
}

// BenchmarkHotPathDisabled is run by `make bench-smoke` under -benchmem
// so a disabled-path allocation regression is visible as allocs/op.
func BenchmarkHotPathDisabled(b *testing.B) {
	var tr *Tracer
	var sp SpanHandle
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.ShouldTrace(Context{}) {
			b.Fatal("nil tracer sampled")
		}
		c := sp.StartChild("stage")
		c.End()
		sp.End()
	}
}
