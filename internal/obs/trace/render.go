package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// SpanView is the immutable snapshot of one span, the unit of both the
// JSON rendering and the text tree.
type SpanView struct {
	Op string `json:"op"`
	// OffsetSeconds is the span's start relative to the trace root.
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Unfinished marks a span still open when the trace completed (e.g.
	// a stage abandoned at the request deadline).
	Unfinished bool        `json:"unfinished,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanView `json:"children,omitempty"`
}

// TraceView is the immutable snapshot of one completed trace.
type TraceView struct {
	ID string `json:"id"`
	// Remote marks a trace whose context arrived over the wire (the root
	// request carried a client-minted trace ID).
	Remote bool `json:"remote,omitempty"`
	// Err marks a trace that ended in an error reply.
	Err bool `json:"err,omitempty"`
	// Kept marks a trace filed in the always-keep (slow/errored) ring.
	Kept            bool      `json:"kept,omitempty"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Root            *SpanView `json:"root"`
}

// view snapshots a trace under its lock.
func (r *rec) view(kept bool) *TraceView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &TraceView{
		ID:              FormatID(r.id),
		Remote:          r.remote,
		Err:             r.err,
		Kept:            kept,
		Start:           r.root.start,
		DurationSeconds: r.root.dur.Seconds(),
		Root:            r.root.view(r.root.start),
	}
}

func (s *span) view(t0 time.Time) *SpanView {
	v := &SpanView{
		Op:              s.op,
		OffsetSeconds:   s.start.Sub(t0).Seconds(),
		DurationSeconds: s.dur.Seconds(),
		Unfinished:      !s.ended,
	}
	if len(s.attrs) > 0 {
		v.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.view(t0))
	}
	return v
}

// Traces snapshots every recorded trace, newest first, kept traces
// included. Nil tracer returns nil.
func (t *Tracer) Traces() []*TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := make([]*rec, 0, len(t.recent)+len(t.kept))
	kept := make(map[*rec]bool, len(t.kept))
	recs = append(recs, t.recent...)
	for _, r := range t.kept {
		kept[r] = true
		recs = append(recs, r)
	}
	t.mu.Unlock()
	views := make([]*TraceView, 0, len(recs))
	for _, r := range recs {
		views = append(views, r.view(kept[r]))
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Start.After(views[j].Start) })
	return views
}

// Find snapshots the trace with the given ID, or nil.
func (t *Tracer) Find(id uint64) *TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var found *rec
	var kept bool
	for _, r := range t.recent {
		if r.id == id {
			found = r
		}
	}
	for _, r := range t.kept {
		if r.id == id {
			found, kept = r, true
		}
	}
	t.mu.Unlock()
	if found == nil {
		return nil
	}
	return found.view(kept)
}

// Stats reports recorder totals: completed traces recorded and how many
// were diverted to the always-keep ring.
func (t *Tracer) Stats() (finished, kept uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished, t.slow
}

// Render serializes traces for the wire: the trace with the given ID
// (or every recorded trace when id is 0), as JSON or as the text tree.
// A nil tracer renders an empty listing.
func (t *Tracer) Render(id uint64, asJSON bool) []byte {
	var views []*TraceView
	if id != 0 {
		if v := t.Find(id); v != nil {
			views = []*TraceView{v}
		}
	} else {
		views = t.Traces()
	}
	var buf bytes.Buffer
	if asJSON {
		writeJSON(&buf, views) // bytes.Buffer writes cannot fail
	} else {
		WriteText(&buf, views) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}

func writeJSON(w io.Writer, views []*TraceView) error {
	if views == nil {
		views = []*TraceView{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Traces []*TraceView `json:"traces"`
	}{views})
}

// WriteText renders traces as indented text trees, one block per trace.
func WriteText(w io.Writer, views []*TraceView) error {
	for _, v := range views {
		flags := ""
		if v.Remote {
			flags += " remote"
		}
		if v.Err {
			flags += " err"
		}
		if v.Kept {
			flags += " kept"
		}
		if _, err := fmt.Fprintf(w, "trace %s %s%s\n", v.ID,
			v.Start.Format("2006-01-02T15:04:05.000Z07:00"), flags); err != nil {
			return err
		}
		if err := writeSpanText(w, v.Root, 1); err != nil {
			return err
		}
	}
	if len(views) == 0 {
		_, err := fmt.Fprintln(w, "no traces recorded")
		return err
	}
	return nil
}

func writeSpanText(w io.Writer, s *SpanView, depth int) error {
	dur := fmt.Sprintf("%.3fms", s.DurationSeconds*1e3)
	if s.Unfinished {
		dur = "unfinished"
	}
	attrs := ""
	for _, a := range s.Attrs {
		attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
	}
	if _, err := fmt.Fprintf(w, "%*s%s %s%s\n", 2*depth, "", s.Op, dur, attrs); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpanText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the flight recorder over HTTP: JSON by default,
// ?format=text for the rendered tree, ?id=<hex> for one trace. This is
// what the obs mux mounts at /debug/traces. Nil-tracer safe.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var id uint64
		if s := req.URL.Query().Get("id"); s != "" {
			v, err := ParseID(s)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			id = v
		}
		asJSON := req.URL.Query().Get("format") != "text"
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		w.Write(t.Render(id, asJSON)) //anclint:ignore droppederr a failed scrape write loses no state
	})
}
