// Package trace is the serving stack's span recorder: a stdlib-only
// flight recorder for end-to-end request traces. A trace is a tree of
// spans (operation, start, duration, attributes, children) rooted at one
// served request; completed traces land in fixed-capacity rings — a
// head-sampled ring of recent traces plus an always-keep ring for slow
// and errored ones — so the interesting traces survive a latency storm
// that would otherwise evict them.
//
// The package owns the wall clock, like its parent obs: determinism-
// linted packages (core, pyramid, wal) never call time.Now — they thread
// SpanHandle values whose clock reads happen in here. A zero SpanHandle
// is a no-op on every method and never reads the clock or allocates
// (//anclint:hotpath, enforced by the hotalloc analyzer and the
// AllocsPerRun gate in bench-smoke), so tracing off costs one branch per
// instrumentation site.
//
// The 16-byte Context (trace ID + span ID) is what the wire protocol
// propagates: a request frame's optional trailer and the replication
// stream's per-frame trace IDs both decode into one, so a single trace
// stitches client → writer queue → WAL append/fsync → core apply →
// pyramid repair → reply, and follower apply spans carry the primary's
// trace ID.
package trace

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Context is the wire-propagated trace identity: the 16-byte optional
// trailer of a request frame. TraceID names the trace; SpanID names the
// sending span (the remote parent of the receiving server's root span).
// A zero TraceID means "not traced".
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// ContextWireSize is the encoded size of a Context: traceID(8) +
// spanID(8), little-endian.
const ContextWireSize = 16

// Valid reports whether the context names a trace.
//
//anclint:hotpath
func (c Context) Valid() bool { return c.TraceID != 0 }

// AppendContext appends the 16-byte wire encoding of c.
func AppendContext(b []byte, c Context) []byte {
	b = binary.LittleEndian.AppendUint64(b, c.TraceID)
	b = binary.LittleEndian.AppendUint64(b, c.SpanID)
	return b
}

// DecodeContext reads a Context from the first ContextWireSize bytes of
// b. The caller guarantees the length.
func DecodeContext(b []byte) Context {
	return Context{
		TraceID: binary.LittleEndian.Uint64(b[0:8]),
		SpanID:  binary.LittleEndian.Uint64(b[8:16]),
	}
}

// FormatID renders a trace ID the way log lines and the CLI print it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses FormatID's output (with or without leading zeros).
func ParseID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

// Attr is one key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// span is one live node of a trace tree. All mutation happens under the
// owning trace's mutex: spans of one trace are touched from several
// goroutines (the connection goroutine, the writer goroutine, the WAL
// path), and a request abandoned at its deadline can finalize the root
// while a child is still being recorded.
type span struct {
	op       string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*span
}

// rec is one trace being recorded.
type rec struct {
	mu     sync.Mutex
	id     uint64
	remote bool // context arrived over the wire
	err    bool
	done   bool
	root   *span
}

// Config tunes a Tracer. The zero value is usable; every field has a
// default.
type Config struct {
	// Capacity is the size of each completed-trace ring — the recent
	// (head-sampled) ring and the always-keep (slow/errored) ring
	// (default 256 each).
	Capacity int
	// SampleEvery is the head-sampling rate for locally-rooted traces:
	// record 1 in SampleEvery requests (default 16; 1 records every
	// request). Requests carrying a wire context are always recorded —
	// the client already made the sampling decision.
	SampleEvery int
	// Slow, when positive, diverts any completed trace at least this
	// slow into the always-keep ring regardless of sampling — the
	// flight-recorder half of the slow-query log.
	Slow time.Duration
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	return c
}

// Tracer records traces into its rings. A nil *Tracer is a valid
// disabled tracer: ShouldTrace is false and every handle it would mint
// is a no-op.
type Tracer struct {
	cfg  Config
	seed atomic.Uint64 // splitmix64 state for ID minting
	tick atomic.Uint64 // head-sampling counter

	mu       sync.Mutex
	recent   []*rec // head-sampled completed traces, ring
	recentAt int
	kept     []*rec // slow/errored completed traces, ring
	keptAt   int
	finished uint64 // completed traces recorded (both rings)
	slow     uint64 // completed traces diverted to the keep ring
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	t := &Tracer{cfg: cfg.withDefaults()}
	t.recent = make([]*rec, 0, t.cfg.Capacity)
	t.kept = make([]*rec, 0, t.cfg.Capacity)
	t.seed.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Slow reports the tracer's always-keep latency threshold (zero when
// unset or the tracer is nil).
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.Slow
}

// nextID mints a nonzero pseudo-random 64-bit ID (splitmix64 over an
// atomically advancing state — IDs must be unique, not secret).
func (t *Tracer) nextID() uint64 {
	x := t.seed.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// ShouldTrace decides whether the next request is recorded: always for a
// wire-carried context, 1-in-SampleEvery for locally-rooted ones. Nil
// tracer — tracing disabled — is always false, without reading the
// clock.
//
//anclint:hotpath
func (t *Tracer) ShouldTrace(ctx Context) bool {
	if t == nil {
		return false
	}
	if ctx.TraceID != 0 {
		return true
	}
	return t.tick.Add(1)%uint64(t.cfg.SampleEvery) == 0
}

// Start begins recording a trace rooted at op. A wire-carried ctx names
// the trace (and the remote parent span); otherwise a fresh trace ID is
// minted. Callers gate with ShouldTrace; Start on a nil tracer returns
// a no-op handle.
func (t *Tracer) Start(op string, ctx Context) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	r := &rec{id: ctx.TraceID, remote: ctx.TraceID != 0}
	if r.id == 0 {
		r.id = t.nextID()
	}
	r.root = &span{op: op, start: time.Now()}
	if ctx.SpanID != 0 {
		r.root.attrs = append(r.root.attrs, Attr{Key: "parent_span", Value: FormatID(ctx.SpanID)})
	}
	return SpanHandle{t: t, r: r, s: r.root}
}

// finish files a completed trace into the matching ring.
func (t *Tracer) finish(r *rec) {
	keep := r.err || (t.cfg.Slow > 0 && r.root.dur >= t.cfg.Slow)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	ring, at := &t.recent, &t.recentAt
	if keep {
		t.slow++
		ring, at = &t.kept, &t.keptAt
	}
	if len(*ring) < t.cfg.Capacity {
		*ring = append(*ring, r)
		return
	}
	(*ring)[*at] = r
	*at = (*at + 1) % t.cfg.Capacity
}

// SpanHandle is the instrumentation-side handle to one span. The zero
// value is inert: every method is a single-branch no-op that never
// allocates or reads the clock, so handles thread through hot paths
// unconditionally.
type SpanHandle struct {
	t *Tracer
	r *rec
	s *span
}

// Active reports whether the handle records anything.
//
//anclint:hotpath
func (h SpanHandle) Active() bool { return h.s != nil }

// TraceID returns the owning trace's ID, or 0 for an inert handle.
//
//anclint:hotpath
func (h SpanHandle) TraceID() uint64 {
	if h.r == nil {
		return 0
	}
	return h.r.id
}

// Context returns the wire context for propagating this span's trace to
// a peer (zero for an inert handle).
//
//anclint:hotpath
func (h SpanHandle) Context() Context {
	if h.r == nil {
		return Context{}
	}
	return Context{TraceID: h.r.id, SpanID: h.t.nextID()}
}

// StartChild opens a child span under h.
//
//anclint:hotpath
func (h SpanHandle) StartChild(op string) SpanHandle {
	if h.s == nil {
		return SpanHandle{}
	}
	return h.startChild(op)
}

func (h SpanHandle) startChild(op string) SpanHandle {
	now := time.Now()
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	if h.r.done {
		return SpanHandle{}
	}
	c := &span{op: op, start: now}
	h.s.children = append(h.s.children, c)
	return SpanHandle{t: h.t, r: h.r, s: c}
}

// Leaf records an already-measured child span of duration d ending now —
// for stages timed elsewhere (e.g. the WAL's fsync accumulator).
//
//anclint:hotpath
func (h SpanHandle) Leaf(op string, d time.Duration) {
	if h.s == nil {
		return
	}
	h.leaf(op, d)
}

func (h SpanHandle) leaf(op string, d time.Duration) {
	now := time.Now()
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	if h.r.done {
		return
	}
	h.s.children = append(h.s.children, &span{op: op, start: now.Add(-d), dur: d, ended: true})
}

// Annotate attaches a key=value attribute to the span.
//
//anclint:hotpath
func (h SpanHandle) Annotate(key, value string) {
	if h.s == nil {
		return
	}
	h.annotate(key, value)
}

func (h SpanHandle) annotate(key, value string) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	if h.r.done {
		return
	}
	h.s.attrs = append(h.s.attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer attribute to the span.
//
//anclint:hotpath
func (h SpanHandle) AnnotateInt(key string, v int64) {
	if h.s == nil {
		return
	}
	h.annotate(key, strconv.FormatInt(v, 10))
}

// Fail marks the whole trace errored, diverting it to the always-keep
// ring at End.
//
//anclint:hotpath
func (h SpanHandle) Fail() {
	if h.r == nil {
		return
	}
	h.fail()
}

func (h SpanHandle) fail() {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	h.r.err = true
}

// End closes the span. Ending the root span completes the trace and
// files it; later operations on the trace's handles are no-ops.
//
//anclint:hotpath
func (h SpanHandle) End() {
	if h.s == nil {
		return
	}
	h.end()
}

func (h SpanHandle) end() {
	now := time.Now()
	h.r.mu.Lock()
	if h.r.done {
		h.r.mu.Unlock()
		return
	}
	if !h.s.ended {
		h.s.ended = true
		h.s.dur = now.Sub(h.s.start)
	}
	root := h.s == h.r.root
	if root {
		h.r.done = true
	}
	h.r.mu.Unlock()
	if root {
		h.t.finish(h.r)
	}
}
