package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestContextWireRoundTrip(t *testing.T) {
	in := Context{TraceID: 0xDEADBEEFCAFE, SpanID: 42}
	b := AppendContext(nil, in)
	if len(b) != ContextWireSize {
		t.Fatalf("encoded context of %d bytes, want %d", len(b), ContextWireSize)
	}
	if out := DecodeContext(b); out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if (Context{}).Valid() || !in.Valid() {
		t.Fatal("Valid misreports")
	}
	id, err := ParseID(FormatID(in.TraceID))
	if err != nil || id != in.TraceID {
		t.Fatalf("ParseID(FormatID): %d, %v", id, err)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	if !tr.ShouldTrace(Context{}) {
		t.Fatal("SampleEvery=1 must sample every request")
	}
	root := tr.Start("activate-batch", Context{})
	root.AnnotateInt("batch", 64)
	q := root.StartChild("queue.wait")
	q.End()
	w := root.StartChild("wal.append")
	w.Leaf("wal.fsync", 3*time.Millisecond)
	w.End()
	root.End()

	views := tr.Traces()
	if len(views) != 1 {
		t.Fatalf("%d traces recorded, want 1", len(views))
	}
	v := views[0]
	if v.Remote || v.Err || v.Kept {
		t.Fatalf("unexpected flags on %+v", v)
	}
	if v.Root.Op != "activate-batch" || len(v.Root.Children) != 2 {
		t.Fatalf("bad root: %+v", v.Root)
	}
	if v.Root.Attrs[0].Key != "batch" || v.Root.Attrs[0].Value != "64" {
		t.Fatalf("bad attrs: %+v", v.Root.Attrs)
	}
	fsync := v.Root.Children[1].Children[0]
	if fsync.Op != "wal.fsync" || fsync.DurationSeconds < 0.0029 {
		t.Fatalf("bad leaf span: %+v", fsync)
	}
	id, err := ParseID(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if found := tr.Find(id); found == nil || found.ID != v.ID {
		t.Fatalf("Find(%s) = %+v", v.ID, found)
	}
	if tr.Find(id+1) != nil {
		t.Fatal("Find invented a trace")
	}
}

func TestRemoteContextAlwaysTraced(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30})
	if tr.ShouldTrace(Context{}) {
		t.Fatal("local request sampled at 1-in-2^30")
	}
	ctx := Context{TraceID: 7, SpanID: 9}
	if !tr.ShouldTrace(ctx) {
		t.Fatal("wire-carried context must always be traced")
	}
	sp := tr.Start("clusters", ctx)
	if sp.TraceID() != 7 {
		t.Fatalf("trace id %d, want the wire-carried 7", sp.TraceID())
	}
	sp.End()
	v := tr.Find(7)
	if v == nil || !v.Remote {
		t.Fatalf("remote trace not recorded: %+v", v)
	}
	if len(v.Root.Attrs) == 0 || v.Root.Attrs[0].Key != "parent_span" {
		t.Fatalf("remote root must carry parent_span: %+v", v.Root.Attrs)
	}
}

func TestSlowAndErroredKept(t *testing.T) {
	tr := New(Config{Capacity: 2, SampleEvery: 1, Slow: time.Nanosecond})
	sp := tr.Start("slow-op", Context{})
	time.Sleep(time.Millisecond)
	sp.End()
	views := tr.Traces()
	if len(views) != 1 || !views[0].Kept {
		t.Fatalf("slow trace not kept: %+v", views)
	}

	tr2 := New(Config{Capacity: 2, SampleEvery: 1})
	sp = tr2.Start("err-op", Context{})
	sp.Fail()
	sp.End()
	if vs := tr2.Traces(); len(vs) != 1 || !vs[0].Kept || !vs[0].Err {
		t.Fatalf("errored trace not kept: %+v", vs)
	}
	if fin, kept := tr2.Stats(); fin != 1 || kept != 1 {
		t.Fatalf("stats %d/%d, want 1/1", fin, kept)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{Capacity: 4, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		tr.Start("op", Context{}).End()
	}
	if n := len(tr.Traces()); n != 4 {
		t.Fatalf("%d traces retained, want the ring capacity 4", n)
	}
	if fin, _ := tr.Stats(); fin != 10 {
		t.Fatalf("finished %d, want 10", fin)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 64; i++ {
		if tr.ShouldTrace(Context{}) {
			sampled++
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at 1-in-4, want 16", sampled)
	}
}

// TestLateChildAfterFinish covers the deadline-abandonment race: once the
// root ended (the trace is filed), further child spans and annotations
// must be silently dropped, not corrupt the published tree.
func TestLateChildAfterFinish(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	root := tr.Start("op", Context{})
	child := root.StartChild("stage")
	root.End()
	late := root.StartChild("late")
	if late.Active() {
		t.Fatal("child opened on a finished trace")
	}
	child.Annotate("k", "v")
	child.End()
	v := tr.Traces()[0]
	if len(v.Root.Children) != 1 || !v.Root.Children[0].Unfinished {
		t.Fatalf("abandoned child must render unfinished: %+v", v.Root.Children)
	}
	if len(v.Root.Children[0].Attrs) != 0 {
		t.Fatal("late annotation mutated a finished trace")
	}
}

func TestRenderJSONAndText(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	sp := tr.Start("activate-batch", Context{})
	sp.StartChild("queue.wait").End()
	sp.End()

	var decoded struct {
		Traces []*TraceView `json:"traces"`
	}
	if err := json.Unmarshal(tr.Render(0, true), &decoded); err != nil {
		t.Fatalf("JSON rendering did not parse: %v", err)
	}
	if len(decoded.Traces) != 1 || decoded.Traces[0].Root.Op != "activate-batch" {
		t.Fatalf("bad JSON rendering: %+v", decoded.Traces)
	}

	text := string(tr.Render(0, false))
	for _, want := range []string{"trace ", "activate-batch", "queue.wait"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}

	var nilTracer *Tracer
	if !strings.Contains(string(nilTracer.Render(0, false)), "no traces") {
		t.Fatal("nil tracer text rendering")
	}
	if err := json.Unmarshal(nilTracer.Render(0, true), &decoded); err != nil {
		t.Fatalf("nil tracer JSON rendering: %v", err)
	}
}

func TestHTTPHandler(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	sp := tr.Start("stats", Context{})
	sp.End()
	id := FormatID(sp.TraceID())

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/debug/traces"); code != 200 || !strings.Contains(body, `"traces"`) {
		t.Fatalf("JSON listing: %d %q", code, body)
	}
	if code, body := get("/debug/traces?format=text&id=" + id); code != 200 || !strings.Contains(body, "stats") {
		t.Fatalf("text by id: %d %q", code, body)
	}
	if code, _ := get("/debug/traces?id=zzz"); code != 400 {
		t.Fatalf("bad id must 400, got %d", code)
	}
}

func TestNilTracerAndZeroHandle(t *testing.T) {
	var tr *Tracer
	if tr.ShouldTrace(Context{TraceID: 1}) {
		t.Fatal("nil tracer must never trace")
	}
	sp := tr.Start("op", Context{})
	if sp.Active() || sp.TraceID() != 0 || sp.Context().Valid() {
		t.Fatal("nil tracer minted a live handle")
	}
	// Every method must be a safe no-op on the zero handle.
	sp.Annotate("k", "v")
	sp.AnnotateInt("k", 1)
	sp.Leaf("op", time.Second)
	sp.Fail()
	child := sp.StartChild("c")
	child.End()
	sp.End()
	if tr.Traces() != nil || tr.Find(1) != nil {
		t.Fatal("nil tracer recorded something")
	}
}
