// Package plot renders small ASCII charts for the benchmark harness:
// log-scale grouped bar charts (Figures 5, 6, 8, 10 of the paper), line
// series over time (Figures 4 and 9), and sparklines for compact
// summaries. Plain text keeps the harness dependency-free and the output
// diffable in EXPERIMENTS.md.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart. With logScale, bar lengths are
// proportional to log10 of the value range — appropriate for the paper's
// runtime figures that span orders of magnitude. Non-positive values
// render as empty bars.
func Bars(w io.Writer, title string, bars []Bar, width int, logScale bool) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(bars) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range bars {
		if b.Value > 0 {
			lo = math.Min(lo, b.Value)
			hi = math.Max(hi, b.Value)
		}
	}
	scale := func(v float64) int {
		if v <= 0 || math.IsInf(lo, 1) {
			return 0
		}
		if !logScale {
			return int(v / hi * float64(width))
		}
		if hi == lo {
			return width
		}
		// Map [lo, hi] onto [1, width] in log space.
		f := (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
		n := 1 + int(f*float64(width-1))
		if n < 1 {
			n = 1
		}
		if n > width {
			n = width
		}
		return n
	}
	for _, b := range bars {
		fmt.Fprintf(w, "  %-*s |%s %.4g\n", labelW, b.Label, strings.Repeat("█", scale(b.Value)), b.Value)
	}
}

// Series is one named line of a multi-series chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Lines renders multi-series data as an aligned character grid: rows are
// descending Y buckets, columns are X samples, and each series paints its
// marker. Collisions show the later series' marker.
func Lines(w io.Writer, title string, series []Series, width, height int) {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	fmt.Fprintf(w, "%s\n", title)
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			loX, hiX = math.Min(loX, s.X[i]), math.Max(hiX, s.X[i])
			loY, hiY = math.Min(loY, s.Y[i]), math.Max(hiY, s.Y[i])
		}
	}
	if math.IsInf(loX, 1) {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if hiY == loY {
		hiY = loY + 1
	}
	if hiX == loX {
		hiX = loX + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := "ox+*#@%&"
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			c := int((s.X[i] - loX) / (hiX - loX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-loY)/(hiY-loY)*float64(height-1))
			grid[r][c] = m
		}
	}
	for r, row := range grid {
		yVal := hiY - (hiY-loY)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "  %8.3g |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "  %8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "  %8s  %-*.3g%*.3g\n", "", width/2, loX, width-width/2, hiX)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, "  "))
}

// Spark renders values as a one-line unicode sparkline.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
