package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarsLinear(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "title", []Bar{{"a", 1}, {"bb", 2}, {"ccc", 4}}, 20, false)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The largest bar is the longest.
	if strings.Count(lines[3], "█") <= strings.Count(lines[1], "█") {
		t.Fatalf("bar lengths not monotone:\n%s", out)
	}
	// Labels aligned to the widest.
	if !strings.Contains(lines[1], "a   |") {
		t.Fatalf("label padding wrong: %q", lines[1])
	}
}

func TestBarsLogScale(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "log", []Bar{{"small", 1e-6}, {"mid", 1e-3}, {"big", 1}}, 30, true)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	small := strings.Count(lines[1], "█")
	mid := strings.Count(lines[2], "█")
	big := strings.Count(lines[3], "█")
	if !(small < mid && mid < big) {
		t.Fatalf("log bars not monotone: %d %d %d", small, mid, big)
	}
	// Log spacing: the two gaps should be roughly equal (3 decades each).
	if d1, d2 := mid-small, big-mid; d1 <= 0 || d2 <= 0 || d1*2 < d2 || d2*2 < d1 {
		t.Fatalf("log spacing off: %d vs %d", d1, d2)
	}
}

func TestBarsEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "empty", nil, 10, false)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart not flagged")
	}
	buf.Reset()
	Bars(&buf, "zeros", []Bar{{"z", 0}}, 10, true)
	if !strings.Contains(buf.String(), "z") {
		t.Fatal("zero bar missing")
	}
	buf.Reset()
	Bars(&buf, "default width", []Bar{{"a", 1}}, 0, false)
	if !strings.Contains(buf.String(), "█") {
		t.Fatal("default width broken")
	}
}

func TestLines(t *testing.T) {
	var buf bytes.Buffer
	Lines(&buf, "series", []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}, 20, 6)
	out := buf.String()
	if !strings.Contains(out, "o=up") || !strings.Contains(out, "x=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatal("markers missing")
	}
}

func TestLinesEmpty(t *testing.T) {
	var buf bytes.Buffer
	Lines(&buf, "none", nil, 10, 5)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty not flagged")
	}
}

func TestLinesConstantY(t *testing.T) {
	var buf bytes.Buffer
	Lines(&buf, "flat", []Series{{Name: "c", X: []float64{0, 1}, Y: []float64{5, 5}}}, 10, 4)
	if !strings.Contains(buf.String(), "o") {
		t.Fatal("flat series not drawn")
	}
}

func TestSpark(t *testing.T) {
	if s := Spark(nil); s != "" {
		t.Fatalf("empty spark = %q", s)
	}
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("spark len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("spark extremes wrong: %q", s)
	}
	// Constant input renders the lowest tick everywhere.
	flat := []rune(Spark([]float64{2, 2, 2}))
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat spark = %q", string(flat))
		}
	}
}
