package pq

import (
	"testing"
)

// FuzzHeapOps drives the heap with an arbitrary operation tape and checks
// the invariants: pops come out in non-decreasing priority, Contains/Len
// agree with a reference map, and no operation panics (except documented
// empty-Pop, which the tape never issues).
func FuzzHeapOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 200, 10, 0, 0, 255, 7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 16
		h := New(n)
		ref := map[int32]float64{}
		lastPop := -1.0
		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 3
			x := int32(tape[i+1] % n)
			switch op {
			case 0: // push / update
				p := float64(tape[i+1]) / 7.0
				h.Push(x, p)
				ref[x] = p
				lastPop = -1 // priorities changed; reset monotonicity check
			case 1: // pop
				if h.Len() == 0 {
					continue
				}
				y, p := h.Pop()
				want, ok := ref[y]
				if !ok {
					t.Fatalf("popped untracked item %d", y)
				}
				if p != want {
					t.Fatalf("popped priority %v, want %v", p, want)
				}
				if lastPop >= 0 && p < lastPop {
					t.Fatalf("pop order violated: %v after %v", p, lastPop)
				}
				lastPop = p
				delete(ref, y)
			case 2: // remove
				h.Remove(x)
				delete(ref, x)
			}
			if h.Len() != len(ref) {
				t.Fatalf("Len %d != ref %d", h.Len(), len(ref))
			}
			for k := range ref {
				if !h.Contains(k) {
					t.Fatalf("ref item %d missing", k)
				}
			}
		}
	})
}
