// Package pq implements an indexed binary min-heap keyed by float64
// priority, supporting decrease-key and arbitrary update in O(log n).
//
// It is the queue behind every Dijkstra in this repository — Voronoi
// partition construction and the bounded update algorithms (Algorithms 1
// and 3 of the paper) — where the item set is a dense range of node IDs and
// the same node may be re-prioritized many times while queued.
package pq

// Heap is an indexed min-heap over items identified by dense int32 IDs in
// [0, capacity). Priorities are float64 distances; ties are broken by
// smaller item ID so the pop order is deterministic.
type Heap struct {
	items []int32   // heap order -> item
	pos   []int32   // item -> heap index, -1 if absent
	prio  []float64 // item -> priority (valid while in heap)
}

// New returns a heap able to hold items 0..capacity-1.
func New(capacity int) *Heap {
	h := &Heap{
		pos:  make([]int32, capacity),
		prio: make([]float64, capacity),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of queued items.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether item x is queued.
func (h *Heap) Contains(x int32) bool { return h.pos[x] >= 0 }

// Priority returns the queued priority of x; only meaningful if Contains(x).
func (h *Heap) Priority(x int32) float64 { return h.prio[x] }

// Push inserts x with priority p, or updates x's priority if already queued
// (either direction). This matches the "reinsert/update" behaviour the
// paper's Example 6 notes for priority-queue implementations.
func (h *Heap) Push(x int32, p float64) {
	if i := h.pos[x]; i >= 0 {
		old := h.prio[x]
		h.prio[x] = p
		if p < old {
			h.up(int(i))
		} else if p > old {
			h.down(int(i))
		}
		return
	}
	h.prio[x] = p
	h.pos[x] = int32(len(h.items))
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the item with the smallest priority.
// It panics if the heap is empty.
func (h *Heap) Pop() (x int32, p float64) {
	if len(h.items) == 0 {
		panic("pq: Pop on empty heap")
	}
	x = h.items[0]
	p = h.prio[x]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[x] = -1
	if last > 0 {
		h.down(0)
	}
	return x, p
}

// Remove deletes x from the heap if present.
func (h *Heap) Remove(x int32) {
	i := h.pos[x]
	if i < 0 {
		return
	}
	last := len(h.items) - 1
	h.swap(int(i), last)
	h.items = h.items[:last]
	h.pos[x] = -1
	if int(i) < last {
		h.down(int(i))
		h.up(int(h.pos[h.items[i]]))
	}
}

// Reset empties the heap in O(len) without reallocating.
func (h *Heap) Reset() {
	for _, x := range h.items {
		h.pos[x] = -1
	}
	h.items = h.items[:0]
}

func (h *Heap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	pa, pb := h.prio[a], h.prio[b]
	if pa != pb {
		return pa < pb
	}
	return a < b
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
