package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	h := New(10)
	h.Push(3, 5.0)
	h.Push(7, 1.0)
	h.Push(1, 3.0)
	wantItems := []int32{7, 1, 3}
	wantPrios := []float64{1, 3, 5}
	for i := range wantItems {
		x, p := h.Pop()
		if x != wantItems[i] || p != wantPrios[i] {
			t.Fatalf("pop %d = (%d,%g), want (%d,%g)", i, x, p, wantItems[i], wantPrios[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(1, 5) // decrease
	x, p := h.Pop()
	if x != 1 || p != 5 {
		t.Fatalf("got (%d,%g), want (1,5)", x, p)
	}
}

func TestIncreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 5)
	h.Push(1, 30) // increase
	x, p := h.Pop()
	if x != 0 || p != 10 {
		t.Fatalf("got (%d,%g), want (0,10)", x, p)
	}
}

func TestTieBreakByID(t *testing.T) {
	h := New(5)
	h.Push(4, 1)
	h.Push(2, 1)
	h.Push(3, 1)
	var got []int32
	for h.Len() > 0 {
		x, _ := h.Pop()
		got = append(got, x)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("ties not broken by ID: %v", got)
		}
	}
}

func TestRemove(t *testing.T) {
	h := New(6)
	for i := int32(0); i < 6; i++ {
		h.Push(i, float64(10-i))
	}
	h.Remove(5) // currently minimum
	h.Remove(0) // currently maximum
	h.Remove(0) // no-op on absent item
	var got []int32
	for h.Len() > 0 {
		x, _ := h.Pop()
		got = append(got, x)
	}
	want := []int32{4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestContainsAndPriority(t *testing.T) {
	h := New(3)
	h.Push(2, 7)
	if !h.Contains(2) || h.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if h.Priority(2) != 7 {
		t.Fatal("Priority wrong")
	}
	h.Pop()
	if h.Contains(2) {
		t.Fatal("Contains true after pop")
	}
}

func TestReset(t *testing.T) {
	h := New(8)
	for i := int32(0); i < 8; i++ {
		h.Push(i, float64(i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Len after Reset")
	}
	for i := int32(0); i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d still contained after Reset", i)
		}
	}
	h.Push(3, 1)
	if h.Len() != 1 {
		t.Fatal("push after Reset broken")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty Pop")
		}
	}()
	New(1).Pop()
}

// TestHeapSortProperty: pushing random priorities (with random updates) and
// draining yields non-decreasing priorities matching a reference sort.
func TestHeapSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := New(n)
		final := make(map[int32]float64)
		for i := 0; i < n*2; i++ {
			x := int32(rng.Intn(n))
			p := rng.Float64() * 100
			h.Push(x, p)
			final[x] = p
		}
		var want []float64
		for _, p := range final {
			want = append(want, p)
		}
		sort.Float64s(want)
		var got []float64
		for h.Len() > 0 {
			_, p := h.Pop()
			got = append(got, p)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
