package pyramid

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"anc/internal/graph"
	"anc/internal/obs"
)

// Config controls index construction.
type Config struct {
	// K is the number of pyramids (the voting ensemble size); the paper's
	// default is 4.
	K int
	// Theta is the support threshold of the voting function H_l: two
	// nodes are co-clustered at a level if they share a seed in at least
	// ⌈Theta·K⌉ pyramids. The paper's default is 0.7.
	Theta float64
	// Parallel runs partition builds and updates on a long-lived pool of
	// min(GOMAXPROCS, K·⌈log₂ n⌉) workers (Lemma 13: partitions are
	// mutually independent). Off by default so timing benchmarks match
	// the paper's single-core setup. Call Index.Close to stop the pool.
	Parallel bool
}

// DefaultConfig returns the paper's defaults: 4 pyramids, θ = 0.7.
func DefaultConfig() Config { return Config{K: 4, Theta: 0.7} }

func (c *Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("pyramid: K = %d < 1", c.K)
	}
	if c.K > 65535 {
		// Vote counts are tracked in uint16 (see VoteTracker); a larger
		// ensemble would overflow them silently.
		return fmt.Errorf("pyramid: K = %d exceeds the vote-tracking bound 65535", c.K)
	}
	if c.Theta <= 0 || c.Theta > 1 {
		return fmt.Errorf("pyramid: theta %v outside (0,1]", c.Theta)
	}
	return nil
}

// Levels returns the number of granularity levels for an n-node graph:
// ⌈log₂ n⌉, and at least 1.
func Levels(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n) for n ≥ 2
}

// SqrtLevel returns the level whose seed count 2^l is closest to √n from
// above — the Θ(√n)-cluster granularity of Problem 1.
func SqrtLevel(n int) int {
	l := (Levels(n) + 1) / 2
	if l < 1 {
		l = 1
	}
	return l
}

// Index is the pyramids index P: Config.K pyramids, each with Levels(n)
// Voronoi partitions at seed counts 2¹, 2², …, capped at n.
type Index struct {
	g      *graph.Graph
	cfg    Config
	levels int
	// parts[p][l-1] is the partition of pyramid p at granularity level l.
	parts   [][]*Partition
	weights []float64 // anchored edge weights 1/S*, shared by all partitions
	votes   *VoteTracker

	scratch *scratch // serial-path Dijkstra state, shared by all partitions
	pool    *pool    // worker pool when cfg.Parallel; nil after Close

	met          *Metrics // nil until Instrument; all methods nil-safe
	buildSeconds float64  // construction wall time, observed at Instrument

	// Reusable per-call buffers of the batched update path, so steady
	// ingest allocates nothing.
	batchEdges  []graph.EdgeID
	batchOld    []float64
	oneEdge     [1]graph.EdgeID
	oneWeight   [1]float64
	voteChanged [][]graph.NodeID // per-slot changed-set copies; nil until vote tracking is on
}

// Build constructs the index over g with the given initial anchored edge
// weights. The rng drives seed selection only; pass a seeded source for
// reproducible experiments. weight(e) must be positive and finite for all
// edges.
func Build(g *graph.Graph, weight func(e graph.EdgeID) float64, cfg Config, rng *rand.Rand) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("pyramid: empty graph")
	}
	levels := Levels(n)
	perm := make([]graph.NodeID, n)
	for i := range perm {
		perm[i] = graph.NodeID(i)
	}
	// Seed sets are drawn sequentially from rng for reproducibility; the
	// partitions themselves are mutually independent (Lemma 13) and are
	// built concurrently when requested.
	seedSets := make([][]graph.NodeID, cfg.K*levels)
	for p := 0; p < cfg.K; p++ {
		for l := 1; l <= levels; l++ {
			seedSets[p*levels+l-1] = sampleSeeds(perm, 1<<uint(l), rng)
		}
	}
	return BuildWithSeeds(g, weight, cfg, seedSets)
}

// BuildWithSeeds constructs the index with explicit seed sets, one per
// (pyramid, level) in pyramid-major order — K·⌈log₂ n⌉ sets in total.
// Used by snapshot restore to reproduce the exact saved index.
func BuildWithSeeds(g *graph.Graph, weight func(e graph.EdgeID) float64, cfg Config, seedSets [][]graph.NodeID) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sw := obs.NewStopwatch()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("pyramid: empty graph")
	}
	ix := &Index{
		g:       g,
		cfg:     cfg,
		levels:  Levels(n),
		weights: make([]float64, g.M()),
		scratch: newScratch(n),
	}
	if len(seedSets) != cfg.K*ix.levels {
		return nil, fmt.Errorf("pyramid: got %d seed sets, want %d", len(seedSets), cfg.K*ix.levels)
	}
	for e := 0; e < g.M(); e++ {
		w := weight(graph.EdgeID(e))
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("pyramid: edge %d has invalid weight %v", e, w)
		}
		ix.weights[e] = w
	}
	slots := cfg.K * ix.levels
	ix.parts = make([][]*Partition, cfg.K)
	for p := 0; p < cfg.K; p++ {
		ix.parts[p] = make([]*Partition, ix.levels)
	}
	if cfg.Parallel {
		ix.pool = newPool(poolSize(slots), n)
		ix.pool.run(slots, func(slot int, s *scratch) {
			ix.parts[slot/ix.levels][slot%ix.levels] = newPartition(g, ix.weights, seedSets[slot], s)
		})
	} else {
		for slot := 0; slot < slots; slot++ {
			ix.parts[slot/ix.levels][slot%ix.levels] = newPartition(g, ix.weights, seedSets[slot], ix.scratch)
		}
	}
	ix.buildSeconds = sw.Seconds()
	return ix, nil
}

// Close stops the worker pool, waiting until every worker goroutine has
// exited — after Close returns, the index has leaked nothing. Subsequent
// updates fall back to the serial path. Close is idempotent but must not
// race an in-flight update; owners call it once when retiring the index.
func (ix *Index) Close() {
	if ix.pool != nil {
		ix.pool.close()
		ix.pool = nil
	}
}

// sampleSeeds draws min(k, n) distinct nodes uniformly at random using a
// partial Fisher–Yates shuffle of the shared permutation.
func sampleSeeds(perm []graph.NodeID, k int, rng *rand.Rand) []graph.NodeID {
	n := len(perm)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	seeds := make([]graph.NodeID, k)
	copy(seeds, perm[:k])
	return seeds
}

// SeedSets returns a copy of every partition's seed set in pyramid-major
// order, suitable for BuildWithSeeds.
func (ix *Index) SeedSets() [][]graph.NodeID {
	out := make([][]graph.NodeID, 0, ix.cfg.K*ix.levels)
	for p := 0; p < ix.cfg.K; p++ {
		for l := 1; l <= ix.levels; l++ {
			out = append(out, append([]graph.NodeID(nil), ix.parts[p][l-1].Seeds()...))
		}
	}
	return out
}

// Graph returns the indexed relation graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Config returns the construction parameters.
func (ix *Index) Config() Config { return ix.cfg }

// Levels returns the number of granularity levels.
func (ix *Index) Levels() int { return ix.levels }

// Weight returns the current anchored weight of edge e as stored in the
// index.
func (ix *Index) Weight(e graph.EdgeID) float64 { return ix.weights[e] }

// Partition returns the Voronoi partition of pyramid p ∈ [0, K) at level
// l ∈ [1, Levels()].
func (ix *Index) Partition(p, l int) *Partition { return ix.parts[p][l-1] }

// MinSupport returns the vote threshold ⌈θ·K⌉ (at least 1).
func (ix *Index) MinSupport() int {
	s := int(math.Ceil(ix.cfg.Theta * float64(ix.cfg.K)))
	if s < 1 {
		s = 1
	}
	return s
}

// Votes returns, for edge e at level l, the number of pyramids whose
// partition assigns both endpoints of e to the same (non-None) seed.
func (ix *Index) Votes(e graph.EdgeID, l int) int {
	if ix.votes != nil {
		return ix.votes.Votes(e, l)
	}
	u, v := ix.g.Endpoints(e)
	c := 0
	for p := 0; p < ix.cfg.K; p++ {
		part := ix.parts[p][l-1]
		if s := part.Seed(u); s != graph.None && s == part.Seed(v) {
			c++
		}
	}
	return c
}

// SameCluster evaluates the voting function H_l for the node pair (u, v):
// true when at least ⌈θ·K⌉ pyramids put u and v under the same seed.
func (ix *Index) SameCluster(u, v graph.NodeID, l int) bool {
	c := 0
	for p := 0; p < ix.cfg.K; p++ {
		part := ix.parts[p][l-1]
		if s := part.Seed(u); s != graph.None && s == part.Seed(v) {
			c++
		}
	}
	return c >= ix.MinSupport()
}

// UpdateEdge applies a new anchored weight to edge e across every
// partition of every pyramid (the paper's UPDATE). The cost per partition
// is bounded by the affected set (Lemma 12); partitions are mutually
// independent and updated concurrently on the worker pool when
// Config.Parallel is set (Lemma 13).
func (ix *Index) UpdateEdge(e graph.EdgeID, newWeight float64) {
	ix.oneEdge[0] = e
	ix.oneWeight[0] = newWeight
	ix.UpdateEdges(ix.oneEdge[:], ix.oneWeight[:])
}

// UpdateEdges applies new anchored weights to a set of distinct edges in
// one repair pass per partition — the batched UPDATE behind ActivateBatch.
// Compared with a loop over UpdateEdge it saves one heap pass and one
// pool barrier per edge per partition, and relaxes overlapping affected
// regions once. Edges must be distinct; bit-exact no-op changes are
// skipped (the same contract as UpdateEdge).
func (ix *Index) UpdateEdges(edges []graph.EdgeID, newWeights []float64) {
	ix.batchEdges = ix.batchEdges[:0]
	ix.batchOld = ix.batchOld[:0]
	for i, e := range edges {
		w := newWeights[i]
		//anclint:ignore floateq bit-exact no-op detection: skipping only exact duplicates is safe, an epsilon would silently drop real updates
		if w == ix.weights[e] {
			continue
		}
		ix.batchEdges = append(ix.batchEdges, e)
		ix.batchOld = append(ix.batchOld, ix.weights[e])
		ix.weights[e] = w
	}
	if len(ix.batchEdges) == 0 {
		return
	}
	t := ix.met.updateStart()
	changed, olds := ix.batchEdges, ix.batchOld
	if ix.pool != nil {
		// Vote counts are shared across the pyramids of one level, so
		// they are applied after the barrier, from per-slot copies of the
		// changed sets — copies, because each worker's scratch is reused
		// by its next task. Nothing is copied when tracking is off.
		ix.pool.run(ix.cfg.K*ix.levels, func(slot int, s *scratch) {
			moved := ix.parts[slot/ix.levels][slot%ix.levels].applyBatch(s, changed, olds)
			if len(moved) > 0 {
				ix.met.partitionRepaired()
			}
			if ix.votes != nil {
				ix.voteChanged[slot] = append(ix.voteChanged[slot][:0], moved...)
			}
		})
		if ix.votes != nil {
			for slot := range ix.voteChanged {
				ix.votes.applyBatch(slot/ix.levels, slot%ix.levels+1, changed, ix.voteChanged[slot])
			}
			ix.votes.flushFlips()
		}
		t.Stop()
		return
	}
	for p := range ix.parts {
		for l := range ix.parts[p] {
			moved := ix.parts[p][l].applyBatch(ix.scratch, changed, olds)
			if len(moved) > 0 {
				ix.met.partitionRepaired()
			}
			if ix.votes != nil {
				ix.votes.applyBatch(p, l+1, changed, moved)
			}
		}
	}
	if ix.votes != nil {
		ix.votes.flushFlips()
	}
	t.Stop()
}

// Reconstruct rebuilds every partition from scratch at the current weights
// (keeping the same seed sets), on the worker pool when Config.Parallel is
// set. This is the RECONSTRUCT baseline of Exp 6.
func (ix *Index) Reconstruct() {
	t := ix.met.reconstructStart()
	defer t.Stop()
	if ix.pool != nil {
		ix.pool.run(ix.cfg.K*ix.levels, func(slot int, s *scratch) {
			ix.parts[slot/ix.levels][slot%ix.levels].rebuild(s)
		})
	} else {
		for p := range ix.parts {
			for l := range ix.parts[p] {
				ix.parts[p][l].rebuild(ix.scratch)
			}
		}
	}
	if ix.votes != nil {
		ix.votes.rebuild()
	}
}

// SetWeight overwrites the stored weight of e without repairing the
// partitions; callers must Reconstruct afterwards. Used by the offline
// ANCF path that batches many weight changes before one rebuild.
func (ix *Index) SetWeight(e graph.EdgeID, w float64) { ix.weights[e] = w }

// OnRescale implements decay.Rescalable: the weights 1/S* and all stored
// distances are NegM, so they absorb ×(1/g) (Lemma 10).
func (ix *Index) OnRescale(g float64) {
	inv := 1 / g
	for i := range ix.weights {
		ix.weights[i] *= inv
	}
	for p := range ix.parts {
		for l := range ix.parts[p] {
			ix.parts[p][l].onRescale(inv)
		}
	}
}

// Validate checks the optimality certificate of every partition, returning
// a description of the first violation or "" if the whole index is
// consistent with the current weights. O(K · Levels · (n + m)); test hook.
func (ix *Index) Validate() string {
	for p := range ix.parts {
		for l := range ix.parts[p] {
			if msg := ix.parts[p][l].validate(); msg != "" {
				return fmt.Sprintf("pyramid %d level %d: %s", p, l+1, msg)
			}
		}
	}
	if ix.votes != nil {
		if msg := ix.votes.validate(); msg != "" {
			return msg
		}
	}
	return ""
}

// MemoryBytes estimates the resident size of the index structures
// (excluding the graph itself, as in Exp 4): seed assignments, distances,
// parent/children forests, the shared weight slice, and the Dijkstra
// scratches (one per worker plus the serial one — no longer one per
// partition).
func (ix *Index) MemoryBytes() int64 {
	n := int64(ix.g.N())
	perPartition := n*4 + n*8 + n*4 + // seedOf + dist + parent
		n*24 + n*4 // children slice headers + entries (≈ n edges in forest)
	perScratch := n*8 + n*4 + n*4 // heap prio + heap pos + stamp
	scratches := int64(1)
	if ix.pool != nil {
		scratches += int64(poolSize(ix.cfg.K * ix.levels))
	}
	total := int64(ix.cfg.K*ix.levels)*perPartition + scratches*perScratch + int64(ix.g.M())*8
	if ix.votes != nil {
		total += ix.votes.memoryBytes()
	}
	return total
}
