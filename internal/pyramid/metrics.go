package pyramid

import "anc/internal/obs"

// Metrics are the index's observability handles. A nil *Metrics (the
// default) disables them; every method is nil-safe, so UpdateEdges — the
// per-activation hot path — pays one predictable branch when observability
// is off and never reads the clock.
type Metrics struct {
	// BuildSeconds observes initial construction time (recorded at
	// Instrument time from the duration measured during Build).
	BuildSeconds *obs.Histogram
	// UpdateSeconds observes each UpdateEdges repair pass that changed at
	// least one weight (bit-exact no-op updates are not timed).
	UpdateSeconds *obs.Histogram
	// ReconstructSeconds observes full Reconstruct rebuilds.
	ReconstructSeconds *obs.Histogram
	// RepairedPartitions counts partition repair passes that actually moved
	// nodes — the paper's "affected set is non-empty" case (Lemma 12).
	RepairedPartitions *obs.Counter
}

// NewMetrics registers the pyramid metric families on reg (nil reg → nil
// metrics, observability off).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		BuildSeconds: reg.Histogram("anc_pyramid_build_seconds",
			"initial pyramid index construction time in seconds", nil),
		UpdateSeconds: reg.Histogram("anc_pyramid_update_seconds",
			"incremental UpdateEdges repair time in seconds", nil),
		ReconstructSeconds: reg.Histogram("anc_pyramid_reconstruct_seconds",
			"full index reconstruction time in seconds", nil),
		RepairedPartitions: reg.Counter("anc_pyramid_repaired_partitions_total",
			"partition repair passes that moved at least one node"),
	}
}

func (m *Metrics) updateStart() obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.UpdateSeconds.Start()
}

func (m *Metrics) reconstructStart() obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.ReconstructSeconds.Start()
}

// partitionRepaired is called from pool workers concurrently; the counter
// is a single atomic add.
func (m *Metrics) partitionRepaired() {
	if m == nil {
		return
	}
	m.RepairedPartitions.Inc()
}

// Instrument attaches the index's metrics to reg (nil reg is a no-op).
// Call it before the index sees concurrent traffic — attachment itself is
// not synchronized, only the attached handles are. The build duration
// measured during construction is observed immediately; when the index
// runs a worker pool, pool size and live occupancy are exposed as
// anc_pyramid_pool_workers / anc_pyramid_pool_busy.
func (ix *Index) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ix.met = NewMetrics(reg)
	ix.met.BuildSeconds.Observe(ix.buildSeconds)
	if p := ix.pool; p != nil {
		reg.Gauge("anc_pyramid_pool_workers",
			"size of the partition-update worker pool").Set(int64(poolSize(ix.cfg.K * ix.levels)))
		reg.GaugeFunc("anc_pyramid_pool_busy",
			"partition-update tasks executing right now", func() float64 {
				return float64(p.busy.Load())
			})
	}
}
