package pyramid

import (
	"math"

	"anc/internal/graph"
)

// EstimateDistance returns the Das Sarma sketch estimate of the anchored
// distance between u and v: the minimum, over every Voronoi partition of
// every pyramid, of dist(u, seed) + dist(seed, v) for partitions where u
// and v share a seed (the common-landmark query of the underlying oracle
// [Das Sarma et al., WSDM 2010]). The estimate never underestimates the
// true shortest distance; with K pyramids × ⌈log₂ n⌉ levels of random
// seeds, the expected stretch is O(log n). It returns +Inf when no
// partition co-locates the two nodes (only possible across connected
// components). O(K·log n).
func (ix *Index) EstimateDistance(u, v graph.NodeID) float64 {
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for p := range ix.parts {
		for l := range ix.parts[p] {
			part := ix.parts[p][l]
			su := part.Seed(u)
			if su == graph.None || su != part.Seed(v) {
				continue
			}
			if d := part.Dist(u) + part.Dist(v); d < best {
				best = d
			}
		}
	}
	// The direct edge, when present, is also a path.
	if e := ix.g.FindEdge(u, v); e != graph.None && ix.weights[e] < best {
		best = ix.weights[e]
	}
	return best
}

// EstimateAttraction returns the attraction strength 1/dist(u, v)
// (Section IV-C) computed from the sketch estimate: a lower bound on the
// true attraction. Zero when the sketch finds no common landmark.
func (ix *Index) EstimateAttraction(u, v graph.NodeID) float64 {
	d := ix.EstimateDistance(u, v)
	if math.IsInf(d, 1) {
		return 0
	}
	if d == 0 {
		return math.Inf(1)
	}
	return 1 / d
}
