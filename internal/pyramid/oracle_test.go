package pyramid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/metric"
)

// TestEstimateNeverUnderestimates: the sketch estimate is always ≥ the
// true shortest distance, and finite for connected pairs when some
// partition co-locates them.
func TestEstimateNeverUnderestimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20+rng.Intn(20), 50)
		w := randomWeights(rng, g.M())
		ix := buildIndex(t, g, w, Config{K: 4, Theta: 0.7}, seed)
		wf := func(e graph.EdgeID) float64 { return w[e] }
		for trial := 0; trial < 10; trial++ {
			u := graph.NodeID(rng.Intn(g.N()))
			v := graph.NodeID(rng.Intn(g.N()))
			est := ix.EstimateDistance(u, v)
			truth := metric.Distance(g, u, v, wf)
			if math.IsInf(truth, 1) {
				if !math.IsInf(est, 1) {
					return false // cannot co-locate across components
				}
				continue
			}
			if est < truth-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateFiniteAtTopLevel: the coarsest level has few seeds, so any
// connected pair shares one with high probability; with 4 pyramids the
// estimate is essentially always finite on a connected graph.
func TestEstimateFiniteOnConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 50, 80) // chain backbone: connected
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 4, Theta: 0.7}, 11)
	infinite := 0
	for u := 0; u < g.N(); u++ {
		if math.IsInf(ix.EstimateDistance(0, graph.NodeID(u)), 1) {
			infinite++
		}
	}
	if infinite > 0 {
		t.Fatalf("%d unreachable estimates on a connected graph", infinite)
	}
}

// TestEstimateSelfAndAdjacent: d(u,u) = 0; adjacent estimates never exceed
// the direct edge weight.
func TestEstimateSelfAndAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 30, 40)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 3)
	if d := ix.EstimateDistance(5, 5); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if est := ix.EstimateDistance(u, v); est > w[e]+1e-9 {
			t.Fatalf("adjacent estimate %v exceeds edge weight %v", est, w[e])
		}
	}
}

// TestEstimateStretchBounded: on a modest connected graph, the average
// stretch of the sketch should be small (the oracle's O(log n) guarantee
// leaves plenty of slack; we assert a loose 5× average).
func TestEstimateStretchBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 60, 120)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 4, Theta: 0.7}, 29)
	wf := func(e graph.EdgeID) float64 { return w[e] }
	totalStretch, count := 0.0, 0
	for trial := 0; trial < 60; trial++ {
		u := graph.NodeID(rng.Intn(g.N()))
		v := graph.NodeID(rng.Intn(g.N()))
		if u == v {
			continue
		}
		truth := metric.Distance(g, u, v, wf)
		est := ix.EstimateDistance(u, v)
		if math.IsInf(truth, 1) || math.IsInf(est, 1) {
			continue
		}
		totalStretch += est / truth
		count++
	}
	if count == 0 {
		t.Fatal("no valid pairs")
	}
	if avg := totalStretch / float64(count); avg > 5 {
		t.Fatalf("average stretch %v too large", avg)
	}
}

// TestEstimateAttraction: reciprocal relationship and edge cases.
func TestEstimateAttraction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 20, 30)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 5)
	if a := ix.EstimateAttraction(3, 3); !math.IsInf(a, 1) {
		t.Fatalf("self attraction = %v", a)
	}
	d := ix.EstimateDistance(0, 10)
	a := ix.EstimateAttraction(0, 10)
	if !math.IsInf(d, 1) && math.Abs(a*d-1) > 1e-12 {
		t.Fatalf("attraction %v != 1/dist %v", a, 1/d)
	}
}
