package pyramid

import (
	"math"
	"math/rand"
	"testing"

	"anc/internal/graph"
)

// TestParallelBuildMatchesSequential: construction with Parallel set gives
// the same partitions as sequential construction (seed sets are drawn
// sequentially either way).
func TestParallelBuildMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 60, 120)
	w := randomWeights(rng, g.M())
	seq := buildIndex(t, g, w, Config{K: 3, Theta: 0.7}, 99)
	par := buildIndex(t, g, w, Config{K: 3, Theta: 0.7, Parallel: true}, 99)
	for p := 0; p < 3; p++ {
		for l := 1; l <= seq.Levels(); l++ {
			a, b := seq.Partition(p, l), par.Partition(p, l)
			sa, sb := a.Seeds(), b.Seeds()
			if len(sa) != len(sb) {
				t.Fatalf("seed counts differ at p%d l%d", p, l)
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("seeds differ at p%d l%d", p, l)
				}
			}
			for v := 0; v < g.N(); v++ {
				da, db := a.Dist(graph.NodeID(v)), b.Dist(graph.NodeID(v))
				if math.IsInf(da, 1) != math.IsInf(db, 1) || (!math.IsInf(da, 1) && math.Abs(da-db) > 1e-12) {
					t.Fatalf("dist differs at p%d l%d node %d: %v vs %v", p, l, v, da, db)
				}
			}
		}
	}
	if msg := par.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestBuildWithSeedsValidation: wrong seed-set count is rejected.
func TestBuildWithSeedsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomGraph(rng, 20, 20)
	w := randomWeights(rng, g.M())
	wf := func(e graph.EdgeID) float64 { return w[e] }
	if _, err := BuildWithSeeds(g, wf, Config{K: 2, Theta: 0.7}, nil); err == nil {
		t.Fatal("accepted empty seed sets")
	}
}

// TestSeedSetsRoundTrip: SeedSets -> BuildWithSeeds reproduces the index.
func TestSeedSetsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 40, 60)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 7)
	wf := func(e graph.EdgeID) float64 { return w[e] }
	clone, err := BuildWithSeeds(g, wf, Config{K: 2, Theta: 0.7}, ix.SeedSets())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		for l := 1; l <= ix.Levels(); l++ {
			for v := 0; v < g.N(); v++ {
				if ix.Partition(p, l).Seed(graph.NodeID(v)) != clone.Partition(p, l).Seed(graph.NodeID(v)) {
					t.Fatalf("seed assignment differs at p%d l%d node %d", p, l, v)
				}
			}
		}
	}
}
