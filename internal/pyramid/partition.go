// Package pyramid implements the distance index of Section V: a constant
// number k of pyramids, each a suite of ⌈log₂ n⌉ Voronoi partitions with
// 2^l uniformly random seeds at granularity level l, built by one
// multi-source Dijkstra per partition and maintained incrementally under
// edge-weight changes with the bounded update algorithms (Algorithms 1–3).
//
// All stored distances are anchored: the true distance is the stored value
// divided by the global decay factor (the metric is NegM, Lemma 10), so a
// batched rescale multiplies every stored distance by 1/g and never changes
// any shortest-path tree or Voronoi assignment.
package pyramid

import (
	"math"

	"anc/internal/graph"
)

// Partition is one Voronoi partition: a seed set, the seed assignment of
// every node, the (anchored) distance of every node to its seed, and the
// shortest-path forest rooted at the seeds, stored with parent and children
// pointers so Algorithm 3 can enumerate an orphaned subtree in time
// proportional to its size. The Dijkstra working state lives in a scratch
// shared per worker (see pool.go), not in the partition.
type Partition struct {
	g       *graph.Graph
	weights []float64 // shared with the owning Index; indexed by edge ID
	seeds   []graph.NodeID

	seedOf   []graph.NodeID // seed of v; None if unreachable from all seeds
	dist     []float64      // anchored dist(seed, v); +Inf if unreachable
	parent   []graph.NodeID // SPT parent; None for seeds and unreachable
	children [][]graph.NodeID
}

// newPartition builds a Voronoi partition over g for the given seed set,
// using the shared weight slice and the caller's scratch.
func newPartition(g *graph.Graph, weights []float64, seeds []graph.NodeID, s *scratch) *Partition {
	n := g.N()
	p := &Partition{
		g:        g,
		weights:  weights,
		seeds:    seeds,
		seedOf:   make([]graph.NodeID, n),
		dist:     make([]float64, n),
		parent:   make([]graph.NodeID, n),
		children: make([][]graph.NodeID, n),
	}
	p.rebuild(s)
	return p
}

// rebuild recomputes the whole partition with one multi-source Dijkstra.
func (p *Partition) rebuild(s *scratch) {
	n := p.g.N()
	for v := 0; v < n; v++ {
		p.seedOf[v] = graph.None
		p.dist[v] = math.Inf(1)
		p.parent[v] = graph.None
		p.children[v] = p.children[v][:0]
	}
	s.heap.Reset()
	for _, sd := range p.seeds {
		p.dist[sd] = 0
		p.seedOf[sd] = sd
		s.heap.Push(sd, 0)
	}
	for s.heap.Len() > 0 {
		x, d := s.heap.Pop()
		if d > p.dist[x] {
			continue
		}
		for _, h := range p.g.Neighbors(x) {
			nd := d + p.weights[h.Edge]
			if nd < p.dist[h.To] {
				p.relink(h.To, graph.NodeID(x))
				p.dist[h.To] = nd
				p.seedOf[h.To] = p.seedOf[x]
				s.heap.Push(h.To, nd)
			}
		}
	}
}

// relink sets the SPT parent of a to b, maintaining children lists.
// Pass b == graph.None to detach a.
func (p *Partition) relink(a, b graph.NodeID) {
	if old := p.parent[a]; old != graph.None {
		cs := p.children[old]
		for i, c := range cs {
			if c == a {
				cs[i] = cs[len(cs)-1]
				p.children[old] = cs[:len(cs)-1]
				break
			}
		}
	}
	p.parent[a] = b
	if b != graph.None {
		p.children[b] = append(p.children[b], a)
	}
}

// Seeds returns the seed set (aliases internal storage; do not modify).
func (p *Partition) Seeds() []graph.NodeID { return p.seeds }

// Seed returns the seed of v, or graph.None if v is unreachable.
func (p *Partition) Seed(v graph.NodeID) graph.NodeID { return p.seedOf[v] }

// Dist returns the anchored distance from v to its seed (+Inf if
// unreachable).
func (p *Partition) Dist(v graph.NodeID) float64 { return p.dist[v] }

// Parent returns v's parent in the shortest-path forest.
func (p *Partition) Parent(v graph.NodeID) graph.NodeID { return p.parent[v] }

// probe is Algorithm 2: it re-evaluates a's distance via its neighbor b
// and adopts b's seed if that improves a. Returns true if a changed.
func (p *Partition) probe(s *scratch, a, b graph.NodeID, e graph.EdgeID) bool {
	if math.IsInf(p.dist[b], 1) {
		return false
	}
	d := p.dist[b] + p.weights[e]
	if p.dist[a] > d {
		p.relink(a, b)
		p.dist[a] = d
		p.seedOf[a] = p.seedOf[b]
		s.markChanged(a)
		return true
	}
	return false
}

// applyBatch repairs the partition after the weights of a set of distinct
// edges changed (the shared weight slice already holds the new values;
// olds[i] is the previous weight of edges[i]). It is the batched
// generalization of Algorithms 1 and 3:
//
//  1. Every increased tree edge orphans the subtree hanging below it
//     (distance reset to +Inf), exactly as in the single-edge Algorithm 3.
//  2. One repair Dijkstra is seeded with (a) the outside boundary of all
//     orphaned regions at their unchanged distances, and (b) the endpoints
//     of every decreased edge that improve via the cheaper edge
//     (Algorithm 2's probes).
//  3. The heap is relaxed to a fixpoint.
//
// Correctness follows the single-edge argument: every non-orphaned node's
// stored distance remains a valid upper bound (no path through it lost an
// edge or got more expensive without being orphaned), and every node whose
// true distance changed is reachable by a relaxation chain from a seeded
// node, so Dijkstra ordering restores the optimality certificate checked
// by validate. The cost is bounded by the union of the per-edge affected
// sets (Lemma 12) with overlapping regions relaxed once instead of once
// per edge — the amortization batched ingest is built on.
//
// It returns the nodes whose seed or distance changed (aliases the
// scratch; valid until the scratch's next use).
func (p *Partition) applyBatch(s *scratch, edges []graph.EdgeID, olds []float64) []graph.NodeID {
	s.begin()
	// Phase 1: orphan the subtree under every increased tree edge. An edge
	// already orphaned by an earlier, enclosing subtree has parent None on
	// both sides by the time it is examined, so nesting is handled by the
	// tree-edge test itself.
	for i, e := range edges {
		if p.weights[e] <= olds[i] {
			continue
		}
		u, v := p.g.Endpoints(e)
		var o graph.NodeID
		switch {
		case p.parent[v] == u:
			o = v
		case p.parent[u] == v:
			o = u
		default:
			continue // not on this partition's forest: nothing affected
		}
		start := len(s.sub)
		s.stack = append(s.stack[:0], o)
		for len(s.stack) > 0 {
			x := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			s.sub = append(s.sub, x)
			s.stack = append(s.stack, p.children[x]...)
		}
		for _, x := range s.sub[start:] {
			p.relink(x, graph.None)
			p.dist[x] = math.Inf(1)
			p.seedOf[x] = graph.None
			p.children[x] = p.children[x][:0]
			s.markChanged(x)
		}
	}
	// Phase 2a: seed the repair with the outside boundary of the orphaned
	// regions. Orphaned nodes carry +Inf by now, so finiteness alone
	// identifies the boundary.
	for _, x := range s.sub {
		for _, h := range p.g.Neighbors(x) {
			if !math.IsInf(p.dist[h.To], 1) {
				s.heap.Push(h.To, p.dist[h.To])
			}
		}
	}
	// Phase 2b: probe both endpoints of every decreased edge.
	for i, e := range edges {
		if p.weights[e] >= olds[i] {
			continue
		}
		u, v := p.g.Endpoints(e)
		if p.probe(s, u, v, e) {
			s.heap.Push(u, p.dist[u])
		}
		if p.probe(s, v, u, e) {
			s.heap.Push(v, p.dist[v])
		}
	}
	// Phase 3: relax to fixpoint.
	for s.heap.Len() > 0 {
		x, d := s.heap.Pop()
		if d > p.dist[x] {
			continue
		}
		for _, h := range p.g.Neighbors(x) {
			if p.probe(s, h.To, graph.NodeID(x), h.Edge) {
				s.heap.Push(h.To, p.dist[h.To])
			}
		}
	}
	return s.changed
}

// onRescale multiplies every stored distance by the NegM factor 1/g.
// Assignments and tree structure are unchanged (Lemma 10).
func (p *Partition) onRescale(invG float64) {
	for i := range p.dist {
		p.dist[i] *= invG
	}
}

// validate checks the full optimality certificate of the partition:
// seeds at distance 0, every non-seed supported by its parent edge, no
// relaxable edge, children consistent with parents. It returns a
// description of the first violation, or "" if the partition is a correct
// Voronoi partition for the current weights. Exposed for tests and the
// paper's invariants; O(n + m).
func (p *Partition) validate() string {
	n := p.g.N()
	isSeed := make([]bool, n)
	for _, s := range p.seeds {
		isSeed[s] = true
	}
	const eps = 1e-6
	for v := 0; v < n; v++ {
		x := graph.NodeID(v)
		switch {
		case isSeed[x]:
			if p.dist[x] != 0 || p.seedOf[x] != x || p.parent[x] != graph.None {
				return "seed state corrupt"
			}
		case math.IsInf(p.dist[x], 1):
			if p.seedOf[x] != graph.None || p.parent[x] != graph.None {
				return "unreachable node has seed or parent"
			}
		default:
			pa := p.parent[x]
			if pa == graph.None {
				return "reachable non-seed without parent"
			}
			e := p.g.FindEdge(x, pa)
			if e == graph.None {
				return "parent not adjacent"
			}
			if math.Abs(p.dist[x]-(p.dist[pa]+p.weights[e])) > eps*(1+math.Abs(p.dist[x])) {
				return "distance unsupported by parent edge"
			}
			if p.seedOf[x] != p.seedOf[pa] {
				return "seed differs from parent seed"
			}
		}
	}
	for e := 0; e < p.g.M(); e++ {
		u, v := p.g.Endpoints(graph.EdgeID(e))
		w := p.weights[e]
		if !math.IsInf(p.dist[u], 1) && p.dist[v] > p.dist[u]+w+eps*(1+p.dist[u]) {
			return "relaxable edge (v side)"
		}
		if !math.IsInf(p.dist[v], 1) && p.dist[u] > p.dist[v]+w+eps*(1+p.dist[v]) {
			return "relaxable edge (u side)"
		}
	}
	for v := 0; v < n; v++ {
		for _, c := range p.children[v] {
			if p.parent[c] != graph.NodeID(v) {
				return "children list inconsistent"
			}
		}
	}
	return ""
}
