// Package pyramid implements the distance index of Section V: a constant
// number k of pyramids, each a suite of ⌈log₂ n⌉ Voronoi partitions with
// 2^l uniformly random seeds at granularity level l, built by one
// multi-source Dijkstra per partition and maintained incrementally under
// edge-weight changes with the bounded update algorithms (Algorithms 1–3).
//
// All stored distances are anchored: the true distance is the stored value
// divided by the global decay factor (the metric is NegM, Lemma 10), so a
// batched rescale multiplies every stored distance by 1/g and never changes
// any shortest-path tree or Voronoi assignment.
package pyramid

import (
	"math"

	"anc/internal/graph"
	"anc/internal/pq"
)

// Partition is one Voronoi partition: a seed set, the seed assignment of
// every node, the (anchored) distance of every node to its seed, and the
// shortest-path forest rooted at the seeds, stored with parent and children
// pointers so Algorithm 3 can enumerate an orphaned subtree in time
// proportional to its size.
type Partition struct {
	g       *graph.Graph
	weights []float64 // shared with the owning Index; indexed by edge ID
	seeds   []graph.NodeID

	seedOf   []graph.NodeID // seed of v; None if unreachable from all seeds
	dist     []float64      // anchored dist(seed, v); +Inf if unreachable
	parent   []graph.NodeID // SPT parent; None for seeds and unreachable
	children [][]graph.NodeID

	heap    *pq.Heap
	inTree  []bool         // scratch: marks the orphaned subtree
	changed []graph.NodeID // scratch: nodes whose seed/dist changed
	stamp   []int32        // scratch: dedup stamp for changed
	stampID int32
}

// newPartition builds a Voronoi partition over g for the given seed set,
// using the shared weight slice.
func newPartition(g *graph.Graph, weights []float64, seeds []graph.NodeID) *Partition {
	n := g.N()
	p := &Partition{
		g:        g,
		weights:  weights,
		seeds:    seeds,
		seedOf:   make([]graph.NodeID, n),
		dist:     make([]float64, n),
		parent:   make([]graph.NodeID, n),
		children: make([][]graph.NodeID, n),
		heap:     pq.New(n),
		inTree:   make([]bool, n),
		stamp:    make([]int32, n),
	}
	p.rebuild()
	return p
}

// rebuild recomputes the whole partition with one multi-source Dijkstra.
func (p *Partition) rebuild() {
	n := p.g.N()
	for v := 0; v < n; v++ {
		p.seedOf[v] = graph.None
		p.dist[v] = math.Inf(1)
		p.parent[v] = graph.None
		p.children[v] = p.children[v][:0]
	}
	p.heap.Reset()
	for _, s := range p.seeds {
		p.dist[s] = 0
		p.seedOf[s] = s
		p.heap.Push(s, 0)
	}
	for p.heap.Len() > 0 {
		x, d := p.heap.Pop()
		if d > p.dist[x] {
			continue
		}
		for _, h := range p.g.Neighbors(x) {
			nd := d + p.weights[h.Edge]
			if nd < p.dist[h.To] {
				p.relink(h.To, graph.NodeID(x))
				p.dist[h.To] = nd
				p.seedOf[h.To] = p.seedOf[x]
				p.heap.Push(h.To, nd)
			}
		}
	}
}

// relink sets the SPT parent of a to b, maintaining children lists.
// Pass b == graph.None to detach a.
func (p *Partition) relink(a, b graph.NodeID) {
	if old := p.parent[a]; old != graph.None {
		cs := p.children[old]
		for i, c := range cs {
			if c == a {
				cs[i] = cs[len(cs)-1]
				p.children[old] = cs[:len(cs)-1]
				break
			}
		}
	}
	p.parent[a] = b
	if b != graph.None {
		p.children[b] = append(p.children[b], a)
	}
}

// Seeds returns the seed set (aliases internal storage; do not modify).
func (p *Partition) Seeds() []graph.NodeID { return p.seeds }

// Seed returns the seed of v, or graph.None if v is unreachable.
func (p *Partition) Seed(v graph.NodeID) graph.NodeID { return p.seedOf[v] }

// Dist returns the anchored distance from v to its seed (+Inf if
// unreachable).
func (p *Partition) Dist(v graph.NodeID) float64 { return p.dist[v] }

// Parent returns v's parent in the shortest-path forest.
func (p *Partition) Parent(v graph.NodeID) graph.NodeID { return p.parent[v] }

// markChanged records that v's seed or distance changed during an update.
func (p *Partition) markChanged(v graph.NodeID) {
	if p.stamp[v] != p.stampID {
		p.stamp[v] = p.stampID
		p.changed = append(p.changed, v)
	}
}

// probe is Algorithm 2: it re-evaluates a's distance via its neighbor b
// and adopts b's seed if that improves a. Returns true if a changed.
func (p *Partition) probe(a, b graph.NodeID, e graph.EdgeID) bool {
	if math.IsInf(p.dist[b], 1) {
		return false
	}
	d := p.dist[b] + p.weights[e]
	if p.dist[a] > d {
		p.relink(a, b)
		p.dist[a] = d
		p.seedOf[a] = p.seedOf[b]
		p.markChanged(a)
		return true
	}
	return false
}

// updateDecrease is Algorithm 1: the weight of e(u, v) decreased (the new
// value is already in the shared weight slice). It probes both endpoints
// and then relaxes outward; only nodes whose distance to their seed
// improves are touched (Lemmas 11–12).
func (p *Partition) updateDecrease(e graph.EdgeID) {
	u, v := p.g.Endpoints(e)
	p.heap.Reset()
	if p.probe(u, v, e) {
		p.heap.Push(u, p.dist[u])
	}
	if p.probe(v, u, e) {
		p.heap.Push(v, p.dist[v])
	}
	for p.heap.Len() > 0 {
		x, d := p.heap.Pop()
		if d > p.dist[x] {
			continue
		}
		for _, h := range p.g.Neighbors(x) {
			if p.probe(h.To, graph.NodeID(x), h.Edge) {
				p.heap.Push(h.To, p.dist[h.To])
			}
		}
	}
}

// updateIncrease is Algorithm 3: the weight of e(u, v) increased. If e is
// not a tree edge nothing is affected. Otherwise the subtree rooted at the
// child endpoint is orphaned (distance reset to +Inf) and repaired by a
// Dijkstra seeded with the subtree's outside boundary.
func (p *Partition) updateIncrease(e graph.EdgeID) {
	u, v := p.g.Endpoints(e)
	var o graph.NodeID
	switch {
	case p.parent[v] == u:
		o = v
	case p.parent[u] == v:
		o = u
	default:
		return // e is not on any shortest-path tree: nothing affected
	}
	// Collect and orphan the subtree rooted at o.
	p.heap.Reset()
	var sub []graph.NodeID
	stack := []graph.NodeID{o}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub = append(sub, x)
		p.inTree[x] = true
		stack = append(stack, p.children[x]...)
	}
	for _, x := range sub {
		p.relink(x, graph.None)
		p.dist[x] = math.Inf(1)
		p.seedOf[x] = graph.None
		p.children[x] = p.children[x][:0]
		p.markChanged(x)
	}
	// Seed the repair with outside boundary nodes at their (unchanged)
	// distances.
	for _, x := range sub {
		for _, h := range p.g.Neighbors(x) {
			if !p.inTree[h.To] && !math.IsInf(p.dist[h.To], 1) {
				p.heap.Push(h.To, p.dist[h.To])
			}
		}
	}
	for _, x := range sub {
		p.inTree[x] = false
	}
	for p.heap.Len() > 0 {
		x, d := p.heap.Pop()
		if d > p.dist[x] {
			continue
		}
		for _, h := range p.g.Neighbors(x) {
			if p.probe(h.To, graph.NodeID(x), h.Edge) {
				p.heap.Push(h.To, p.dist[h.To])
			}
		}
	}
}

// update applies a weight change on edge e. The shared weight slice must
// already hold the new value; old is the previous value. It returns the
// nodes whose seed or distance changed (valid until the next call).
func (p *Partition) update(e graph.EdgeID, old, new float64) []graph.NodeID {
	p.stampID++
	p.changed = p.changed[:0]
	switch {
	case new < old:
		p.updateDecrease(e)
	case new > old:
		p.updateIncrease(e)
	}
	return p.changed
}

// onRescale multiplies every stored distance by the NegM factor 1/g.
// Assignments and tree structure are unchanged (Lemma 10).
func (p *Partition) onRescale(invG float64) {
	for i := range p.dist {
		p.dist[i] *= invG
	}
}

// validate checks the full optimality certificate of the partition:
// seeds at distance 0, every non-seed supported by its parent edge, no
// relaxable edge, children consistent with parents. It returns a
// description of the first violation, or "" if the partition is a correct
// Voronoi partition for the current weights. Exposed for tests and the
// paper's invariants; O(n + m).
func (p *Partition) validate() string {
	n := p.g.N()
	isSeed := make([]bool, n)
	for _, s := range p.seeds {
		isSeed[s] = true
	}
	const eps = 1e-6
	for v := 0; v < n; v++ {
		x := graph.NodeID(v)
		switch {
		case isSeed[x]:
			if p.dist[x] != 0 || p.seedOf[x] != x || p.parent[x] != graph.None {
				return "seed state corrupt"
			}
		case math.IsInf(p.dist[x], 1):
			if p.seedOf[x] != graph.None || p.parent[x] != graph.None {
				return "unreachable node has seed or parent"
			}
		default:
			pa := p.parent[x]
			if pa == graph.None {
				return "reachable non-seed without parent"
			}
			e := p.g.FindEdge(x, pa)
			if e == graph.None {
				return "parent not adjacent"
			}
			if math.Abs(p.dist[x]-(p.dist[pa]+p.weights[e])) > eps*(1+math.Abs(p.dist[x])) {
				return "distance unsupported by parent edge"
			}
			if p.seedOf[x] != p.seedOf[pa] {
				return "seed differs from parent seed"
			}
		}
	}
	for e := 0; e < p.g.M(); e++ {
		u, v := p.g.Endpoints(graph.EdgeID(e))
		w := p.weights[e]
		if !math.IsInf(p.dist[u], 1) && p.dist[v] > p.dist[u]+w+eps*(1+p.dist[u]) {
			return "relaxable edge (v side)"
		}
		if !math.IsInf(p.dist[v], 1) && p.dist[u] > p.dist[v]+w+eps*(1+p.dist[v]) {
			return "relaxable edge (u side)"
		}
	}
	for v := 0; v < n; v++ {
		for _, c := range p.children[v] {
			if p.parent[c] != graph.NodeID(v) {
				return "children list inconsistent"
			}
		}
	}
	return ""
}
