package pyramid

import (
	"runtime"
	"sync"
	"sync/atomic"

	"anc/internal/graph"
	"anc/internal/pq"
)

// scratch is the Dijkstra working state of one update or rebuild: the
// priority queue, the changed-set accumulator with its dedup stamps, and
// the subtree-traversal buffers of Algorithm 3. It used to live inside
// every Partition (K·⌈log₂ n⌉ copies); now one scratch exists per worker
// plus one for the serial path, and is reused across calls, so the memory
// scales with the worker count instead of the partition count and the hot
// ingest path allocates nothing.
type scratch struct {
	heap    *pq.Heap
	changed []graph.NodeID // nodes whose seed/dist changed (valid until next use)
	stamp   []int32        // dedup stamp for changed
	stampID int32
	sub     []graph.NodeID // orphaned-subtree accumulator (Algorithm 3)
	stack   []graph.NodeID // DFS stack for subtree collection
}

func newScratch(n int) *scratch {
	return &scratch{
		heap:  pq.New(n),
		stamp: make([]int32, n),
	}
}

// markChanged records that v's seed or distance changed during the current
// update, deduplicating via the stamp array.
func (s *scratch) markChanged(v graph.NodeID) {
	if s.stamp[v] != s.stampID {
		s.stamp[v] = s.stampID
		s.changed = append(s.changed, v)
	}
}

// begin starts a fresh changed-set epoch.
func (s *scratch) begin() {
	s.stampID++
	s.changed = s.changed[:0]
	s.sub = s.sub[:0]
	s.heap.Reset()
}

// pool is a fixed set of long-lived workers, each owning one scratch, fed
// over an unbuffered task channel. It replaces the previous
// goroutine-per-partition-per-update spawn: partition updates are mutually
// independent (Lemma 13), so a persistent pool of min(GOMAXPROCS, K·L)
// workers saturates the hardware without per-activation goroutine churn.
type pool struct {
	tasks   chan poolTask
	workers sync.WaitGroup
	// busy counts tasks executing right now; always maintained (two atomic
	// adds per partition-sized task) so the occupancy gauge can sample it
	// without the workers ever reading mutable metrics state.
	busy atomic.Int64
}

type poolTask struct {
	fn   func(slot int, s *scratch)
	slot int
	done *sync.WaitGroup
}

// poolSize returns min(GOMAXPROCS, slots): more workers than independent
// partitions would only idle.
func poolSize(slots int) int {
	w := runtime.GOMAXPROCS(0)
	if w > slots {
		w = slots
	}
	if w < 1 {
		w = 1
	}
	return w
}

// newPool starts `workers` goroutines, each with a scratch sized for an
// n-node graph. The goroutines live until close.
func newPool(workers, n int) *pool {
	p := &pool{tasks: make(chan poolTask)}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			s := newScratch(n)
			for t := range p.tasks {
				p.busy.Add(1)
				t.fn(t.slot, s)
				p.busy.Add(-1)
				t.done.Done()
			}
		}()
	}
	return p
}

// run dispatches fn for every slot in [0, slots) across the workers and
// blocks until all complete (the per-dispatch barrier the vote tracker
// needs before it may read changed sets).
func (p *pool) run(slots int, fn func(slot int, s *scratch)) {
	var done sync.WaitGroup
	done.Add(slots)
	for i := 0; i < slots; i++ {
		p.tasks <- poolTask{fn: fn, slot: i, done: &done}
	}
	done.Wait()
}

// close drains the pool: no task is in flight after run returns, so
// closing the channel stops every worker, and the wait guarantees zero
// leaked goroutines.
func (p *pool) close() {
	close(p.tasks)
	p.workers.Wait()
}
