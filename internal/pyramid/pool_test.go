package pyramid

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"anc/internal/graph"
)

// TestPoolCloseLeaksNothing: building a parallel index spins up the pool;
// Close must drain every worker goroutine.
func TestPoolCloseLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 80)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 3, Theta: 0.7, Parallel: true}, 2)
	if ix.pool == nil {
		t.Fatal("parallel build did not create a pool")
	}
	for step := 0; step < 10; step++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		w[e] *= 0.5 + rng.Float64()
		ix.UpdateEdge(e, w[e])
	}
	ix.Close()
	ix.Close() // idempotent
	// Updates after Close fall back to the serial path.
	w[0] *= 1.3
	ix.UpdateEdge(0, w[0])
	if msg := ix.Validate(); msg != "" {
		t.Fatalf("post-close update: %s", msg)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after close", before, after)
	}
}

// TestUpdateEdgesMatchesSequential: a batched UpdateEdges call must leave
// the index in the same state as applying the same changes one at a time,
// serially and in parallel, with vote tracking on.
func TestUpdateEdgesMatchesSequential(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		g := randomGraph(rng, 60, 120)
		w1 := randomWeights(rng, g.M())
		w2 := append([]float64(nil), w1...)
		cfg := Config{K: 3, Theta: 0.7}
		seq := buildIndex(t, g, w1, cfg, 11)
		cfg.Parallel = parallel
		bat := buildIndex(t, g, w2, cfg, 11)
		defer bat.Close()
		seq.EnableVoteTracking()
		bat.EnableVoteTracking()
		upd := rand.New(rand.NewSource(13))
		for round := 0; round < 15; round++ {
			k := 1 + upd.Intn(8)
			edges := make([]graph.EdgeID, 0, k)
			weights := make([]float64, 0, k)
			seen := map[graph.EdgeID]bool{}
			for len(edges) < k {
				e := graph.EdgeID(upd.Intn(g.M()))
				if seen[e] {
					continue
				}
				seen[e] = true
				f := 0.3 + upd.Float64()*2.5
				w1[e] *= f
				w2[e] *= f
				edges = append(edges, e)
				weights = append(weights, w2[e])
			}
			for i, e := range edges {
				seq.UpdateEdge(e, w1[e])
				_ = i
			}
			bat.UpdateEdges(edges, weights)
			if msg := bat.Validate(); msg != "" {
				t.Fatalf("parallel=%v round %d: %s", parallel, round, msg)
			}
		}
		for p := 0; p < 3; p++ {
			for l := 1; l <= seq.Levels(); l++ {
				ps, pb := seq.Partition(p, l), bat.Partition(p, l)
				for v := 0; v < g.N(); v++ {
					ds, db := ps.Dist(graph.NodeID(v)), pb.Dist(graph.NodeID(v))
					if math.IsInf(ds, 1) != math.IsInf(db, 1) || (!math.IsInf(ds, 1) && math.Abs(ds-db) > 1e-6*(1+ds)) {
						t.Fatalf("parallel=%v p%d l%d node %d: seq %v vs batch %v", parallel, p, l, v, ds, db)
					}
				}
			}
		}
	}
}

// TestUpdateEdgesSkipsNoops: a batch consisting entirely of unchanged
// weights must not touch any partition state.
func TestUpdateEdgesSkipsNoops(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 25, 40)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 19)
	part := ix.Partition(0, 2)
	before := make([]float64, g.N())
	for v := range before {
		before[v] = part.Dist(graph.NodeID(v))
	}
	ix.UpdateEdges([]graph.EdgeID{0, 1, 2}, []float64{w[0], w[1], w[2]})
	for v := range before {
		//anclint:ignore floateq no-op batch must be bit-exact, not merely close
		if part.Dist(graph.NodeID(v)) != before[v] {
			t.Fatal("no-op batch changed distances")
		}
	}
}
