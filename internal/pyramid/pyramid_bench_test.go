package pyramid

import (
	"math/rand"
	"testing"

	"anc/internal/graph"
)

func benchGraph(b *testing.B, n int) (*graph.Graph, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, n, n*4)
	return g, randomWeights(rng, g.M())
}

func BenchmarkPartitionBuild(b *testing.B) {
	g, w := benchGraph(b, 4096)
	seeds := sampleSeeds(perm(g.N()), 64, rand.New(rand.NewSource(2)))
	s := newScratch(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newPartition(g, w, seeds, s)
	}
}

func perm(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	return p
}

func BenchmarkUpdateDecrease(b *testing.B) {
	g, w := benchGraph(b, 4096)
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, DefaultConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		w[e] *= 0.9
		ix.UpdateEdge(e, w[e])
	}
}

func BenchmarkUpdateIncrease(b *testing.B) {
	g, w := benchGraph(b, 4096)
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, DefaultConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		w[e] *= 1.1
		ix.UpdateEdge(e, w[e])
	}
}

func BenchmarkEstimateDistance(b *testing.B) {
	g, w := benchGraph(b, 4096)
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, DefaultConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.EstimateDistance(graph.NodeID(rng.Intn(g.N())), graph.NodeID(rng.Intn(g.N())))
	}
}

func BenchmarkVotesPollVsTracked(b *testing.B) {
	g, w := benchGraph(b, 2048)
	b.Run("poll", func(b *testing.B) {
		ix, _ := Build(g, func(e graph.EdgeID) float64 { return w[e] }, DefaultConfig(), rand.New(rand.NewSource(3)))
		l := SqrtLevel(g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for e := 0; e < g.M(); e++ {
				ix.Votes(graph.EdgeID(e), l)
			}
		}
	})
	b.Run("tracked", func(b *testing.B) {
		ix, _ := Build(g, func(e graph.EdgeID) float64 { return w[e] }, DefaultConfig(), rand.New(rand.NewSource(3)))
		ix.EnableVoteTracking()
		l := SqrtLevel(g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for e := 0; e < g.M(); e++ {
				ix.Votes(graph.EdgeID(e), l)
			}
		}
	})
}
