package pyramid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
	"anc/internal/metric"
)

func randomGraph(rng *rand.Rand, n, extraEdges int) *graph.Graph {
	b := graph.NewBuilder(n)
	// Spanning chain keeps most of the graph connected, plus random extras.
	for v := 1; v < n; v++ {
		b.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func randomWeights(rng *rand.Rand, m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.1 + rng.Float64()*5
	}
	return w
}

func buildIndex(t testing.TB, g *graph.Graph, w []float64, cfg Config, seed int64) *Index {
	t.Helper()
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestLevels(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {13, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Levels(c.n); got != c.want {
			t.Errorf("Levels(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSqrtLevel(t *testing.T) {
	// 2^SqrtLevel(n) should be Θ(√n): within [√n, 2√n] roughly.
	for _, n := range []int{10, 100, 1000, 10000} {
		l := SqrtLevel(n)
		seeds := float64(int(1) << uint(l))
		root := math.Sqrt(float64(n))
		if seeds < root/2 || seeds > root*4 {
			t.Errorf("SqrtLevel(%d) = %d -> %v seeds, not Θ(√n = %v)", n, l, seeds, root)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 10, 10)
	w := randomWeights(rand.New(rand.NewSource(2)), g.M())
	wf := func(e graph.EdgeID) float64 { return w[e] }
	if _, err := Build(g, wf, Config{K: 0, Theta: 0.7}, rand.New(rand.NewSource(3))); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Build(g, wf, Config{K: 2, Theta: 0}, rand.New(rand.NewSource(3))); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := Build(g, wf, Config{K: 2, Theta: 1.5}, rand.New(rand.NewSource(3))); err == nil {
		t.Error("theta>1 accepted")
	}
	bad := func(e graph.EdgeID) float64 { return -1 }
	if _, err := Build(g, bad, DefaultConfig(), rand.New(rand.NewSource(3))); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestBuildMatchesDijkstra: each built partition's distances equal a
// reference multi-source Dijkstra from the same seeds.
func TestBuildMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 40, 60)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, DefaultConfig(), 7)
	wf := func(e graph.EdgeID) float64 { return w[e] }
	for p := 0; p < ix.Config().K; p++ {
		for l := 1; l <= ix.Levels(); l++ {
			part := ix.Partition(p, l)
			dist, _ := metric.MultiSourceDijkstra(g, part.Seeds(), wf)
			for v := 0; v < g.N(); v++ {
				if math.Abs(dist[v]-part.Dist(graph.NodeID(v))) > 1e-9 {
					t.Fatalf("p%d l%d dist[%d] = %v, want %v", p, l, v, part.Dist(graph.NodeID(v)), dist[v])
				}
			}
		}
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatalf("freshly built index invalid: %s", msg)
	}
}

// TestSeedCounts: level l has min(2^l, n) distinct seeds.
func TestSeedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 13, 15)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 5)
	if ix.Levels() != 4 { // ⌈log₂ 13⌉ = 4 as in the paper's Figure 2
		t.Fatalf("levels = %d, want 4", ix.Levels())
	}
	for l := 1; l <= ix.Levels(); l++ {
		want := 1 << uint(l)
		if want > 13 {
			want = 13
		}
		seeds := ix.Partition(0, l).Seeds()
		if len(seeds) != want {
			t.Fatalf("level %d has %d seeds, want %d", l, len(seeds), want)
		}
		seen := map[graph.NodeID]bool{}
		for _, s := range seeds {
			if seen[s] {
				t.Fatalf("duplicate seed %d at level %d", s, l)
			}
			seen[s] = true
		}
	}
}

// TestUpdateMaintainsOptimality is the central invariant test: after many
// random weight updates (both increases and decreases), every partition
// still satisfies the full shortest-path optimality certificate, and
// equals a from-scratch rebuild.
func TestUpdateMaintainsOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12+rng.Intn(30), 40)
		w := randomWeights(rng, g.M())
		cfg := Config{K: 2, Theta: 0.7}
		ix := buildIndex(t, g, w, cfg, seed+1)
		for step := 0; step < 40; step++ {
			e := graph.EdgeID(rng.Intn(g.M()))
			factor := 0.2 + rng.Float64()*3 // mix of decreases and increases
			w[e] *= factor
			ix.UpdateEdge(e, w[e])
			if msg := ix.Validate(); msg != "" {
				t.Logf("seed %d step %d: %s", seed, step, msg)
				return false
			}
		}
		// Cross-check distances against reference Dijkstra per partition.
		wf := func(e graph.EdgeID) float64 { return w[e] }
		for p := 0; p < cfg.K; p++ {
			for l := 1; l <= ix.Levels(); l++ {
				part := ix.Partition(p, l)
				dist, _ := metric.MultiSourceDijkstra(g, part.Seeds(), wf)
				for v := 0; v < g.N(); v++ {
					d := part.Dist(graph.NodeID(v))
					if math.IsInf(dist[v], 1) != math.IsInf(d, 1) {
						return false
					}
					if !math.IsInf(d, 1) && math.Abs(dist[v]-d) > 1e-6 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateDecreaseExample mirrors the shape of the paper's Example 6:
// decreasing a bridge edge reroutes part of one Voronoi cell.
func TestUpdateDecreaseExample(t *testing.T) {
	// Path 0-1-2-3-4, seeds {0,4}; initially node 2 belongs to seed 0.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
	}
	g := b.Build()
	w := []float64{1, 1, 1, 1}
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, Config{K: 1, Theta: 0.7}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Force a deterministic partition: rebuild level 1 with seeds {0, 4}.
	part := ix.Partition(0, 1)
	part.seeds = []graph.NodeID{0, 4}
	part.rebuild(ix.scratch)
	if part.Seed(1) != 0 || part.Seed(3) != 4 {
		t.Fatalf("unexpected initial assignment: %v %v", part.Seed(1), part.Seed(3))
	}
	// Decrease edge (3,4) strongly: node 2 should flip to seed 4.
	e := g.FindEdge(3, 4)
	ix.SetWeight(e, 0.1)
	part.applyBatch(ix.scratch, []graph.EdgeID{e}, []float64{1})
	if part.Seed(2) != 4 {
		t.Fatalf("after decrease, seed(2) = %v, want 4", part.Seed(2))
	}
	if msg := part.validate(); msg != "" {
		t.Fatal(msg)
	}
	// Increase it back: node 2 flips back to seed 0.
	ix.SetWeight(e, 10)
	part.applyBatch(ix.scratch, []graph.EdgeID{e}, []float64{0.1})
	if part.Seed(2) != 0 {
		t.Fatalf("after increase, seed(2) = %v, want 0", part.Seed(2))
	}
	if part.Seed(3) != 4 { // 3 stays with 4 via direct (now heavy) edge? dist 10 vs via 0: 3. Flips!
		if part.Seed(3) != 0 {
			t.Fatalf("seed(3) = %v", part.Seed(3))
		}
	}
	if msg := part.validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestNonTreeEdgeIncreaseIsNoop: increasing a non-tree edge must not touch
// any node (the fast path of Algorithm 3).
func TestNonTreeEdgeIncreaseIsNoop(t *testing.T) {
	// Triangle 0-1-2 with equal weights; seed {0}. One of (0,1),(0,2) is a
	// tree edge pair; (1,2) is never a tree edge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build()
	w := []float64{1, 1, 1}
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, Config{K: 1, Theta: 0.7}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	part := ix.Partition(0, 1)
	part.seeds = []graph.NodeID{0}
	part.rebuild(ix.scratch)
	e12 := g.FindEdge(1, 2)
	ix.SetWeight(e12, 100)
	changed := part.applyBatch(ix.scratch, []graph.EdgeID{e12}, []float64{1})
	if len(changed) != 0 {
		t.Fatalf("non-tree increase changed nodes: %v", changed)
	}
	if msg := part.validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestDisconnectedGraph: nodes unreachable from every seed keep seed None
// and infinite distance, through build and updates.
func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5) // component {4,5}; node 3 isolated
	g := b.Build()
	w := []float64{1, 1, 1}
	ix, err := Build(g, func(e graph.EdgeID) float64 { return w[e] }, Config{K: 1, Theta: 0.7}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	part := ix.Partition(0, 1)
	part.seeds = []graph.NodeID{0} // only component {0,1,2} is covered
	part.rebuild(ix.scratch)
	for _, v := range []graph.NodeID{3, 4, 5} {
		if part.Seed(v) != graph.None || !math.IsInf(part.Dist(v), 1) {
			t.Fatalf("node %d should be unreachable", v)
		}
	}
	ix.SetWeight(g.FindEdge(4, 5), 0.5)
	part.applyBatch(ix.scratch, []graph.EdgeID{g.FindEdge(4, 5)}, []float64{1})
	if msg := part.validate(); msg != "" {
		t.Fatal(msg)
	}
}

// TestRescaleInvariance: OnRescale scales stored distances by 1/g and
// leaves every assignment and tree intact; validate() must still pass
// against weights scaled the same way.
func TestRescaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 30, 50)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 13)
	seedsBefore := make([]graph.NodeID, g.N())
	part := ix.Partition(0, 2)
	for v := range seedsBefore {
		seedsBefore[v] = part.Seed(graph.NodeID(v))
	}
	ix.OnRescale(0.5) // distances and weights ×2
	if msg := ix.Validate(); msg != "" {
		t.Fatalf("after rescale: %s", msg)
	}
	for v := range seedsBefore {
		if part.Seed(graph.NodeID(v)) != seedsBefore[v] {
			t.Fatalf("rescale changed assignment of node %d", v)
		}
	}
}

// TestVotesAndSameCluster: vote counting agrees between the poll path and
// the SameCluster helper.
func TestVotesAndSameCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 20, 30)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 4, Theta: 0.7}, 23)
	for l := 1; l <= ix.Levels(); l++ {
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			votes := ix.Votes(graph.EdgeID(e), l)
			if votes < 0 || votes > 4 {
				t.Fatalf("votes out of range: %d", votes)
			}
			if (votes >= ix.MinSupport()) != ix.SameCluster(u, v, l) {
				t.Fatalf("SameCluster disagrees with Votes at level %d edge %d", l, e)
			}
		}
	}
}

// TestVoteTrackerStaysExact: with tracking enabled, tracked counts match a
// fresh recomputation after arbitrary updates.
func TestVoteTrackerStaysExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15+rng.Intn(15), 30)
		w := randomWeights(rng, g.M())
		ix := buildIndex(t, g, w, Config{K: 3, Theta: 0.7}, seed)
		ix.EnableVoteTracking()
		for step := 0; step < 25; step++ {
			e := graph.EdgeID(rng.Intn(g.M()))
			w[e] *= 0.3 + rng.Float64()*2.5
			ix.UpdateEdge(e, w[e])
		}
		return ix.Validate() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelUpdateMatchesSequential: Lemma 13 — parallel partition
// updates give the same index state as sequential ones.
func TestParallelUpdateMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 40, 80)
	w1 := randomWeights(rng, g.M())
	w2 := append([]float64(nil), w1...)
	seq := buildIndex(t, g, w1, Config{K: 2, Theta: 0.7}, 99)
	par := buildIndex(t, g, w2, Config{K: 2, Theta: 0.7, Parallel: true}, 99)
	par.EnableVoteTracking()
	upd := rand.New(rand.NewSource(77))
	for step := 0; step < 30; step++ {
		e := graph.EdgeID(upd.Intn(g.M()))
		f := 0.3 + upd.Float64()*2
		w1[e] *= f
		w2[e] *= f
		seq.UpdateEdge(e, w1[e])
		par.UpdateEdge(e, w2[e])
	}
	if msg := par.Validate(); msg != "" {
		t.Fatalf("parallel index invalid: %s", msg)
	}
	for p := 0; p < 2; p++ {
		for l := 1; l <= seq.Levels(); l++ {
			ps, pp := seq.Partition(p, l), par.Partition(p, l)
			for v := 0; v < g.N(); v++ {
				ds, dp := ps.Dist(graph.NodeID(v)), pp.Dist(graph.NodeID(v))
				if math.IsInf(ds, 1) != math.IsInf(dp, 1) || (!math.IsInf(ds, 1) && math.Abs(ds-dp) > 1e-9) {
					t.Fatalf("p%d l%d node %d: %v vs %v", p, l, v, ds, dp)
				}
			}
		}
	}
}

// TestReconstructEqualsUpdate: RECONSTRUCT from the same seeds yields the
// same distances as the incremental UPDATE path.
func TestReconstructEqualsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := randomGraph(rng, 25, 40)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 53)
	for step := 0; step < 20; step++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		w[e] *= 0.4 + rng.Float64()*2
		ix.UpdateEdge(e, w[e])
	}
	distBefore := ix.Partition(0, 2).Dist(5)
	ix.Reconstruct()
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
	if math.Abs(ix.Partition(0, 2).Dist(5)-distBefore) > 1e-9 {
		t.Fatalf("reconstruct changed distance: %v vs %v", ix.Partition(0, 2).Dist(5), distBefore)
	}
}

// TestExtremeWeightUpdates drives weights across twelve orders of
// magnitude — the clamp range of the similarity layer — and checks the
// partitions stay exact.
func TestExtremeWeightUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randomGraph(rng, 30, 50)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	ix := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 73)
	extremes := []float64{1e-9, 1e9, 1, 1e-6, 1e6, 3.14}
	for step := 0; step < 60; step++ {
		e := graph.EdgeID(rng.Intn(g.M()))
		w[e] = extremes[step%len(extremes)]
		ix.UpdateEdge(e, w[e])
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
	wf := func(e graph.EdgeID) float64 { return w[e] }
	for p := 0; p < 2; p++ {
		for l := 1; l <= ix.Levels(); l++ {
			part := ix.Partition(p, l)
			dist, _ := metric.MultiSourceDijkstra(g, part.Seeds(), wf)
			for v := 0; v < g.N(); v++ {
				d := part.Dist(graph.NodeID(v))
				if math.IsInf(dist[v], 1) != math.IsInf(d, 1) {
					t.Fatalf("reachability mismatch at p%d l%d node %d", p, l, v)
				}
				if !math.IsInf(d, 1) && math.Abs(dist[v]-d) > 1e-6*(1+dist[v]) {
					t.Fatalf("p%d l%d node %d: %v vs %v", p, l, v, d, dist[v])
				}
			}
		}
	}
}

// TestNoopUpdateIsFree: setting the same weight must change nothing and
// touch nothing.
func TestNoopUpdateIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := randomGraph(rng, 20, 30)
	w := randomWeights(rng, g.M())
	ix := buildIndex(t, g, w, Config{K: 1, Theta: 0.7}, 83)
	part := ix.Partition(0, 2)
	before := make([]float64, g.N())
	for v := range before {
		before[v] = part.Dist(graph.NodeID(v))
	}
	ix.UpdateEdge(3, w[3]) // same value
	for v := range before {
		if part.Dist(graph.NodeID(v)) != before[v] {
			t.Fatal("no-op update changed distances")
		}
	}
}

func TestMemoryBytesPositiveAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(rng, 64, 100)
	w := randomWeights(rng, g.M())
	ix2 := buildIndex(t, g, w, Config{K: 2, Theta: 0.7}, 1)
	ix8 := buildIndex(t, g, w, Config{K: 8, Theta: 0.7}, 1)
	if ix2.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
	if ix8.MemoryBytes() <= ix2.MemoryBytes() {
		t.Fatal("memory not monotone in K")
	}
}
