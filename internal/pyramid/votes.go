package pyramid

import (
	"fmt"

	"anc/internal/graph"
)

// VoteTracker maintains, in real time, the per-level per-edge vote counts
// of the voting function H_l — the paper's Remarks in Section V-C. With it,
// clustering queries and change reports on user-specified nodes read votes
// in O(1) instead of polling K partitions per edge. It exploits the local
// feature of the update: only edges incident to nodes whose seed changed
// can change their vote.
type VoteTracker struct {
	ix     *Index
	same   [][][]uint64 // [pyramid][level-1] bitset over edge IDs
	counts [][]uint16   // [level-1][edge] votes; uint16 admits K up to 65535
	// onFlip listeners are called whenever an edge's vote count crosses
	// the ⌈θ·K⌉ support threshold — i.e. the edge joins (pass=true) or
	// leaves (pass=false) the surviving edge set of level l. This is the
	// primitive behind real-time change reporting on watched nodes (the
	// paper's Remarks, Section V-C) and the invalidation signal of the
	// materialized clustering cache.
	onFlip []func(l int, e graph.EdgeID, pass bool)

	// Flip coalescing state. One repair cycle (UpdateEdges) re-evaluates an
	// edge once per pyramid, so its count can cross the threshold several
	// times before settling; listeners must only see the net crossing.
	// touched marks edges whose count changed this cycle, wasPass records
	// the pass state each edge had when first touched, and dirty lists the
	// touched (level, edge) pairs in first-touch order so flush emission is
	// deterministic. flushFlips compares wasPass against the settled state
	// and emits at most one event per (level, edge) per cycle.
	touched [][]uint64 // [level-1] bitset over edge IDs
	wasPass [][]uint64 // [level-1] bitset over edge IDs
	dirty   []flipKey
}

// flipKey identifies one (level, edge) whose vote count changed during the
// current update cycle.
type flipKey struct {
	l int32
	e graph.EdgeID
}

// OnFlip registers a support-threshold crossing listener; multiple
// listeners (e.g. the watcher and the clustering cache) fire in
// registration order. Pass nil to unregister all. Listeners fire once per
// net crossing at the end of each update cycle; they must not mutate the
// index.
func (vt *VoteTracker) OnFlip(fn func(l int, e graph.EdgeID, pass bool)) {
	if fn == nil {
		vt.onFlip = nil
		return
	}
	vt.onFlip = append(vt.onFlip, fn)
}

// EnableVoteTracking attaches a VoteTracker to the index and initializes
// it from the current partitions. Subsequent UpdateEdge calls keep it
// exact. Idempotent: a second call returns the tracker already attached.
// Memory: (K+2)·Levels·m bits + 2·Levels·m bytes. K is bounded by 65535
// (Config.validate) so the uint16 counts cannot overflow.
func (ix *Index) EnableVoteTracking() *VoteTracker {
	if ix.votes != nil {
		return ix.votes
	}
	vt := &VoteTracker{ix: ix}
	words := (ix.g.M() + 63) / 64
	vt.same = make([][][]uint64, ix.cfg.K)
	for p := range vt.same {
		vt.same[p] = make([][]uint64, ix.levels)
		for l := range vt.same[p] {
			vt.same[p][l] = make([]uint64, words)
		}
	}
	vt.counts = make([][]uint16, ix.levels)
	vt.touched = make([][]uint64, ix.levels)
	vt.wasPass = make([][]uint64, ix.levels)
	for l := range vt.counts {
		vt.counts[l] = make([]uint16, ix.g.M())
		vt.touched[l] = make([]uint64, words)
		vt.wasPass[l] = make([]uint64, words)
	}
	ix.votes = vt
	ix.voteChanged = make([][]graph.NodeID, ix.cfg.K*ix.levels)
	vt.rebuild()
	return vt
}

// Votes returns the tracked vote count of edge e at level l.
func (vt *VoteTracker) Votes(e graph.EdgeID, l int) int { return int(vt.counts[l-1][e]) }

// sameSeed recomputes whether the endpoints of e share a seed in the
// partition of pyramid p at level l.
func (vt *VoteTracker) sameSeed(p, l int, e graph.EdgeID) bool {
	part := vt.ix.parts[p][l-1]
	u, v := vt.ix.g.Endpoints(e)
	s := part.Seed(u)
	return s != graph.None && s == part.Seed(v)
}

func (vt *VoteTracker) get(p, l int, e graph.EdgeID) bool {
	return vt.same[p][l-1][e/64]&(1<<(uint(e)%64)) != 0
}

func (vt *VoteTracker) set(p, l int, e graph.EdgeID, b bool) {
	if b {
		vt.same[p][l-1][e/64] |= 1 << (uint(e) % 64)
	} else {
		vt.same[p][l-1][e/64] &^= 1 << (uint(e) % 64)
	}
}

// refreshEdge re-evaluates one (pyramid, level, edge) membership and fixes
// the count on change. Threshold crossings are not reported here — a count
// can cross back and forth while the remaining pyramids of the cycle are
// applied — only recorded for flushFlips to settle.
func (vt *VoteTracker) refreshEdge(p, l int, e graph.EdgeID) {
	old := vt.get(p, l, e)
	now := vt.sameSeed(p, l, e)
	if old == now {
		return
	}
	vt.set(p, l, e, now)
	min := vt.ix.MinSupport()
	before := int(vt.counts[l-1][e])
	if now {
		vt.counts[l-1][e]++
	} else {
		vt.counts[l-1][e]--
	}
	if len(vt.onFlip) == 0 {
		return
	}
	w, b := e/64, uint64(1)<<(uint(e)%64)
	if vt.touched[l-1][w]&b == 0 {
		vt.touched[l-1][w] |= b
		if before >= min {
			vt.wasPass[l-1][w] |= b
		} else {
			vt.wasPass[l-1][w] &^= b
		}
		vt.dirty = append(vt.dirty, flipKey{l: int32(l), e: e})
	}
}

// flushFlips ends an update cycle: every edge whose count changed this
// cycle is compared against the pass state it entered the cycle with, and
// listeners see exactly the net crossings — an edge that crossed the
// threshold transiently across pyramids but settled where it started emits
// nothing. Emission order is first-touch order, which is deterministic
// (slots are applied in pyramid-major order on both the serial and the
// parallel path). The coalescing buffers are reused across cycles, so
// steady ingest allocates nothing here.
func (vt *VoteTracker) flushFlips() {
	if len(vt.dirty) == 0 {
		return
	}
	min := vt.ix.MinSupport()
	for _, d := range vt.dirty {
		l, e := int(d.l), d.e
		w, b := e/64, uint64(1)<<(uint(e)%64)
		vt.touched[l-1][w] &^= b
		was := vt.wasPass[l-1][w]&b != 0
		now := int(vt.counts[l-1][e]) >= min
		if was != now {
			for _, fn := range vt.onFlip {
				fn(l, e, now)
			}
		}
	}
	vt.dirty = vt.dirty[:0]
}

// applyBatch processes the changed-node set reported by one partition
// update: every edge incident to a changed node (plus the trigger edges,
// whose weights changed but whose endpoints may not have moved) is
// re-evaluated. refreshEdge is idempotent per current state, so an edge
// touched through several changed nodes settles once. Counts are shared
// across the pyramids of a level; callers invoke this serially after the
// parallel barrier, then flushFlips once all slots are applied. Cost
// O(|triggers| + Σ_{x∈changed} deg x) — the same bound as the update
// itself.
func (vt *VoteTracker) applyBatch(p, l int, triggers []graph.EdgeID, changed []graph.NodeID) {
	for _, e := range triggers {
		vt.refreshEdge(p, l, e)
	}
	for _, x := range changed {
		for _, h := range vt.ix.g.Neighbors(x) {
			vt.refreshEdge(p, l, h.Edge)
		}
	}
}

// rebuild recomputes all memberships and counts from the partitions. It
// fires no flip events (callers that need invalidation after a rebuild —
// the ANCF reconstruction — handle it wholesale).
func (vt *VoteTracker) rebuild() {
	for l := 1; l <= vt.ix.levels; l++ {
		cs := vt.counts[l-1]
		for e := range cs {
			cs[e] = 0
		}
		for p := 0; p < vt.ix.cfg.K; p++ {
			bs := vt.same[p][l-1]
			for w := range bs {
				bs[w] = 0
			}
			for e := 0; e < vt.ix.g.M(); e++ {
				if vt.sameSeed(p, l, graph.EdgeID(e)) {
					vt.set(p, l, graph.EdgeID(e), true)
					cs[e]++
				}
			}
		}
	}
}

// validate cross-checks the tracked counts against a fresh recomputation.
func (vt *VoteTracker) validate() string {
	for l := 1; l <= vt.ix.levels; l++ {
		for e := 0; e < vt.ix.g.M(); e++ {
			want := 0
			for p := 0; p < vt.ix.cfg.K; p++ {
				if vt.sameSeed(p, l, graph.EdgeID(e)) {
					want++
				}
			}
			if int(vt.counts[l-1][e]) != want {
				return fmt.Sprintf("vote tracker: level %d edge %d has %d, want %d", l, e, vt.counts[l-1][e], want)
			}
		}
	}
	return ""
}

func (vt *VoteTracker) memoryBytes() int64 {
	var total int64
	for p := range vt.same {
		for l := range vt.same[p] {
			total += int64(len(vt.same[p][l])) * 8
		}
	}
	for l := range vt.counts {
		total += int64(len(vt.counts[l])) * 2
		total += int64(len(vt.touched[l])) * 8
		total += int64(len(vt.wasPass[l])) * 8
	}
	return total
}
