package pyramid

import (
	"math/rand"
	"testing"

	"anc/internal/graph"
)

// TestVoteTrackerK256Boundary is the regression test for the uint8 vote
// counts: with K = 256 identical single-seed pyramids over a connected
// graph, every edge collects exactly 256 votes. The old []uint8 counts
// wrapped to 0 and min := uint8(MinSupport()) truncated 256 to 0, so the
// tracker both corrupted counts and never reported the threshold crossing
// at min = 256.
func TestVoteTrackerK256Boundary(t *testing.T) {
	// Path 0-1-2-3, unit weights.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()

	const K = 256
	cfg := Config{K: K, Theta: 1.0} // MinSupport = 256 > math.MaxUint8
	levels := Levels(g.N())
	// Pyramids 0..K-2 use the single seed {0} at every level: all nodes
	// attach to it, so every edge is same-seed there no matter the
	// weights. The last pyramid seeds {0, 3}, so the middle edge (1,2)
	// straddles the Voronoi boundary and can be flipped by a weight
	// change.
	seedSets := make([][]graph.NodeID, K*levels)
	for p := 0; p < K; p++ {
		for l := 0; l < levels; l++ {
			if p == K-1 {
				seedSets[p*levels+l] = []graph.NodeID{0, 3}
			} else {
				seedSets[p*levels+l] = []graph.NodeID{0}
			}
		}
	}
	ix, err := BuildWithSeeds(g, func(graph.EdgeID) float64 { return 1 }, cfg, seedSets)
	if err != nil {
		t.Fatal(err)
	}
	vt := ix.EnableVoteTracking()
	if msg := ix.Validate(); msg != "" {
		t.Fatalf("fresh tracker invalid at K=256: %s", msg)
	}
	e01 := g.FindEdge(0, 1)
	if got := vt.Votes(e01, 1); got != K {
		t.Fatalf("edge (0,1) votes = %d, want %d (uint8 wraparound?)", got, K)
	}

	// Initially node 2 sits closer to seed 3 (dist 1 vs 2), so edge (1,2)
	// is split in the last pyramid: 255 votes < min 256.
	e12 := g.FindEdge(1, 2)
	if got, want := vt.Votes(e12, 1), K-1; got != want {
		t.Fatalf("edge (1,2) votes = %d, want %d", got, want)
	}
	var flips []struct {
		l    int
		e    graph.EdgeID
		pass bool
	}
	vt.OnFlip(func(l int, e graph.EdgeID, pass bool) {
		flips = append(flips, struct {
			l    int
			e    graph.EdgeID
			pass bool
		}{l, e, pass})
	})

	// Weighting edge (2,3) up to 10 moves node 2 into seed 0's cell
	// (dist 2 via the path vs 10 direct), so (1,2) becomes same-seed in
	// the last pyramid too: votes go 255 -> 256, crossing min = 256. The
	// truncated uint8 threshold could never report this flip.
	e23 := g.FindEdge(2, 3)
	ix.UpdateEdge(e23, 10)
	if msg := ix.Validate(); msg != "" {
		t.Fatalf("tracker invalid after update: %s", msg)
	}
	if got := vt.Votes(e12, 1); got != K {
		t.Fatalf("edge (1,2) votes after update = %d, want %d", got, K)
	}
	var sawPass bool
	for _, f := range flips {
		if f.e == e12 {
			if !f.pass {
				t.Fatalf("spurious fail flip on (1,2): %+v", f)
			}
			sawPass = true
		}
	}
	if !sawPass {
		t.Fatal("no pass flip reported for edge (1,2) crossing min support 256")
	}
}

// TestConfigRejectsOversizedK: the vote-tracking bound is enforced at
// construction, so a tracker can never be attached to an ensemble its
// uint16 counts cannot represent.
func TestConfigRejectsOversizedK(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 8, 4)
	wf := func(e graph.EdgeID) float64 { return 1 }
	if _, err := Build(g, wf, Config{K: 65536, Theta: 0.7}, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("K=65536 accepted; uint16 vote counts would overflow")
	}
	if _, err := Build(g, wf, Config{K: 65535, Theta: 0.7}, rand.New(rand.NewSource(2))); err != nil {
		t.Fatalf("K=65535 rejected: %v", err)
	}
}

// flipRecord is one observed threshold crossing.
type flipRecord struct {
	l    int
	e    graph.EdgeID
	pass bool
}

// TestFlipsCoalescedPerCycle drives a multi-pyramid churn workload and
// asserts the flip contract of the coalesced OnFlip: within one update
// cycle a (level, edge) pair emits at most one event, every event reflects
// a net pass-state change relative to the cycle start, and the emitted
// state matches the settled votes — no pass→fail→pass storms from
// transient crossings while the cycle's pyramids are applied one by one.
func TestFlipsCoalescedPerCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 64, 128)
	w := randomWeights(rng, g.M())
	// K = 5, θ = 0.5 puts min support at 3 of 5, so single-pyramid
	// membership changes move edges across the threshold often.
	ix := buildIndex(t, g, w, Config{K: 5, Theta: 0.5}, 11)
	vt := ix.EnableVoteTracking()
	min := ix.MinSupport()

	var cycle []flipRecord
	vt.OnFlip(func(l int, e graph.EdgeID, pass bool) {
		cycle = append(cycle, flipRecord{l, e, pass})
	})

	pass := func(e graph.EdgeID, l int) bool { return vt.Votes(e, l) >= min }
	// before[l-1][e] is the pass state at the start of the cycle.
	before := make([][]bool, ix.Levels())
	for l := range before {
		before[l] = make([]bool, g.M())
	}
	snapshot := func() {
		for l := 1; l <= ix.Levels(); l++ {
			for e := 0; e < g.M(); e++ {
				before[l-1][e] = pass(graph.EdgeID(e), l)
			}
		}
	}
	snapshot()

	edges := make([]graph.EdgeID, 0, 8)
	weights := make([]float64, 0, 8)
	for step := 0; step < 300; step++ {
		edges = edges[:0]
		weights = weights[:0]
		for i := 0; i < 1+rng.Intn(7); i++ {
			e := graph.EdgeID(rng.Intn(g.M()))
			dup := false
			for _, seen := range edges {
				if seen == e {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			w[e] *= 0.2 + rng.Float64()*4
			edges = append(edges, e)
			weights = append(weights, w[e])
		}
		cycle = cycle[:0]
		ix.UpdateEdges(edges, weights)

		seen := map[flipKey]bool{}
		for _, f := range cycle {
			key := flipKey{l: int32(f.l), e: f.e}
			if seen[key] {
				t.Fatalf("step %d: flip storm — (level %d, edge %d) emitted twice in one cycle", step, f.l, f.e)
			}
			seen[key] = true
			if f.pass == before[f.l-1][f.e] {
				t.Fatalf("step %d: spurious flip — (level %d, edge %d) emitted pass=%v but started the cycle there", step, f.l, f.e, f.pass)
			}
			if f.pass != pass(f.e, f.l) {
				t.Fatalf("step %d: stale flip — (level %d, edge %d) emitted pass=%v, settled state is %v", step, f.l, f.e, f.pass, pass(f.e, f.l))
			}
		}
		// Conversely: every net change must have been reported.
		for l := 1; l <= ix.Levels(); l++ {
			for e := 0; e < g.M(); e++ {
				now := pass(graph.EdgeID(e), l)
				if now != before[l-1][e] && !seen[flipKey{l: int32(l), e: graph.EdgeID(e)}] {
					t.Fatalf("step %d: missed flip — (level %d, edge %d) changed %v -> %v with no event", step, l, e, before[l-1][e], now)
				}
			}
		}
		snapshot()
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
}
