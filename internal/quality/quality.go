// Package quality implements the five clustering-quality measures of the
// paper's experiments (Section VI-A): Normalized Mutual Information,
// Purity and pairwise F1 against ground truth, and the structural measures
// Modularity (Newman 2006) and Conductance (Yang & Leskovec 2015).
//
// Partitions are dense label vectors; FilterNoise mirrors the paper's rule
// of discarding clusters with fewer than 3 nodes before scoring.
package quality

import (
	"math"

	"anc/internal/graph"
)

// NumClusters returns the number of distinct labels (assuming dense or
// sparse non-negative labels; negative labels are ignored).
func NumClusters(labels []int32) int {
	seen := map[int32]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// FilterNoise relabels clusters with fewer than minSize members to -1
// (noise), returning a fresh vector. The paper removes clusters below 3
// nodes before scoring.
func FilterNoise(labels []int32, minSize int) []int32 {
	counts := map[int32]int{}
	for _, l := range labels {
		if l >= 0 {
			counts[l]++
		}
	}
	out := make([]int32, len(labels))
	for i, l := range labels {
		if l >= 0 && counts[l] >= minSize {
			out[i] = l
		} else {
			out[i] = -1
		}
	}
	return out
}

// contingency builds the joint count table over items where both labelings
// are non-negative.
func contingency(a, b []int32) (table map[[2]int32]float64, rowSum, colSum map[int32]float64, n float64) {
	table = map[[2]int32]float64{}
	rowSum = map[int32]float64{}
	colSum = map[int32]float64{}
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			continue
		}
		table[[2]int32{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
		n++
	}
	return
}

// NMI returns the normalized mutual information (Strehl & Ghosh 2002,
// geometric-mean normalization) between a predicted labeling and the
// ground truth. Range [0, 1]; 1 iff the partitions are identical up to
// renaming. Noise labels (< 0) are excluded pairwise.
func NMI(pred, truth []int32) float64 {
	table, rowSum, colSum, n := contingency(pred, truth)
	if n == 0 {
		return 0
	}
	mi := 0.0
	for key, nij := range table {
		pij := nij / n
		pi := rowSum[key[0]] / n
		pj := colSum[key[1]] / n
		if pij > 0 {
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	ha, hb := 0.0, 0.0
	for _, s := range rowSum {
		p := s / n
		ha -= p * math.Log(p)
	}
	for _, s := range colSum {
		p := s / n
		hb -= p * math.Log(p)
	}
	if ha <= 0 || hb <= 0 {
		// One side is a single cluster: NMI is 1 only if both are.
		if ha <= 0 && hb <= 0 {
			return 1
		}
		return 0
	}
	v := mi / math.Sqrt(ha*hb)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Purity returns the purity of pred against truth: the fraction of items
// whose cluster's dominant ground-truth class matches them.
func Purity(pred, truth []int32) float64 {
	table, _, _, n := contingency(pred, truth)
	if n == 0 {
		return 0
	}
	best := map[int32]float64{}
	for key, c := range table {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	total := 0.0
	for _, c := range best {
		total += c
	}
	return total / n
}

// F1 returns the pairwise F1 measure: precision and recall over node
// pairs co-clustered in pred versus truth.
func F1(pred, truth []int32) float64 {
	p, r := PairPrecisionRecall(pred, truth)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// PairPrecisionRecall computes pairwise precision and recall using the
// pair-counting identities over the contingency table (O(table) rather
// than O(n²)).
func PairPrecisionRecall(pred, truth []int32) (precision, recall float64) {
	table, rowSum, colSum, n := contingency(pred, truth)
	if n == 0 {
		return 0, 0
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	tpfp, tpfn, tp := 0.0, 0.0, 0.0
	for _, s := range rowSum {
		tpfp += choose2(s)
	}
	for _, s := range colSum {
		tpfn += choose2(s)
	}
	for _, c := range table {
		tp += choose2(c)
	}
	if tpfp > 0 {
		precision = tp / tpfp
	}
	if tpfn > 0 {
		recall = tp / tpfn
	}
	return
}

// ARI returns the Adjusted Rand Index (Hubert & Arabie 1985) between a
// predicted labeling and the ground truth: pair-counting agreement
// corrected for chance. 1 for identical partitions, ~0 for independent
// ones; can be negative for adversarial disagreement. Noise labels (< 0)
// are excluded pairwise.
func ARI(pred, truth []int32) float64 {
	table, rowSum, colSum, n := contingency(pred, truth)
	if n < 2 {
		return 0
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumIJ, sumI, sumJ float64
	for _, c := range table {
		sumIJ += choose2(c)
	}
	for _, s := range rowSum {
		sumI += choose2(s)
	}
	for _, s := range colSum {
		sumJ += choose2(s)
	}
	total := choose2(n)
	expected := sumI * sumJ / total
	maxIdx := (sumI + sumJ) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial in the same way
	}
	return (sumIJ - expected) / (maxIdx - expected)
}

// Modularity returns the weighted Newman modularity of the partition:
// Q = Σ_c [ in_c/(2W) − (tot_c/(2W))² ], with loops absent (our relation
// graphs are simple). Noise labels (< 0) count as singleton communities.
func Modularity(g *graph.Graph, w []float64, labels []int32) float64 {
	var totalW float64
	deg := make([]float64, g.N())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		totalW += w[e]
		deg[u] += w[e]
		deg[v] += w[e]
	}
	if totalW == 0 {
		return 0
	}
	lab := normalizeNoise(labels)
	in := map[int32]float64{}
	tot := map[int32]float64{}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if lab[u] == lab[v] {
			in[lab[u]] += w[e]
		}
	}
	for v := 0; v < g.N(); v++ {
		tot[lab[v]] += deg[v]
	}
	m2 := 2 * totalW
	q := 0.0
	for _, inW := range in {
		q += 2 * inW / m2
	}
	for _, totW := range tot {
		q -= (totW / m2) * (totW / m2)
	}
	return q
}

// Conductance returns the average conductance over clusters with at least
// 2 nodes: φ(C) = cut(C) / min(vol(C), vol(V\C)); lower is better.
// Clusters spanning the whole graph or with zero volume are skipped.
func Conductance(g *graph.Graph, w []float64, labels []int32) float64 {
	lab := normalizeNoise(labels)
	vol := map[int32]float64{}
	cut := map[int32]float64{}
	size := map[int32]int{}
	var totalVol float64
	for v := 0; v < g.N(); v++ {
		size[lab[v]]++
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		vol[lab[u]] += w[e]
		vol[lab[v]] += w[e]
		totalVol += 2 * w[e]
		if lab[u] != lab[v] {
			cut[lab[u]] += w[e]
			cut[lab[v]] += w[e]
		}
	}
	sum, count := 0.0, 0
	for c, volC := range vol {
		if size[c] < 2 {
			continue
		}
		other := totalVol - volC
		den := math.Min(volC, other)
		if den <= 0 {
			continue
		}
		sum += cut[c] / den
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// normalizeNoise gives each noise-labeled node its own fresh community so
// structural measures treat them as singletons.
func normalizeNoise(labels []int32) []int32 {
	max := int32(-1)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	out := make([]int32, len(labels))
	next := max + 1
	for i, l := range labels {
		if l < 0 {
			out[i] = next
			next++
		} else {
			out[i] = l
		}
	}
	return out
}
