package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/graph"
)

func TestNMIPerfectAndRenamed(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	b := []int32{5, 5, 9, 9, 7, 7} // same partition, renamed
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %v", got)
	}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI under renaming = %v", got)
	}
}

func TestNMIIndependent(t *testing.T) {
	// A perfectly crossed design: 4 items, pred splits {01|23}, truth
	// splits {02|13} — MI is 0.
	pred := []int32{0, 0, 1, 1}
	truth := []int32{0, 1, 0, 1}
	if got := NMI(pred, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("NMI of independent partitions = %v, want 0", got)
	}
}

func TestNMISingleCluster(t *testing.T) {
	one := []int32{0, 0, 0, 0}
	two := []int32{0, 0, 1, 1}
	if got := NMI(one, two); got != 0 {
		t.Fatalf("NMI(single, split) = %v, want 0", got)
	}
	if got := NMI(one, one); got != 1 {
		t.Fatalf("NMI(single, single) = %v, want 1", got)
	}
}

func TestNMISymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(5))
			b[i] = int32(rng.Intn(4))
		}
		x, y := NMI(a, b), NMI(b, a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPurity(t *testing.T) {
	pred := []int32{0, 0, 0, 1, 1, 1}
	truth := []int32{0, 0, 1, 1, 1, 1}
	// Cluster 0: dominant truth 0 (2 of 3); cluster 1: truth 1 (3 of 3).
	if got := Purity(pred, truth); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("purity = %v, want 5/6", got)
	}
	if got := Purity(truth, truth); got != 1 {
		t.Fatalf("self purity = %v", got)
	}
}

func TestF1PerfectAndDegenerate(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	if got := F1(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("F1(a,a) = %v", got)
	}
	allSingle := []int32{0, 1, 2, 3}
	// No predicted pairs: precision undefined -> 0 by convention, F1 = 0.
	if got := F1(allSingle, a); got != 0 {
		t.Fatalf("F1 singletons = %v", got)
	}
}

func TestPairPrecisionRecallHandCase(t *testing.T) {
	pred := []int32{0, 0, 0, 1}
	truth := []int32{0, 0, 1, 1}
	// Pred pairs: (0,1),(0,2),(1,2) = 3. Truth pairs: (0,1),(2,3) = 2.
	// TP: (0,1) = 1.
	p, r := PairPrecisionRecall(pred, truth)
	if math.Abs(p-1.0/3) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("p,r = %v,%v, want 1/3, 1/2", p, r)
	}
}

func TestNoiseExcludedFromGroundTruthMeasures(t *testing.T) {
	pred := []int32{0, 0, -1, 1}
	truth := []int32{0, 0, 0, 1}
	if got := NMI(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI with noise = %v, want 1 (noise excluded)", got)
	}
	if got := Purity(pred, truth); got != 1 {
		t.Fatalf("purity with noise = %v", got)
	}
}

func TestFilterNoise(t *testing.T) {
	labels := []int32{0, 0, 0, 1, 1, 2}
	out := FilterNoise(labels, 3)
	want := []int32{0, 0, 0, -1, -1, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("FilterNoise = %v, want %v", out, want)
		}
	}
	if NumClusters(out) != 1 {
		t.Fatalf("NumClusters = %d", NumClusters(out))
	}
}

func TestARI(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	renamed := []int32{7, 7, 3, 3, 9, 9}
	if got := ARI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI(a,a) = %v", got)
	}
	if got := ARI(a, renamed); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI under renaming = %v", got)
	}
	// Crossed design: expected ≈ 0.
	pred := []int32{0, 0, 1, 1}
	truth := []int32{0, 1, 0, 1}
	if got := ARI(pred, truth); math.Abs(got) > 0.5 {
		t.Fatalf("ARI of independent partitions = %v", got)
	}
	// Symmetric.
	if ARI(pred, truth) != ARI(truth, pred) {
		t.Fatal("ARI not symmetric")
	}
	// Degenerate: identical trivial partitions.
	one := []int32{0, 0, 0}
	if got := ARI(one, one); got != 1 {
		t.Fatalf("ARI trivial = %v", got)
	}
	if got := ARI([]int32{0}, []int32{0}); got != 0 {
		t.Fatalf("ARI single item = %v", got)
	}
}

// TestARIBoundedProperty: ARI ≤ 1 always; ≥ -1 in practice.
func TestARIBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(5))
			b[i] = int32(rng.Intn(4))
		}
		ari := ARI(a, b)
		return ari <= 1+1e-12 && ari >= -1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ring builds a cycle graph with unit weights.
func ring(t testing.TB, n int) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return g, w
}

func TestModularityKnownValues(t *testing.T) {
	// Two triangles joined by one edge; the natural split has known Q.
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	split := []int32{0, 0, 0, 1, 1, 1}
	// m = 7. in_0 = 3, in_1 = 3. tot_0 = 7 (deg 2+2+3), tot_1 = 7.
	// Q = 2·3/14 + 2·3/14 − 2·(7/14)² = 6/7 − 1/2 = 5/14.
	want := 5.0 / 14
	if got := Modularity(g, w, split); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", got, want)
	}
	// One big community: Q = 1 − 1 = 0.
	all := []int32{0, 0, 0, 0, 0, 0}
	if got := Modularity(g, w, all); math.Abs(got) > 1e-12 {
		t.Fatalf("Q(single) = %v, want 0", got)
	}
}

func TestModularityRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		if g.M() == 0 {
			return true
		}
		w := make([]float64, g.M())
		for i := range w {
			w[i] = rng.Float64() + 0.1
		}
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(rng.Intn(4))
		}
		q := Modularity(g, w, labels)
		return q >= -1.0-1e-9 && q <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConductance(t *testing.T) {
	g, w := ring(t, 8)
	// Split the ring into two arcs of 4: each side cuts 2 edges,
	// vol = 8 per side, φ = 2/8 = 0.25 each, average 0.25.
	labels := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	if got := Conductance(g, w, labels); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("conductance = %v, want 0.25", got)
	}
	// Whole-graph cluster: skipped (den 0), result 0.
	all := make([]int32, 8)
	if got := Conductance(g, w, all); got != 0 {
		t.Fatalf("conductance(all) = %v", got)
	}
}

func TestConductanceSingletonsSkipped(t *testing.T) {
	g, w := ring(t, 6)
	labels := []int32{0, 0, 0, -1, -1, -1} // three noise singletons
	got := Conductance(g, w, labels)
	// Only the size-3 cluster counts: cut 2, vol 6, φ = 2/6.
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("conductance = %v, want 1/3", got)
	}
}
