// Package backoff is the capped exponential backoff with jitter shared
// by the client's idempotent-query retries and the replication
// follower's reconnect loop. Both sites want the same shape — sleeps
// drawn from [cur, 2·cur) with cur doubling per failure, everything
// capped at a maximum, reset to the minimum after progress — and both
// had grown their own copy; this package is the single implementation.
//
// A Backoff is NOT safe for concurrent use: it owns a private
// *rand.Rand (the global math/rand stream is off-limits under the
// determinism analyzer) and mutates its current bound on every Next.
// Create one per retry loop; they are two small words plus a generator,
// and retry loops are never hot.
package backoff

import (
	"math/rand"
	"time"
)

// Backoff produces a jittered, capped, exponentially growing sleep
// sequence. The zero value is unusable; call New.
type Backoff struct {
	min, max time.Duration
	cur      time.Duration
	rng      *rand.Rand
}

// New returns a Backoff sleeping in [min, 2·min) on the first Next and
// doubling the bound each call, capped at max. Out-of-range inputs are
// normalized: a non-positive min becomes 25ms, a max below min becomes
// min.
//
// seed fixes the jitter stream so tests (and the replication follower,
// which threads Config.Seed through) get reproducible sleep sequences.
// A zero seed draws one from the wall clock — the right choice for
// client retries, where reproducibility buys nothing and distinct
// clients SHOULD jitter differently to avoid thundering herds.
func New(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = 25 * time.Millisecond
	}
	if max < min {
		max = min
	}
	if seed == 0 {
		// Jitter seeding only: backoff sleeps never touch replayed state,
		// so a wall-clock seed cannot break recovery equivalence.
		seed = time.Now().UnixNano() //anclint:ignore determinism wall clock seeds retry jitter only, never replayed state
	}
	return &Backoff{min: min, max: max, cur: min, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sleep: the current bound plus jitter in
// [0, bound], capped at the maximum — i.e. a draw from [cur, 2·cur)
// clipped to max — and then doubles the bound (also capped). The first
// call after New or Reset draws from [min, 2·min).
func (b *Backoff) Next() time.Duration {
	sleep := b.cur + time.Duration(b.rng.Int63n(int64(b.cur)+1))
	if sleep > b.max {
		sleep = b.max
	}
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	return sleep
}

// Reset drops the bound back to the minimum. Call it after a try makes
// real progress (a successful reply, an acknowledged subscription), so
// the next failure starts the ramp from scratch.
func (b *Backoff) Reset() { b.cur = b.min }
