package backoff

import (
	"testing"
	"time"
)

// TestDeterministicSeed: identical seeds must yield identical sleep
// sequences (the follower threads Config.Seed here so chaos tests can
// reproduce reconnect timing), and distinct seeds should not.
func TestDeterministicSeed(t *testing.T) {
	const n = 32
	seq := func(seed int64) []time.Duration {
		b := New(10*time.Millisecond, 400*time.Millisecond, seed)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical jitter sequences")
	}
}

// TestBounds: every sleep lies in [cur, 2·cur) clipped to max, with cur
// the doubling-from-min bound.
func TestBounds(t *testing.T) {
	const min, max = 10 * time.Millisecond, 300 * time.Millisecond
	b := New(min, max, 7)
	cur := min
	for i := 0; i < 64; i++ {
		got := b.Next()
		lo, hi := cur, 2*cur
		if lo > max {
			lo = max
		}
		if hi > max {
			hi = max
		}
		if got < lo || got > hi {
			t.Fatalf("attempt %d: sleep %v outside [%v, %v]", i, got, lo, hi)
		}
		if cur *= 2; cur > max {
			cur = max
		}
	}
}

func TestReset(t *testing.T) {
	const min, max = 10 * time.Millisecond, 10 * time.Second
	b := New(min, max, 1)
	for i := 0; i < 6; i++ {
		b.Next()
	}
	b.Reset()
	if got := b.Next(); got < min || got >= 2*min {
		t.Fatalf("after Reset, sleep %v outside [%v, %v)", got, min, 2*min)
	}
}

// TestNormalization: degenerate bounds are repaired, and seed 0 still
// produces a usable generator.
func TestNormalization(t *testing.T) {
	b := New(0, -1, 0)
	if got := b.Next(); got <= 0 {
		t.Fatalf("normalized backoff returned %v", got)
	}
	// min > max collapses to min-only sleeps.
	b = New(50*time.Millisecond, time.Millisecond, 3)
	for i := 0; i < 8; i++ {
		if got := b.Next(); got != 50*time.Millisecond {
			t.Fatalf("collapsed range returned %v, want 50ms", got)
		}
	}
}
