// Package client is the typed Go client for the ancserve wire protocol:
// one TCP connection, synchronous request/response calls, per-call context
// deadlines, and transparent reconnection after a broken connection.
//
// A Client is safe for concurrent use; calls serialize on the connection
// (the protocol answers requests in order). For parallel load, open
// several clients.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"anc"
	"anc/internal/obs/trace"
	"anc/internal/serve"
	"anc/internal/serve/backoff"
)

// Option configures a Client at Dial time.
type Option func(*Client)

// WithTimeout sets the default per-call deadline used when the caller's
// context carries none (default 5s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithMaxFrame bounds response frames the client will accept (default
// serve.DefaultMaxFrame, matching the server).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// WithTracer records client-side spans for calls t samples and — when
// the connection negotiated protocol version >= 3 — propagates their
// trace context on the wire, so the server's flight recorder stitches
// the client call, the serve stages and (on a replicated setup) the
// follower apply into one trace. Against an old v2 server the client
// still records its local spans but sends no trailer.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Client) { c.tracer = t }
}

// WithRetry enables automatic retries for idempotent QUERY calls only
// (clusters, distance/attraction estimates, stats, replication status):
// up to attempts total tries per call, redialing between tries, with
// capped exponential backoff plus jitter starting at min and capped at
// max. Retried errors are transport failures (broken or refused
// connections) and the server's typed overloaded reply — the two cases
// where the same bytes can safely be asked again. Ingest (ActivateBatch)
// is NEVER retried: a write whose reply was lost may have been applied,
// and replaying it would double activations. Mutating ops (watch,
// drain-events, promote) and view calls (whose session dies with the
// connection) are likewise excluded.
func WithRetry(attempts int, min, max time.Duration) Option {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		if min <= 0 {
			min = 25 * time.Millisecond
		}
		if max < min {
			max = min
		}
		c.retries = attempts - 1
		c.retryMin, c.retryMax = min, max
	}
}

// Client is a connection to an ancserve server.
type Client struct {
	addr     string
	timeout  time.Duration
	maxFrame int

	retries            int // extra attempts for idempotent queries
	retryMin, retryMax time.Duration
	tracer             *trace.Tracer

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	nextID  uint64
	version uint16 // negotiated protocol version of the live connection
}

// Dial connects to an ancserve server and performs the version handshake.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, timeout: 5 * time.Second, maxFrame: serve.DefaultMaxFrame}
	for _, opt := range opts {
		opt(c)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The mutex is the connection serializer by design: every caller of the
	// dial path must see a settled conn, and the dial timeout bounds the hold.
	if err := c.connectLocked(); err != nil { //anclint:ignore lockorder c.mu is the connection serializer; DialTimeout bounds the hold
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and handshake. Callers hold
// c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReader(conn)
	if err := serve.WritePreamble(conn); err != nil {
		conn.Close()
		return err
	}
	ver, err := serve.ReadPreamble(br)
	if err != nil {
		conn.Close()
		return err
	}
	if ver > serve.Version {
		// A peer that did not downgrade its answer; speak our own ceiling.
		ver = serve.Version
	}
	c.conn = conn
	c.br = br
	c.bw = bufio.NewWriter(conn)
	c.version = ver
	return nil
}

// Version reports the negotiated protocol version of the current
// connection (0 before the first successful dial).
func (c *Client) Version() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// dropLocked discards a connection whose framing can no longer be trusted,
// so the next call reconnects.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close() //anclint:ignore droppederr the connection is already broken
		c.conn = nil
	}
}

// Close closes the connection. The client is reusable afterwards: the next
// call reconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call runs one request/response exchange. A server error reply comes back
// as *serve.WireError; transport errors drop the connection so the next
// call redials. When a tracer samples the call, a client-side span wraps
// the exchange and its context rides the request (v3 connections only).
func (c *Client) call(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connectLocked(); err != nil { //anclint:ignore lockorder c.mu is the connection serializer; DialTimeout bounds the hold
			return nil, err
		}
	}
	var sp trace.SpanHandle
	if c.tracer.ShouldTrace(trace.Context{}) {
		sp = c.tracer.Start("client."+serve.OpName(req.Op), trace.Context{})
		if c.version >= 3 {
			req.Trace = sp.Context()
		}
	}
	resp, err := c.exchangeLocked(ctx, req)
	if err != nil {
		sp.Fail()
	}
	sp.End()
	return resp, err
}

// exchangeLocked is call's wire half: deadline, write, read, validate.
func (c *Client) exchangeLocked(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropLocked()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	if err := serve.WriteRequest(c.bw, req); err != nil {
		c.dropLocked()
		return nil, err
	}
	resp, err := serve.ReadResponse(c.br, req.Op, c.maxFrame)
	if err != nil {
		c.dropLocked()
		return nil, err
	}
	if resp.ID != req.ID {
		// The stream is out of sync (e.g. a stale reply after a timeout);
		// nothing read from this connection can be trusted anymore.
		c.dropLocked()
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != nil {
		// A typed server reply: the connection itself is fine unless the
		// server said framing broke (it closes the connection after those).
		if resp.Err.Code == serve.ErrCodeBadFrame || resp.Err.Code == serve.ErrCodeFrameTooBig {
			c.dropLocked()
		}
		return nil, resp.Err
	}
	return resp, nil
}

// query runs one idempotent query exchange, retrying per WithRetry.
// Without WithRetry it is exactly call.
func (c *Client) query(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	resp, err := c.call(ctx, req)
	if c.retries == 0 || !retryable(err) {
		return resp, err
	}
	// One Backoff per retrying call: queries run concurrently across
	// goroutines, and a Backoff is single-owner by contract. Seed 0 =
	// wall-clock jitter, so parallel clients don't retry in lockstep.
	bo := backoff.New(c.retryMin, c.retryMax, 0)
	for attempt := 0; attempt < c.retries && retryable(err); attempt++ {
		timer := time.NewTimer(bo.Next())
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		resp, err = c.call(ctx, req)
	}
	return resp, err
}

// retryable reports whether an identical resend is safe and useful: the
// call never reached a decision (transport failure) or the server
// explicitly asked for a retry (overloaded). Typed rejections are final.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if we, ok := err.(*serve.WireError); ok {
		return we.Code == serve.ErrCodeOverloaded
	}
	return true
}

// ActivateBatch sends a batch through the server's group-commit ingest
// path. A nil return means the whole batch is applied (and durable, when
// the server fronts a DurableNetwork with SyncAlways).
func (c *Client) ActivateBatch(ctx context.Context, batch []anc.Activation) error {
	_, err := c.call(ctx, &serve.Request{Op: serve.OpActivateBatch, Batch: batch})
	return err
}

// Clusters reports all clusters at a granularity level.
func (c *Client) Clusters(ctx context.Context, level int) ([][]int, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpClusters, Level: int32(level)})
	if err != nil {
		return nil, err
	}
	return resp.Clusters, nil
}

// EvenClusters reports all even-clustering clusters at a level.
func (c *Client) EvenClusters(ctx context.Context, level int) ([][]int, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpEvenClusters, Level: int32(level)})
	if err != nil {
		return nil, err
	}
	return resp.Clusters, nil
}

// ClusterOf reports the local cluster of v at a level.
func (c *Client) ClusterOf(ctx context.Context, v, level int) ([]int, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpClusterOf, Node: uint32(v), Level: int32(level)})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// SmallestClusterOf reports the finest-granularity cluster containing v.
func (c *Client) SmallestClusterOf(ctx context.Context, v int) ([]int, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpSmallestClusterOf, Node: uint32(v)})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// EstimateDistance answers a sketch distance query.
func (c *Client) EstimateDistance(ctx context.Context, u, v int) (float64, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpEstimateDistance, U: uint32(u), V: uint32(v)})
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// EstimateAttraction answers an attraction-strength query.
func (c *Client) EstimateAttraction(ctx context.Context, u, v int) (float64, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpEstimateAttraction, U: uint32(u), V: uint32(v)})
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// TieRank answers an eigenvector-centrality query: the top-k nodes
// globally and, for level >= 0, per cluster at that level (level -1
// skips the per-cluster listing). Read-only and idempotent, so it is
// retried across reconnects and served by followers.
func (c *Client) TieRank(ctx context.Context, level, k int) (anc.TieRankResult, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpTieRank, Level: int32(level), K: int32(k)})
	if err != nil {
		return anc.TieRankResult{}, err
	}
	return resp.Rank, nil
}

// Evolution reads the server's buffered cluster-evolution events with
// sequence numbers after since, plus the newest sequence number (the
// cursor for the next call) and the cumulative overwrite count. The
// read is non-draining, so it is retried across reconnects without
// losing events.
func (c *Client) Evolution(ctx context.Context, since uint64) ([]anc.EvolutionEvent, uint64, uint64, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpEvolution, From: since})
	if err != nil {
		return nil, 0, 0, err
	}
	return resp.Evo, resp.Seq, resp.Dropped, nil
}

// Traces reads the server's trace flight recorder: the rendered form of
// trace id (0 for all recent traces), as an indented text tree or, with
// asJSON, a JSON document. Read-only and idempotent, so it is retried.
// Requires a server speaking protocol version >= 3.
func (c *Client) Traces(ctx context.Context, id uint64, asJSON bool) ([]byte, error) {
	var format int32
	if asJSON {
		format = 1
	}
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpTraces, From: id, K: format})
	if err != nil {
		return nil, err
	}
	return resp.Raw, nil
}

// Stats reads the server's health snapshot: network shape, ingest
// progress, and load gauges.
func (c *Client) Stats(ctx context.Context) (serve.StatsReply, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpStats})
	if err != nil {
		return serve.StatsReply{}, err
	}
	return resp.Stats, nil
}

// ReplStatus reads the server's replication health: role, log cursors,
// lag, and reconnect history. Idempotent, so it participates in WithRetry.
func (c *Client) ReplStatus(ctx context.Context) (serve.ReplStatus, error) {
	resp, err := c.query(ctx, &serve.Request{Op: serve.OpReplStatus})
	if err != nil {
		return serve.ReplStatus{}, err
	}
	return resp.Repl, nil
}

// Promote asks a follower-fronting server to promote its node: seal the
// log and start accepting ingest. Not retried automatically — it mutates
// the node's role (though a repeat against an already-promoted node is a
// no-op server-side).
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.call(ctx, &serve.Request{Op: serve.OpPromote})
	return err
}

// Watch enables server-side cluster-event recording for node v.
func (c *Client) Watch(ctx context.Context, v int) error {
	_, err := c.call(ctx, &serve.Request{Op: serve.OpWatch, Node: uint32(v)})
	return err
}

// Unwatch stops watching v.
func (c *Client) Unwatch(ctx context.Context, v int) error {
	_, err := c.call(ctx, &serve.Request{Op: serve.OpUnwatch, Node: uint32(v)})
	return err
}

// DrainEvents returns and clears the accumulated cluster events plus the
// overflow-drop count.
func (c *Client) DrainEvents(ctx context.Context) ([]anc.ClusterEvent, uint64, error) {
	resp, err := c.call(ctx, &serve.Request{Op: serve.OpDrainEvents})
	if err != nil {
		return nil, 0, err
	}
	return resp.Events, resp.Dropped, nil
}

// View is a server-side zoom session bound to this client's connection.
// Its state does not survive a reconnect: after a broken connection,
// calls on an old view fail with a bad-request reply.
type View struct {
	c     *Client
	id    uint32
	level int
}

// OpenView opens a zoom session positioned at the server's Θ(√n) level.
func (c *Client) OpenView(ctx context.Context) (*View, error) {
	resp, err := c.call(ctx, &serve.Request{Op: serve.OpViewOpen})
	if err != nil {
		return nil, err
	}
	return &View{c: c, id: resp.View, level: int(resp.Level)}, nil
}

// Level reports the view's granularity level as of the last server reply.
func (v *View) Level() int { return v.level }

// ZoomIn moves one level finer; false at the finest level.
func (v *View) ZoomIn(ctx context.Context) (bool, error) {
	return v.zoom(ctx, serve.OpViewZoomIn)
}

// ZoomOut moves one level coarser; false at the coarsest level.
func (v *View) ZoomOut(ctx context.Context) (bool, error) {
	return v.zoom(ctx, serve.OpViewZoomOut)
}

func (v *View) zoom(ctx context.Context, op uint8) (bool, error) {
	resp, err := v.c.call(ctx, &serve.Request{Op: op, View: v.id})
	if err != nil {
		return false, err
	}
	v.level = int(resp.Level)
	return resp.Moved, nil
}

// Clusters reports all clusters at the view's current level.
func (v *View) Clusters(ctx context.Context) ([][]int, error) {
	resp, err := v.c.call(ctx, &serve.Request{Op: serve.OpViewClusters, View: v.id})
	if err != nil {
		return nil, err
	}
	return resp.Clusters, nil
}

// ClusterOf reports the cluster containing x at the view's current level.
func (v *View) ClusterOf(ctx context.Context, x int) ([]int, error) {
	resp, err := v.c.call(ctx, &serve.Request{Op: serve.OpViewClusterOf, View: v.id, Node: uint32(x)})
	if err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// Close releases the server-side session.
func (v *View) Close(ctx context.Context) error {
	_, err := v.c.call(ctx, &serve.Request{Op: serve.OpViewClose, View: v.id})
	return err
}
