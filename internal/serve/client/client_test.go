package client

import (
	"bufio"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"anc"
	"anc/internal/serve"
)

// scriptServer is a hand-rolled wire-protocol endpoint whose behavior per
// request is scripted by the test: reply bytes, or nil to slam the
// connection shut — a flaky listener.
type scriptServer struct {
	lis   net.Listener
	conns atomic.Int32
	reqs  atomic.Int32
	// script maps (connection number, request) to a reply payload; nil
	// closes the connection instead — the flake.
	script func(connNum int, req *serve.Request) []byte
}

func startScriptServer(t *testing.T, script func(connNum int, req *serve.Request) []byte) *scriptServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptServer{lis: lis, script: script}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			n := int(s.conns.Add(1))
			go s.serve(conn, n)
		}
	}()
	return s
}

func (s *scriptServer) serve(conn net.Conn, connNum int) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := serve.WritePreamble(conn); err != nil {
		return
	}
	if _, err := serve.ReadPreamble(br); err != nil {
		return
	}
	for {
		payload, err := serve.ReadFrame(br, serve.DefaultMaxFrame)
		if err != nil {
			return
		}
		req, err := serve.DecodeRequest(payload)
		if err != nil {
			return
		}
		s.reqs.Add(1)
		reply := s.script(connNum, req)
		if reply == nil {
			return // flake: cut the connection instead of answering
		}
		if err := serve.WriteFrame(bw, reply); err != nil {
			return
		}
	}
}

func statsReply(req *serve.Request) []byte {
	return serve.EncodeResponse(serve.OpStats, &serve.Response{
		ID: req.ID, Stats: serve.StatsReply{Nodes: 10, Edges: 21},
	})
}

// TestRetryQueryFlakyListener: the listener kills the first two
// connections mid-call; a retrying client's query must ride through the
// flakes, redialing each time, and succeed on the third connection.
func TestRetryQueryFlakyListener(t *testing.T) {
	s := startScriptServer(t, func(connNum int, req *serve.Request) []byte {
		if connNum <= 2 {
			return nil
		}
		return statsReply(req)
	})
	c, err := Dial(s.lis.Addr().String(), WithRetry(5, time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("retrying query failed: %v", err)
	}
	if stats.Nodes != 10 {
		t.Fatalf("stats %+v", stats)
	}
	if n := s.conns.Load(); n != 3 {
		t.Fatalf("server saw %d connections, want 3 (two flakes + success)", n)
	}
}

// TestRetryOverloaded: the server's typed overloaded reply is an explicit
// ask-again; a retrying client honors it without redialing.
func TestRetryOverloaded(t *testing.T) {
	var served atomic.Int32
	s := startScriptServer(t, func(connNum int, req *serve.Request) []byte {
		if served.Add(1) <= 2 {
			return serve.EncodeError(req.ID, serve.ErrCodeOverloaded, "queue full")
		}
		return statsReply(req)
	})
	c, err := Dial(s.lis.Addr().String(), WithRetry(5, time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("overloaded retries failed: %v", err)
	}
	if n := s.conns.Load(); n != 1 {
		t.Fatalf("typed overloaded reply caused %d redials", n-1)
	}
	if n := s.reqs.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
}

// TestRetryRespectsTypedRejection: a final typed error (bad request) is
// never retried, even with retries configured.
func TestRetryRespectsTypedRejection(t *testing.T) {
	s := startScriptServer(t, func(connNum int, req *serve.Request) []byte {
		return serve.EncodeError(req.ID, serve.ErrCodeBadRequest, "no")
	})
	c, err := Dial(s.lis.Addr().String(), WithRetry(5, time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats(context.Background())
	we, ok := err.(*serve.WireError)
	if !ok || we.Code != serve.ErrCodeBadRequest {
		t.Fatalf("err %v, want typed bad-request", err)
	}
	if n := s.reqs.Load(); n != 1 {
		t.Fatalf("typed rejection was retried: %d requests", n)
	}
}

// TestIngestNeverRetried: a write whose reply is lost may have been
// applied — the client must surface the transport error, not resend the
// batch, no matter the retry configuration.
func TestIngestNeverRetried(t *testing.T) {
	s := startScriptServer(t, func(connNum int, req *serve.Request) []byte {
		return nil // every ingest connection dies before answering
	})
	c, err := Dial(s.lis.Addr().String(), WithRetry(5, time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.ActivateBatch(context.Background(), []anc.Activation{{U: 0, V: 1, T: 1}})
	if err == nil {
		t.Fatal("lost ingest reply did not surface an error")
	}
	if n := s.reqs.Load(); n != 1 {
		t.Fatalf("ingest was resent: server saw %d requests", n)
	}
	if n := s.conns.Load(); n != 1 {
		t.Fatalf("ingest failure redialed: %d connections", n)
	}
}

// TestRetryContextCancel: a canceled context stops the retry loop
// promptly instead of burning the remaining attempts.
func TestRetryContextCancel(t *testing.T) {
	s := startScriptServer(t, func(connNum int, req *serve.Request) []byte {
		return nil
	})
	c, err := Dial(s.lis.Addr().String(), WithRetry(10, 50*time.Millisecond, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("flaky query succeeded impossibly")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored cancellation for %v", elapsed)
	}
}
