package serve

import (
	"testing"

	"anc/internal/obs"
)

// sinks defeat dead-code elimination without allocating inside the
// measured closures.
var (
	sinkU32 uint32
)

// TestHotPathAllocs is the dynamic half of the //anclint:hotpath
// contract (DESIGN.md §14): every annotated function in this package
// must run allocation-free. The hotalloc analyzer rejects the obvious
// regressions syntactically; this test proves the property under the
// real compiler's escape analysis.
func TestHotPathAllocs(t *testing.T) {
	var hdr [frameHeaderSize]byte
	if n := testing.AllocsPerRun(1000, func() {
		putFrameHeader(&hdr, 42, 0xdeadbeef)
		l, c := parseFrameHeader(&hdr)
		sinkU32 += l + c
	}); n != 0 {
		t.Errorf("frame header kernels: %v allocs/op, want 0", n)
	}

	m := newServerMetrics(obs.NewRegistry(), &Server{})
	if n := testing.AllocsPerRun(1000, func() {
		m.request(OpActivateBatch)
		m.observe(OpActivateBatch, 1e-4)
		m.observe(OpClusters, 2e-4)
		m.readBytes(128)
		m.wroteBytes(256)
		m.connOpened()
		m.connClosed()
		m.slow()
	}); n != 0 {
		t.Errorf("serverMetrics handles: %v allocs/op, want 0", n)
	}

	// Observability off: a nil *serverMetrics must also be free.
	var off *serverMetrics
	if n := testing.AllocsPerRun(1000, func() {
		off.request(OpActivateBatch)
		off.observe(OpClusters, 1e-4)
		off.readBytes(1)
		off.wroteBytes(1)
	}); n != 0 {
		t.Errorf("nil serverMetrics: %v allocs/op, want 0", n)
	}
}

// BenchmarkHotPathFrameHeader is run by `make bench-smoke` under
// -benchmem so a frame-header allocation regression shows up as a
// nonzero allocs/op in CI output.
func BenchmarkHotPathFrameHeader(b *testing.B) {
	var hdr [frameHeaderSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		putFrameHeader(&hdr, uint32(i), uint32(i>>1))
		l, c := parseFrameHeader(&hdr)
		sinkU32 += l + c
	}
}
