package serve

import "anc/internal/obs"

// serverMetrics are the serving layer's observability handles, registered
// under the anc_serve_* families (see DESIGN.md §12). A nil *serverMetrics
// (the default — no Config.Obs) disables them; every method is nil-safe,
// so the request loop pays one predictable branch per site when
// observability is off.
type serverMetrics struct {
	// requests is indexed by wire op: the per-op children of
	// anc_serve_requests_total, resolved once at registration so the hot
	// path never touches the family's label map.
	requests [opMax]*obs.Counter
	// errors splits anc_serve_errors_total by wire error code name; error
	// replies are rare enough that the label lookup per event is fine.
	errors *obs.CounterVec
	// ingestSeconds and querySeconds observe whole-request handling time
	// (admission wait included) for OpActivateBatch and everything else.
	ingestSeconds *obs.Histogram
	querySeconds  *obs.Histogram
	// queueWaitSeconds and replySeconds are the serve-side stages of the
	// per-request breakdown: time a batch sat in the ingest queue before
	// the writer picked it up, and time spent writing the response frame.
	// Together with the durable/WAL/pyramid histograms they give the
	// queue-wait / wal / fsync / repair / reply decomposition reported in
	// BENCH_serve.json.
	queueWaitSeconds *obs.Histogram
	replySeconds     *obs.Histogram
	// bytesRead / bytesWritten count frame bytes (header + payload) after
	// the handshake.
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	// connections is the number of currently open client connections.
	connections *obs.Gauge
	// slowRequests counts requests over Config.SlowQuery — every one, even
	// when the matching log line is rate-limited away.
	slowRequests *obs.Counter
}

// newServerMetrics registers the serve metric families on reg (nil reg →
// nil metrics, observability off). The server's live admission and queue
// gauges are sampled at scrape time straight from its atomics.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		errors: reg.CounterVec("anc_serve_errors_total",
			"error replies sent, by wire error code", "code"),
		ingestSeconds: reg.Histogram("anc_serve_ingest_seconds",
			"ActivateBatch handling time in seconds, admission to reply", nil),
		querySeconds: reg.Histogram("anc_serve_query_seconds",
			"query handling time in seconds, admission to reply", nil),
		queueWaitSeconds: reg.Histogram("anc_serve_queue_wait_seconds",
			"time a batch waited in the ingest queue before the writer dequeued it", nil),
		replySeconds: reg.Histogram("anc_serve_reply_seconds",
			"time spent framing and flushing one response to the client", nil),
		bytesRead: reg.Counter("anc_serve_read_bytes_total",
			"frame bytes read from clients (header + payload)"),
		bytesWritten: reg.Counter("anc_serve_written_bytes_total",
			"frame bytes written to clients (header + payload)"),
		connections: reg.Gauge("anc_serve_connections",
			"currently open client connections"),
		slowRequests: reg.Counter("anc_serve_slow_requests_total",
			"requests slower than the configured slow-query threshold"),
	}
	requests := reg.CounterVec("anc_serve_requests_total",
		"requests handled, by wire op", "op")
	// Resolve every op's child now so each series exists (at 0) from the
	// first scrape and the request path is a plain indexed atomic add.
	for op := uint8(1); op < uint8(opMax); op++ {
		m.requests[op] = requests.With(OpName(op))
	}
	reg.GaugeFunc("anc_serve_inflight",
		"requests currently holding an admission slot",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("anc_serve_ingest_queue_depth",
		"batches waiting in the ingest queue",
		func() float64 { return float64(s.queued.Load()) })
	return m
}

//anclint:hotpath
func (m *serverMetrics) request(op uint8) {
	if m == nil {
		return
	}
	if op < uint8(opMax) {
		m.requests[op].Inc()
	}
}

func (m *serverMetrics) errored(code uint8) {
	if m == nil {
		return
	}
	m.errors.With(errCodeName(code)).Inc()
}

//anclint:hotpath
func (m *serverMetrics) observe(op uint8, seconds float64) {
	if m == nil {
		return
	}
	if op == OpActivateBatch {
		m.ingestSeconds.Observe(seconds)
	} else {
		m.querySeconds.Observe(seconds)
	}
}

//anclint:hotpath
func (m *serverMetrics) queueWait(seconds float64) {
	if m == nil {
		return
	}
	m.queueWaitSeconds.Observe(seconds)
}

//anclint:hotpath
func (m *serverMetrics) replyTime(seconds float64) {
	if m == nil {
		return
	}
	m.replySeconds.Observe(seconds)
}

//anclint:hotpath
func (m *serverMetrics) readBytes(n int) {
	if m == nil {
		return
	}
	m.bytesRead.Add(uint64(n))
}

//anclint:hotpath
func (m *serverMetrics) wroteBytes(n int) {
	if m == nil {
		return
	}
	m.bytesWritten.Add(uint64(n))
}

//anclint:hotpath
func (m *serverMetrics) connOpened() {
	if m == nil {
		return
	}
	m.connections.Inc()
}

//anclint:hotpath
func (m *serverMetrics) connClosed() {
	if m == nil {
		return
	}
	m.connections.Dec()
}

//anclint:hotpath
func (m *serverMetrics) slow() {
	if m == nil {
		return
	}
	m.slowRequests.Inc()
}
