package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"anc"
	"anc/internal/obs"
)

// scrape fetches a path from the server's metrics listener with a
// dedicated transport so the leak tests never count stray keep-alive
// goroutines against the server.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestServerMetricsRoundTrip drives real traffic — ingest, queries and
// one malformed request — and checks that the per-op counters, error
// counters, latency histograms and the /metrics and /healthz endpoints
// all tell the same story.
func TestServerMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{Obs: reg, MetricsAddr: "127.0.0.1:0"})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	batches := testStream(3, 25)
	for _, b := range batches {
		c.rpc(&Request{Op: OpActivateBatch, Batch: b})
	}
	c.rpc(&Request{Op: OpStats})
	c.rpc(&Request{Op: OpStats})

	// A garbage frame is an error reply minted before any op is known: it
	// must count as an error, not as a request.
	c.send([]byte{0xEE})
	if resp := c.recv(OpStats); resp.Err == nil || resp.Err.Code != ErrCodeBadRequest {
		t.Fatalf("garbage request: %+v", resp)
	}

	snap := reg.Snapshot()
	want := map[string]float64{
		`anc_serve_requests_total{op="activate-batch"}`: 3,
		`anc_serve_requests_total{op="stats"}`:          2,
		`anc_serve_errors_total{code="bad-request"}`:    1,
		"anc_serve_ingest_seconds_count":                3,
		"anc_serve_query_seconds_count":                 2,
		"anc_serve_connections":                         1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %g, want %g", k, snap[k], v)
		}
	}
	for _, k := range []string{"anc_serve_read_bytes_total", "anc_serve_written_bytes_total"} {
		if snap[k] <= 0 {
			t.Errorf("%s = %g, want > 0", k, snap[k])
		}
	}
	// Pre-resolved op children exist at zero from the first scrape, so
	// dashboards see every series before traffic arrives.
	if v, ok := snap[`anc_serve_requests_total{op="watch"}`]; !ok || v != 0 {
		t.Errorf("watch series = %g (present %v), want 0 at rest", v, ok)
	}

	body := scrape(t, s.MetricsAddr(), "/metrics")
	for _, line := range []string{
		`anc_serve_requests_total{op="activate-batch"} 3`,
		"# TYPE anc_serve_ingest_seconds histogram",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	var health struct {
		Status      string
		Nodes       int
		Activations uint64
	}
	if err := json.Unmarshal([]byte(scrape(t, s.MetricsAddr(), "/healthz")), &health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if health.Status != "ok" || health.Nodes != 10 || health.Activations != 75 {
		t.Fatalf("healthz = %+v, want ok/10 nodes/75 activations", health)
	}
}

// TestSlowQueryCounterAndRateLimit: with a threshold every request beats,
// the counter counts all of them but the log emits one line per second.
func TestSlowQueryCounterAndRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	backend := anc.NewConcurrent(testNetwork(t))
	var mu sync.Mutex
	var lines []string
	s := startServer(t, backend, Config{
		Obs:       reg,
		SlowQuery: time.Nanosecond,
		Logf: func(format string, args ...interface{}) {
			mu.Lock()
			defer mu.Unlock()
			lines = append(lines, fmt.Sprintf(format, args...))
		},
	})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	for i := 0; i < 5; i++ {
		c.rpc(&Request{Op: OpStats})
	}
	if got := reg.Snapshot()["anc_serve_slow_requests_total"]; got != 5 {
		t.Fatalf("slow_requests_total = %g, want 5", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines = %d, want 1 (rate-limited): %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "op=stats") {
		t.Fatalf("slow-query line %q missing op name", lines[0])
	}
}

// TestMetricsListenerStops: both teardown paths must close the metrics
// HTTP listener and reap its goroutines — the serving socket going away
// while /metrics stays up would leak a goroutine per restart cycle.
func TestMetricsListenerStops(t *testing.T) {
	for _, mode := range []string{"shutdown", "kill"} {
		t.Run(mode, func(t *testing.T) {
			before := runtime.NumGoroutine()
			reg := obs.NewRegistry()
			backend := anc.NewConcurrent(testNetwork(t))
			s := startServer(t, backend, Config{Obs: reg, MetricsAddr: "127.0.0.1:0"})
			maddr := s.MetricsAddr()
			if maddr == "" {
				t.Fatal("metrics listener did not start")
			}
			scrape(t, maddr, "/metrics")
			if mode == "kill" {
				s.Kill()
			} else {
				shutdownServer(t, s)
			}
			if conn, err := net.DialTimeout("tcp", maddr, time.Second); err == nil {
				conn.Close()
				t.Fatal("metrics listener still accepting after teardown")
			}
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				runtime.Gosched()
				time.Sleep(time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before {
				t.Fatalf("goroutines leaked: %d before, %d after %s", before, after, mode)
			}
		})
	}
}
