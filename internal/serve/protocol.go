// Package serve is the network serving layer: a TCP server speaking a
// versioned, length-prefixed, CRC-framed binary protocol over a
// concurrency facade (ConcurrentNetwork or DurableNetwork), so clustering
// queries are answered at any time over an unbounded activation stream
// arriving from many connections — the paper's online scenario pushed out
// of process.
//
// # Wire format
//
// A connection opens with an 8-byte preamble from each side (magic "ANCS",
// a little-endian uint16 protocol version, two reserved zero bytes); the
// server closes the connection on a magic or version mismatch. After the
// preamble the connection carries frames, each framed exactly like a WAL
// record:
//
//	offset  size  field
//	0       4     length  — payload byte count (1 .. MaxFrame), little-endian
//	4       4     crc     — CRC32C (Castagnoli) of the payload
//	8       len   payload
//
// A request payload is op(1) | id(8) | body; a response payload is
// status(1) | id(8) | body, where status is statusOK or statusErr and id
// echoes the request. Error bodies are code(1) | len(2) | message — a
// typed, structured reply, so protocol violations and overload produce a
// diagnosable frame instead of a silent disconnect (the connection is then
// closed only when framing itself is no longer trustworthy).
//
// Requests on one connection are handled in order and answered in order;
// concurrency comes from many connections: queries run under the
// backend's shared lock while all ingest funnels through the server's
// single writer goroutine.
//
// Node IDs on the wire are the dense IDs 0..n-1 of the served network.
// A server fronting an edge list with arbitrary original IDs translates
// at its boundary (ancserve wraps its backend to speak the file's IDs);
// an in-process server over a directly constructed graph serves the
// dense IDs as-is.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"anc"
	"anc/internal/obs/trace"
)

// Protocol identity.
const (
	// Magic opens every connection preamble.
	Magic = "ANCS"
	// Version is the newest protocol version spoken by this package.
	// Version 2 added the replication ops and the replication fields of
	// StatsReply; version 3 added the optional 16-byte trace-context
	// trailer on request frames, per-frame trace IDs on the replication
	// stream, and OpTraces.
	Version uint16 = 3
	// MinVersion is the oldest version still negotiable. The handshake
	// settles on min(client, server) within [MinVersion, Version], so a
	// v2 client round-trips every op against a v3 server — it just never
	// sees trace trailers.
	MinVersion uint16 = 2
	// preambleSize is magic(4) + version(2) + reserved(2).
	preambleSize = 8
)

// traceFlag is the request op byte's trace bit: set when the payload
// carries a 16-byte trace-context trailer after the body. Only sent on
// connections that negotiated version >= 3 (a v2 server answers an
// unknown-op error, which the flag's gating makes unreachable). Op
// values stay well below it.
const traceFlag uint8 = 0x80

// DefaultMaxFrame bounds a single frame's payload; larger announced
// lengths are rejected as ErrCodeFrameTooBig before any allocation.
const DefaultMaxFrame = 4 << 20

// frameHeaderSize is length(4) + crc(4).
const frameHeaderSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Request operations.
const (
	OpActivateBatch uint8 = iota + 1
	OpClusters
	OpEvenClusters
	OpClusterOf
	OpSmallestClusterOf
	OpEstimateDistance
	OpEstimateAttraction
	OpStats
	OpWatch
	OpUnwatch
	OpDrainEvents
	OpViewOpen
	OpViewZoomIn
	OpViewZoomOut
	OpViewClusters
	OpViewClusterOf
	OpViewClose
	// OpReplSubscribe turns the connection into a replication stream: the
	// request carries the follower's next frame index, the OK response is
	// followed by an unbounded sequence of push frames (OpReplFrames /
	// OpReplStatus / OpReplSnapshot payloads) until either side closes.
	OpReplSubscribe //anclint:ignore wirecomplete repl.Node is the only subscriber; the query client never opens a stream
	// OpReplFrames and OpReplSnapshot are push-only: they appear as the
	// leading byte of server→follower stream payloads and are rejected as
	// request ops.
	OpReplFrames //anclint:ignore wirecomplete push-only stream payload; followers decode it via repl.Node, not the client
	// OpReplStatus as a request returns the peer's replication status; as a
	// push payload it is the stream's heartbeat.
	OpReplStatus
	// OpPromote seals a follower's replication session and re-enables local
	// ingest — the failover switch.
	OpPromote
	OpReplSnapshot //anclint:ignore wirecomplete push-only stream payload; followers decode it via repl.Node, not the client
	// OpTieRank answers an eigenvector-centrality query: top-K nodes
	// globally and, for Level >= 0, per cluster at that level. Read-only,
	// so followers serve it.
	OpTieRank
	// OpEvolution reads the buffered cluster-evolution events after the
	// cursor in From. Non-draining and idempotent (safe to retry), and
	// read-only, so followers serve it.
	OpEvolution
	// OpTraces reads the server's trace flight recorder: From selects a
	// single trace ID (0 for all recent traces), K selects the rendering
	// (0 text tree, nonzero JSON). The reply body is the rendered bytes.
	// Requires protocol version >= 3.
	OpTraces
	opMax // one past the last valid op
)

// Response status bytes.
const (
	statusOK  uint8 = 1
	statusErr uint8 = 0xFF
)

// Typed error codes carried by error replies.
const (
	// ErrCodeBadRequest: the body did not decode, the op is unknown, or a
	// referenced view does not exist. The connection stays usable.
	ErrCodeBadRequest uint8 = iota + 1
	// ErrCodeBadFrame: the frame CRC did not match or the header was
	// malformed. Framing is no longer trustworthy, so after the reply the
	// server closes the connection.
	ErrCodeBadFrame
	// ErrCodeFrameTooBig: the announced payload length exceeds the
	// server's MaxFrame. The reply is sent, then the connection closes
	// (the oversized payload cannot be skipped safely).
	ErrCodeFrameTooBig
	// ErrCodeOverloaded: the admission gate or the ingest queue stayed
	// full for the whole request deadline. Back off and retry.
	ErrCodeOverloaded
	// ErrCodeDeadline: the request was admitted but did not finish within
	// the per-request deadline.
	ErrCodeDeadline
	// ErrCodeShuttingDown: the server is draining; no new work is
	// accepted.
	ErrCodeShuttingDown
	// ErrCodeRejected: the network refused the request (e.g. a batch
	// violating the ingest contract). The message carries the detail.
	ErrCodeRejected
	// ErrCodeInternal: the server failed in a way that is not the
	// client's fault (e.g. a response that would not fit a frame).
	ErrCodeInternal
	// ErrCodeReadOnly: the server is a follower; ingest must go to the
	// primary (or wait for this node's promotion).
	ErrCodeReadOnly
)

// OpName maps wire ops to stable short names — the label values of
// anc_serve_requests_total and the vocabulary of slow-request log lines.
func OpName(op uint8) string {
	switch op {
	case OpActivateBatch:
		return "activate-batch"
	case OpClusters:
		return "clusters"
	case OpEvenClusters:
		return "even-clusters"
	case OpClusterOf:
		return "cluster-of"
	case OpSmallestClusterOf:
		return "smallest-cluster-of"
	case OpEstimateDistance:
		return "estimate-distance"
	case OpEstimateAttraction:
		return "estimate-attraction"
	case OpStats:
		return "stats"
	case OpWatch:
		return "watch"
	case OpUnwatch:
		return "unwatch"
	case OpDrainEvents:
		return "drain-events"
	case OpViewOpen:
		return "view-open"
	case OpViewZoomIn:
		return "view-zoom-in"
	case OpViewZoomOut:
		return "view-zoom-out"
	case OpViewClusters:
		return "view-clusters"
	case OpViewClusterOf:
		return "view-cluster-of"
	case OpViewClose:
		return "view-close"
	case OpReplSubscribe:
		return "repl-subscribe"
	case OpReplFrames:
		return "repl-frames"
	case OpReplStatus:
		return "repl-status"
	case OpPromote:
		return "promote"
	case OpReplSnapshot:
		return "repl-snapshot"
	case OpTieRank:
		return "tierank"
	case OpEvolution:
		return "evolution"
	case OpTraces:
		return "traces"
	}
	return fmt.Sprintf("op-%d", op)
}

// errCodeName maps codes to stable short names for error text.
func errCodeName(code uint8) string {
	switch code {
	case ErrCodeBadRequest:
		return "bad-request"
	case ErrCodeBadFrame:
		return "bad-frame"
	case ErrCodeFrameTooBig:
		return "frame-too-big"
	case ErrCodeOverloaded:
		return "overloaded"
	case ErrCodeDeadline:
		return "deadline"
	case ErrCodeShuttingDown:
		return "shutting-down"
	case ErrCodeRejected:
		return "rejected"
	case ErrCodeInternal:
		return "internal"
	case ErrCodeReadOnly:
		return "read-only"
	}
	return fmt.Sprintf("code-%d", code)
}

// WireError is a typed error reply from the server, preserved by the
// client library so callers can switch on Code.
type WireError struct {
	Code uint8
	Msg  string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("serve: %s: %s", errCodeName(e.Code), e.Msg)
}

// Request is the decoded form of one client→server frame. Only the fields
// of the request's Op are meaningful.
type Request struct {
	Op uint8
	ID uint64

	Batch []anc.Activation // OpActivateBatch
	Level int32            // OpClusters, OpEvenClusters, OpClusterOf, OpTieRank (-1: global only)
	Node  uint32           // OpClusterOf, OpSmallestClusterOf, OpWatch, OpUnwatch, OpViewClusterOf
	U, V  uint32           // OpEstimateDistance, OpEstimateAttraction
	View  uint32           // OpView*
	From  uint64           // OpReplSubscribe: next frame index; OpEvolution: event cursor; OpTraces: trace ID (0 = all)
	K     int32            // OpTieRank: the top-k size (must be positive); OpTraces: 0 text, nonzero JSON

	// Trace is the request's propagated trace context, carried on the wire
	// as an optional 16-byte trailer signalled by the op byte's traceFlag
	// bit. A zero context means the request is untraced.
	Trace trace.Context
}

// StatsReply is the body of an OpStats response: the backend's Stats plus
// the server's own load gauges.
type StatsReply struct {
	Nodes, Edges      uint32
	Levels, SqrtLevel uint32
	Activations       uint64
	Now               float64
	// Inflight is the number of requests currently holding an admission
	// slot; Queued is the number of batches waiting in the ingest queue.
	Inflight, Queued uint32
	// Draining reports whether the server has begun its shutdown drain.
	Draining bool
	// Role is the node's replication role (RoleNone when replication is
	// not configured); the lag fields are meaningful only for RoleFollower.
	Role uint8
	// ReplLagFrames is how many committed primary frames the follower has
	// not yet applied; ReplLagSeconds the wall-clock age of its last
	// replication message.
	ReplLagFrames  uint64
	ReplLagSeconds float64
}

// Response is the decoded form of one server→client frame. Err is non-nil
// for error replies; otherwise the fields of the request's op are set.
type Response struct {
	ID  uint64
	Err *WireError

	Clusters [][]int              // cluster-list replies
	Members  []int                // single-cluster replies
	Value    float64              // distance / attraction
	Stats    StatsReply           // OpStats
	Events   []anc.ClusterEvent   // OpDrainEvents
	Dropped  uint64               // OpDrainEvents
	View     uint32               // OpViewOpen
	Level    int32                // view replies
	Moved    bool                 // OpViewZoomIn / OpViewZoomOut
	Accepted uint32               // OpActivateBatch
	Repl     ReplStatus           // OpReplStatus
	Rank     anc.TieRankResult    // OpTieRank
	Evo      []anc.EvolutionEvent // OpEvolution
	Seq      uint64               // OpEvolution: newest event sequence number
	Raw      []byte               // OpTraces: rendered trace bytes (text or JSON)
	// Dropped doubles as OpEvolution's cumulative ring-overwrite count.
}

// ---- frame I/O ----------------------------------------------------------

// frameError marks protocol-level framing failures so the connection loop
// can send the matching typed reply before closing.
type frameError struct {
	code uint8
	msg  string
}

func (e *frameError) Error() string { return fmt.Sprintf("%s: %s", errCodeName(e.code), e.msg) }

// putFrameHeader packs a frame's length and CRC into hdr. It is the pure
// kernel of writeFrame, split out so the per-frame arithmetic can be
// held to the zero-allocation contract (the enclosing writeFrame cannot:
// passing hdr[:] to an io.Writer makes the buffer escape).
//
//anclint:hotpath
func putFrameHeader(hdr *[frameHeaderSize]byte, length, crc uint32) {
	binary.LittleEndian.PutUint32(hdr[0:4], length)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
}

// parseFrameHeader is putFrameHeader's inverse: the pure kernel of
// readFrame.
//
//anclint:hotpath
func parseFrameHeader(hdr *[frameHeaderSize]byte) (length, crc uint32) {
	return binary.LittleEndian.Uint32(hdr[0:4]), binary.LittleEndian.Uint32(hdr[4:8])
}

// readFrame reads one length+CRC frame, enforcing maxFrame. It returns a
// *frameError for malformed or oversized frames and plain I/O errors
// (including io.EOF on clean close) otherwise.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length, crc := parseFrameHeader(&hdr)
	if length == 0 {
		return nil, &frameError{code: ErrCodeBadFrame, msg: "zero-length frame"}
	}
	if int64(length) > int64(maxFrame) {
		return nil, &frameError{code: ErrCodeFrameTooBig,
			msg: fmt.Sprintf("frame of %d bytes exceeds max %d", length, maxFrame)}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, &frameError{code: ErrCodeBadFrame, msg: "frame crc mismatch"}
	}
	return payload, nil
}

// writeFrame frames payload with its length and CRC32C.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderSize]byte
	putFrameHeader(&hdr, uint32(len(payload)), crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// WritePreamble writes the client's side of the 8-byte handshake,
// announcing the newest version this package speaks — the client-library
// entry point for the handshake.
func WritePreamble(w io.Writer) error { return writePreamble(w, Version) }

// ReadPreamble reads and validates the peer's handshake, returning the
// version the peer announced (clamped into [MinVersion, Version] by
// validation). The caller speaks min(returned, own) from then on; the
// server echoes exactly that minimum back, so both ends agree.
func ReadPreamble(r io.Reader) (uint16, error) { return readPreamble(r) }

// WriteRequest frames and flushes one encoded request.
func WriteRequest(w *bufio.Writer, req *Request) error {
	return writeFrame(w, EncodeRequest(req))
}

// ReadResponse reads one frame and decodes it as the response to a request
// of the given op, enforcing maxFrame.
func ReadResponse(r io.Reader, op uint8, maxFrame int) (*Response, error) {
	payload, err := readFrame(r, maxFrame)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(op, payload)
}

// writePreamble / readPreamble exchange the 8-byte version handshake.
// The version written is the speaker's offer (client) or the negotiated
// answer (server).
func writePreamble(w io.Writer, version uint16) error {
	var b [preambleSize]byte
	copy(b[0:4], Magic)
	binary.LittleEndian.PutUint16(b[4:6], version)
	_, err := w.Write(b[:])
	return err
}

func readPreamble(r io.Reader) (uint16, error) {
	var b [preambleSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if string(b[0:4]) != Magic {
		return 0, fmt.Errorf("serve: bad magic %q", b[0:4])
	}
	v := binary.LittleEndian.Uint16(b[4:6])
	if v < MinVersion {
		return 0, fmt.Errorf("serve: protocol version %d, want %d..%d", v, MinVersion, Version)
	}
	// A peer newer than us is fine: it offered high, we answer (or were
	// answered) with our own ceiling, and both sides speak the minimum.
	return v, nil
}

// negotiate clamps a peer's offered version to what this package speaks.
func negotiate(peer uint16) uint16 {
	if peer > Version {
		return Version
	}
	return peer
}

// ---- request encode/decode ----------------------------------------------

// activationWireSize is u(4) + v(4) + t(8), matching the WAL record.
const activationWireSize = 16

// EncodeRequest serializes a request payload (without the frame header).
func EncodeRequest(req *Request) []byte {
	b := make([]byte, 0, 9+bodySizeHint(req))
	b = append(b, req.Op)
	b = binary.LittleEndian.AppendUint64(b, req.ID)
	switch req.Op {
	case OpActivateBatch:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Batch)))
		for _, a := range req.Batch {
			b = binary.LittleEndian.AppendUint32(b, uint32(a.U))
			b = binary.LittleEndian.AppendUint32(b, uint32(a.V))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.T))
		}
	case OpClusters, OpEvenClusters:
		b = binary.LittleEndian.AppendUint32(b, uint32(req.Level))
	case OpClusterOf:
		b = binary.LittleEndian.AppendUint32(b, req.Node)
		b = binary.LittleEndian.AppendUint32(b, uint32(req.Level))
	case OpSmallestClusterOf, OpWatch, OpUnwatch:
		b = binary.LittleEndian.AppendUint32(b, req.Node)
	case OpEstimateDistance, OpEstimateAttraction:
		b = binary.LittleEndian.AppendUint32(b, req.U)
		b = binary.LittleEndian.AppendUint32(b, req.V)
	case OpStats, OpDrainEvents, OpViewOpen:
		// no body
	case OpViewZoomIn, OpViewZoomOut, OpViewClusters, OpViewClose:
		b = binary.LittleEndian.AppendUint32(b, req.View)
	case OpViewClusterOf:
		b = binary.LittleEndian.AppendUint32(b, req.View)
		b = binary.LittleEndian.AppendUint32(b, req.Node)
	case OpReplSubscribe:
		b = binary.LittleEndian.AppendUint64(b, req.From)
	case OpReplStatus, OpPromote:
		// no body
	case OpTieRank:
		b = binary.LittleEndian.AppendUint32(b, uint32(req.Level))
		b = binary.LittleEndian.AppendUint32(b, uint32(req.K))
	case OpEvolution:
		b = binary.LittleEndian.AppendUint64(b, req.From)
	case OpTraces:
		b = binary.LittleEndian.AppendUint64(b, req.From)
		b = binary.LittleEndian.AppendUint32(b, uint32(req.K))
	}
	if req.Trace.Valid() {
		b[0] |= traceFlag
		b = trace.AppendContext(b, req.Trace)
	}
	return b
}

func bodySizeHint(req *Request) int {
	if req.Op == OpActivateBatch {
		return 4 + len(req.Batch)*activationWireSize
	}
	return 16
}

// DecodeRequest parses a request payload. It is strict: trailing bytes,
// short bodies and unknown ops are errors, so a fuzz-found decode always
// round-trips byte-identically through EncodeRequest.
func DecodeRequest(payload []byte) (*Request, error) {
	if len(payload) < 9 {
		return nil, fmt.Errorf("request payload of %d bytes", len(payload))
	}
	req := &Request{Op: payload[0] &^ traceFlag, ID: binary.LittleEndian.Uint64(payload[1:9])}
	body := payload[9:]
	if payload[0]&traceFlag != 0 {
		if len(body) < trace.ContextWireSize {
			return nil, fmt.Errorf("op %d: trace trailer truncated (%d bytes)", req.Op, len(body))
		}
		req.Trace = trace.DecodeContext(body[len(body)-trace.ContextWireSize:])
		if !req.Trace.Valid() {
			// A zero trace ID under the flag would not re-encode with the
			// flag set, breaking decode∘encode byte identity.
			return nil, fmt.Errorf("op %d: zero trace ID in trailer", req.Op)
		}
		body = body[:len(body)-trace.ContextWireSize]
	}
	if req.Op == 0 || req.Op >= opMax {
		return nil, fmt.Errorf("unknown op %d", req.Op)
	}
	need := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("op %d: body of %d bytes, want %d", req.Op, len(body), n)
		}
		return nil
	}
	switch req.Op {
	case OpActivateBatch:
		if len(body) < 4 {
			return nil, fmt.Errorf("batch body of %d bytes", len(body))
		}
		count := binary.LittleEndian.Uint32(body[0:4])
		if uint64(len(body)) != 4+uint64(count)*activationWireSize {
			return nil, fmt.Errorf("batch of %d records in %d bytes", count, len(body))
		}
		req.Batch = make([]anc.Activation, count)
		for i := range req.Batch {
			rec := body[4+i*activationWireSize:]
			req.Batch[i] = anc.Activation{
				U: int(binary.LittleEndian.Uint32(rec[0:4])),
				V: int(binary.LittleEndian.Uint32(rec[4:8])),
				T: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
			}
		}
	case OpClusters, OpEvenClusters:
		if err := need(4); err != nil {
			return nil, err
		}
		req.Level = int32(binary.LittleEndian.Uint32(body[0:4]))
	case OpClusterOf:
		if err := need(8); err != nil {
			return nil, err
		}
		req.Node = binary.LittleEndian.Uint32(body[0:4])
		req.Level = int32(binary.LittleEndian.Uint32(body[4:8]))
	case OpSmallestClusterOf, OpWatch, OpUnwatch:
		if err := need(4); err != nil {
			return nil, err
		}
		req.Node = binary.LittleEndian.Uint32(body[0:4])
	case OpEstimateDistance, OpEstimateAttraction:
		if err := need(8); err != nil {
			return nil, err
		}
		req.U = binary.LittleEndian.Uint32(body[0:4])
		req.V = binary.LittleEndian.Uint32(body[4:8])
	case OpStats, OpDrainEvents, OpViewOpen:
		if err := need(0); err != nil {
			return nil, err
		}
	case OpViewZoomIn, OpViewZoomOut, OpViewClusters, OpViewClose:
		if err := need(4); err != nil {
			return nil, err
		}
		req.View = binary.LittleEndian.Uint32(body[0:4])
	case OpViewClusterOf:
		if err := need(8); err != nil {
			return nil, err
		}
		req.View = binary.LittleEndian.Uint32(body[0:4])
		req.Node = binary.LittleEndian.Uint32(body[4:8])
	case OpReplSubscribe:
		if err := need(8); err != nil {
			return nil, err
		}
		req.From = binary.LittleEndian.Uint64(body[0:8])
	case OpReplStatus, OpPromote:
		if err := need(0); err != nil {
			return nil, err
		}
	case OpReplFrames, OpReplSnapshot:
		// Push-only payloads on a replication stream — never a request.
		return nil, fmt.Errorf("push-only op %d", req.Op)
	case OpTieRank:
		if err := need(8); err != nil {
			return nil, err
		}
		req.Level = int32(binary.LittleEndian.Uint32(body[0:4]))
		req.K = int32(binary.LittleEndian.Uint32(body[4:8]))
	case OpEvolution:
		if err := need(8); err != nil {
			return nil, err
		}
		req.From = binary.LittleEndian.Uint64(body[0:8])
	case OpTraces:
		if err := need(12); err != nil {
			return nil, err
		}
		req.From = binary.LittleEndian.Uint64(body[0:8])
		req.K = int32(binary.LittleEndian.Uint32(body[8:12]))
	}
	return req, nil
}

// ---- response encode/decode ---------------------------------------------

// EncodeError serializes a typed error reply for the given request id.
func EncodeError(id uint64, code uint8, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	b := make([]byte, 0, 12+len(msg))
	b = append(b, statusErr)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, code)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	b = append(b, msg...)
	return b
}

// EncodeResponse serializes an OK response for the given op.
func EncodeResponse(op uint8, resp *Response) []byte {
	b := make([]byte, 0, 64)
	b = append(b, statusOK)
	b = binary.LittleEndian.AppendUint64(b, resp.ID)
	switch op {
	case OpActivateBatch:
		b = binary.LittleEndian.AppendUint32(b, resp.Accepted)
	case OpClusters, OpEvenClusters, OpViewClusters:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Clusters)))
		for _, c := range resp.Clusters {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
			for _, v := range c {
				b = binary.LittleEndian.AppendUint32(b, uint32(v))
			}
		}
	case OpClusterOf, OpSmallestClusterOf, OpViewClusterOf:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Members)))
		for _, v := range resp.Members {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	case OpEstimateDistance, OpEstimateAttraction:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(resp.Value))
	case OpStats:
		s := resp.Stats
		b = binary.LittleEndian.AppendUint32(b, s.Nodes)
		b = binary.LittleEndian.AppendUint32(b, s.Edges)
		b = binary.LittleEndian.AppendUint32(b, s.Levels)
		b = binary.LittleEndian.AppendUint32(b, s.SqrtLevel)
		b = binary.LittleEndian.AppendUint64(b, s.Activations)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Now))
		b = binary.LittleEndian.AppendUint32(b, s.Inflight)
		b = binary.LittleEndian.AppendUint32(b, s.Queued)
		if s.Draining {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = append(b, s.Role)
		b = binary.LittleEndian.AppendUint64(b, s.ReplLagFrames)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.ReplLagSeconds))
	case OpWatch, OpUnwatch, OpViewClose, OpPromote:
		// no body
	case OpReplSubscribe:
		// no body: the OK reply just acknowledges the subscription; the
		// stream that follows carries the data.
	case OpReplStatus:
		b = appendReplStatus(b, &resp.Repl)
	case OpDrainEvents:
		b = binary.LittleEndian.AppendUint64(b, resp.Dropped)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Events)))
		for _, e := range resp.Events {
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Node))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Other))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Level))
			if e.Joined {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Time))
		}
	case OpViewOpen:
		b = binary.LittleEndian.AppendUint32(b, resp.View)
		b = binary.LittleEndian.AppendUint32(b, uint32(resp.Level))
	case OpViewZoomIn, OpViewZoomOut:
		if resp.Moved {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(resp.Level))
	case OpTieRank:
		r := &resp.Rank
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Level))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Iters))
		if r.Converged {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Now))
		b = appendRankEntries(b, r.Global)
		// A global-only answer (Level -1) carries zero groups; decoding
		// enforces that, so the encoding stays canonical.
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Clusters)))
		for _, g := range r.Clusters {
			b = appendRankEntries(b, g)
		}
	case OpEvolution:
		b = binary.LittleEndian.AppendUint64(b, resp.Seq)
		b = binary.LittleEndian.AppendUint64(b, resp.Dropped)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Evo)))
		for _, e := range resp.Evo {
			b = binary.LittleEndian.AppendUint64(b, e.Seq)
			b = append(b, uint8(e.Type))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Level))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Node))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Size))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.PrevSize))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Time))
		}
	case OpTraces:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Raw)))
		b = append(b, resp.Raw...)
	}
	return b
}

// appendRankEntries serializes one top-k listing: count(4) then
// node(4) + score(8) per entry.
func appendRankEntries(b []byte, entries []anc.RankEntry) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Node))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Score))
	}
	return b
}

// DecodeResponse parses a response payload for a request of the given op.
// Error replies decode for any op.
func DecodeResponse(op uint8, payload []byte) (*Response, error) {
	if len(payload) < 9 {
		return nil, fmt.Errorf("response payload of %d bytes", len(payload))
	}
	status := payload[0]
	resp := &Response{ID: binary.LittleEndian.Uint64(payload[1:9])}
	body := payload[9:]
	if status == statusErr {
		if len(body) < 3 {
			return nil, fmt.Errorf("error body of %d bytes", len(body))
		}
		code := body[0]
		n := int(binary.LittleEndian.Uint16(body[1:3]))
		if len(body) != 3+n {
			return nil, fmt.Errorf("error message of %d bytes in %d", n, len(body))
		}
		resp.Err = &WireError{Code: code, Msg: string(body[3:])}
		return resp, nil
	}
	if status != statusOK {
		return nil, fmt.Errorf("unknown response status %d", status)
	}
	take := func(n int) ([]byte, error) {
		if len(body) < n {
			return nil, fmt.Errorf("op %d: response truncated", op)
		}
		out := body[:n]
		body = body[n:]
		return out, nil
	}
	switch op {
	case OpActivateBatch:
		b, err := take(4)
		if err != nil {
			return nil, err
		}
		resp.Accepted = binary.LittleEndian.Uint32(b)
	case OpClusters, OpEvenClusters, OpViewClusters:
		b, err := take(4)
		if err != nil {
			return nil, err
		}
		count := int(binary.LittleEndian.Uint32(b))
		// Capacity is grown as clusters decode; trusting the announced
		// count before the bytes back it up would let a short frame force
		// a huge allocation.
		resp.Clusters = make([][]int, 0, min(count, 1024))
		for i := 0; i < count; i++ {
			b, err := take(4)
			if err != nil {
				return nil, err
			}
			sz := int(binary.LittleEndian.Uint32(b))
			ids, err := take(4 * sz)
			if err != nil {
				return nil, err
			}
			c := make([]int, sz)
			for j := range c {
				c[j] = int(binary.LittleEndian.Uint32(ids[4*j:]))
			}
			resp.Clusters = append(resp.Clusters, c)
		}
	case OpClusterOf, OpSmallestClusterOf, OpViewClusterOf:
		b, err := take(4)
		if err != nil {
			return nil, err
		}
		sz := int(binary.LittleEndian.Uint32(b))
		ids, err := take(4 * sz)
		if err != nil {
			return nil, err
		}
		resp.Members = make([]int, sz)
		for j := range resp.Members {
			resp.Members[j] = int(binary.LittleEndian.Uint32(ids[4*j:]))
		}
	case OpEstimateDistance, OpEstimateAttraction:
		b, err := take(8)
		if err != nil {
			return nil, err
		}
		resp.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
	case OpStats:
		b, err := take(36)
		if err != nil {
			return nil, err
		}
		resp.Stats = StatsReply{
			Nodes:       binary.LittleEndian.Uint32(b[0:4]),
			Edges:       binary.LittleEndian.Uint32(b[4:8]),
			Levels:      binary.LittleEndian.Uint32(b[8:12]),
			SqrtLevel:   binary.LittleEndian.Uint32(b[12:16]),
			Activations: binary.LittleEndian.Uint64(b[16:24]),
			Now:         math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
			Inflight:    binary.LittleEndian.Uint32(b[32:36]),
		}
		b2, err := take(5)
		if err != nil {
			return nil, err
		}
		resp.Stats.Queued = binary.LittleEndian.Uint32(b2[0:4])
		resp.Stats.Draining = b2[4] != 0
		b3, err := take(17)
		if err != nil {
			return nil, err
		}
		resp.Stats.Role = b3[0]
		resp.Stats.ReplLagFrames = binary.LittleEndian.Uint64(b3[1:9])
		resp.Stats.ReplLagSeconds = math.Float64frombits(binary.LittleEndian.Uint64(b3[9:17]))
	case OpWatch, OpUnwatch, OpViewClose, OpPromote, OpReplSubscribe:
		// no body
	case OpReplStatus:
		st, rest, err := decodeReplStatus(body)
		if err != nil {
			return nil, err
		}
		resp.Repl = *st
		body = rest
	case OpDrainEvents:
		b, err := take(12)
		if err != nil {
			return nil, err
		}
		resp.Dropped = binary.LittleEndian.Uint64(b[0:8])
		count := int(binary.LittleEndian.Uint32(b[8:12]))
		resp.Events = make([]anc.ClusterEvent, 0, min(count, 1024))
		for i := 0; i < count; i++ {
			e, err := take(21)
			if err != nil {
				return nil, err
			}
			resp.Events = append(resp.Events, anc.ClusterEvent{
				Node:   int(binary.LittleEndian.Uint32(e[0:4])),
				Other:  int(binary.LittleEndian.Uint32(e[4:8])),
				Level:  int(binary.LittleEndian.Uint32(e[8:12])),
				Joined: e[12] != 0,
				Time:   math.Float64frombits(binary.LittleEndian.Uint64(e[13:21])),
			})
		}
	case OpViewOpen:
		b, err := take(8)
		if err != nil {
			return nil, err
		}
		resp.View = binary.LittleEndian.Uint32(b[0:4])
		resp.Level = int32(binary.LittleEndian.Uint32(b[4:8]))
	case OpViewZoomIn, OpViewZoomOut:
		b, err := take(5)
		if err != nil {
			return nil, err
		}
		resp.Moved = b[0] != 0
		resp.Level = int32(binary.LittleEndian.Uint32(b[1:5]))
	case OpTieRank:
		takeEntries := func() ([]anc.RankEntry, error) {
			b, err := take(4)
			if err != nil {
				return nil, err
			}
			count := int(binary.LittleEndian.Uint32(b))
			// Capacity grows as entries decode — see the Clusters case.
			out := make([]anc.RankEntry, 0, min(count, 1024))
			for i := 0; i < count; i++ {
				e, err := take(12)
				if err != nil {
					return nil, err
				}
				out = append(out, anc.RankEntry{
					Node:  int(binary.LittleEndian.Uint32(e[0:4])),
					Score: math.Float64frombits(binary.LittleEndian.Uint64(e[4:12])),
				})
			}
			return out, nil
		}
		b, err := take(17)
		if err != nil {
			return nil, err
		}
		resp.Rank.Level = int(int32(binary.LittleEndian.Uint32(b[0:4])))
		resp.Rank.Iters = int(binary.LittleEndian.Uint32(b[4:8]))
		resp.Rank.Converged = b[8] != 0
		resp.Rank.Now = math.Float64frombits(binary.LittleEndian.Uint64(b[9:17]))
		if resp.Rank.Global, err = takeEntries(); err != nil {
			return nil, err
		}
		g, err := take(4)
		if err != nil {
			return nil, err
		}
		groups := int(binary.LittleEndian.Uint32(g))
		if resp.Rank.Level < 0 && groups != 0 {
			return nil, fmt.Errorf("tierank: %d groups on a global-only answer", groups)
		}
		if groups > 0 {
			resp.Rank.Clusters = make([][]anc.RankEntry, 0, min(groups, 1024))
			for i := 0; i < groups; i++ {
				entries, err := takeEntries()
				if err != nil {
					return nil, err
				}
				resp.Rank.Clusters = append(resp.Rank.Clusters, entries)
			}
		}
	case OpEvolution:
		b, err := take(20)
		if err != nil {
			return nil, err
		}
		resp.Seq = binary.LittleEndian.Uint64(b[0:8])
		resp.Dropped = binary.LittleEndian.Uint64(b[8:16])
		count := int(binary.LittleEndian.Uint32(b[16:20]))
		resp.Evo = make([]anc.EvolutionEvent, 0, min(count, 1024))
		for i := 0; i < count; i++ {
			e, err := take(33)
			if err != nil {
				return nil, err
			}
			resp.Evo = append(resp.Evo, anc.EvolutionEvent{
				Seq:      binary.LittleEndian.Uint64(e[0:8]),
				Type:     anc.EvolutionEventType(e[8]),
				Level:    int(binary.LittleEndian.Uint32(e[9:13])),
				Node:     int(binary.LittleEndian.Uint32(e[13:17])),
				Size:     int(binary.LittleEndian.Uint32(e[17:21])),
				PrevSize: int(binary.LittleEndian.Uint32(e[21:25])),
				Time:     math.Float64frombits(binary.LittleEndian.Uint64(e[25:33])),
			})
		}
	case OpTraces:
		b, err := take(4)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		raw, err := take(n)
		if err != nil {
			return nil, err
		}
		resp.Raw = append([]byte(nil), raw...)
	default:
		return nil, fmt.Errorf("unknown op %d", op)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("op %d: %d trailing response bytes", op, len(body))
	}
	return resp, nil
}
